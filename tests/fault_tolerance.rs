//! System-level resilience invariants: zero-fault runs are bit-exact
//! and never degrade, scripted faults land in the expected outcome
//! class, and fault campaigns are byte-for-byte deterministic.

use eve_sim::{campaign_json, FaultOutcome, FaultPlan, RecoveryPolicy, Runner, SystemKind};
use eve_sram::FaultConfig;
use eve_workloads::Workload;

/// With the injector armed but every rate zero, every system still
/// verifies its golden outputs, and every EVE factor reports a clean
/// (masked, alarm-free, undegraded) resilience verdict.
#[test]
fn zero_fault_runs_are_bit_exact_everywhere() {
    let runner = Runner::new();
    let w = Workload::vvadd(300);
    for sys in SystemKind::all() {
        // Plain runs verify internally — a mismatch would error here.
        let plain = runner.run(sys, &w).unwrap();
        assert!(plain.cycles.0 > 0, "{sys}");
        assert!(
            plain.resilience.is_none(),
            "{sys}: plain runs carry no verdict"
        );
        let SystemKind::EveN(n) = sys else { continue };
        let faulty = runner
            .run_faulty(n, &w, FaultConfig::none(42), RecoveryPolicy::default())
            .unwrap();
        let res = faulty.resilience.expect("faulty runs report");
        assert_eq!(res.outcome, FaultOutcome::Masked, "{sys}");
        assert!(res.verified, "{sys}");
        assert_eq!(res.parity_alarms, 0, "{sys}");
        assert_eq!(res.retries, 0, "{sys}");
        assert_eq!(res.corrupted_lanes, 0, "{sys}");
        assert_eq!(res.fault_stats.total_events(), 0, "{sys}");
        assert!(res.degraded_from.is_none(), "{sys}");
        // The checked run pays for parity: at least as slow as plain.
        assert!(faulty.cycles >= plain.cycles, "{sys}");
        let b = faulty.breakdown.expect("EVE breakdown");
        assert!(res.checked_ops == 0 || b.parity_stall.0 > 0, "{sys}");
    }
}

/// Zero-fault resilience runs are themselves deterministic: identical
/// seeds give identical cycle counts.
#[test]
fn zero_fault_runs_are_reproducible() {
    let runner = Runner::new();
    let w = Workload::Mmult { n: 12 };
    let a = runner
        .run_faulty(8, &w, FaultConfig::none(7), RecoveryPolicy::default())
        .unwrap();
    let b = runner
        .run_faulty(8, &w, FaultConfig::none(7), RecoveryPolicy::default())
        .unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.resilience, b.resilience);
}

/// The same campaign plan renders byte-identical JSON on every run —
/// the property that makes campaign reports diffable.
#[test]
fn campaigns_are_byte_identical() {
    let plan = FaultPlan {
        seed: 0xCA_FE,
        rates: vec![0.0, 1e-3, 1e-2],
        factors: vec![8, 32],
        policy: RecoveryPolicy::default(),
    };
    let suite = [Workload::vvadd(300), Workload::Mmult { n: 12 }];
    let first = campaign_json(&plan, &suite).unwrap();
    let second = campaign_json(&plan, &suite).unwrap();
    assert_eq!(first, second, "same seed must render identical bytes");
    // The document carries one row per (rate, factor, workload) point.
    assert_eq!(first.matches("\"outcome\"").count(), 3 * 2 * 2);
    // Rate-0 control rows never report damage.
    let doc: Vec<&str> = first.lines().collect();
    assert!(doc.iter().any(|l| l.contains("\"masked\"")));
    // A different seed changes the bytes (the sweep actually keys on
    // it).
    let other = campaign_json(
        &FaultPlan {
            seed: 0xBEEF,
            ..plan.clone()
        },
        &suite,
    )
    .unwrap();
    assert_ne!(first, other);
}
