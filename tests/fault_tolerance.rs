//! System-level resilience invariants: zero-fault runs are bit-exact
//! and never degrade, scripted faults land in the expected outcome
//! class, SECDED honors its single-correct/double-detect contract
//! against a scalar oracle, the escalation ladder climbs in order,
//! and fault campaigns are byte-for-byte deterministic.

use eve_common::SplitMix64;
use eve_sim::{
    campaign_json, CampaignMode, FaultOutcome, FaultPlan, RecoveryPolicy, Runner, SystemKind,
};
use eve_sram::{DetectionMode, Fault, FaultConfig, SecdedCode, SecdedVerdict};
use eve_workloads::Workload;

/// With the injector armed but every rate zero, every system still
/// verifies its golden outputs, and every EVE factor reports a clean
/// (masked, alarm-free, undegraded) resilience verdict.
#[test]
fn zero_fault_runs_are_bit_exact_everywhere() {
    let runner = Runner::new();
    let w = Workload::vvadd(300);
    for sys in SystemKind::all() {
        // Plain runs verify internally — a mismatch would error here.
        let plain = runner.run(sys, &w).unwrap();
        assert!(plain.cycles.0 > 0, "{sys}");
        assert!(
            plain.resilience.is_none(),
            "{sys}: plain runs carry no verdict"
        );
        let SystemKind::EveN(n) = sys else { continue };
        let faulty = runner
            .run_faulty(n, &w, FaultConfig::none(42), RecoveryPolicy::default())
            .unwrap();
        let res = faulty.resilience.expect("faulty runs report");
        assert_eq!(res.outcome, FaultOutcome::Masked, "{sys}");
        assert!(res.verified, "{sys}");
        assert_eq!(res.parity_alarms, 0, "{sys}");
        assert_eq!(res.corrected, 0, "{sys}");
        assert_eq!(res.retries, 0, "{sys}");
        assert_eq!(res.corrupted_lanes, 0, "{sys}");
        assert_eq!(res.fault_stats.total_events(), 0, "{sys}");
        assert!(res.degraded_from.is_none(), "{sys}");
        assert_eq!(res.availability, 1.0, "{sys}");
        // The checked run pays for parity: at least as slow as plain.
        assert!(faulty.cycles >= plain.cycles, "{sys}");
        let b = faulty.breakdown.expect("EVE breakdown");
        assert!(res.checked_ops == 0 || b.parity_stall.0 > 0, "{sys}");
    }
}

/// Zero-fault resilience runs are themselves deterministic: identical
/// seeds give identical cycle counts.
#[test]
fn zero_fault_runs_are_reproducible() {
    let runner = Runner::new();
    let w = Workload::Mmult { n: 12 };
    let a = runner
        .run_faulty(8, &w, FaultConfig::none(7), RecoveryPolicy::default())
        .unwrap();
    let b = runner
        .run_faulty(8, &w, FaultConfig::none(7), RecoveryPolicy::default())
        .unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.resilience, b.resilience);
}

/// Every hybrid factor's segment width.
const WIDTHS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// A deliberately naive SECDED reference: lay data bits into the
/// classic Hamming positions (power-of-two positions hold check bits),
/// compute each check bit by brute-force position scan, and append an
/// overall parity bit over the whole codeword.
fn oracle_encode(k: u32, data: u32) -> u32 {
    let mut r = 1u32;
    while (1u32 << r) < k + r + 1 {
        r += 1;
    }
    // Codeword positions 1..=k+r, 0 meaning "unset".
    let n = (k + r) as usize;
    let mut word = vec![0u8; n + 1];
    let mut i = 0;
    for (pos, slot) in word.iter_mut().enumerate().skip(1) {
        if !(pos as u32).is_power_of_two() {
            *slot = ((data >> i) & 1) as u8;
            i += 1;
        }
    }
    let mut check = 0u32;
    for j in 0..r {
        let mut parity = 0u8;
        for (pos, &bit) in word.iter().enumerate().skip(1) {
            if pos & (1usize << j) != 0 {
                parity ^= bit;
            }
        }
        for (pos, slot) in word.iter_mut().enumerate().skip(1) {
            if pos == 1 << j {
                *slot = parity;
            }
        }
        check |= u32::from(parity) << j;
    }
    let overall = word[1..].iter().fold(0u8, |acc, &b| acc ^ b);
    check | (u32::from(overall) << r)
}

/// The plane-oriented encoder agrees with the brute-force oracle on
/// every width under seeded fuzz.
#[test]
fn secded_encode_matches_scalar_oracle_under_fuzz() {
    let mut rng = SplitMix64::new(0x0DDC0DE);
    for &k in &WIDTHS {
        let code = SecdedCode::new(k);
        let mask = ((1u64 << k) - 1) as u32;
        for _ in 0..512 {
            let data = (rng.next_u64() as u32) & mask;
            assert_eq!(
                code.encode(data),
                oracle_encode(k, data),
                "k={k} data={data:#x}"
            );
        }
    }
}

/// Exhaustive single-flip coverage: for every width, every data bit
/// flip decodes to `CorrectedData` at the right index and every check
/// bit flip to `CorrectedCheck`, over fuzzed data words.
#[test]
fn secded_corrects_every_single_bit_flip() {
    let mut rng = SplitMix64::new(0x5EC_DED);
    for &k in &WIDTHS {
        let code = SecdedCode::new(k);
        let mask = ((1u64 << k) - 1) as u32;
        for _ in 0..32 {
            let data = (rng.next_u64() as u32) & mask;
            let check = code.encode(data);
            for bit in 0..k {
                let (mut d, mut c) = (data ^ (1 << bit), check);
                assert_eq!(
                    code.correct(&mut d, &mut c),
                    SecdedVerdict::CorrectedData(bit),
                    "k={k} data bit {bit}"
                );
                assert_eq!((d, c), (data, check), "repair must restore the word");
            }
            for j in 0..code.check_bits() {
                let (mut d, mut c) = (data, check ^ (1 << j));
                assert_eq!(
                    code.correct(&mut d, &mut c),
                    SecdedVerdict::CorrectedCheck(j),
                    "k={k} check bit {j}"
                );
                assert_eq!((d, c), (data, check));
            }
        }
    }
}

/// Exhaustive double-flip coverage: every pair of distinct bit flips
/// (data or check) is flagged uncorrectable, never miscorrected.
#[test]
fn secded_detects_every_double_bit_flip() {
    let mut rng = SplitMix64::new(0xD0_5EC);
    for &k in &WIDTHS {
        let code = SecdedCode::new(k);
        let mask = ((1u64 << k) - 1) as u32;
        let n = k + code.check_bits();
        for _ in 0..8 {
            let data = (rng.next_u64() as u32) & mask;
            let check = code.encode(data);
            let flip = |bit: u32, d: &mut u32, c: &mut u32| {
                if bit < k {
                    *d ^= 1 << bit;
                } else {
                    *c ^= 1 << (bit - k);
                }
            };
            for a in 0..n {
                for b in (a + 1)..n {
                    let (mut d, mut c) = (data, check);
                    flip(a, &mut d, &mut c);
                    flip(b, &mut d, &mut c);
                    assert_eq!(
                        code.decode(d, c),
                        SecdedVerdict::Uncorrectable,
                        "k={k} flips=({a},{b})"
                    );
                }
            }
        }
    }
}

/// Under a writeback-transient-only population (single flips per lane
/// write — the class SECDED is specified against), a SECDED run
/// corrects everything in place: zero SDC, zero retries, full
/// availability, and a verified result.
#[test]
fn secded_corrects_all_write_transients_without_retries() {
    let runner = Runner::new();
    let w = Workload::vvadd(300);
    for seed in [11u64, 12, 13] {
        let report = runner
            .run_faulty_with(
                8,
                &w,
                FaultConfig::write_transients(seed, 5e-3),
                RecoveryPolicy::default(),
                DetectionMode::Secded,
            )
            .unwrap();
        let res = report.resilience.expect("faulty runs report");
        assert!(res.verified, "seed {seed}");
        assert_ne!(
            res.outcome,
            FaultOutcome::SilentDataCorruption,
            "seed {seed}: single-bit transients must never become SDC"
        );
        assert_eq!(res.retries, 0, "seed {seed}: corrections need no retry");
        assert_eq!(res.corrupted_lanes, 0, "seed {seed}");
        assert_eq!(res.availability, 1.0, "seed {seed}");
        if res.fault_stats.write_flips > 0 {
            assert!(res.corrected > 0, "seed {seed}: flips imply corrections");
            assert_eq!(res.outcome, FaultOutcome::DetectedCorrected, "seed {seed}");
        }
    }
}

/// The same fault population under parity-only protection needs
/// re-execution for every detected flip, so its availability drops
/// strictly below SECDED's — the paper-level claim the campaign's
/// availability column exists to show.
#[test]
fn secded_availability_strictly_beats_parity() {
    let runner = Runner::new();
    let w = Workload::vvadd(300);
    let seed = 21u64;
    let rate = 5e-3;
    let parity = runner
        .run_faulty_with(
            8,
            &w,
            FaultConfig::write_transients(seed, rate),
            RecoveryPolicy::default(),
            DetectionMode::Parity,
        )
        .unwrap()
        .resilience
        .expect("report");
    let secded = runner
        .run_faulty_with(
            8,
            &w,
            FaultConfig::write_transients(seed, rate),
            RecoveryPolicy::default(),
            DetectionMode::Secded,
        )
        .unwrap()
        .resilience
        .expect("report");
    assert!(
        parity.retries > 0,
        "rate {rate} must trip the parity detector (got {parity:?})"
    );
    assert_eq!(secded.retries, 0);
    assert!(
        secded.availability > parity.availability,
        "secded {} must strictly beat parity {}",
        secded.availability,
        parity.availability
    );
}

/// A stuck cell in a source row keeps re-perturbing on every operand
/// reload. Without sparing that exhausts retries and degrades; with
/// the sparing policy the ladder retires the row to a spare and the
/// run finishes in EVE mode.
#[test]
fn sparing_policy_remaps_a_stuck_row_instead_of_degrading() {
    let runner = Runner::new();
    let w = Workload::vvadd(300);
    let mut cfg = FaultConfig::none(7);
    // vvadd sources are < 2^20, so stuck-at-one on bit 30 of source
    // row v1 perturbs every operand write deterministically.
    cfg.scripted.push(Fault::stuck_at(1, 0, 30, true));
    let sparing = RecoveryPolicy {
        remap_threshold: 1,
        ..RecoveryPolicy::sparing()
    };

    let plain = runner
        .run_faulty_with(
            32,
            &w,
            cfg.clone(),
            RecoveryPolicy::default(),
            DetectionMode::Secded,
        )
        .unwrap()
        .resilience
        .expect("report");
    let spared = runner
        .run_faulty_with(32, &w, cfg, sparing, DetectionMode::Secded)
        .unwrap()
        .resilience
        .expect("report");

    assert!(
        spared.remapped_rows > 0,
        "the hot row must be retired: {spared:?}"
    );
    assert_ne!(spared.outcome, FaultOutcome::DetectedDegraded);
    assert!(spared.degraded_from.is_none());
    assert!(spared.verified);
    assert!(
        spared.availability >= plain.availability,
        "sparing must not reduce availability ({} vs {})",
        spared.availability,
        plain.availability
    );
}

/// The same campaign plan renders byte-identical JSON on every run —
/// the property that makes campaign reports diffable.
#[test]
fn campaigns_are_byte_identical() {
    let plan = FaultPlan {
        seed: 0xCA_FE,
        rates: vec![0.0, 1e-2],
        modes: vec![CampaignMode::Parity, CampaignMode::SecdedSparing],
        factors: vec![8, 32],
        policy: RecoveryPolicy::default(),
        write_only: false,
    };
    let suite = [Workload::vvadd(300), Workload::Mmult { n: 12 }];
    let first = campaign_json(&plan, &suite).unwrap();
    let second = campaign_json(&plan, &suite).unwrap();
    assert_eq!(first, second, "same seed must render identical bytes");
    // The document carries one row per (rate, mode, factor, workload)
    // point.
    assert_eq!(first.matches("\"outcome\"").count(), 2 * 2 * 2 * 2);
    // Rate-0 control rows never report damage.
    let doc: Vec<&str> = first.lines().collect();
    assert!(doc.iter().any(|l| l.contains("\"masked\"")));
    // The per-mode availability aggregation is present.
    assert!(first.contains("\"mean_availability\""));
    assert!(first.contains("\"secded_sparing\""));
    // A different seed changes the bytes (the sweep actually keys on
    // it).
    let other = campaign_json(
        &FaultPlan {
            seed: 0xBEEF,
            ..plan.clone()
        },
        &suite,
    )
    .unwrap();
    assert_ne!(first, other);
}
