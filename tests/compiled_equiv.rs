//! Differential fuzzing of the compiled (tier-2) μprogram executor
//! against the interpreter oracle.
//!
//! PR 2 proved the bitsliced interpreter equivalent to the lane-serial
//! scalar executor (`tests/bitslice_equiv.rs`); this harness proves the
//! compilation tier equivalent to that interpreter, making the chain
//! scalar ⇔ interpreter ⇔ compiled airtight. It throws seeded-random
//! raw-μop programs (straight from the Table II vocabulary, including
//! counter loops the specializer must unroll), every library macro-op,
//! awkward lane counts (1, 63, 100: partial tail words), and chained
//! executions (cross-program latch persistence — the fuser's liveness
//! obligation) at both executors and compares every externally
//! observable surface after each step. Armed-injector dispatches are
//! driven through `execute_tiered` to pin the fallback: the tier ladder
//! must consume the injector's RNG stream in exactly the interpreter's
//! order.

use eve_common::SplitMix64;
use eve_sram::{Binding, EveArray, FaultConfig, FaultInjector};
use eve_uop::fuse::{self, ProgramCache};
use eve_uop::{
    ArithUop, CarryIn, ComputeSrc, CounterId, CounterUop, HybridConfig, MacroOpKind, MaskSrc,
    MicroProgram, Operand, ProgramBuilder, ProgramLibrary, SegSel, VSlot, WbDest,
};

/// Architectural registers the fuzz binds and checks (v0..=v8; v0 so
/// the mask-register row region is covered too).
const REGS: u32 = 9;
/// μprogram scratch registers, checked too: fused writes into scratch
/// rows must land exactly where the interpreter puts them.
const SCRATCH_BASE: u32 = 32;
const SCRATCH_REGS: u32 = 6;

fn random_slot(rng: &mut SplitMix64) -> VSlot {
    match rng.below(5) {
        0 => VSlot::D,
        1 => VSlot::S1,
        2 => VSlot::S2,
        3 => VSlot::Mask,
        _ => VSlot::Scratch(rng.below(6) as u8),
    }
}

fn random_operand(rng: &mut SplitMix64, segs: u32, ctr: Option<CounterId>) -> Operand {
    let slot = random_slot(rng);
    let seg = match ctr {
        Some(c) => match rng.below(3) {
            0 => SegSel::Up(c),
            1 => SegSel::Down(c),
            _ => SegSel::At(rng.below(u64::from(segs)) as u8),
        },
        None => SegSel::At(rng.below(u64::from(segs)) as u8),
    };
    Operand::new(slot, seg)
}

/// Draws one arithmetic μop covering the whole Table II vocabulary,
/// biased toward blc/writeback so the fuser's peephole fires often.
fn random_uop(rng: &mut SplitMix64, segs: u32, ctr: Option<CounterId>) -> ArithUop {
    let masked = rng.below(2) == 1;
    match rng.below(17) {
        0 => ArithUop::Read {
            op: random_operand(rng, segs, ctr),
        },
        1 => ArithUop::WriteConst {
            op: random_operand(rng, segs, ctr),
            value: rng.next_u32(),
            masked,
        },
        2 => ArithUop::WriteDataIn {
            op: random_operand(rng, segs, ctr),
        },
        3..=5 => ArithUop::Blc {
            a: random_operand(rng, segs, ctr),
            b: random_operand(rng, segs, ctr),
            carry_in: match rng.below(3) {
                0 => CarryIn::Stored,
                1 => CarryIn::Zero,
                _ => CarryIn::One,
            },
        },
        6..=8 => ArithUop::Writeback {
            dst: match rng.below(4) {
                0 | 1 => WbDest::Row(random_operand(rng, segs, ctr)),
                2 => WbDest::MaskReg,
                _ => WbDest::XReg,
            },
            src: match rng.below(9) {
                0 => ComputeSrc::And,
                1 => ComputeSrc::Nand,
                2 => ComputeSrc::Or,
                3 => ComputeSrc::Nor,
                4 => ComputeSrc::Xor,
                5 => ComputeSrc::Xnor,
                6 => ComputeSrc::Add,
                7 => ComputeSrc::Shift,
                _ => ComputeSrc::Mask,
            },
            masked,
        },
        9 => ArithUop::LoadShifter {
            op: random_operand(rng, segs, ctr),
        },
        10 => ArithUop::StoreShifter {
            op: random_operand(rng, segs, ctr),
            masked,
        },
        11 => ArithUop::LoadXReg {
            op: random_operand(rng, segs, ctr),
        },
        12 => match rng.below(4) {
            0 => ArithUop::ShiftLeft { masked },
            1 => ArithUop::ShiftRight { masked },
            2 => ArithUop::RotateLeft { masked },
            _ => ArithUop::RotateRight { masked },
        },
        13 => ArithUop::MaskShift,
        14 => ArithUop::SetMask {
            src: match rng.below(5) {
                0 => MaskSrc::XRegLsb,
                1 => MaskSrc::XRegMsb,
                2 => MaskSrc::AddMsb,
                3 => MaskSrc::Carry,
                _ => MaskSrc::AllOnes,
            },
            invert: rng.below(2) == 1,
        },
        15 => ArithUop::SetCarry {
            value: rng.below(2) == 1,
        },
        _ => ArithUop::ClearSpare,
    }
}

/// Builds a random μprogram: straight-line or one segment loop (so the
/// specializer's unroller sees live `SegSel::Up`/`Down` operands),
/// always terminated by `ret`.
fn random_program(rng: &mut SplitMix64, cfg: HybridConfig) -> MicroProgram {
    let segs = cfg.segments();
    let mut b = ProgramBuilder::new("fuzz");
    let len = 3 + rng.below(12);
    if rng.below(2) == 0 {
        for _ in 0..len {
            b.arith(random_uop(rng, segs, None));
        }
        b.ret();
    } else {
        let ctr = CounterId::seg(0);
        b.counter(CounterUop::Init { ctr, value: segs });
        b.label("body");
        for _ in 0..len {
            b.arith(random_uop(rng, segs, Some(ctr)));
        }
        b.decr_branch_nz(ctr, "body");
        b.ret();
    }
    b.build().expect("fuzz program assembles")
}

/// Asserts every externally observable surface of the two arrays
/// agrees: all architectural and scratch rows, the data-out port, and
/// the alarm counters.
fn assert_same_state(interp: &EveArray, compiled: &EveArray, lanes: usize, ctx: &str) {
    for r in (0..REGS).chain(SCRATCH_BASE..SCRATCH_BASE + SCRATCH_REGS) {
        for lane in 0..lanes {
            assert_eq!(
                interp.read_element(r, lane),
                compiled.read_element(r, lane),
                "{ctx}: reg {r} lane {lane}"
            );
        }
    }
    assert_eq!(interp.data_out(), compiled.data_out(), "{ctx}: data-out");
    assert_eq!(
        interp.parity_alarms(),
        compiled.parity_alarms(),
        "{ctx}: parity alarms"
    );
}

/// A pair of identically loaded arrays.
fn loaded_pair(cfg: HybridConfig, lanes: usize, rng: &mut SplitMix64) -> (EveArray, EveArray) {
    let mut a = EveArray::new(cfg, lanes);
    let mut b = EveArray::new(cfg, lanes);
    for r in 0..REGS {
        for lane in 0..lanes {
            let v = rng.next_u32();
            a.write_element(r, lane, v);
            b.write_element(r, lane, v);
        }
    }
    (a, b)
}

/// Runs `steps` random μprograms on a fresh pair, interpreting on one
/// and executing the compiled form on the other, comparing after every
/// program. Chaining on the same arrays exercises the cross-program
/// latch-persistence obligation (keep = ALL on the final compute).
fn run_case(cfg: HybridConfig, lanes: usize, steps: u64, rng: &mut SplitMix64) {
    let (mut interp, mut compiled) = loaded_pair(cfg, lanes, rng);
    for step in 0..steps {
        let prog = random_program(rng, cfg);
        let cp = fuse::compile(&prog, cfg, lanes);
        let d = rng.below(u64::from(REGS)) as u8;
        let s1 = rng.below(u64::from(REGS)) as u8;
        let s2 = rng.below(u64::from(REGS)) as u8;
        let binding = Binding::new(d, s1, s2);
        let data: Vec<u32> = (0..lanes).map(|_| rng.next_u32()).collect();
        interp.set_data_in(data.clone());
        compiled.set_data_in(data);
        let ci = interp.execute(&prog, &binding);
        let cc = compiled.execute_compiled(&cp, &binding);
        assert_eq!(ci, cc, "{cfg} lanes={lanes} step {step}: cycle count");
        assert_same_state(
            &interp,
            &compiled,
            lanes,
            &format!("{cfg} lanes={lanes} step {step} (d={d} s1={s1} s2={s2})"),
        );
    }
}

/// Random raw-μop programs around the 64-lane word boundary.
#[test]
fn random_programs_compiled_matches_interpreter() {
    let mut rng = SplitMix64::new(0xC0_111_7E8);
    for cfg in HybridConfig::all() {
        for lanes in [16, 80] {
            for _ in 0..3 {
                run_case(cfg, lanes, 8, &mut rng);
            }
        }
    }
}

/// Degenerate and non-multiple-of-64 lane counts: 1 (a single lane in
/// a 64-bit word), 63 (one partial word), 100 (full word + tail). The
/// fused pass must respect the same tail invariant the interpreter
/// does (complements via `^ full`, never `!`).
#[test]
fn odd_lane_counts_compiled_matches_interpreter() {
    let mut rng = SplitMix64::new(0xC0_111_0DD);
    for cfg in HybridConfig::all() {
        for lanes in [1, 63, 100] {
            run_case(cfg, lanes, 5, &mut rng);
        }
    }
}

/// Every library macro-op on every configuration, chained on the same
/// array pair so each program inherits the previous one's latch state.
#[test]
fn library_macro_ops_compiled_matches_interpreter() {
    use MacroOpKind as M;
    let mut rng = SplitMix64::new(0xC0_111_11B);
    let kinds = [
        M::Mv,
        M::Not,
        M::And,
        M::Or,
        M::Xor,
        M::Add,
        M::Sub,
        M::Mul,
        M::MulAcc,
        M::Mulh,
        M::Divu,
        M::Remu,
        M::Div,
        M::Rem,
        M::SllI(5),
        M::SrlI(17),
        M::SraI(1),
        M::RotlI(9),
        M::RotrI(30),
        M::SllV,
        M::SrlV,
        M::SraV,
        M::CmpEq,
        M::CmpNe,
        M::CmpLt,
        M::CmpLtu,
        M::Min,
        M::Max,
        M::Minu,
        M::Maxu,
        M::Merge,
        M::MaskAnd,
        M::MaskOr,
        M::MaskXor,
        M::MaskNot,
        M::Splat(0xDEAD_BEEF),
    ];
    const LANES: usize = 67;
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let (mut interp, mut compiled) = loaded_pair(cfg, LANES, &mut rng);
        for &kind in &kinds {
            let prog = lib.program(kind);
            let cp = fuse::compile(&prog, cfg, LANES);
            let d = 1 + rng.below(u64::from(REGS) - 1) as u8;
            let s1 = 1 + rng.below(u64::from(REGS) - 1) as u8;
            let s2 = 1 + rng.below(u64::from(REGS) - 1) as u8;
            let binding = Binding::new(d, s1, s2);
            let ci = interp.execute(&prog, &binding);
            let cc = compiled.execute_compiled(&cp, &binding);
            assert_eq!(ci, cc, "{cfg} {kind:?}: cycle count");
            assert_same_state(&interp, &compiled, LANES, &format!("{cfg} {kind:?}"));
        }
    }
}

/// The tiered dispatcher with a warm cache stays byte-identical to the
/// interpreter over long chained sequences, and actually runs tier 2.
#[test]
fn tiered_dispatch_matches_interpreter_with_warm_cache() {
    use MacroOpKind as M;
    let mut rng = SplitMix64::new(0xC0_111_CAC);
    let kinds = [M::Add, M::Sub, M::Mul, M::Xor, M::Min, M::CmpLtu];
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let mut cache = ProgramCache::new();
        let (mut interp, mut tiered) = loaded_pair(cfg, 67, &mut rng);
        for round in 0..3 {
            for &kind in &kinds {
                let d = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let s1 = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let s2 = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let binding = Binding::new(d, s1, s2);
                let ci = interp.execute(&lib.program(kind), &binding);
                let ct = tiered.execute_tiered(&lib, &mut cache, kind, &binding);
                assert_eq!(ci, ct, "{cfg} {kind:?} round {round}: cycle count");
                assert_same_state(
                    &interp,
                    &tiered,
                    67,
                    &format!("{cfg} {kind:?} round {round}"),
                );
            }
        }
        let s = cache.stats();
        assert_eq!(s.misses, kinds.len() as u64, "{cfg}: one miss per kind");
        assert_eq!(
            s.hits,
            2 * kinds.len() as u64,
            "{cfg}: later rounds all hit"
        );
        assert!(s.tier2_fused > 0, "{cfg}: fused super-ops retired");
        assert!(s.hit_rate() > 0.5, "{cfg}");
    }
}

/// Armed injectors force the interpreter fallback through the tier
/// dispatcher: corruption, RNG consumption, and detector state must be
/// byte-identical to never having had a compiled tier at all.
#[test]
fn armed_injector_fallback_is_byte_identical() {
    use MacroOpKind as M;
    let mut rng = SplitMix64::new(0xC0_111_FA1);
    let kinds = [M::Add, M::Mul, M::Sub, M::Add, M::Mul];
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let seed = rng.next_u64();
        let fc = FaultConfig::uniform(seed, 5e-3);
        let (mut interp, mut tiered) = loaded_pair(cfg, 67, &mut rng);
        interp.attach_injector(FaultInjector::new(fc.clone()));
        tiered.attach_injector(FaultInjector::new(fc));
        let mut cache = ProgramCache::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let binding = Binding::new(3, 1, 2);
            let ci = interp.execute(&lib.program(kind), &binding);
            let ct = tiered.execute_tiered(&lib, &mut cache, kind, &binding);
            assert_eq!(ci, ct, "{cfg} {kind:?} step {i}: cycle count");
            assert_same_state(&interp, &tiered, 67, &format!("{cfg} {kind:?} step {i}"));
            let (fi, ft) = (
                interp.injector().expect("armed"),
                tiered.injector().expect("armed"),
            );
            assert_eq!(fi.cycle(), ft.cycle(), "{cfg} {kind:?} step {i}: cycle");
            assert_eq!(fi.stats(), ft.stats(), "{cfg} {kind:?} step {i}: stats");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "{cfg}: cache never consulted");
        assert_eq!(s.tier1_executions, kinds.len() as u64, "{cfg}");
        assert_eq!(s.tier2_executions, 0, "{cfg}");
    }
}
