//! Property-based bit-exactness: the EVE SRAM circuits, driven by the
//! real μprograms, must agree with plain Rust integer semantics on
//! random inputs for every macro-operation and every parallelization
//! factor — the role SPICE/schematic verification played in §VI.

use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use proptest::prelude::*;

fn run_op(cfg: HybridConfig, kind: MacroOpKind, a: u32, b: u32) -> u32 {
    let lib = ProgramLibrary::new(cfg);
    let mut arr = EveArray::new(cfg, 2);
    arr.write_element(1, 0, a);
    arr.write_element(2, 0, b);
    arr.write_element(1, 1, b);
    arr.write_element(2, 1, a);
    let prog = lib.program(kind);
    arr.execute(&prog, &Binding::new(3, 1, 2));
    arr.read_element(3, 0)
}

fn configs() -> impl Strategy<Value = HybridConfig> {
    prop_oneof![
        Just(HybridConfig::new(1).unwrap()),
        Just(HybridConfig::new(2).unwrap()),
        Just(HybridConfig::new(4).unwrap()),
        Just(HybridConfig::new(8).unwrap()),
        Just(HybridConfig::new(16).unwrap()),
        Just(HybridConfig::new(32).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_exact(cfg in configs(), a: u32, b: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(run_op(cfg, MacroOpKind::Sub, a, b), a.wrapping_sub(b));
    }

    #[test]
    fn logic_exact(cfg in configs(), a: u32, b: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::And, a, b), a & b);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Or, a, b), a | b);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Xor, a, b), a ^ b);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Not, a, b), !a);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Mv, a, b), a);
    }

    #[test]
    fn mul_exact(cfg in configs(), a: u32, b: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::Mul, a, b), a.wrapping_mul(b));
    }

    #[test]
    fn div_rem_exact(cfg in configs(), a: u32, b: u32) {
        let want_q = a.checked_div(b).unwrap_or(u32::MAX);
        let want_r = a.checked_rem(b).unwrap_or(a);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Divu, a, b), want_q);
        prop_assert_eq!(run_op(cfg, MacroOpKind::Remu, a, b), want_r);
    }

    #[test]
    fn shifts_exact(cfg in configs(), a: u32, k in 0u8..32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::SllI(k), a, 0), a << k);
        prop_assert_eq!(run_op(cfg, MacroOpKind::SrlI(k), a, 0), a >> k);
        prop_assert_eq!(
            run_op(cfg, MacroOpKind::SraI(k), a, 0),
            ((a as i32) >> k) as u32
        );
    }

    #[test]
    fn variable_shifts_exact(cfg in configs(), a: u32, k in 0u32..32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::SllV, a, k), a << k);
        prop_assert_eq!(run_op(cfg, MacroOpKind::SrlV, a, k), a >> k);
        prop_assert_eq!(
            run_op(cfg, MacroOpKind::SraV, a, k),
            ((a as i32) >> k) as u32
        );
    }

    #[test]
    fn compares_exact(cfg in configs(), a: u32, b: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::CmpLtu, a, b) & 1, u32::from(a < b));
        prop_assert_eq!(
            run_op(cfg, MacroOpKind::CmpLt, a, b) & 1,
            u32::from((a as i32) < (b as i32))
        );
        prop_assert_eq!(run_op(cfg, MacroOpKind::CmpEq, a, b) & 1, u32::from(a == b));
        prop_assert_eq!(run_op(cfg, MacroOpKind::CmpNe, a, b) & 1, u32::from(a != b));
    }

    #[test]
    fn minmax_exact(cfg in configs(), a: u32, b: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::Minu, a, b), a.min(b));
        prop_assert_eq!(run_op(cfg, MacroOpKind::Maxu, a, b), a.max(b));
        prop_assert_eq!(
            run_op(cfg, MacroOpKind::Min, a, b),
            (a as i32).min(b as i32) as u32
        );
        prop_assert_eq!(
            run_op(cfg, MacroOpKind::Max, a, b),
            (a as i32).max(b as i32) as u32
        );
    }

    #[test]
    fn splat_exact(cfg in configs(), v: u32) {
        prop_assert_eq!(run_op(cfg, MacroOpKind::Splat(v), 0, 0), v);
    }

    /// Cycle counts are identical whether a program runs on the
    /// counting executor or the bit-accurate array — the vertical
    /// integration the engine's timing model relies on.
    #[test]
    fn counting_and_bit_accurate_executors_agree(cfg in configs(), a: u32, b: u32, k in 0u8..32) {
        use eve_uop::count_cycles;
        for kind in [
            MacroOpKind::Add,
            MacroOpKind::Mul,
            MacroOpKind::Divu,
            MacroOpKind::SllI(k),
            MacroOpKind::Min,
            MacroOpKind::Merge,
        ] {
            let lib = ProgramLibrary::new(cfg);
            let prog = lib.program(kind);
            let mut arr = EveArray::new(cfg, 2);
            arr.write_element(1, 0, a);
            arr.write_element(2, 0, b);
            let real = arr.execute(&prog, &Binding::new(3, 1, 2));
            prop_assert_eq!(real, count_cycles(&prog, cfg));
        }
    }
}
