//! Seeded-fuzz bit-exactness: the EVE SRAM circuits, driven by the
//! real μprograms, must agree with plain Rust integer semantics on
//! random and edge-case inputs for every macro-operation and every
//! parallelization factor — the role SPICE/schematic verification
//! played in §VI. The inputs come from a fixed-seed [`SplitMix64`]
//! stream, so failures reproduce exactly.

use eve_common::SplitMix64;
use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};

fn run_op(cfg: HybridConfig, kind: MacroOpKind, a: u32, b: u32) -> u32 {
    let lib = ProgramLibrary::new(cfg);
    let mut arr = EveArray::new(cfg, 2);
    arr.write_element(1, 0, a);
    arr.write_element(2, 0, b);
    arr.write_element(1, 1, b);
    arr.write_element(2, 1, a);
    let prog = lib.program(kind);
    arr.execute(&prog, &Binding::new(3, 1, 2));
    arr.read_element(3, 0)
}

fn configs() -> Vec<HybridConfig> {
    [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&n| HybridConfig::new(n).unwrap())
        .collect()
}

/// Edge values plus a seeded random stream of operand pairs.
fn operand_pairs(seed: u64, random: usize) -> Vec<(u32, u32)> {
    const EDGES: [u32; 6] = [0, 1, 2, u32::MAX, i32::MIN as u32, i32::MAX as u32];
    let mut pairs: Vec<(u32, u32)> = EDGES
        .iter()
        .flat_map(|&a| EDGES.iter().map(move |&b| (a, b)))
        .collect();
    let mut rng = SplitMix64::new(seed);
    pairs.extend((0..random).map(|_| (rng.next_u32(), rng.next_u32())));
    pairs
}

#[test]
fn add_sub_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0001, 8) {
            assert_eq!(run_op(cfg, MacroOpKind::Add, a, b), a.wrapping_add(b));
            assert_eq!(run_op(cfg, MacroOpKind::Sub, a, b), a.wrapping_sub(b));
        }
    }
}

#[test]
fn logic_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0002, 8) {
            assert_eq!(run_op(cfg, MacroOpKind::And, a, b), a & b);
            assert_eq!(run_op(cfg, MacroOpKind::Or, a, b), a | b);
            assert_eq!(run_op(cfg, MacroOpKind::Xor, a, b), a ^ b);
            assert_eq!(run_op(cfg, MacroOpKind::Not, a, b), !a);
            assert_eq!(run_op(cfg, MacroOpKind::Mv, a, b), a);
        }
    }
}

#[test]
fn mul_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0003, 8) {
            assert_eq!(run_op(cfg, MacroOpKind::Mul, a, b), a.wrapping_mul(b));
        }
    }
}

#[test]
fn div_rem_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0004, 8) {
            let want_q = a.checked_div(b).unwrap_or(u32::MAX);
            let want_r = a.checked_rem(b).unwrap_or(a);
            assert_eq!(run_op(cfg, MacroOpKind::Divu, a, b), want_q);
            assert_eq!(run_op(cfg, MacroOpKind::Remu, a, b), want_r);
        }
    }
}

#[test]
fn shifts_exact() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for cfg in configs() {
        for k in 0u8..32 {
            let a = rng.next_u32();
            assert_eq!(run_op(cfg, MacroOpKind::SllI(k), a, 0), a << k);
            assert_eq!(run_op(cfg, MacroOpKind::SrlI(k), a, 0), a >> k);
            assert_eq!(
                run_op(cfg, MacroOpKind::SraI(k), a, 0),
                ((a as i32) >> k) as u32
            );
        }
    }
}

#[test]
fn variable_shifts_exact() {
    let mut rng = SplitMix64::new(0x5EED_0006);
    for cfg in configs() {
        for k in 0u32..32 {
            let a = rng.next_u32();
            assert_eq!(run_op(cfg, MacroOpKind::SllV, a, k), a << k);
            assert_eq!(run_op(cfg, MacroOpKind::SrlV, a, k), a >> k);
            assert_eq!(
                run_op(cfg, MacroOpKind::SraV, a, k),
                ((a as i32) >> k) as u32
            );
        }
    }
}

#[test]
fn compares_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0007, 8) {
            assert_eq!(run_op(cfg, MacroOpKind::CmpLtu, a, b) & 1, u32::from(a < b));
            assert_eq!(
                run_op(cfg, MacroOpKind::CmpLt, a, b) & 1,
                u32::from((a as i32) < (b as i32))
            );
            assert_eq!(run_op(cfg, MacroOpKind::CmpEq, a, b) & 1, u32::from(a == b));
            assert_eq!(run_op(cfg, MacroOpKind::CmpNe, a, b) & 1, u32::from(a != b));
        }
    }
}

#[test]
fn minmax_exact() {
    for cfg in configs() {
        for (a, b) in operand_pairs(0x5EED_0008, 8) {
            assert_eq!(run_op(cfg, MacroOpKind::Minu, a, b), a.min(b));
            assert_eq!(run_op(cfg, MacroOpKind::Maxu, a, b), a.max(b));
            assert_eq!(
                run_op(cfg, MacroOpKind::Min, a, b),
                (a as i32).min(b as i32) as u32
            );
            assert_eq!(
                run_op(cfg, MacroOpKind::Max, a, b),
                (a as i32).max(b as i32) as u32
            );
        }
    }
}

#[test]
fn splat_exact() {
    let mut rng = SplitMix64::new(0x5EED_0009);
    for cfg in configs() {
        for _ in 0..8 {
            let v = rng.next_u32();
            assert_eq!(run_op(cfg, MacroOpKind::Splat(v), 0, 0), v);
        }
    }
}

/// Cycle counts are identical whether a program runs on the counting
/// executor or the bit-accurate array — the vertical integration the
/// engine's timing model relies on.
#[test]
fn counting_and_bit_accurate_executors_agree() {
    use eve_uop::count_cycles;
    let mut rng = SplitMix64::new(0x5EED_000A);
    for cfg in configs() {
        for _ in 0..4 {
            let (a, b) = (rng.next_u32(), rng.next_u32());
            let k = rng.below(32) as u8;
            for kind in [
                MacroOpKind::Add,
                MacroOpKind::Mul,
                MacroOpKind::Divu,
                MacroOpKind::SllI(k),
                MacroOpKind::Min,
                MacroOpKind::Merge,
            ] {
                let lib = ProgramLibrary::new(cfg);
                let prog = lib.program(kind);
                let mut arr = EveArray::new(cfg, 2);
                arr.write_element(1, 0, a);
                arr.write_element(2, 0, b);
                let real = arr.execute(&prog, &Binding::new(3, 1, 2));
                assert_eq!(real, count_cycles(&prog, cfg));
            }
        }
    }
}
