//! Acceptance tests for the deterministic lossy interconnect: bursty
//! traffic pushed through a transport that drops 5% of messages,
//! duplicates a fraction of the rest, and suffers a mid-run partition
//! of one shard (modeled as 100% loss on its link, not dead silicon).
//! The cluster must stay ≥ 99% available with zero silent corruptions
//! and — the exactly-once claim — zero requests whose effects were
//! applied twice on any shard, while every per-link message ledger
//! balances and reruns are byte-identical.

use eve::serve::{
    audit_cluster, tenant_mix, ClusterConfig, ClusterReport, ClusterSim, ClusterTraffic,
    FaultStorm, NetPolicy, ServiceProfile, TrafficShape,
};
use eve_obs::Tracer;

const SHARDS: usize = 4;
const ENGINES_PER_SHARD: usize = 2;
const VICTIM: usize = 1;
const REQUESTS: usize = 900;
const MEAN_GAP: u64 = 500;
const HORIZON: u64 = REQUESTS as u64 * MEAN_GAP;

fn chaos_config() -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        engines_per_shard: ENGINES_PER_SHARD,
        seed: 11,
        net: NetPolicy {
            // 5% loss with half that rate of duplication and a little
            // reordering — the ISSUE's chaos point.
            duplicate: 0.025,
            ..NetPolicy::lossy(0.05)
        },
        ..ClusterConfig::default()
    }
}

fn chaos_traffic() -> ClusterTraffic {
    ClusterTraffic {
        requests: REQUESTS,
        mean_gap: MEAN_GAP,
        // Bursty arrivals: every cycle of 48 requests sends 16 of them
        // at 4x the nominal rate, so retransmit and hedge traffic has
        // to ride real queueing spikes, not a smooth trickle.
        shape: TrafficShape::Bursty {
            burst: 16,
            quiet: 32,
            gain: 4,
        },
        deadline_slack: 10.0,
        tenants: tenant_mix(3),
        seed: 0xC4405,
        ..ClusterTraffic::default()
    }
}

/// Mid-run partition of one shard. Under the transport layer this is
/// pure loss on the victim's link: its engines keep draining whatever
/// was queued, responses die on the wire, the heartbeat detector
/// notices the silence, and routing steers around it until the link
/// heals.
fn chaos_storm() -> FaultStorm {
    FaultStorm::partition(VICTIM, HORIZON * 2 / 5, HORIZON / 8)
}

fn chaos_run(tracer: Option<&Tracer>) -> ClusterReport {
    let cfg = chaos_config();
    let traffic = chaos_traffic();
    let storm = chaos_storm();
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, ENGINES_PER_SHARD);
    let sim = ClusterSim::new(cfg, profile, traffic, storm).expect("valid chaos setup");
    match tracer {
        Some(t) => sim.with_tracer(t).run(),
        None => sim.run(),
    }
}

#[test]
fn lossy_bursty_partitioned_chaos_meets_the_acceptance_floor() {
    let report = chaos_run(None);

    // The chaos was real: the transport dropped and duplicated
    // messages, timeouts fired, and retransmits papered over them.
    let dropped: u64 = report.links.iter().map(|l| l.req.dropped).sum();
    let dup_copies: u64 = report.links.iter().map(|l| l.req.dup_copies).sum();
    assert!(
        dropped > 0,
        "the lossy link must actually drop request messages"
    );
    assert!(
        dup_copies > 0,
        "the link must actually duplicate request messages"
    );
    assert!(
        report.net.retransmits > 0,
        "losses must surface as retransmits"
    );

    // Availability floor with zero silent corruptions.
    assert!(
        report.availability >= 0.99,
        "availability {} under lossy chaos",
        report.availability
    );
    assert_eq!(report.sdc, 0, "checked cluster must not leak SDCs");

    // Exactly-once effects: re-deliveries were absorbed by the queued
    // mask and the dedup cache, never applied twice on a shard.
    assert_eq!(
        report.net.double_applied, 0,
        "a request's effects were applied twice on one shard"
    );
    assert!(
        report.net.dup_suppressed + report.net.dedup_hits > 0,
        "duplication at this rate must exercise the dedup path"
    );

    // The detector caught the partition as link silence and recovered.
    assert!(
        report.net.suspicions >= 1,
        "heartbeats through a 100%-loss link must raise a suspicion"
    );
    assert_eq!(
        report.net.suspicions, report.net.recoveries,
        "every suspicion must clear once the link heals"
    );
    assert!(
        report
            .detector_events
            .iter()
            .any(|e| e.shard == VICTIM && e.suspected),
        "the victim shard must appear in the detector history"
    );

    // The partitioned shard was never declared dead silicon: its
    // engines stayed up and kept executing through the window.
    let victim = &report.shards_detail[VICTIM];
    assert!(
        victim.engines.iter().all(|e| !e.dead),
        "a link partition must not kill engines"
    );
    assert!(victim.batches > 0, "victim shard must keep executing");
}

#[test]
fn every_message_ledger_balances_at_the_horizon() {
    let report = chaos_run(None);
    assert!(report.net_enabled);
    assert_eq!(report.links.len(), SHARDS);
    for l in &report.links {
        for class in [l.req, l.resp, l.cancel, l.heartbeat, l.ack] {
            assert_eq!(
                class.sent,
                class.delivered + class.dropped,
                "link {} leaked messages in flight",
                l.shard
            );
            assert_eq!(class.in_flight, 0, "link {} still busy", l.shard);
        }
    }
    // The two execution ledgers reconcile: everything the shards
    // executed is either an accepted completion or a wasted duplicate.
    assert_eq!(
        report.executed_ok,
        report.completed_eve + report.wasted_executions,
        "shard and router ledgers disagree"
    );
    // Retransmits never exceed the per-request budget.
    assert!(report.net.retransmits <= report.admitted * report.net_max_retransmits);
}

#[test]
fn the_trace_audit_holds_and_rejects_a_cooked_net_ledger() {
    let tracer = Tracer::new();
    let report = chaos_run(Some(&tracer));
    let summary = audit_cluster(&tracer, &report).expect("audit passes");
    assert!(summary.events > 0, "audit must replay real events");
    assert!(
        summary.identities > 60,
        "audit must check the transport identity set, got {}",
        summary.identities
    );

    // Cook the message ledger: claim one more delivery than was sent.
    let mut cooked = report.clone();
    cooked.links[0].req.delivered += 1;
    let err = audit_cluster(&tracer, &cooked).expect_err("cooked link ledger must fail");
    assert!(
        err.to_string().contains("sent == delivered"),
        "unexpected audit failure: {err}"
    );

    // Cook the exactly-once tally: claim a double execution happened.
    let mut cooked = report.clone();
    cooked.net.double_applied = 1;
    let err = audit_cluster(&tracer, &cooked).expect_err("double execution must fail");
    assert!(
        err.to_string().contains("executed twice"),
        "unexpected audit failure: {err}"
    );
}

#[test]
fn chaos_runs_are_byte_identical() {
    let a = chaos_run(None).to_json().to_pretty();
    let b = chaos_run(None).to_json().to_pretty();
    assert_eq!(a, b, "identical configs must produce identical bytes");
    // The report carries the transport sections.
    assert!(a.contains("\"net\""));
    assert!(a.contains("\"links\""));
    assert!(a.contains("\"detector_events\""));
    assert!(a.contains("\"retransmits\""));
}
