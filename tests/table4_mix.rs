//! Table IV instruction-mix signatures: each kernel must exhibit the
//! qualitative mix the paper reports — the access-pattern DNA that
//! makes the performance results transfer (DESIGN.md's substitution
//! argument rests on this).

use eve_common::json::JsonValue;
use eve_isa::{Characterization, Interpreter};
use eve_workloads::Workload;

fn characterize(w: &Workload) -> Characterization {
    let built = w.build();
    let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
    let mut c = Characterization::new();
    while let Some(r) = i.step().expect("kernel runs") {
        c.record(&r);
    }
    c
}

#[test]
fn vvadd_is_pure_streaming() {
    let c = characterize(&Workload::vvadd(1024));
    assert_eq!(c.imul, 0);
    assert_eq!(c.indexed, 0);
    assert_eq!(c.const_stride, 0);
    assert_eq!(c.predicated, 0);
    assert!(c.unit_stride > 0);
    // Paper: ArInt 0.33 — one add per load-load-store triple.
    assert!((c.arithmetic_intensity() - 1.0 / 3.0).abs() < 0.05);
}

#[test]
fn mmult_is_multiply_heavy_and_compute_bound() {
    let c = characterize(&Workload::Mmult { n: 24 });
    assert!(c.imul > 0, "vmacc stream");
    // Paper: ArInt 2.0 — macc counts two math ops per loaded element
    // in their accounting; ours counts the fused op once per element
    // against one load, so the fused kernel lands at 1.0.
    assert!(c.arithmetic_intensity() >= 1.0);
    assert_eq!(c.indexed, 0);
}

#[test]
fn kmeans_has_strides_predication_and_gathers() {
    let c = characterize(&Workload::Kmeans {
        points: 128,
        features: 8,
        clusters: 3,
    });
    assert!(c.const_stride > 0, "feature columns are strided");
    assert!(c.predicated > 0, "min-select is predicated");
    assert!(c.indexed > 0, "centroid gather is indexed");
    assert!(c.imul > 0, "squared distances");
}

#[test]
fn pathfinder_is_the_predication_kernel() {
    let c = characterize(&Workload::Pathfinder { rows: 4, cols: 512 });
    let mix = c.mix_pct();
    let prd = mix[7];
    // The paper reports 25% (its accounting also counts the compare
    // feeding the select); our prd column counts the merge itself.
    assert!(prd > 5.0, "pathfinder must be predicated; got {prd:.0}%");
    assert_eq!(c.imul, 0);
    assert_eq!(c.indexed, 0);
}

#[test]
fn jacobi_carries_cross_element_work() {
    let c = characterize(&Workload::Jacobi2d { n: 32, steps: 1 });
    let mix = c.mix_pct();
    assert!(mix[3] > 5.0, "slides give jacobi its xe share: {mix:?}");
    assert!(c.imul > 0, "magic-multiply division by five");
}

#[test]
fn backprop_mixes_strides_with_multiplies() {
    let c = characterize(&Workload::Backprop {
        inputs: 512,
        hidden: 8,
    });
    assert!(c.const_stride > 0, "weight columns stride by hidden*4");
    assert!(c.imul > 0);
    assert!(c.xe > 0, "per-strip reductions");
}

#[test]
fn sw_walks_diagonals_with_merges_and_reductions() {
    let c = characterize(&Workload::Sw { n: 32 });
    assert!(c.const_stride > 0, "anti-diagonals are strided");
    assert!(c.predicated > 0, "match/mismatch select");
    assert!(c.xe > 0, "per-diagonal vredmax");
    assert_eq!(c.imul, 0);
}

#[test]
fn spmv_gathers_through_irregular_rows() {
    let c = characterize(&Workload::Spmv {
        rows: 24,
        cols: 64,
        max_nnz: 24,
    });
    assert!(c.indexed > 0, "x[col] arrives through a gather");
    assert!(c.imul > 0, "offset scaling and val*x products");
    assert!(c.xe > 0, "per-strip vredsum plus accumulator moves");
    assert!(c.unit_stride > 0, "col/val streams are unit-stride");
    assert_eq!(c.predicated, 0);
    assert_eq!(c.const_stride, 0);
}

#[test]
fn histogram_is_the_scatter_conflict_kernel() {
    let c = characterize(&Workload::Histogram { n: 256, bins: 32 });
    assert!(c.indexed > 0, "tag/count scatters and gathers");
    assert!(c.predicated > 0, "winners update under the mask");
    assert!(c.xe > 0, "vid lane tags and the active-lane vredsum");
    assert_eq!(c.imul, 0, "counting needs no multiplies");
    let mix = c.mix_pct();
    assert!(
        mix[6] > 15.0,
        "conflict loop should be gather/scatter heavy: {mix:?}"
    );
}

#[test]
fn blackscholes_is_compute_bound_with_a_moneyness_select() {
    let c = characterize(&Workload::Blackscholes { n: 300 });
    assert!(c.imul > 0, "m^2 and t*s products");
    assert!(c.predicated > 0, "in/out-of-the-money merge");
    assert_eq!(c.indexed, 0, "pure streaming access");
    assert_eq!(c.const_stride, 0);
    // ~11 math instructions against 4 memory instructions per strip:
    // the opposite roofline corner from vvadd's 0.33.
    assert!(
        c.arithmetic_intensity() > 2.0,
        "ArInt {:.2}",
        c.arithmetic_intensity()
    );
}

#[test]
fn scan_is_dominated_by_cross_element_traffic() {
    let c = characterize(&Workload::Scan { n: 260 });
    let mix = c.mix_pct();
    assert!(
        mix[3] > 20.0,
        "doubling ladder slides give scan its xe share: {mix:?}"
    );
    assert_eq!(c.imul, 0);
    assert_eq!(c.predicated, 0);
    assert_eq!(c.indexed, 0);
}

#[test]
fn all_kernels_are_heavily_vectorized() {
    // Paper: VO% 96-98 for every kernel at evaluation sizes (tiny
    // smoke inputs leave more scalar strip-loop overhead).
    for w in Workload::suite() {
        let c = characterize(&w);
        assert!(
            c.vector_op_pct() > 95.0,
            "{}: VO% = {:.1}",
            w.name(),
            c.vector_op_pct()
        );
    }
}

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/table4_second_wave.json"
);

const REGEN: &str = "EVE_UPDATE_FIXTURES=1 cargo test --test table4_mix";

fn mix_row(w: &Workload) -> (&'static str, JsonValue) {
    let c = characterize(w);
    (
        w.name(),
        JsonValue::object([
            ("dyn_insts", JsonValue::UInt(c.dyn_insts)),
            ("vector_insts", JsonValue::UInt(c.vector_insts)),
            ("ctrl", JsonValue::UInt(c.ctrl)),
            ("ialu", JsonValue::UInt(c.ialu)),
            ("imul", JsonValue::UInt(c.imul)),
            ("xe", JsonValue::UInt(c.xe)),
            ("unit_stride", JsonValue::UInt(c.unit_stride)),
            ("const_stride", JsonValue::UInt(c.const_stride)),
            ("indexed", JsonValue::UInt(c.indexed)),
            ("predicated", JsonValue::UInt(c.predicated)),
            ("math_ops", JsonValue::UInt(c.math_ops)),
            ("mem_ops", JsonValue::UInt(c.mem_ops)),
            (
                "arithmetic_intensity",
                JsonValue::Float(c.arithmetic_intensity()),
            ),
            ("vector_op_pct", JsonValue::Float(c.vector_op_pct())),
        ]),
    )
}

/// Golden mix table for the second-wave kernels at tiny sizes. The
/// exact instruction counts are a fingerprint of each kernel's code
/// generation *and* its seeded data (spmv's row lengths, histogram's
/// conflict multiplicity); any drift in either must surface here as a
/// conscious fixture regeneration.
#[test]
fn second_wave_mix_matches_the_checked_in_fixture() {
    let doc = JsonValue::object([
        mix_row(&Workload::Spmv {
            rows: 24,
            cols: 64,
            max_nnz: 24,
        }),
        mix_row(&Workload::Histogram { n: 256, bins: 32 }),
        mix_row(&Workload::Blackscholes { n: 300 }),
        mix_row(&Workload::Scan { n: 260 }),
    ]);
    let mut got = doc.to_pretty();
    got.push('\n');
    JsonValue::parse(&got).expect("snapshot parses");

    if std::env::var_os("EVE_UPDATE_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture writes");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|_| panic!("missing fixture {FIXTURE}; regenerate with: {REGEN}"));
    assert_eq!(
        got, want,
        "second-wave mix changed; if intentional, regenerate with: {REGEN}"
    );
}
