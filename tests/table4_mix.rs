//! Table IV instruction-mix signatures: each kernel must exhibit the
//! qualitative mix the paper reports — the access-pattern DNA that
//! makes the performance results transfer (DESIGN.md's substitution
//! argument rests on this).

use eve_isa::{Characterization, Interpreter};
use eve_workloads::Workload;

fn characterize(w: &Workload) -> Characterization {
    let built = w.build();
    let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
    let mut c = Characterization::new();
    while let Some(r) = i.step().expect("kernel runs") {
        c.record(&r);
    }
    c
}

#[test]
fn vvadd_is_pure_streaming() {
    let c = characterize(&Workload::vvadd(1024));
    assert_eq!(c.imul, 0);
    assert_eq!(c.indexed, 0);
    assert_eq!(c.const_stride, 0);
    assert_eq!(c.predicated, 0);
    assert!(c.unit_stride > 0);
    // Paper: ArInt 0.33 — one add per load-load-store triple.
    assert!((c.arithmetic_intensity() - 1.0 / 3.0).abs() < 0.05);
}

#[test]
fn mmult_is_multiply_heavy_and_compute_bound() {
    let c = characterize(&Workload::Mmult { n: 24 });
    assert!(c.imul > 0, "vmacc stream");
    // Paper: ArInt 2.0 — macc counts two math ops per loaded element
    // in their accounting; ours counts the fused op once per element
    // against one load, so the fused kernel lands at 1.0.
    assert!(c.arithmetic_intensity() >= 1.0);
    assert_eq!(c.indexed, 0);
}

#[test]
fn kmeans_has_strides_predication_and_gathers() {
    let c = characterize(&Workload::Kmeans {
        points: 128,
        features: 8,
        clusters: 3,
    });
    assert!(c.const_stride > 0, "feature columns are strided");
    assert!(c.predicated > 0, "min-select is predicated");
    assert!(c.indexed > 0, "centroid gather is indexed");
    assert!(c.imul > 0, "squared distances");
}

#[test]
fn pathfinder_is_the_predication_kernel() {
    let c = characterize(&Workload::Pathfinder { rows: 4, cols: 512 });
    let mix = c.mix_pct();
    let prd = mix[7];
    // The paper reports 25% (its accounting also counts the compare
    // feeding the select); our prd column counts the merge itself.
    assert!(prd > 5.0, "pathfinder must be predicated; got {prd:.0}%");
    assert_eq!(c.imul, 0);
    assert_eq!(c.indexed, 0);
}

#[test]
fn jacobi_carries_cross_element_work() {
    let c = characterize(&Workload::Jacobi2d { n: 32, steps: 1 });
    let mix = c.mix_pct();
    assert!(mix[3] > 5.0, "slides give jacobi its xe share: {mix:?}");
    assert!(c.imul > 0, "magic-multiply division by five");
}

#[test]
fn backprop_mixes_strides_with_multiplies() {
    let c = characterize(&Workload::Backprop {
        inputs: 512,
        hidden: 8,
    });
    assert!(c.const_stride > 0, "weight columns stride by hidden*4");
    assert!(c.imul > 0);
    assert!(c.xe > 0, "per-strip reductions");
}

#[test]
fn sw_walks_diagonals_with_merges_and_reductions() {
    let c = characterize(&Workload::Sw { n: 32 });
    assert!(c.const_stride > 0, "anti-diagonals are strided");
    assert!(c.predicated > 0, "match/mismatch select");
    assert!(c.xe > 0, "per-diagonal vredmax");
    assert_eq!(c.imul, 0);
}

#[test]
fn all_kernels_are_heavily_vectorized() {
    // Paper: VO% 96-98 for every kernel at evaluation sizes (tiny
    // smoke inputs leave more scalar strip-loop overhead).
    for w in Workload::suite() {
        let c = characterize(&w);
        assert!(
            c.vector_op_pct() > 95.0,
            "{}: VO% = {:.1}",
            w.name(),
            c.vector_op_pct()
        );
    }
}
