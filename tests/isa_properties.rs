//! Seeded-fuzz tests on the kernel-IR interpreter: vector semantics
//! against plain Rust, strip-mining invariance, and the
//! characterization accounting identity. All randomness is drawn from
//! fixed-seed [`SplitMix64`] streams, so failures reproduce exactly.

use eve_common::SplitMix64;
use eve_isa::{vreg, xreg, Asm, Characterization, Interpreter, Memory, RedOp, VArithOp, VOperand};

/// Applies one vector op elementwise through the interpreter.
fn interp_vop(op: VArithOp, a: &[u32], b: &[u32]) -> Vec<u32> {
    let n = a.len();
    let mut mem = Memory::new(0x8000);
    mem.store_u32_slice(0x1000, a);
    mem.store_u32_slice(0x2000, b);
    let mut s = Asm::new();
    s.li(xreg::A0, n as i64);
    s.setvl(xreg::T0, xreg::A0);
    s.li(xreg::A1, 0x1000);
    s.vload(vreg::V1, xreg::A1);
    s.li(xreg::A2, 0x2000);
    s.vload(vreg::V2, xreg::A2);
    s.vop(op, vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
    s.li(xreg::A3, 0x3000);
    s.vstore(vreg::V3, xreg::A3);
    s.halt();
    let mut i = Interpreter::new(s.assemble().unwrap(), mem, n as u32);
    i.run_to_halt().unwrap();
    i.memory().load_u32_slice(0x3000, n)
}

fn golden(op: VArithOp, a: u32, b: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    match op {
        VArithOp::Add => a.wrapping_add(b),
        VArithOp::Sub => a.wrapping_sub(b),
        VArithOp::Mul => a.wrapping_mul(b),
        VArithOp::And => a & b,
        VArithOp::Xor => a ^ b,
        VArithOp::Min => ai.min(bi) as u32,
        VArithOp::Maxu => a.max(b),
        VArithOp::Srl => a >> (b & 31),
        _ => unreachable!("not exercised here"),
    }
}

#[test]
fn vector_ops_match_scalar_semantics() {
    let mut rng = SplitMix64::new(0x15A_0001);
    for _ in 0..12 {
        let len = 1 + rng.below(31) as usize;
        let a: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let seed = rng.next_u32();
        let b: Vec<u32> = a.iter().map(|x| x.wrapping_mul(seed | 1)).collect();
        for op in [
            VArithOp::Add,
            VArithOp::Sub,
            VArithOp::Mul,
            VArithOp::And,
            VArithOp::Xor,
            VArithOp::Min,
            VArithOp::Maxu,
            VArithOp::Srl,
        ] {
            let got = interp_vop(op, &a, &b);
            let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| golden(op, x, y)).collect();
            assert_eq!(got, want, "{op:?}");
        }
    }
}

/// vvadd through strip-mining produces identical memory for any
/// hardware vector length — binaries are VL-portable.
#[test]
fn strip_mining_is_vl_invariant() {
    let mut rng = SplitMix64::new(0x15A_0002);
    for _ in 0..6 {
        let n = 5 + rng.below(95) as usize;
        // Reuse the real workload generator for a faithful binary.
        let built = eve_workloads::Workload::vvadd(n).build();
        let reference = {
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 3);
            i.run_to_halt().unwrap();
            built.verify(i.memory()).expect("golden verification");
            i.memory().clone()
        };
        for hw_vl in [1u32, 7, 64, 1000] {
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
            i.run_to_halt().unwrap();
            assert_eq!(i.memory(), &reference, "hw_vl {hw_vl}");
        }
    }
}

/// Reductions agree with a sequential fold for every RedOp.
#[test]
fn reductions_match_folds() {
    let mut rng = SplitMix64::new(0x15A_0003);
    for _ in 0..10 {
        let n = 1 + rng.below(63) as usize;
        let values: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let init = rng.next_u32();
        let mut mem = Memory::new(0x8000);
        mem.store_u32_slice(0x1000, &values);
        for (op, f) in [
            (
                RedOp::Sum,
                (|acc: u32, x: u32| acc.wrapping_add(x)) as fn(u32, u32) -> u32,
            ),
            (RedOp::Minu, |acc, x| acc.min(x)),
            (RedOp::Maxu, |acc, x| acc.max(x)),
            (RedOp::Min, |acc, x| (acc as i32).min(x as i32) as u32),
            (RedOp::Max, |acc, x| (acc as i32).max(x as i32) as u32),
        ] {
            let mut s = Asm::new();
            s.li(xreg::A0, n as i64);
            s.setvl(xreg::T0, xreg::A0);
            s.li(xreg::A1, 0x1000);
            s.vload(vreg::V1, xreg::A1);
            s.li(xreg::T1, i64::from(init as i32));
            s.vmv_sx(vreg::V2, xreg::T1);
            s.vred(op, vreg::V3, vreg::V1, vreg::V2);
            s.vmv_xs(xreg::T2, vreg::V3);
            s.li(xreg::A2, 0x4000);
            s.sw(xreg::T2, xreg::A2, 0);
            s.halt();
            let mut i = Interpreter::new(s.assemble().unwrap(), mem.clone(), n as u32);
            i.run_to_halt().unwrap();
            let got = i.memory().load_u32(0x4000);
            let want = values.iter().fold(init, |acc, &x| f(acc, x));
            assert_eq!(got, want, "{op:?}");
        }
    }
}

/// Characterization identity: disjoint class counts sum to the
/// vector instruction count, and ops >= dynamic instructions.
#[test]
fn characterization_identities() {
    let mut rng = SplitMix64::new(0x15A_0004);
    for _ in 0..8 {
        let n = 1 + rng.below(299) as usize;
        let built = eve_workloads::Workload::vvadd(n).build();
        let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
        let mut c = Characterization::new();
        while let Some(r) = i.step().unwrap() {
            c.record(&r);
        }
        let class_sum =
            c.ctrl + c.ialu + c.imul + c.xe + c.unit_stride + c.const_stride + c.indexed;
        assert_eq!(class_sum, c.vector_insts);
        assert!(c.ops >= c.dyn_insts);
        assert!(c.vector_ops <= c.ops);
    }
}

/// One uniformly random instruction covering every [`Inst`] variant,
/// operand mode, and mask flag.
#[allow(clippy::too_many_lines)]
fn random_inst(rng: &mut SplitMix64) -> eve_isa::Inst {
    use eve_isa::{BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VCmpCond, VStride};
    let x = |rng: &mut SplitMix64| eve_isa::Xreg::new(rng.below(32) as u8);
    let v = |rng: &mut SplitMix64| eve_isa::Vreg::new(rng.below(32) as u8);
    let rhs = |rng: &mut SplitMix64| match rng.below(3) {
        0 => VOperand::Reg(v(rng)),
        1 => VOperand::Scalar(x(rng)),
        _ => VOperand::Imm(rng.next_u32() as i32),
    };
    let sop = |rng: &mut SplitMix64| {
        [
            ScalarOp::Add,
            ScalarOp::Sub,
            ScalarOp::Mul,
            ScalarOp::Div,
            ScalarOp::Rem,
            ScalarOp::And,
            ScalarOp::Or,
            ScalarOp::Xor,
            ScalarOp::Sll,
            ScalarOp::Srl,
            ScalarOp::Sra,
            ScalarOp::Slt,
            ScalarOp::Sltu,
        ][rng.below(13) as usize]
    };
    let width = |rng: &mut SplitMix64| {
        [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D][rng.below(4) as usize]
    };
    let stride = |rng: &mut SplitMix64| match rng.below(3) {
        0 => VStride::Unit,
        1 => VStride::Strided(x(rng)),
        _ => VStride::Indexed(v(rng)),
    };
    match rng.below(22) {
        0 => Inst::Li {
            rd: x(rng),
            imm: rng.next_u64() as i64,
        },
        1 => Inst::Op {
            op: sop(rng),
            rd: x(rng),
            rs1: x(rng),
            rs2: x(rng),
        },
        2 => Inst::OpImm {
            op: sop(rng),
            rd: x(rng),
            rs1: x(rng),
            imm: rng.next_u32() as i32 as i64,
        },
        3 => Inst::Load {
            width: width(rng),
            rd: x(rng),
            base: x(rng),
            offset: rng.next_u32() as i32 as i64,
        },
        4 => Inst::Store {
            width: width(rng),
            src: x(rng),
            base: x(rng),
            offset: rng.next_u32() as i32 as i64,
        },
        5 => Inst::Branch {
            cond: [
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ][rng.below(6) as usize],
            rs1: x(rng),
            rs2: x(rng),
            target: rng.next_u32(),
        },
        6 => Inst::Jump {
            target: rng.next_u32(),
        },
        7 => Inst::Halt,
        8 => Inst::SetVl {
            rd: x(rng),
            avl: x(rng),
        },
        9 => Inst::VMFence,
        10 => Inst::VLoad {
            vd: v(rng),
            base: x(rng),
            stride: stride(rng),
            masked: rng.chance(0.5),
        },
        11 => Inst::VStore {
            vs: v(rng),
            base: x(rng),
            stride: stride(rng),
            masked: rng.chance(0.5),
        },
        12 => Inst::VOp {
            op: [
                VArithOp::Add,
                VArithOp::Sub,
                VArithOp::Rsub,
                VArithOp::Mul,
                VArithOp::Macc,
                VArithOp::Mulh,
                VArithOp::Mulhu,
                VArithOp::Div,
                VArithOp::Divu,
                VArithOp::Rem,
                VArithOp::Remu,
                VArithOp::And,
                VArithOp::Or,
                VArithOp::Xor,
                VArithOp::Sll,
                VArithOp::Srl,
                VArithOp::Sra,
                VArithOp::Min,
                VArithOp::Max,
                VArithOp::Minu,
                VArithOp::Maxu,
            ][rng.below(21) as usize],
            vd: v(rng),
            vs1: v(rng),
            rhs: rhs(rng),
            masked: rng.chance(0.5),
        },
        13 => Inst::VCmp {
            cond: [
                VCmpCond::Eq,
                VCmpCond::Ne,
                VCmpCond::Lt,
                VCmpCond::Ltu,
                VCmpCond::Le,
                VCmpCond::Leu,
                VCmpCond::Gt,
                VCmpCond::Gtu,
            ][rng.below(8) as usize],
            vd: v(rng),
            vs1: v(rng),
            rhs: rhs(rng),
        },
        14 => Inst::VMerge {
            vd: v(rng),
            vs1: v(rng),
            rhs: rhs(rng),
        },
        15 => {
            let op = [
                MaskOp::And,
                MaskOp::Or,
                MaskOp::Xor,
                MaskOp::AndNot,
                MaskOp::Not,
            ][rng.below(5) as usize];
            let m1 = v(rng);
            // `vmnot.m` prints no second source, so its textual form
            // cannot carry an independent m2; pin it to m1.
            let m2 = if op == MaskOp::Not { m1 } else { v(rng) };
            Inst::VMask {
                op,
                md: v(rng),
                m1,
                m2,
            }
        }
        16 => Inst::VMv {
            vd: v(rng),
            rhs: rhs(rng),
        },
        17 => Inst::VMvXS {
            rd: x(rng),
            vs: v(rng),
        },
        18 => Inst::VMvSX {
            vd: v(rng),
            rs: x(rng),
        },
        19 => Inst::VRed {
            op: [RedOp::Sum, RedOp::Min, RedOp::Max, RedOp::Minu, RedOp::Maxu]
                [rng.below(5) as usize],
            vd: v(rng),
            vs2: v(rng),
            vs1: v(rng),
        },
        20 => Inst::VSlide {
            vd: v(rng),
            vs: v(rng),
            amount: x(rng),
            up: rng.chance(0.5),
        },
        _ => match rng.below(2) {
            0 => Inst::VRGather {
                vd: v(rng),
                vs: v(rng),
                idx: v(rng),
            },
            _ => Inst::VId { vd: v(rng) },
        },
    }
}

/// Every instruction's textual form parses back to the identical IR —
/// `parse_inst` is the exact inverse of `Display` across the whole
/// operand space.
#[test]
fn disassembly_round_trips_through_the_parser() {
    let mut rng = SplitMix64::new(0x15A_0005);
    for i in 0..2000 {
        let inst = random_inst(&mut rng);
        let text = inst.to_string();
        let back = eve_isa::parse_inst(&text)
            .unwrap_or_else(|e| panic!("iteration {i}: `{text}` failed to parse: {e}"));
        assert_eq!(back, inst, "iteration {i}: `{text}` reparsed differently");
        // And the reparse prints byte-identically (fixed point).
        assert_eq!(back.to_string(), text, "iteration {i}");
    }
}

/// Whole listings survive the disasm -> parse_program trip, line
/// numbers and all.
#[test]
fn listings_round_trip_through_the_parser() {
    let mut rng = SplitMix64::new(0x15A_0006);
    for _ in 0..20 {
        let n = 1 + rng.below(299) as usize;
        let built = eve_workloads::Workload::vvadd(n).build();
        for prog in [&built.scalar, &built.vector] {
            let text = eve_isa::disasm(prog);
            let parsed = eve_isa::parse_program(&text).unwrap();
            assert_eq!(parsed, prog.insts());
        }
    }
}
