//! Seeded-fuzz tests on the kernel-IR interpreter: vector semantics
//! against plain Rust, strip-mining invariance, and the
//! characterization accounting identity. All randomness is drawn from
//! fixed-seed [`SplitMix64`] streams, so failures reproduce exactly.

use eve_common::SplitMix64;
use eve_isa::{vreg, xreg, Asm, Characterization, Interpreter, Memory, RedOp, VArithOp, VOperand};

/// Applies one vector op elementwise through the interpreter.
fn interp_vop(op: VArithOp, a: &[u32], b: &[u32]) -> Vec<u32> {
    let n = a.len();
    let mut mem = Memory::new(0x8000);
    mem.store_u32_slice(0x1000, a);
    mem.store_u32_slice(0x2000, b);
    let mut s = Asm::new();
    s.li(xreg::A0, n as i64);
    s.setvl(xreg::T0, xreg::A0);
    s.li(xreg::A1, 0x1000);
    s.vload(vreg::V1, xreg::A1);
    s.li(xreg::A2, 0x2000);
    s.vload(vreg::V2, xreg::A2);
    s.vop(op, vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
    s.li(xreg::A3, 0x3000);
    s.vstore(vreg::V3, xreg::A3);
    s.halt();
    let mut i = Interpreter::new(s.assemble().unwrap(), mem, n as u32);
    i.run_to_halt().unwrap();
    i.memory().load_u32_slice(0x3000, n)
}

fn golden(op: VArithOp, a: u32, b: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    match op {
        VArithOp::Add => a.wrapping_add(b),
        VArithOp::Sub => a.wrapping_sub(b),
        VArithOp::Mul => a.wrapping_mul(b),
        VArithOp::And => a & b,
        VArithOp::Xor => a ^ b,
        VArithOp::Min => ai.min(bi) as u32,
        VArithOp::Maxu => a.max(b),
        VArithOp::Srl => a >> (b & 31),
        _ => unreachable!("not exercised here"),
    }
}

#[test]
fn vector_ops_match_scalar_semantics() {
    let mut rng = SplitMix64::new(0x15A_0001);
    for _ in 0..12 {
        let len = 1 + rng.below(31) as usize;
        let a: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let seed = rng.next_u32();
        let b: Vec<u32> = a.iter().map(|x| x.wrapping_mul(seed | 1)).collect();
        for op in [
            VArithOp::Add,
            VArithOp::Sub,
            VArithOp::Mul,
            VArithOp::And,
            VArithOp::Xor,
            VArithOp::Min,
            VArithOp::Maxu,
            VArithOp::Srl,
        ] {
            let got = interp_vop(op, &a, &b);
            let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| golden(op, x, y)).collect();
            assert_eq!(got, want, "{op:?}");
        }
    }
}

/// vvadd through strip-mining produces identical memory for any
/// hardware vector length — binaries are VL-portable.
#[test]
fn strip_mining_is_vl_invariant() {
    let mut rng = SplitMix64::new(0x15A_0002);
    for _ in 0..6 {
        let n = 5 + rng.below(95) as usize;
        // Reuse the real workload generator for a faithful binary.
        let built = eve_workloads::Workload::vvadd(n).build();
        let reference = {
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 3);
            i.run_to_halt().unwrap();
            built.verify(i.memory()).expect("golden verification");
            i.memory().clone()
        };
        for hw_vl in [1u32, 7, 64, 1000] {
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
            i.run_to_halt().unwrap();
            assert_eq!(i.memory(), &reference, "hw_vl {hw_vl}");
        }
    }
}

/// Reductions agree with a sequential fold for every RedOp.
#[test]
fn reductions_match_folds() {
    let mut rng = SplitMix64::new(0x15A_0003);
    for _ in 0..10 {
        let n = 1 + rng.below(63) as usize;
        let values: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let init = rng.next_u32();
        let mut mem = Memory::new(0x8000);
        mem.store_u32_slice(0x1000, &values);
        for (op, f) in [
            (
                RedOp::Sum,
                (|acc: u32, x: u32| acc.wrapping_add(x)) as fn(u32, u32) -> u32,
            ),
            (RedOp::Minu, |acc, x| acc.min(x)),
            (RedOp::Maxu, |acc, x| acc.max(x)),
            (RedOp::Min, |acc, x| (acc as i32).min(x as i32) as u32),
            (RedOp::Max, |acc, x| (acc as i32).max(x as i32) as u32),
        ] {
            let mut s = Asm::new();
            s.li(xreg::A0, n as i64);
            s.setvl(xreg::T0, xreg::A0);
            s.li(xreg::A1, 0x1000);
            s.vload(vreg::V1, xreg::A1);
            s.li(xreg::T1, i64::from(init as i32));
            s.vmv_sx(vreg::V2, xreg::T1);
            s.vred(op, vreg::V3, vreg::V1, vreg::V2);
            s.vmv_xs(xreg::T2, vreg::V3);
            s.li(xreg::A2, 0x4000);
            s.sw(xreg::T2, xreg::A2, 0);
            s.halt();
            let mut i = Interpreter::new(s.assemble().unwrap(), mem.clone(), n as u32);
            i.run_to_halt().unwrap();
            let got = i.memory().load_u32(0x4000);
            let want = values.iter().fold(init, |acc, &x| f(acc, x));
            assert_eq!(got, want, "{op:?}");
        }
    }
}

/// Characterization identity: disjoint class counts sum to the
/// vector instruction count, and ops >= dynamic instructions.
#[test]
fn characterization_identities() {
    let mut rng = SplitMix64::new(0x15A_0004);
    for _ in 0..8 {
        let n = 1 + rng.below(299) as usize;
        let built = eve_workloads::Workload::vvadd(n).build();
        let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
        let mut c = Characterization::new();
        while let Some(r) = i.step().unwrap() {
            c.record(&r);
        }
        let class_sum =
            c.ctrl + c.ialu + c.imul + c.xe + c.unit_stride + c.const_stride + c.indexed;
        assert_eq!(class_sum, c.vector_insts);
        assert!(c.ops >= c.dyn_insts);
        assert!(c.vector_ops <= c.ops);
    }
}
