//! Property tests for the two serving-layer controllers: the
//! degradation [`Ladder`] and the [`ElasticController`]. Both promise
//! the same kind of safety — hysteresis-bounded, one-step-at-a-time
//! state machines that cannot flap no matter what the metrics do — so
//! both are driven here with seeded random metric streams and checked
//! against the invariants directly, not against golden outputs:
//!
//! * the ladder moves at most one rung per transition, never outside
//!   the four levels, and consecutive transitions respect the dwell;
//! * the elastic controller respects its per-shard dwell, keeps every
//!   shard inside `[min_engines, max_engines]`, never overlaps two
//!   reconfigurations on a shard, resolves every start exactly once,
//!   and never exceeds the cluster-wide thrash budget in any
//!   half-window interval (half, because the budget window is an
//!   8-bucket ring whose guarantee is exact only over the trailing
//!   seven-and-a-bit buckets — the same conservative bound
//!   `audit_cluster` checks).

use eve::serve::{
    ElasticAction, ElasticController, ElasticEvent, ElasticEventKind, ElasticPolicy, Ladder,
    LadderPolicy, ServiceLevel, ShardSignal,
};
use eve_common::SplitMix64;

const SEEDS: u64 = 40;

#[test]
fn ladder_moves_one_rung_at_a_time_under_any_metric_stream() {
    let policy = LadderPolicy {
        window: 8_000,
        dwell: 3_000,
        ..LadderPolicy::default()
    };
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xADDE_0000 + seed);
        let mut ladder = Ladder::new(policy);
        let mut now = 0u64;
        for _ in 0..500 {
            now += rng.below(1_200);
            // Random pressure: dispatches with random failure odds,
            // random backlog and unavailability.
            ladder.observe_dispatch(now);
            if rng.chance(0.4) {
                ladder.observe_failure(now);
            }
            let backlog = rng.next_f64();
            let unavailable = rng.next_f64();
            let level_before = ladder.level();
            let ev = ladder.evaluate(now, backlog, unavailable);
            if let Some(ev) = ev {
                assert_eq!(ev.from, level_before, "seed {seed}: event from-level");
                assert_eq!(ev.to, ladder.level(), "seed {seed}: event to-level");
                assert_eq!(
                    (ev.from as i64 - ev.to as i64).abs(),
                    1,
                    "seed {seed}: jumped more than one rung: {ev:?}"
                );
            }
        }
        // Dwell: consecutive transitions are separated by >= dwell.
        for pair in ladder.events().windows(2) {
            assert!(
                pair[1].at >= pair[0].at + policy.dwell,
                "seed {seed}: transitions {pair:?} violate the dwell"
            );
        }
        // The walk is connected: each event starts where the last ended.
        for pair in ladder.events().windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "seed {seed}: teleported");
        }
        // Time accounting covers the run exactly, whatever happened.
        let t = ladder.finish(now);
        assert_eq!(t.iter().sum::<u64>(), now, "seed {seed}: lost time");
    }
}

#[test]
fn ladder_recovers_to_full_when_pressure_clears() {
    // Whatever state a random storm leaves the ladder in, a long calm
    // stretch must walk it all the way back to Full — recovery is a
    // liveness property of the same hysteresis machinery.
    let policy = LadderPolicy {
        window: 8_000,
        dwell: 1_000,
        ..LadderPolicy::default()
    };
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xCA1F_0000 + seed);
        let mut ladder = Ladder::new(policy);
        let mut now = 0u64;
        for _ in 0..300 {
            now += rng.below(800);
            ladder.observe_dispatch(now);
            if rng.chance(0.7) {
                ladder.observe_failure(now);
            }
            ladder.evaluate(now, rng.next_f64(), rng.next_f64());
        }
        for _ in 0..300 {
            now += 700;
            ladder.observe_dispatch(now);
            ladder.evaluate(now, 0.0, 0.0);
        }
        assert_eq!(
            ladder.level(),
            ServiceLevel::Full,
            "seed {seed}: calm traffic did not recover the ladder"
        );
        assert_eq!(ladder.step_downs(), ladder.step_ups(), "seed {seed}");
    }
}

/// The harness's view of one shard mid-run: a pending reconfiguration
/// is `(resolve_at, action)`.
type Pending = Option<(u64, ElasticAction)>;

#[test]
fn elastic_controller_invariants_hold_under_random_pressure() {
    let policy = ElasticPolicy {
        enabled: true,
        min_engines: 1,
        max_engines: 4,
        scale_up_backlog: 0.5,
        scale_down_backlog: 0.05,
        window: 16_000,
        dwell: 2_000,
        max_reconfigs_per_window: 3,
    };
    let shards = 3usize;
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xE1A5_0000 + seed);
        let mut ctl = ElasticController::new(policy, shards);
        let mut active = vec![2usize; shards];
        let mut pending: Vec<Pending> = vec![None; shards];
        let mut now = 0u64;
        for _ in 0..600 {
            now += 1 + rng.below(1_500);
            for s in 0..shards {
                // Resolve a due reconfiguration; 20% of the time the
                // harness forces the rollback path.
                if let Some((ready, action)) = pending[s] {
                    if now >= ready {
                        let ok = rng.chance(0.8);
                        let kind = match (action, ok) {
                            (ElasticAction::Spawn, true) => {
                                active[s] += 1;
                                ElasticEventKind::SpawnCommit
                            }
                            (ElasticAction::Spawn, false) => ElasticEventKind::SpawnRollback,
                            (ElasticAction::Retire, true) => {
                                active[s] -= 1;
                                ElasticEventKind::RetireCommit
                            }
                            (ElasticAction::Retire, false) => ElasticEventKind::RetireRollback,
                        };
                        ctl.record(ElasticEvent {
                            at: now,
                            shard: s,
                            kind,
                            active_after: active[s],
                        });
                        pending[s] = None;
                    }
                }
                let signal = ShardSignal {
                    backlog: rng.next_f64(),
                    active: active[s],
                    spawning: usize::from(matches!(pending[s], Some((_, ElasticAction::Spawn)))),
                    draining: usize::from(matches!(pending[s], Some((_, ElasticAction::Retire)))),
                };
                if let Some(action) = ctl.decide(now, s, &signal) {
                    assert!(
                        pending[s].is_none(),
                        "seed {seed}: overlapped reconfigurations on shard {s}"
                    );
                    let kind = match action {
                        ElasticAction::Spawn => ElasticEventKind::SpawnStart,
                        ElasticAction::Retire => ElasticEventKind::RetireStart,
                    };
                    ctl.record(ElasticEvent {
                        at: now,
                        shard: s,
                        kind,
                        active_after: active[s],
                    });
                    pending[s] = Some((now + 1 + rng.below(3_000), action));
                }
                assert!(
                    (policy.min_engines..=policy.max_engines).contains(&active[s]),
                    "seed {seed}: shard {s} left [min, max]: {} engines",
                    active[s]
                );
            }
        }
        let events = ctl.events();
        // Per-shard dwell between consecutive starts.
        for s in 0..shards {
            let starts: Vec<u64> = events
                .iter()
                .filter(|e| e.shard == s && e.kind.is_start())
                .map(|e| e.at)
                .collect();
            for pair in starts.windows(2) {
                assert!(
                    pair[1] >= pair[0] + policy.dwell,
                    "seed {seed}: shard {s} starts {pair:?} inside the dwell"
                );
            }
        }
        // Thrash guard: no half-window interval holds more starts than
        // the cluster budget.
        let starts: Vec<u64> = events
            .iter()
            .filter(|e| e.kind.is_start())
            .map(|e| e.at)
            .collect();
        let half = policy.window / 2;
        for &t in &starts {
            let burst = starts
                .iter()
                .filter(|&&u| u <= t && t.saturating_sub(u) < half)
                .count() as u64;
            assert!(
                burst <= policy.max_reconfigs_per_window,
                "seed {seed}: {burst} starts inside a half window ending at {t}"
            );
        }
        // Every start resolves exactly once (bar at most one pending
        // reconfiguration per shard at the horizon).
        let unresolved = pending.iter().filter(|p| p.is_some()).count() as u64;
        assert_eq!(
            starts.len() as u64,
            ctl.spawns()
                + ctl.retires()
                + ctl.spawn_rollbacks()
                + ctl.retire_rollbacks()
                + unresolved,
            "seed {seed}: starts and resolutions do not reconcile"
        );
    }
}

#[test]
fn elastic_controller_is_deterministic_per_seed() {
    // Same seed, same stream of decisions and events — the controller
    // holds no hidden clock or RNG of its own.
    let policy = ElasticPolicy {
        enabled: true,
        dwell: 1_000,
        window: 8_000,
        ..ElasticPolicy::default()
    };
    let run = |seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let mut ctl = ElasticController::new(policy, 2);
        let mut now = 0;
        for _ in 0..400 {
            now += 1 + rng.below(900);
            for s in 0..2 {
                let signal = ShardSignal {
                    backlog: rng.next_f64(),
                    active: 2,
                    spawning: 0,
                    draining: 0,
                };
                if let Some(action) = ctl.decide(now, s, &signal) {
                    let kind = match action {
                        ElasticAction::Spawn => ElasticEventKind::SpawnStart,
                        ElasticAction::Retire => ElasticEventKind::RetireStart,
                    };
                    ctl.record(ElasticEvent {
                        at: now,
                        shard: s,
                        kind,
                        active_after: 2,
                    });
                }
            }
        }
        ctl.events().to_vec()
    };
    let a = run(77);
    assert!(!a.is_empty(), "stream produced no decisions at all");
    assert_eq!(a, run(77));
    assert_ne!(a, run(78), "seed ignored");
}
