//! The elastic-reconfiguration acceptance scenario from the ISSUE:
//! phased traffic (scalar-heavy lead → vector burst → scalar-heavy
//! tail) with an engine failure landing *mid-spawn-warmup*. The
//! controller must scale up under the burst, roll the failed spawn
//! back (ways return to the cache, the slot re-parks), fail work over
//! along the existing ring-walk, then scale back down over the quiet
//! tail — all while the run clears the availability floor with zero
//! SDCs, zero dropped or double-run requests (the cluster audit's
//! conservation identities now span reconfiguration events), a
//! reconfiguration count inside the thrash bound, and byte-identical
//! reports across reruns.
//!
//! The mid-warmup kill is aimed deterministically: a storm-free probe
//! run finds the first `spawn_start`, and the real runs kill the slot
//! that spawn targets halfway through its (deliberately long) warmup
//! flush. Everything before the kill instant is identical between the
//! probe and the real runs, so the spawn is guaranteed to be in
//! flight when the failure lands.

use eve::serve::{
    audit_cluster, tenant_mix, ClusterConfig, ClusterReport, ClusterSim, ClusterTraffic,
    ElasticEventKind, ElasticPolicy, FaultStorm, ServiceProfile, StormEvent, StormEventKind,
    TrafficShape,
};
use eve_obs::Tracer;

const SHARDS: usize = 2;
const ENGINES_PER_SHARD: usize = 1;
const MAX_ENGINES: usize = 3;
/// Long enough that "mid-warmup" is a wide, unmissable target.
const SPAWN_FLUSH: u64 = 40_000;

fn acceptance_config() -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        engines_per_shard: ENGINES_PER_SHARD,
        elastic: ElasticPolicy {
            enabled: true,
            min_engines: 1,
            max_engines: MAX_ENGINES,
            scale_up_backlog: 0.20,
            scale_down_backlog: 0.05,
            dwell: 4_000,
            ..ElasticPolicy::default()
        },
        seed: 11,
        ..ClusterConfig::default()
    }
}

fn acceptance_traffic() -> ClusterTraffic {
    ClusterTraffic {
        requests: 1_600,
        mean_gap: 600,
        deadline_slack: 12.0,
        tenants: tenant_mix(3),
        shape: TrafficShape::Phased {
            lead: 400,
            burst: 600,
            gain: 4,
        },
        seed: 0x7E57,
        ..ClusterTraffic::default()
    }
}

fn acceptance_profile() -> ServiceProfile {
    let mut p = ServiceProfile::synthetic(3, 1_000, 4_000, MAX_ENGINES);
    p.spawn_flush_cycles = SPAWN_FLUSH;
    p
}

fn run(storm: FaultStorm, tracer: Option<&Tracer>) -> ClusterReport {
    let sim = ClusterSim::new(
        acceptance_config(),
        acceptance_profile(),
        acceptance_traffic(),
        storm,
    )
    .expect("valid acceptance setup");
    match tracer {
        Some(t) => sim.with_tracer(t).run(),
        None => sim.run(),
    }
}

/// The acceptance storm: a probe run (no faults) locates the first
/// spawn start; the storm kills that spawn's target slot halfway
/// through its warmup and revives it well after the burst.
fn acceptance_storm() -> FaultStorm {
    let probe = run(FaultStorm::none(), None);
    let first_spawn = probe
        .elastic_events
        .iter()
        .find(|e| e.kind == ElasticEventKind::SpawnStart)
        .expect("the burst must trigger a spawn in the probe run");
    // `start_spawn` targets the first parked slot, which on a
    // 1-engine-per-shard shard is always slot 1.
    let slots = acceptance_config().slots_per_shard();
    let target = first_spawn.shard * slots + ENGINES_PER_SHARD;
    let kill_at = first_spawn.at + SPAWN_FLUSH / 2;
    FaultStorm {
        events: vec![
            StormEvent {
                at: kill_at,
                engine: target,
                kind: StormEventKind::Kill,
            },
            StormEvent {
                at: kill_at + 300_000,
                engine: target,
                kind: StormEventKind::Recover,
            },
        ],
    }
}

#[test]
fn phased_burst_with_a_mid_warmup_kill_meets_the_acceptance_floor() {
    let tracer = Tracer::new();
    let report = run(acceptance_storm(), Some(&tracer));

    // The controller scaled up under the burst and back down after.
    assert!(report.elastic_spawns >= 1, "burst never spawned an engine");
    assert!(report.elastic_retires >= 1, "quiet tail never retired one");
    // The mid-warmup kill rolled the spawn back instead of committing
    // a dead engine.
    assert!(
        report.elastic_spawn_rollbacks >= 1,
        "killed warmup must roll back, events: {:?}",
        report.elastic_events
    );
    // Every shard ends inside the policy bounds, ledger balanced.
    for s in &report.shards_detail {
        assert!((1..=MAX_ENGINES as u64).contains(&s.final_active));
        assert_eq!(
            s.final_active + s.retires,
            ENGINES_PER_SHARD as u64 + s.spawns
        );
    }

    // Availability floor with zero silent corruptions, and no request
    // dropped or double-run: conservation is per-tenant exact.
    assert!(
        report.availability >= 0.99,
        "availability {} under the phased burst",
        report.availability
    );
    assert_eq!(report.sdc, 0, "checked cluster must not leak SDCs");
    for t in &report.tenants {
        assert_eq!(t.completed, t.admitted, "tenant {} leaked", t.name);
        assert_eq!(t.arrivals, t.admitted + t.shed, "tenant {} books", t.name);
    }

    // Reconfiguration stayed inside the thrash bound: no half-window
    // interval holds more starts than the cluster budget (the same
    // bound the audit replays).
    let starts: Vec<u64> = report
        .elastic_events
        .iter()
        .filter(|e| e.kind.is_start())
        .map(|e| e.at)
        .collect();
    assert!(!starts.is_empty());
    let half = (report.elastic_window / 2).max(1);
    for &t in &starts {
        let burst = starts
            .iter()
            .filter(|&&u| u <= t && t.saturating_sub(u) < half)
            .count() as u64;
        assert!(
            burst <= report.elastic_max_per_window,
            "{burst} reconfig starts inside a half window"
        );
    }

    // The full replay audit holds across the reconfigurations.
    let summary = audit_cluster(&tracer, &report).expect("audit passes");
    assert!(summary.events > 0);
    assert!(
        summary.identities > 20,
        "audit must check the full identity set, got {}",
        summary.identities
    );
}

#[test]
fn elastic_acceptance_runs_are_byte_identical() {
    let storm = acceptance_storm();
    let a = run(storm.clone(), None).to_json().to_pretty();
    let b = run(storm, None).to_json().to_pretty();
    assert_eq!(a, b, "identical configs must produce identical bytes");
    assert!(a.contains("\"elastic_events\""));
    assert!(a.contains("\"spawn_rollback\""));
}

#[test]
fn the_scalar_side_feels_engine_cache_pressure() {
    // Same trace, elastic off: the static partition never scales, so
    // the burst must hurt more — lower availability or more deadline
    // misses — while the elastic run pays for its scaling with
    // fallback requests priced under the scalar-slowdown multiplier.
    let elastic = run(acceptance_storm(), None);
    let mut cfg = acceptance_config();
    cfg.elastic.enabled = false;
    let static_run = ClusterSim::new(
        cfg,
        acceptance_profile(),
        acceptance_traffic(),
        FaultStorm::none(),
    )
    .expect("valid static setup")
    .run();
    assert_eq!(static_run.elastic_spawns, 0);
    assert!(static_run.elastic_events.is_empty());
    // The elastic cluster serves the burst at least as well as the
    // static one even though a storm killed one of its spawns.
    assert!(
        elastic.availability >= static_run.availability,
        "elastic {} vs static {}",
        elastic.availability,
        static_run.availability
    );
}
