//! Differential fuzzing of the second-wave workload kernels across all
//! three μop execution tiers.
//!
//! `tests/bitslice_equiv.rs` and `tests/compiled_equiv.rs` prove the
//! tier chain scalar ⇔ interpreter ⇔ compiled equivalent under
//! *random* μop programs and isolated library macro-ops. This harness
//! closes the remaining gap: the macro-op streams that real kernels
//! actually emit. Each second-wave workload (spmv, histogram,
//! blackscholes, scan) is run through the ISA interpreter and its
//! retired compute instructions are lowered through the VCU mapping
//! (`eve_core::mapping::macro_ops`) into a `(MacroOpKind, Binding)`
//! stream — gather-offset multiplies, scatter-tag mask algebra,
//! clamp/merge chains, ladder adds — then the stream is replayed on
//! the lane-serial scalar oracle, the bitsliced interpreter, and the
//! tiered dispatcher with a `ProgramCache`, comparing every externally
//! observable surface after every macro-op. A warm-cache second pass
//! pins the hit accounting, and an armed-injector variant pins the
//! fault-RNG consumption order of the tier ladder's fallback.

use eve_common::SplitMix64;
use eve_core::mapping::macro_ops;
use eve_isa::{Inst, Interpreter, VOperand};
use eve_sram::{Binding, EveArray, FaultConfig, FaultInjector, ScalarArray};
use eve_uop::fuse::ProgramCache;
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use eve_workloads::Workload;

/// Architectural registers the kernels bind and the harness checks
/// (v0..=v8 — every second-wave kernel stays inside this window, so
/// vector register numbers map directly onto array rows).
const REGS: u32 = 9;
/// μprogram scratch registers, checked on the bitsliced pair: fused
/// writes into scratch rows must land exactly where the interpreter
/// puts them.
const SCRATCH_BASE: u32 = 32;
const SCRATCH_REGS: u32 = 6;
/// Row a `Splat` macro-op broadcasts into when the VCU materializes a
/// scalar/immediate operand. Overlap with a kernel register is fine —
/// all three executors see the identical stream.
const SPLAT_ROW: u8 = 8;
/// Stream cap per kernel: enough to cover every phase of every kernel
/// (the longest setvl strip plus conflict-loop iterations) while
/// keeping the lane-serial oracle affordable.
const MAX_OPS: usize = 120;

/// The four kernels this harness owns.
const KERNELS: [&str; 4] = ["spmv", "histogram", "blackscholes", "scan"];

fn rhs_row(rhs: VOperand) -> u8 {
    match rhs {
        VOperand::Reg(v) => v.index(),
        VOperand::Scalar(_) | VOperand::Imm(_) => SPLAT_ROW,
    }
}

/// The register binding the VCU would issue for a compute instruction.
fn inst_binding(inst: &Inst) -> Binding {
    match *inst {
        Inst::VOp { vd, vs1, rhs, .. } => Binding::new(vd.index(), vs1.index(), rhs_row(rhs)),
        Inst::VCmp { vd, vs1, rhs, .. } => Binding::new(vd.index(), vs1.index(), rhs_row(rhs)),
        Inst::VMerge { vd, vs1, rhs } => Binding::new(vd.index(), vs1.index(), rhs_row(rhs)),
        Inst::VMask { md, m1, m2, .. } => Binding::new(md.index(), m1.index(), m2.index()),
        Inst::VMv { vd, rhs } => Binding::new(vd.index(), rhs_row(rhs), rhs_row(rhs)),
        ref other => panic!("no VSU binding for {other:?}"),
    }
}

/// Runs a kernel's vector program through the ISA interpreter and
/// lowers every retired compute instruction into the macro-op stream
/// the VSU would execute, with the bindings the VCU would attach.
fn op_stream(name: &str) -> Vec<(MacroOpKind, Binding)> {
    let built = Workload::tiny_by_name(name)
        .unwrap_or_else(|e| panic!("{e}"))
        .build();
    let mut interp = Interpreter::new(built.vector, built.memory, 64);
    let mut stream = Vec::new();
    while let Some(r) = interp.step().expect("kernel runs") {
        let Some(ops) = macro_ops(&r.inst, r.scalar_operand) else {
            continue;
        };
        let main = inst_binding(&r.inst);
        for op in ops {
            // A Splat that *materializes an operand* (more ops follow)
            // lands in the scratch broadcast row; a Splat that *is* the
            // instruction (vmv.v.i) writes the architectural dest.
            let b = match op {
                MacroOpKind::Splat(_) if stream_needs_scratch(&r.inst) => {
                    Binding::new(SPLAT_ROW, SPLAT_ROW, SPLAT_ROW)
                }
                _ => main,
            };
            stream.push((op, b));
        }
        if stream.len() >= MAX_OPS {
            break;
        }
    }
    stream.truncate(MAX_OPS);
    assert!(!stream.is_empty(), "{name}: kernel emitted no compute ops");
    stream
}

/// Whether a splat from this instruction feeds a follow-on macro-op
/// (operand materialization) rather than being the whole instruction.
fn stream_needs_scratch(inst: &Inst) -> bool {
    !matches!(inst, Inst::VMv { .. })
}

/// Asserts the bitsliced pair agrees on every surface, architectural
/// and scratch rows included.
fn assert_bitsliced_same(interp: &EveArray, tiered: &EveArray, lanes: usize, ctx: &str) {
    for r in (0..REGS).chain(SCRATCH_BASE..SCRATCH_BASE + SCRATCH_REGS) {
        for lane in 0..lanes {
            assert_eq!(
                interp.read_element(r, lane),
                tiered.read_element(r, lane),
                "{ctx}: reg {r} lane {lane}"
            );
        }
    }
    assert_eq!(interp.data_out(), tiered.data_out(), "{ctx}: data-out");
    assert_eq!(
        interp.parity_alarms(),
        tiered.parity_alarms(),
        "{ctx}: parity alarms"
    );
}

/// Asserts the scalar oracle agrees with a bitsliced array on the
/// architectural surface.
fn assert_scalar_same(fast: &EveArray, slow: &ScalarArray, lanes: usize, ctx: &str) {
    for r in 0..REGS {
        for lane in 0..lanes {
            assert_eq!(
                fast.read_element(r, lane),
                slow.read_element(r, lane),
                "{ctx}: reg {r} lane {lane}"
            );
        }
    }
    assert_eq!(fast.data_out(), slow.data_out(), "{ctx}: data-out");
    assert_eq!(
        fast.parity_alarms(),
        slow.parity_alarms(),
        "{ctx}: parity alarms"
    );
}

fn seeded_rng(salt: u64) -> SplitMix64 {
    SplitMix64::new(0x0003_C04D_4A7E ^ salt)
}

/// The number of distinct macro-op kinds in a stream — the expected
/// cold-cache miss count.
fn distinct_kinds(stream: &[(MacroOpKind, Binding)]) -> usize {
    let mut seen: Vec<MacroOpKind> = Vec::new();
    for &(kind, _) in stream {
        if !seen.contains(&kind) {
            seen.push(kind);
        }
    }
    seen.len()
}

/// Every kernel stream, every hybrid configuration: the scalar oracle,
/// the interpreter, and the warm-capable tiered dispatcher must stay
/// byte-identical after every macro-op, and a second pass over the
/// stream must run entirely out of the program cache.
#[test]
fn kernel_streams_agree_across_all_three_tiers() {
    const LANES: usize = 67;
    for (ki, name) in KERNELS.iter().enumerate() {
        let stream = op_stream(name);
        let distinct = distinct_kinds(&stream) as u64;
        for cfg in HybridConfig::all() {
            let mut rng = seeded_rng(ki as u64 ^ u64::from(cfg.segment_bits()));
            let lib = ProgramLibrary::new(cfg);
            let mut cache = ProgramCache::new();
            let mut scalar = ScalarArray::new(cfg, LANES);
            let mut interp = EveArray::new(cfg, LANES);
            let mut tiered = EveArray::new(cfg, LANES);
            for r in 0..REGS {
                for lane in 0..LANES {
                    let v = rng.next_u32();
                    scalar.write_element(r, lane, v);
                    interp.write_element(r, lane, v);
                    tiered.write_element(r, lane, v);
                }
            }
            for pass in 0..2 {
                for (step, &(kind, binding)) in stream.iter().enumerate() {
                    let data: Vec<u32> = (0..LANES).map(|_| rng.next_u32()).collect();
                    scalar.set_data_in(data.clone());
                    interp.set_data_in(data.clone());
                    tiered.set_data_in(data);
                    let cs = scalar.execute(&lib.program(kind), &binding);
                    let ci = interp.execute(&lib.program(kind), &binding);
                    let ct = tiered.execute_tiered(&lib, &mut cache, kind, &binding);
                    let ctx = format!("{name} {cfg} pass {pass} step {step} {kind:?}");
                    assert_eq!(cs, ci, "{ctx}: scalar/interp cycle count");
                    assert_eq!(ci, ct, "{ctx}: interp/tiered cycle count");
                    assert_scalar_same(&interp, &scalar, LANES, &ctx);
                    assert_bitsliced_same(&interp, &tiered, LANES, &ctx);
                }
            }
            let s = cache.stats();
            assert_eq!(s.misses, distinct, "{name} {cfg}: one miss per kind");
            assert_eq!(
                s.hits,
                2 * stream.len() as u64 - distinct,
                "{name} {cfg}: everything after the first sight hits"
            );
            assert!(s.tier2_fused > 0, "{name} {cfg}: fused super-ops retired");
            assert!(s.hit_rate() > 0.5, "{name} {cfg}");
        }
    }
}

/// Odd lane counts around the 64-lane word boundary: 1 (single lane in
/// a word), 63 (one partial word), 100 (full word + tail). The
/// interpreter and the tiered dispatcher must agree on the kernels'
/// real streams at every tail shape.
#[test]
fn odd_lane_counts_interp_and_tiered_agree() {
    for (ki, name) in KERNELS.iter().enumerate() {
        let stream = op_stream(name);
        for cfg in HybridConfig::all() {
            for lanes in [1usize, 63, 100] {
                let mut rng = seeded_rng((ki as u64) << 8 | lanes as u64);
                let lib = ProgramLibrary::new(cfg);
                let mut cache = ProgramCache::new();
                let mut interp = EveArray::new(cfg, lanes);
                let mut tiered = EveArray::new(cfg, lanes);
                for r in 0..REGS {
                    for lane in 0..lanes {
                        let v = rng.next_u32();
                        interp.write_element(r, lane, v);
                        tiered.write_element(r, lane, v);
                    }
                }
                for (step, &(kind, binding)) in stream.iter().enumerate() {
                    let data: Vec<u32> = (0..lanes).map(|_| rng.next_u32()).collect();
                    interp.set_data_in(data.clone());
                    tiered.set_data_in(data);
                    let ci = interp.execute(&lib.program(kind), &binding);
                    let ct = tiered.execute_tiered(&lib, &mut cache, kind, &binding);
                    let ctx = format!("{name} {cfg} lanes={lanes} step {step} {kind:?}");
                    assert_eq!(ci, ct, "{ctx}: cycle count");
                    assert_bitsliced_same(&interp, &tiered, lanes, &ctx);
                }
            }
        }
    }
}

/// Armed injectors force the interpreter fallback through the tier
/// dispatcher on real kernel streams: corruption, RNG consumption, and
/// detector state must stay in lockstep across all three executors,
/// and the cache must never be consulted.
#[test]
fn armed_injector_streams_stay_in_lockstep() {
    const LANES: usize = 67;
    const STEPS: usize = 48;
    for (ki, name) in KERNELS.iter().enumerate() {
        let stream = op_stream(name);
        let steps = stream.len().min(STEPS);
        for cfg in HybridConfig::all() {
            let mut rng = seeded_rng(0xFA17 ^ (ki as u64) << 16 ^ u64::from(cfg.segment_bits()));
            let lib = ProgramLibrary::new(cfg);
            let mut cache = ProgramCache::new();
            let mut scalar = ScalarArray::new(cfg, LANES);
            let mut interp = EveArray::new(cfg, LANES);
            let mut tiered = EveArray::new(cfg, LANES);
            for r in 0..REGS {
                for lane in 0..LANES {
                    let v = rng.next_u32();
                    scalar.write_element(r, lane, v);
                    interp.write_element(r, lane, v);
                    tiered.write_element(r, lane, v);
                }
            }
            let fc = FaultConfig::uniform(rng.next_u64(), 5e-3);
            scalar.attach_injector(FaultInjector::new(fc.clone()));
            interp.attach_injector(FaultInjector::new(fc.clone()));
            tiered.attach_injector(FaultInjector::new(fc));
            for (step, &(kind, binding)) in stream.iter().take(steps).enumerate() {
                let cs = scalar.execute(&lib.program(kind), &binding);
                let ci = interp.execute(&lib.program(kind), &binding);
                let ct = tiered.execute_tiered(&lib, &mut cache, kind, &binding);
                let ctx = format!("{name} {cfg} step {step} {kind:?}");
                assert_eq!(cs, ci, "{ctx}: scalar/interp cycle count");
                assert_eq!(ci, ct, "{ctx}: interp/tiered cycle count");
                assert_scalar_same(&interp, &scalar, LANES, &ctx);
                assert_bitsliced_same(&interp, &tiered, LANES, &ctx);
                let (fi, ft) = (
                    interp.injector().expect("armed"),
                    tiered.injector().expect("armed"),
                );
                let fs = scalar.injector().expect("armed");
                assert_eq!(fi.cycle(), ft.cycle(), "{ctx}: injector cycle");
                assert_eq!(fi.cycle(), fs.cycle(), "{ctx}: scalar injector cycle");
                assert_eq!(fi.stats(), ft.stats(), "{ctx}: injector stats");
                assert_eq!(fi.stats(), fs.stats(), "{ctx}: scalar injector stats");
            }
            let s = cache.stats();
            assert_eq!((s.hits, s.misses), (0, 0), "{name} {cfg}: cache untouched");
            assert_eq!(s.tier1_executions, steps as u64, "{name} {cfg}");
            assert_eq!(s.tier2_executions, 0, "{name} {cfg}");
        }
    }
}

/// The streams themselves are covered: every kernel must exercise the
/// macro-op families its Table-IV signature claims (gather-offset
/// multiplies for spmv, mask algebra for histogram, clamp/merge for
/// blackscholes, splat-fed adds for scan).
#[test]
fn kernel_streams_cover_their_signature_macro_ops() {
    use MacroOpKind as M;
    let has = |stream: &[(MacroOpKind, Binding)], pred: &dyn Fn(MacroOpKind) -> bool| {
        stream.iter().any(|&(k, _)| pred(k))
    };
    let spmv = op_stream("spmv");
    assert!(has(&spmv, &|k| k == M::Mul), "spmv multiplies");
    assert!(
        has(&spmv, &|k| matches!(k, M::Splat(_))),
        "spmv splats the stride scale"
    );

    let hist = op_stream("histogram");
    assert!(has(&hist, &|k| k == M::CmpEq), "histogram tag compare");
    assert!(has(&hist, &|k| k == M::MaskAnd), "histogram winner mask");
    assert!(has(&hist, &|k| k == M::MaskNot), "histogram retry mask");
    assert!(has(&hist, &|k| k == M::Add), "histogram bump");

    let bs = op_stream("blackscholes");
    assert!(has(&bs, &|k| k == M::Mul), "blackscholes multiplies");
    assert!(has(&bs, &|k| k == M::Min), "blackscholes cap clamp");
    assert!(has(&bs, &|k| k == M::Max), "blackscholes floor clamp");
    assert!(
        has(&bs, &|k| k == M::Merge),
        "blackscholes moneyness select"
    );
    assert!(has(&bs, &|k| k == M::CmpLt), "blackscholes compare");
    assert!(
        has(&bs, &|k| matches!(k, M::SraI(_))),
        "blackscholes arithmetic shift"
    );

    let scan = op_stream("scan");
    assert!(has(&scan, &|k| k == M::Add), "scan ladder adds");
    assert!(
        has(&scan, &|k| matches!(k, M::Splat(_))),
        "scan splats the strip carry"
    );
}
