//! Integration properties of the seeded traffic shapes through the
//! public `eve-serve` facade: the generator's schedules are
//! deterministic and rate-conserving, arrival-side key storms
//! provably concentrate load on the shard the key hashes to, and a
//! full `ClusterSim` run under every shape stays byte-deterministic.

use eve_serve::{
    arrivals, ClusterConfig, ClusterSim, ClusterTraffic, FaultStorm, Router, ServiceProfile,
    TrafficShape,
};

fn shapes(horizon: u64, hot: u64) -> [TrafficShape; 4] {
    [
        TrafficShape::Uniform,
        TrafficShape::Diurnal {
            period: horizon / 2,
        },
        TrafficShape::Bursty {
            burst: 24,
            quiet: 72,
            gain: 8,
        },
        TrafficShape::HotKeyStorm {
            key: hot,
            every: horizon / 2,
            duration: horizon / 4,
        },
    ]
}

/// A viral key found by probing the seeded ring lands ≥70% of all
/// generated keys on its home shard while the storm window is open —
/// the router and the generator agree about where the skew goes.
#[test]
fn key_storm_concentrates_on_the_routed_shard() {
    let (shards, vnodes, seed) = (4, 16, 0xC1_0537);
    let router = Router::new(seed, shards, vnodes);
    let victim = shards - 1;
    let hot = router.key_for_shard(victim, 10_000).expect("ring has keys");
    let traffic = ClusterTraffic {
        requests: 2_000,
        shape: TrafficShape::HotKeyStorm {
            key: hot,
            every: 1,
            duration: 1, // always hot: the concentration ceiling
        },
        ..ClusterTraffic::default()
    };
    let schedule = arrivals(&traffic, 3, &[]);
    let on_victim = schedule
        .iter()
        .filter(|a| router.route(a.key) == victim)
        .count() as f64;
    let frac = on_victim / schedule.len() as f64;
    assert!(
        frac >= 0.7,
        "victim shard drew only {frac:.2} of shaped traffic"
    );
    // The same seed with the storm off spreads back out.
    let calm = ClusterTraffic {
        shape: TrafficShape::Uniform,
        ..traffic
    };
    let baseline = arrivals(&calm, 3, &[])
        .iter()
        .filter(|a| router.route(a.key) == victim)
        .count() as f64
        / 2_000.0;
    assert!(
        baseline < 0.5,
        "uniform baseline already concentrated: {baseline:.2}"
    );
}

/// Every shape conserves the configured mean arrival rate to within
/// 15%, so cross-shape report comparisons are apples to apples.
#[test]
fn shapes_conserve_offered_load() {
    let horizon = 4_000 * 1_000u64;
    for shape in shapes(horizon, 7) {
        let traffic = ClusterTraffic {
            requests: 4_000,
            mean_gap: 1_000,
            shape,
            ..ClusterTraffic::default()
        };
        let schedule = arrivals(&traffic, 3, &[]);
        let mean = schedule.last().unwrap().at as f64 / schedule.len() as f64;
        assert!(
            (mean - 1_000.0).abs() / 1_000.0 < 0.15,
            "{shape:?}: mean gap {mean:.0}"
        );
    }
}

/// A full cluster run under each shape is a pure function of its
/// configuration: identical bytes on every rerun.
#[test]
fn shaped_cluster_runs_are_byte_deterministic() {
    let horizon = 300 * 800u64;
    for shape in shapes(horizon, 101) {
        let run = || {
            let cfg = ClusterConfig {
                shards: 3,
                engines_per_shard: 2,
                seed: 21,
                ..ClusterConfig::default()
            };
            let traffic = ClusterTraffic {
                requests: 300,
                mean_gap: 800,
                shape,
                seed: 13,
                ..ClusterTraffic::default()
            };
            let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 2);
            let storm = FaultStorm::synth(17, 6, horizon, 0.5);
            ClusterSim::new(cfg, profile, traffic, storm).unwrap().run()
        };
        let a = run().to_json().to_pretty();
        let b = run().to_json().to_pretty();
        assert_eq!(a, b, "{shape:?}");
    }
}
