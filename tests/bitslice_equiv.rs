//! Differential fuzzing of the lane-bitsliced μop executor against the
//! lane-serial scalar oracle.
//!
//! `EveArray` packs the lane dimension into u64 bit-planes and executes
//! μops as word-parallel boolean algebra; `ScalarArray` (the
//! `scalar-oracle` feature) keeps the original one-lane-at-a-time
//! executor. The two must be indistinguishable through the public API —
//! register contents, data-out port, cycle counts, parity alarms, and
//! fault-injector consumption — for *any* μop sequence, not just the
//! library programs. This harness throws seeded-random μprograms (raw
//! tuples straight from the μop vocabulary), random library macro-ops,
//! awkward lane counts (1, 63, 100: partial tail words), and armed
//! fault injectors at both and compares everything after every step.

use eve_common::SplitMix64;
use eve_sram::{Binding, EveArray, FaultConfig, FaultInjector, ScalarArray};
use eve_uop::{
    ArithUop, CarryIn, ComputeSrc, CounterId, CounterUop, HybridConfig, MacroOpKind, MaskSrc,
    MicroProgram, Operand, ProgramBuilder, ProgramLibrary, SegSel, VSlot, WbDest,
};

/// Architectural registers the fuzz binds and checks (v0..=v8; v0 so the
/// mask-register row region is covered too).
const REGS: u32 = 9;

fn random_slot(rng: &mut SplitMix64) -> VSlot {
    match rng.below(5) {
        0 => VSlot::D,
        1 => VSlot::S1,
        2 => VSlot::S2,
        3 => VSlot::Mask,
        _ => VSlot::Scratch(rng.below(6) as u8),
    }
}

fn random_operand(rng: &mut SplitMix64, segs: u32, ctr: Option<CounterId>) -> Operand {
    let slot = random_slot(rng);
    let seg = match ctr {
        Some(c) => match rng.below(3) {
            0 => SegSel::Up(c),
            1 => SegSel::Down(c),
            _ => SegSel::At(rng.below(u64::from(segs)) as u8),
        },
        None => SegSel::At(rng.below(u64::from(segs)) as u8),
    };
    Operand::new(slot, seg)
}

/// Draws one arithmetic μop covering the whole Table II vocabulary.
fn random_uop(rng: &mut SplitMix64, segs: u32, ctr: Option<CounterId>) -> ArithUop {
    let masked = rng.below(2) == 1;
    match rng.below(17) {
        0 => ArithUop::Read {
            op: random_operand(rng, segs, ctr),
        },
        1 => ArithUop::WriteConst {
            op: random_operand(rng, segs, ctr),
            value: rng.next_u32(),
            masked,
        },
        2 => ArithUop::WriteDataIn {
            op: random_operand(rng, segs, ctr),
        },
        3..=5 => ArithUop::Blc {
            a: random_operand(rng, segs, ctr),
            b: random_operand(rng, segs, ctr),
            carry_in: match rng.below(3) {
                0 => CarryIn::Stored,
                1 => CarryIn::Zero,
                _ => CarryIn::One,
            },
        },
        6..=8 => ArithUop::Writeback {
            dst: match rng.below(4) {
                0 | 1 => WbDest::Row(random_operand(rng, segs, ctr)),
                2 => WbDest::MaskReg,
                _ => WbDest::XReg,
            },
            src: match rng.below(9) {
                0 => ComputeSrc::And,
                1 => ComputeSrc::Nand,
                2 => ComputeSrc::Or,
                3 => ComputeSrc::Nor,
                4 => ComputeSrc::Xor,
                5 => ComputeSrc::Xnor,
                6 => ComputeSrc::Add,
                7 => ComputeSrc::Shift,
                _ => ComputeSrc::Mask,
            },
            masked,
        },
        9 => ArithUop::LoadShifter {
            op: random_operand(rng, segs, ctr),
        },
        10 => ArithUop::StoreShifter {
            op: random_operand(rng, segs, ctr),
            masked,
        },
        11 => ArithUop::LoadXReg {
            op: random_operand(rng, segs, ctr),
        },
        12 => match rng.below(4) {
            0 => ArithUop::ShiftLeft { masked },
            1 => ArithUop::ShiftRight { masked },
            2 => ArithUop::RotateLeft { masked },
            _ => ArithUop::RotateRight { masked },
        },
        13 => ArithUop::MaskShift,
        14 => ArithUop::SetMask {
            src: match rng.below(5) {
                0 => MaskSrc::XRegLsb,
                1 => MaskSrc::XRegMsb,
                2 => MaskSrc::AddMsb,
                3 => MaskSrc::Carry,
                _ => MaskSrc::AllOnes,
            },
            invert: rng.below(2) == 1,
        },
        15 => ArithUop::SetCarry {
            value: rng.below(2) == 1,
        },
        _ => ArithUop::ClearSpare,
    }
}

/// Builds a random μprogram: either straight-line or one segment loop
/// (so `SegSel::Up`/`Down` operands get exercised against a live
/// counter), always terminated by `ret`.
fn random_program(rng: &mut SplitMix64, cfg: HybridConfig) -> MicroProgram {
    let segs = cfg.segments();
    let mut b = ProgramBuilder::new("fuzz");
    let len = 3 + rng.below(12);
    if rng.below(2) == 0 {
        for _ in 0..len {
            b.arith(random_uop(rng, segs, None));
        }
        b.ret();
    } else {
        let ctr = CounterId::seg(0);
        b.counter(CounterUop::Init { ctr, value: segs });
        b.label("body");
        for _ in 0..len {
            b.arith(random_uop(rng, segs, Some(ctr)));
        }
        b.decr_branch_nz(ctr, "body");
        b.ret();
    }
    b.build().expect("fuzz program assembles")
}

/// Asserts every externally observable surface of the two arrays agrees.
fn assert_same_state(fast: &EveArray, slow: &ScalarArray, lanes: usize, ctx: &str) {
    for r in 0..REGS {
        for lane in 0..lanes {
            assert_eq!(
                fast.read_element(r, lane),
                slow.read_element(r, lane),
                "{ctx}: reg {r} lane {lane}"
            );
        }
    }
    assert_eq!(fast.data_out(), slow.data_out(), "{ctx}: data-out port");
    assert_eq!(
        fast.parity_alarms(),
        slow.parity_alarms(),
        "{ctx}: parity alarms"
    );
    match (fast.injector(), slow.injector()) {
        (None, None) => {}
        (Some(fi), Some(si)) => {
            assert_eq!(fi.cycle(), si.cycle(), "{ctx}: injector cycle");
            assert_eq!(fi.stats(), si.stats(), "{ctx}: injector stats");
        }
        _ => panic!("{ctx}: injector presence diverged"),
    }
}

/// Runs `steps` random μprograms on a fresh pair of arrays, comparing
/// after every execution. `fault_rate` arms identical injectors on both.
fn run_case(
    cfg: HybridConfig,
    lanes: usize,
    steps: u64,
    fault_rate: Option<f64>,
    rng: &mut SplitMix64,
) {
    let mut fast = EveArray::new(cfg, lanes);
    let mut slow = ScalarArray::new(cfg, lanes);
    for r in 0..REGS {
        for lane in 0..lanes {
            let v = rng.next_u32();
            fast.write_element(r, lane, v);
            slow.write_element(r, lane, v);
        }
    }
    if let Some(rate) = fault_rate {
        let seed = rng.next_u64();
        fast.attach_injector(FaultInjector::new(FaultConfig::uniform(seed, rate)));
        slow.attach_injector(FaultInjector::new(FaultConfig::uniform(seed, rate)));
    }
    for step in 0..steps {
        let prog = random_program(rng, cfg);
        let d = rng.below(u64::from(REGS)) as u8;
        let s1 = rng.below(u64::from(REGS)) as u8;
        let s2 = rng.below(u64::from(REGS)) as u8;
        let binding = Binding::new(d, s1, s2);
        let data: Vec<u32> = (0..lanes).map(|_| rng.next_u32()).collect();
        fast.set_data_in(data.clone());
        slow.set_data_in(data);
        let cf = fast.execute(&prog, &binding);
        let cs = slow.execute(&prog, &binding);
        assert_eq!(cf, cs, "{cfg} lanes={lanes} step {step}: cycle count");
        assert_same_state(
            &fast,
            &slow,
            lanes,
            &format!("{cfg} lanes={lanes} step {step} (d={d} s1={s1} s2={s2})"),
        );
    }
}

/// Random raw-μop programs, healthy arrays, lane counts around the
/// 64-lane word boundary.
#[test]
fn random_programs_match_scalar_oracle() {
    let mut rng = SplitMix64::new(0xB17_511CE);
    for cfg in HybridConfig::all() {
        for lanes in [16, 80] {
            for _ in 0..3 {
                run_case(cfg, lanes, 6, None, &mut rng);
            }
        }
    }
}

/// Random raw-μop programs with identically-seeded fault injectors
/// armed on both arrays: corruption *and* RNG consumption must match
/// call for call, or the two drift apart within a step or two.
#[test]
fn random_programs_match_under_faults() {
    let mut rng = SplitMix64::new(0xB17_FA17);
    for cfg in HybridConfig::all() {
        for lanes in [16, 80] {
            for _ in 0..2 {
                run_case(cfg, lanes, 5, Some(5e-3), &mut rng);
            }
        }
    }
}

/// Degenerate and non-multiple-of-64 lane counts: 1 (a single lane in a
/// 64-bit word), 63 (one partial word), 100 (full word + partial tail).
/// The bitsliced tail-masking must keep dead bits invisible.
#[test]
fn odd_lane_counts_match() {
    let mut rng = SplitMix64::new(0xB17_0DD);
    for cfg in HybridConfig::all() {
        for lanes in [1, 63, 100] {
            run_case(cfg, lanes, 4, None, &mut rng);
            run_case(cfg, lanes, 4, Some(1e-2), &mut rng);
        }
    }
}

/// Every library macro-op (including the functionally-modelled signed
/// division family — the two executors must still agree with each
/// other) on every configuration, healthy and faulty.
#[test]
fn library_programs_match_scalar_oracle() {
    use MacroOpKind as M;
    let mut rng = SplitMix64::new(0xB17_11B);
    let kinds = [
        M::Mv,
        M::Not,
        M::And,
        M::Or,
        M::Xor,
        M::Add,
        M::Sub,
        M::Mul,
        M::MulAcc,
        M::Mulh,
        M::Divu,
        M::Remu,
        M::Div,
        M::Rem,
        M::SllI(5),
        M::SrlI(17),
        M::SraI(1),
        M::RotlI(9),
        M::RotrI(30),
        M::SllV,
        M::SrlV,
        M::SraV,
        M::CmpEq,
        M::CmpNe,
        M::CmpLt,
        M::CmpLtu,
        M::Min,
        M::Max,
        M::Minu,
        M::Maxu,
        M::Merge,
        M::MaskAnd,
        M::MaskOr,
        M::MaskXor,
        M::MaskNot,
        M::Splat(0xDEAD_BEEF),
    ];
    const LANES: usize = 67;
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        for fault_rate in [None, Some(2e-3)] {
            let mut fast = EveArray::new(cfg, LANES);
            let mut slow = ScalarArray::new(cfg, LANES);
            for r in 0..REGS {
                for lane in 0..LANES {
                    let v = rng.next_u32();
                    fast.write_element(r, lane, v);
                    slow.write_element(r, lane, v);
                }
            }
            if let Some(rate) = fault_rate {
                let seed = rng.next_u64();
                fast.attach_injector(FaultInjector::new(FaultConfig::uniform(seed, rate)));
                slow.attach_injector(FaultInjector::new(FaultConfig::uniform(seed, rate)));
            }
            for &kind in &kinds {
                let prog = lib.program(kind);
                let d = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let s1 = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let s2 = 1 + rng.below(u64::from(REGS) - 1) as u8;
                let binding = Binding::new(d, s1, s2);
                let cf = fast.execute(&prog, &binding);
                let cs = slow.execute(&prog, &binding);
                assert_eq!(cf, cs, "{cfg} {kind:?}: cycle count");
                assert_same_state(&fast, &slow, LANES, &format!("{cfg} {kind:?}"));
            }
        }
    }
}
