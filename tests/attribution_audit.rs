//! The stall-attribution auditor over the whole Table IV suite.
//!
//! Every workload runs traced at small size under an in-order core, a
//! decoupled vector baseline, and EVE design points; the auditor then
//! replays each event stream and asserts the accounting identity —
//! every engine cycle lands in exactly one breakdown bucket, ordered
//! tracks never run backwards, and no event outlives the run.
#![cfg(feature = "obs")]

use eve_obs::Tracer;
use eve_sim::{audit_run, Runner, SystemKind};
use eve_workloads::Workload;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Io,
    SystemKind::O3Dv,
    SystemKind::EveN(8),
    SystemKind::EveN(32),
];

#[test]
fn every_workload_passes_the_attribution_audit() {
    for w in Workload::tiny_suite() {
        for sys in SYSTEMS {
            let tracer = Tracer::new();
            let report = Runner::with_tracer(&tracer)
                .run(sys, &w)
                .unwrap_or_else(|e| panic!("{sys} on {}: {e}", w.name()));
            let summary = audit_run(&tracer, &report)
                .unwrap_or_else(|e| panic!("{sys} on {}: {e}", w.name()));
            assert!(
                summary.events > 0,
                "{sys} on {}: traced run emitted nothing",
                w.name()
            );
            if report.breakdown.is_some() {
                assert!(
                    summary.tiled,
                    "{sys} on {}: engine run did not tile its timeline",
                    w.name()
                );
                assert_eq!(
                    summary.vsu.total(),
                    summary.vsu.end - summary.vsu.start,
                    "{sys} on {}: tiling is not contiguous",
                    w.name()
                );
            }
        }
    }
}

/// The counter registry rides along in the report for traced runs.
#[test]
fn traced_reports_carry_counters() {
    let tracer = Tracer::new();
    let report = Runner::with_tracer(&tracer)
        .run(SystemKind::EveN(8), &Workload::vvadd(512))
        .unwrap();
    let reg = report.counters.as_ref().expect("traced run has counters");
    assert!(!reg.is_empty(), "registry should have counters");
    let doc = report.to_json().to_compact();
    assert!(doc.contains("\"counters\":{"), "{doc}");
}
