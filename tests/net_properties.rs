//! Property tests for the lossy-interconnect primitives and the
//! end-to-end retry/hedge machinery, in the style of
//! `ladder_properties.rs`: seeded random streams checked against the
//! invariants directly, not against golden outputs:
//!
//! * the dedup table accepts each request id exactly once no matter
//!   how deliveries are duplicated, reordered, or dropped — the
//!   exactly-once kernel;
//! * a link's message ledger balances (`sent == delivered + dropped`,
//!   nothing in flight once every copy lands) under any policy, and a
//!   fully degraded window drops everything;
//! * the failure detector's event stream is time-ordered, alternates
//!   suspicion/recovery per shard, and is a pure function of the ack
//!   stream;
//! * whole cluster runs under random loss/duplication/reordering are
//!   byte-deterministic, never double-apply a request, and keep
//!   retransmit/hedge tallies inside their caps.

use eve::serve::{
    tenant_mix, ClusterConfig, ClusterSim, ClusterTraffic, DedupTable, Detector, FaultStorm, Link,
    MsgClass, NetPolicy, ServiceProfile,
};
use eve_common::SplitMix64;

const SEEDS: u64 = 40;

#[test]
fn dedup_accepts_each_id_exactly_once_under_any_delivery_order() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xDED0_0000 + seed);
        let ids = 1 + rng.below(120);
        // Build a delivery stream with 1..=4 copies of each id, then
        // shuffle it: duplication and reordering in one stream. Ids
        // with zero copies model loss — they must stay unknown.
        let mut stream = Vec::new();
        let mut copies = vec![0u64; ids as usize];
        for (id, c) in copies.iter_mut().enumerate() {
            *c = rng.below(5); // 0 = lost entirely
            for _ in 0..*c {
                stream.push(id as u64);
            }
        }
        for i in (1..stream.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }

        // The shard's protocol: look the id up first; a hit answers
        // from the cache, a miss executes and records — `record`
        // returning `false` would mean a double application.
        let mut table = DedupTable::new();
        let mut fresh = vec![0u64; ids as usize];
        let mut flag = vec![false; ids as usize];
        for &id in &stream {
            match table.lookup(id) {
                Some(cached) => assert_eq!(
                    cached, flag[id as usize],
                    "seed {seed}: cache flipped its answer for id {id}"
                ),
                None => {
                    let corrupt = rng.chance(0.1);
                    assert!(
                        table.record(id, corrupt),
                        "seed {seed}: fresh record for id {id} claimed a double apply"
                    );
                    fresh[id as usize] += 1;
                    flag[id as usize] = corrupt;
                }
            }
        }
        for (id, &c) in copies.iter().enumerate() {
            let expect = u64::from(c > 0);
            assert_eq!(
                fresh[id], expect,
                "seed {seed}: id {id} applied {} times over {c} copies",
                fresh[id]
            );
            assert_eq!(table.lookup(id as u64).is_some(), c > 0, "seed {seed}");
        }
        assert_eq!(
            table.len() as u64,
            copies.iter().filter(|&&c| c > 0).count() as u64,
            "seed {seed}: table size disagrees with delivered ids"
        );
    }
}

#[test]
fn a_link_ledger_balances_under_any_policy() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0x11CC_0000 + seed);
        let policy = NetPolicy {
            enabled: true,
            loss: rng.next_f64() * 0.4,
            duplicate: rng.next_f64() * 0.4,
            reorder: rng.next_f64() * 0.4,
            ..NetPolicy::default()
        };
        policy.validate().expect("generated policy is valid");
        let mut link = Link::new(seed, 0);
        let mut now = 0u64;
        for _ in 0..300 {
            now += 1 + rng.below(200);
            let class = MsgClass::ALL[rng.below(5) as usize];
            for at in link.transmit(now, class, &policy) {
                assert!(at > now, "seed {seed}: delivery not strictly in the future");
                link.on_delivered(class);
            }
        }
        for class in MsgClass::ALL {
            let s = link.stats(class);
            // `sent` counts copies (duplicates included), so the
            // auditor's identity holds exactly once every copy lands.
            assert_eq!(
                s.sent,
                s.delivered + s.dropped,
                "seed {seed}: {} ledger out of balance",
                class.as_str()
            );
            assert_eq!(s.in_flight(), 0, "seed {seed}: copies left in flight");
        }

        // A fully degraded window is pure loss: every transmit inside
        // it drops every copy, and the window expires on its own.
        let before = link.stats(MsgClass::Req);
        link.degrade(now + 10_000, 1.0);
        for _ in 0..50 {
            now += 100;
            assert!(
                link.transmit(now, MsgClass::Req, &policy).is_empty(),
                "seed {seed}: a 100%-loss window delivered a message"
            );
        }
        let after = link.stats(MsgClass::Req);
        assert_eq!(after.delivered, before.delivered, "seed {seed}");
        assert_eq!(
            after.dropped - before.dropped,
            after.sent - before.sent,
            "seed {seed}: a degraded copy escaped the drop ledger"
        );
        now += 10_000;
        assert!(!link.degraded_at(now), "seed {seed}: degrade never healed");
    }
}

#[test]
fn the_detector_is_a_pure_function_of_the_ack_stream() {
    for seed in 0..SEEDS {
        let shards = 2 + rng_shards(seed);
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(0xFD00_0000 + seed);
            let mut det = Detector::new(shards, 2_000, 3);
            let mut now = 0u64;
            for _ in 0..400 {
                // Gaps up to 4x the heartbeat period, so silences long
                // enough to trip the miss threshold really happen.
                now += 1 + rng.below(8_000);
                let shard = rng.below(shards as u64) as usize;
                det.probe(now, shard);
                if rng.chance(0.7) {
                    det.on_ack(now, shard);
                }
            }
            det.events().to_vec()
        };
        let events = run(seed);
        assert_eq!(events, run(seed), "seed {seed}: detector not a pure replay");

        // Time-ordered, and per shard the stream strictly alternates
        // suspicion -> recovery -> suspicion.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "seed {seed}: events out of order");
        }
        for s in 0..shards {
            let mut suspected = false;
            for e in events.iter().filter(|e| e.shard == s) {
                assert_ne!(
                    e.suspected, suspected,
                    "seed {seed}: shard {s} repeated a detector state"
                );
                suspected = e.suspected;
            }
        }
    }
}

fn rng_shards(seed: u64) -> usize {
    SplitMix64::new(seed).below(4) as usize
}

/// One small cluster run under a seeded random transport policy.
fn chaos_sim(seed: u64) -> eve::serve::ClusterReport {
    let mut rng = SplitMix64::new(0xC4A0_0000 + seed);
    let cfg = ClusterConfig {
        shards: 3,
        engines_per_shard: 2,
        seed: 11 + seed,
        net: NetPolicy {
            enabled: true,
            loss: rng.next_f64() * 0.12,
            duplicate: rng.next_f64() * 0.12,
            reorder: rng.next_f64() * 0.25,
            ..NetPolicy::default()
        },
        ..ClusterConfig::default()
    };
    let traffic = ClusterTraffic {
        requests: 160,
        mean_gap: 700,
        deadline_slack: 8.0,
        tenants: tenant_mix(2),
        seed: 0x5EED + seed,
        ..ClusterTraffic::default()
    };
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 2);
    ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
        .expect("valid property setup")
        .run()
}

#[test]
fn random_lossy_runs_never_double_apply_and_respect_every_cap() {
    for seed in 0..SEEDS {
        let r = chaos_sim(seed);
        // Exactly-once: no request's effects applied twice on a shard.
        assert_eq!(r.net.double_applied, 0, "seed {seed}: double execution");
        // The two execution ledgers reconcile.
        assert_eq!(
            r.executed_ok,
            r.completed_eve + r.wasted_executions,
            "seed {seed}: execution ledgers disagree"
        );
        // Cap bounds: retransmits per request, hedges win at most once.
        assert!(
            r.net.retransmits <= r.admitted * r.net_max_retransmits,
            "seed {seed}: retransmit budget exceeded"
        );
        assert!(r.net.hedge_wins <= r.net.hedges, "seed {seed}");
        // Message conservation on every link and class.
        for l in &r.links {
            for c in [l.req, l.resp, l.cancel, l.heartbeat, l.ack] {
                assert_eq!(c.sent, c.delivered + c.dropped, "seed {seed}");
                assert_eq!(c.in_flight, 0, "seed {seed}");
            }
        }
        // Cancels are fully accounted.
        let cancels: u64 = r.links.iter().map(|l| l.cancel.delivered).sum();
        assert_eq!(
            cancels,
            r.net.hedge_cancelled + r.net.cancel_missed,
            "seed {seed}: cancel ledger out of balance"
        );
    }
}

#[test]
fn random_lossy_runs_are_byte_deterministic() {
    // Distinct policies per seed, identical bytes per rerun — the
    // whole timeout -> retransmit -> hedge -> cancel schedule replays.
    for seed in (0..SEEDS).step_by(5) {
        let a = chaos_sim(seed).to_json().to_pretty();
        let b = chaos_sim(seed).to_json().to_pretty();
        assert_eq!(a, b, "seed {seed}: rerun diverged");
    }
}
