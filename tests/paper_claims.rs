//! The paper's headline claims, asserted against the reproduction.
//!
//! These tests pin the *shape* of the results — who wins, by roughly
//! what factor, where the crossovers fall — on inputs small enough for
//! CI. EXPERIMENTS.md records the full-scale numbers.

use eve_analytical::area::{eve_total_overhead_pct, SystemAreaTable};
use eve_analytical::spectrum::spectrum_paper;
use eve_analytical::timing::penalty_ratio;
use eve_core::EveEngine;
use eve_cpu::VectorUnit;
use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

/// A small-but-representative kernel set for ordering claims.
fn claim_suite() -> Vec<Workload> {
    vec![
        Workload::vvadd(8192),
        Workload::Pathfinder {
            rows: 4,
            cols: 4096,
        },
        Workload::Kmeans {
            points: 2048,
            features: 8,
            clusters: 3,
        },
    ]
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn speedups(sys: SystemKind, suite: &[Workload]) -> Vec<f64> {
    let runner = Runner::new();
    suite
        .iter()
        .map(|w| {
            let io = runner.run(SystemKind::Io, w).unwrap();
            runner.run(sys, w).unwrap().speedup_over(&io)
        })
        .collect()
}

/// §I/abstract: EVE achieves speedups comparable to a decoupled vector
/// engine — its best design point is at least competitive with O3+DV —
/// and clearly beats the integrated unit.
#[test]
fn eve_matches_dv_and_beats_iv() {
    let suite = claim_suite();
    let dv = geomean(&speedups(SystemKind::O3Dv, &suite));
    let iv = geomean(&speedups(SystemKind::O3Iv, &suite));
    let e8 = geomean(&speedups(SystemKind::EveN(8), &suite));
    assert!(
        e8 > 0.8 * dv,
        "EVE-8 {e8:.2} must be comparable to DV {dv:.2}"
    );
    assert!(e8 > 2.0 * iv, "EVE-8 {e8:.2} must clearly beat IV {iv:.2}");
}

/// §VII: EVE-8 is the best EVE design point; EVE-16 is next but pays
/// its clock penalty; bit-serial EVE-1 trails the hybrids.
#[test]
fn eve8_is_the_compelling_design_point() {
    let suite = claim_suite();
    let by_n: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&n| (n, geomean(&speedups(SystemKind::EveN(n), &suite))))
        .collect();
    let best = by_n.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    assert!(
        best == 4 || best == 8,
        "best EVE point should be a mid hybrid, got EVE-{best}: {by_n:?}"
    );
    let e1 = by_n[0].1;
    let e8 = by_n[3].1;
    assert!(e8 > e1, "hybrid must beat bit-serial: {by_n:?}");
    // The EVE-32 end of the spectrum loses to EVE-8 (row
    // under-utilization + the 51% clock penalty).
    assert!(e8 > by_n[5].1, "{by_n:?}");
}

/// §VII area-efficiency: EVE-8 achieves at least twice the
/// area-normalized performance of O3+DV.
#[test]
fn eve8_doubles_dv_area_normalized_performance() {
    let suite = claim_suite();
    let dv = geomean(&speedups(SystemKind::O3Dv, &suite)) / SystemAreaTable::o3_dv().relative_area;
    let e8 =
        geomean(&speedups(SystemKind::EveN(8), &suite)) / SystemAreaTable::o3_eve(8).relative_area;
    assert!(
        e8 > 2.0 * dv,
        "EVE-8 perf/area {e8:.2} vs DV {dv:.2} (paper: > 2x)"
    );
}

/// §II key insight: both extremes are sub-optimal; throughput peaks at
/// the balanced factor (4 for the paper geometry).
#[test]
fn taxonomy_spectrum_peaks_between_extremes() {
    let pts = spectrum_paper();
    let peak = pts
        .iter()
        .max_by(|a, b| a.add_throughput.total_cmp(&b.add_throughput))
        .unwrap();
    assert_eq!(peak.factor, 4);
    assert!(peak.add_throughput > pts[0].add_throughput);
    assert!(peak.add_throughput > pts[5].add_throughput);
}

/// Table III hardware vector lengths.
#[test]
fn hardware_vector_lengths() {
    for (n, vl) in [
        (1u32, 2048u32),
        (2, 2048),
        (4, 2048),
        (8, 1024),
        (16, 512),
        (32, 256),
    ] {
        assert_eq!(EveEngine::new(n).unwrap().hw_vl(), vl);
    }
}

/// §VI.B: EVE-8 costs 11.7% area; the 16/32-bit chains stretch the
/// clock by ~15% and ~51%.
#[test]
fn circuit_headline_numbers() {
    assert!((eve_total_overhead_pct(8) - 11.7).abs() < 0.2);
    assert!((penalty_ratio(16) - 1.15).abs() < 0.02);
    assert!((penalty_ratio(32) - 1.51).abs() < 0.02);
}

/// §VII-B MSHR effect: backprop's giant strides stall the VMU far
/// more than vvadd's streaming does, per line request.
#[test]
fn backprop_strides_starve_mshrs() {
    let runner = Runner::new();
    // Weights must exceed the 2 MB LLC (the paper's are 32 MB+), or
    // reuse across output sweeps hides the giant-stride cost.
    let bp = runner
        .run(
            SystemKind::EveN(4),
            &Workload::Backprop {
                inputs: 49152,
                hidden: 16,
            },
        )
        .unwrap();
    let stall = bp.stats.get("vmu.llc_issue_stall_cycles");
    let lines = bp.stats.get("vmu.line_requests");
    assert!(lines > 0);
    assert!(
        stall as f64 / lines as f64 > 1.0,
        "expected heavy per-request stalling: {stall} cycles / {lines} lines"
    );
}

/// §VII-B: EVE-32 needs no transpose, so it never accrues DT stalls.
#[test]
fn eve32_has_no_transpose_overhead() {
    let runner = Runner::new();
    let r = runner
        .run(SystemKind::EveN(32), &Workload::vvadd(8192))
        .unwrap();
    let b = r.breakdown.unwrap();
    assert_eq!(b.ld_dt_stall.0, 0);
    assert_eq!(b.st_dt_stall.0, 0);
}
