//! Differential fuzzing of macro-operation *sequences* on the
//! bit-accurate EVE SRAM.
//!
//! Single-operation tests cannot catch state leaking between
//! μprograms — a stale carry flip-flop, mask latches left set, spare
//! shifter residue, or scratch-register aliasing. This harness runs
//! random sequences of macro-ops over a live register file and checks
//! every architectural register against a plain-Rust golden model
//! after every step, on every parallelization factor.

use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use proptest::prelude::*;

/// Golden semantics of one macro-op.
fn golden(kind: MacroOpKind, a: u32, b: u32, d: u32) -> u32 {
    use MacroOpKind as M;
    match kind {
        M::Mv => a,
        M::Not => !a,
        M::And => a & b,
        M::Or => a | b,
        M::Xor => a ^ b,
        M::Add => a.wrapping_add(b),
        M::Sub => a.wrapping_sub(b),
        M::Mul => a.wrapping_mul(b),
        M::MulAcc => d.wrapping_add(a.wrapping_mul(b)),
        M::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        M::Remu => a.checked_rem(b).unwrap_or(a),
        M::SllI(k) => a << k,
        M::SrlI(k) => a >> k,
        M::SraI(k) => ((a as i32) >> k) as u32,
        M::Min => (a as i32).min(b as i32) as u32,
        M::Max => (a as i32).max(b as i32) as u32,
        M::Minu => a.min(b),
        M::Maxu => a.max(b),
        M::Splat(v) => v,
        _ => unreachable!("not in the fuzz set"),
    }
}

fn op_strategy() -> impl Strategy<Value = MacroOpKind> {
    use MacroOpKind as M;
    prop_oneof![
        Just(M::Mv),
        Just(M::Not),
        Just(M::And),
        Just(M::Or),
        Just(M::Xor),
        Just(M::Add),
        Just(M::Sub),
        Just(M::Mul),
        Just(M::MulAcc),
        Just(M::Divu),
        Just(M::Remu),
        (0u8..32).prop_map(M::SllI),
        (0u8..32).prop_map(M::SrlI),
        (0u8..32).prop_map(M::SraI),
        Just(M::Min),
        Just(M::Max),
        Just(M::Minu),
        Just(M::Maxu),
        any::<u32>().prop_map(M::Splat),
    ]
}

fn configs() -> impl Strategy<Value = HybridConfig> {
    prop_oneof![
        Just(HybridConfig::new(1).unwrap()),
        Just(HybridConfig::new(2).unwrap()),
        Just(HybridConfig::new(4).unwrap()),
        Just(HybridConfig::new(8).unwrap()),
        Just(HybridConfig::new(16).unwrap()),
        Just(HybridConfig::new(32).unwrap()),
    ]
}

const LANES: usize = 3;
const REGS: u8 = 8; // architectural registers the fuzz uses (v1..v8)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op sequences over a live register file: the array and
    /// the golden model must agree on every register after every op.
    #[test]
    fn sequences_never_leak_state(
        cfg in configs(),
        seed_vals in prop::collection::vec(any::<u32>(), (REGS as usize) * LANES),
        ops in prop::collection::vec(
            (op_strategy(), 1u8..=REGS, 1u8..=REGS, 1u8..=REGS),
            1..24
        ),
    ) {
        let lib = ProgramLibrary::new(cfg);
        let mut arr = EveArray::new(cfg, LANES);
        // Golden register file: [reg][lane].
        let mut gold = vec![[0u32; LANES]; REGS as usize + 1];
        for r in 1..=REGS {
            for lane in 0..LANES {
                let v = seed_vals[(r as usize - 1) * LANES + lane];
                arr.write_element(u32::from(r), lane, v);
                gold[r as usize][lane] = v;
            }
        }
        for (i, &(kind, d, s1, s2)) in ops.iter().enumerate() {
            let prog = lib.program(kind);
            arr.execute(&prog, &Binding::new(d, s1, s2));
            #[allow(clippy::needless_range_loop)] // lock-step across three registers
            for lane in 0..LANES {
                gold[d as usize][lane] = golden(
                    kind,
                    gold[s1 as usize][lane],
                    gold[s2 as usize][lane],
                    gold[d as usize][lane],
                );
            }
            // Every register must match after every step — not just
            // the one written, so clobbers are caught immediately.
            for r in 1..=REGS {
                #[allow(clippy::needless_range_loop)] // parallel indexing
                for lane in 0..LANES {
                    prop_assert_eq!(
                        arr.read_element(u32::from(r), lane),
                        gold[r as usize][lane],
                        "step {} ({:?} d={} s1={} s2={}), reg {} lane {} on {}",
                        i, kind, d, s1, s2, r, lane, cfg
                    );
                }
            }
        }
    }

    /// Destructive aliasing: d == s1 == s2 must still match golden.
    #[test]
    fn full_aliasing_is_correct(cfg in configs(), v: u32, kind in op_strategy()) {
        let lib = ProgramLibrary::new(cfg);
        let mut arr = EveArray::new(cfg, 1);
        arr.write_element(5, 0, v);
        arr.execute(&lib.program(kind), &Binding::new(5, 5, 5));
        prop_assert_eq!(
            arr.read_element(5, 0),
            golden(kind, v, v, v),
            "{:?} on {}",
            kind,
            cfg
        );
    }
}
