//! Differential fuzzing of macro-operation *sequences* on the
//! bit-accurate EVE SRAM.
//!
//! Single-operation tests cannot catch state leaking between
//! μprograms — a stale carry flip-flop, mask latches left set, spare
//! shifter residue, or scratch-register aliasing. This harness runs
//! seeded-random sequences of macro-ops over a live register file and
//! checks every architectural register against a plain-Rust golden
//! model after every step, on every parallelization factor. Fixed
//! seeds make every failure reproducible.

use eve_common::SplitMix64;
use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};

/// Golden semantics of one macro-op.
fn golden(kind: MacroOpKind, a: u32, b: u32, d: u32) -> u32 {
    use MacroOpKind as M;
    match kind {
        M::Mv => a,
        M::Not => !a,
        M::And => a & b,
        M::Or => a | b,
        M::Xor => a ^ b,
        M::Add => a.wrapping_add(b),
        M::Sub => a.wrapping_sub(b),
        M::Mul => a.wrapping_mul(b),
        M::MulAcc => d.wrapping_add(a.wrapping_mul(b)),
        M::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        M::Remu => a.checked_rem(b).unwrap_or(a),
        M::SllI(k) => a << k,
        M::SrlI(k) => a >> k,
        M::SraI(k) => ((a as i32) >> k) as u32,
        M::Min => (a as i32).min(b as i32) as u32,
        M::Max => (a as i32).max(b as i32) as u32,
        M::Minu => a.min(b),
        M::Maxu => a.max(b),
        M::Splat(v) => v,
        _ => unreachable!("not in the fuzz set"),
    }
}

/// Draws one macro-op from the fuzz set.
fn random_op(rng: &mut SplitMix64) -> MacroOpKind {
    use MacroOpKind as M;
    match rng.below(19) {
        0 => M::Mv,
        1 => M::Not,
        2 => M::And,
        3 => M::Or,
        4 => M::Xor,
        5 => M::Add,
        6 => M::Sub,
        7 => M::Mul,
        8 => M::MulAcc,
        9 => M::Divu,
        10 => M::Remu,
        11 => M::SllI(rng.below(32) as u8),
        12 => M::SrlI(rng.below(32) as u8),
        13 => M::SraI(rng.below(32) as u8),
        14 => M::Min,
        15 => M::Max,
        16 => M::Minu,
        17 => M::Maxu,
        _ => M::Splat(rng.next_u32()),
    }
}

fn configs() -> Vec<HybridConfig> {
    [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&n| HybridConfig::new(n).unwrap())
        .collect()
}

const LANES: usize = 3;
const REGS: u8 = 8; // architectural registers the fuzz uses (v1..v8)

/// Random op sequences over a live register file: the array and the
/// golden model must agree on every register after every op.
#[test]
fn sequences_never_leak_state() {
    let mut rng = SplitMix64::new(0xF022_0001);
    for cfg in configs() {
        let lib = ProgramLibrary::new(cfg);
        for _case in 0..4 {
            let mut arr = EveArray::new(cfg, LANES);
            // Golden register file: [reg][lane].
            let mut gold = vec![[0u32; LANES]; REGS as usize + 1];
            for r in 1..=REGS {
                for (lane, g) in gold[r as usize].iter_mut().enumerate() {
                    let v = rng.next_u32();
                    arr.write_element(u32::from(r), lane, v);
                    *g = v;
                }
            }
            let steps = 1 + rng.below(23);
            for i in 0..steps {
                let kind = random_op(&mut rng);
                let d = 1 + rng.below(u64::from(REGS)) as u8;
                let s1 = 1 + rng.below(u64::from(REGS)) as u8;
                let s2 = 1 + rng.below(u64::from(REGS)) as u8;
                let prog = lib.program(kind);
                arr.execute(&prog, &Binding::new(d, s1, s2));
                #[allow(clippy::needless_range_loop)] // lock-step across three registers
                for lane in 0..LANES {
                    gold[d as usize][lane] = golden(
                        kind,
                        gold[s1 as usize][lane],
                        gold[s2 as usize][lane],
                        gold[d as usize][lane],
                    );
                }
                // Every register must match after every step — not just
                // the one written, so clobbers are caught immediately.
                for r in 1..=REGS {
                    #[allow(clippy::needless_range_loop)] // parallel indexing
                    for lane in 0..LANES {
                        assert_eq!(
                            arr.read_element(u32::from(r), lane),
                            gold[r as usize][lane],
                            "step {i} ({kind:?} d={d} s1={s1} s2={s2}), reg {r} lane {lane} on {cfg}",
                        );
                    }
                }
            }
        }
    }
}

/// Destructive aliasing: d == s1 == s2 must still match golden.
#[test]
fn full_aliasing_is_correct() {
    let mut rng = SplitMix64::new(0xF022_0002);
    for cfg in configs() {
        let lib = ProgramLibrary::new(cfg);
        for _ in 0..16 {
            let v = rng.next_u32();
            let kind = random_op(&mut rng);
            let mut arr = EveArray::new(cfg, 1);
            arr.write_element(5, 0, v);
            arr.execute(&lib.program(kind), &Binding::new(5, 5, 5));
            assert_eq!(
                arr.read_element(5, 0),
                golden(kind, v, v, v),
                "{kind:?} on {cfg}",
            );
        }
    }
}
