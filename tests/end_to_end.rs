//! End-to-end integration: every kernel, several systems, golden
//! verification, and cross-system sanity orderings.

use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

/// Every system simulates every tiny kernel and the runner's built-in
/// golden verification passes (it returns an error otherwise).
#[test]
fn full_matrix_on_tiny_suite() {
    let runner = Runner::new();
    for w in Workload::tiny_suite() {
        for sys in SystemKind::all() {
            let r = runner
                .run(sys, &w)
                .unwrap_or_else(|e| panic!("{sys} on {}: {e}", w.name()));
            assert!(r.cycles.0 > 0);
            assert!(r.dyn_insts > 0);
            assert!(r.wall_ps.0 > 0);
        }
    }
}

/// The out-of-order core never loses to the in-order core.
#[test]
fn o3_never_slower_than_io() {
    let runner = Runner::new();
    for w in Workload::tiny_suite() {
        let io = runner.run(SystemKind::Io, &w).unwrap();
        let o3 = runner.run(SystemKind::O3, &w).unwrap();
        assert!(
            o3.wall_ps <= io.wall_ps,
            "{}: O3 {} vs IO {}",
            w.name(),
            o3.wall_ps,
            io.wall_ps
        );
    }
}

/// Vector systems run far fewer dynamic instructions than scalar ones
/// (the VPar effect of Table IV).
#[test]
fn vectorization_compresses_dynamic_instructions() {
    let runner = Runner::new();
    let w = Workload::vvadd(4096);
    let io = runner.run(SystemKind::Io, &w).unwrap();
    let dv = runner.run(SystemKind::O3Dv, &w).unwrap();
    let eve = runner.run(SystemKind::EveN(4), &w).unwrap();
    assert!(io.dyn_insts > 10 * dv.dyn_insts);
    // Longer hardware vectors compress the instruction stream further.
    assert!(dv.dyn_insts > eve.dyn_insts);
}

/// Strip-mining makes binaries portable across hardware vector
/// lengths: the same vector binary verifies on IV (VL=4), DV (VL=64),
/// and every EVE point — the §II portability claim.
#[test]
fn one_binary_every_vector_length() {
    let runner = Runner::new();
    let w = Workload::Sw { n: 40 };
    for sys in [
        SystemKind::O3Iv,
        SystemKind::O3Dv,
        SystemKind::EveN(1),
        SystemKind::EveN(32),
    ] {
        runner.run(sys, &w).unwrap_or_else(|e| panic!("{sys}: {e}"));
    }
}

/// EVE's stall breakdown accounts for its entire execution.
#[test]
fn breakdown_accounts_for_engine_time() {
    let runner = Runner::new();
    for w in [Workload::vvadd(2048), Workload::Mmult { n: 16 }] {
        let r = runner.run(SystemKind::EveN(8), &w).unwrap();
        let b = r.breakdown.unwrap();
        assert!(b.total().0 > 0, "{}", w.name());
        // The attributed total plus the spawn cost cannot exceed the
        // system's total cycles.
        let spawn = r.stats.get("spawn_cycles");
        assert!(
            b.total().0 + spawn <= r.cycles.0 + 1,
            "{}: breakdown {} + spawn {spawn} vs cycles {}",
            w.name(),
            b.total().0,
            r.cycles.0
        );
    }
}

/// Memory-bound kernels show memory stalls on EVE; compute-bound
/// kernels show busy time (the Fig 7 contrast).
#[test]
fn fig7_contrast_vvadd_vs_mmult() {
    let runner = Runner::new();
    let vv = runner
        .run(SystemKind::EveN(4), &Workload::vvadd(8192))
        .unwrap()
        .breakdown
        .unwrap();
    let mm = runner
        .run(SystemKind::EveN(4), &Workload::Mmult { n: 24 })
        .unwrap()
        .breakdown
        .unwrap();
    let vv_mem = (vv.ld_mem_stall + vv.st_mem_stall).0 as f64 / vv.total().0 as f64;
    let mm_busy = mm.busy_fraction();
    assert!(vv_mem > 0.3, "vvadd should be memory-bound: {vv:?}");
    assert!(mm_busy > 0.8, "mmult should be compute-bound: {mm:?}");
}
