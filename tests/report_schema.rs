//! Golden-snapshot test locking the [`RunReport::to_json`] schema.
//!
//! The serialized report is the repo's stable external surface — the
//! bench bins, the trace exporter, and downstream plotting all read
//! it. Any key added, removed, renamed, or reordered must show up
//! here as a conscious fixture regeneration, not a silent drift.
#![cfg(feature = "obs")]

use eve::serve::{
    ClusterConfig, ClusterSim, ClusterTraffic, ElasticPolicy, FaultStorm, NetPolicy, ServiceProfile,
};
use eve_common::json::JsonValue;
use eve_obs::Tracer;
use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/report_schema.json"
);

const REGEN: &str = "EVE_UPDATE_FIXTURES=1 cargo test --features obs --test report_schema";

/// A small deterministic elastic cluster run: pins the
/// `ClusterReport` schema including the elastic counter block and the
/// reconfiguration event ledger.
fn cluster_elastic() -> JsonValue {
    let cfg = ClusterConfig {
        shards: 2,
        engines_per_shard: 1,
        elastic: ElasticPolicy {
            enabled: true,
            min_engines: 1,
            max_engines: 3,
            scale_up_backlog: 0.2,
            scale_down_backlog: 0.05,
            dwell: 4_000,
            ..ElasticPolicy::default()
        },
        seed: 11,
        ..ClusterConfig::default()
    };
    let traffic = ClusterTraffic {
        requests: 250,
        mean_gap: 300,
        seed: 5,
        ..ClusterTraffic::default()
    };
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 3);
    ClusterSim::new(cfg, profile, traffic, FaultStorm::none())
        .expect("valid elastic snapshot config")
        .run()
        .to_json()
}

/// A small deterministic run over the lossy interconnect, with a
/// mid-run partition so the detector history, the per-link ledgers,
/// and every `net` counter are pinned in their populated shape.
fn cluster_net() -> JsonValue {
    let cfg = ClusterConfig {
        shards: 2,
        engines_per_shard: 2,
        net: NetPolicy {
            duplicate: 0.1,
            ..NetPolicy::lossy(0.05)
        },
        seed: 11,
        ..ClusterConfig::default()
    };
    let traffic = ClusterTraffic {
        requests: 250,
        mean_gap: 300,
        seed: 5,
        ..ClusterTraffic::default()
    };
    let horizon = 250 * 300;
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 2);
    ClusterSim::new(
        cfg,
        profile,
        traffic,
        FaultStorm::partition(1, horizon / 3, horizon / 6),
    )
    .expect("valid net snapshot config")
    .run()
    .to_json()
}

/// One deterministic document covering both report shapes: a scalar
/// run (null breakdown), a traced EVE run (every section filled), and
/// a traced second-wave kernel (cross-element-heavy scan) so the
/// schema is pinned for the expanded workload suite too; plus an
/// elastic cluster report pinning the serving-layer schema and a
/// lossy-transport cluster report pinning the net counter block.
fn snapshot() -> String {
    let w = Workload::vvadd(512);
    let io = Runner::new().run(SystemKind::Io, &w).unwrap();
    let tracer = Tracer::new();
    let eve = Runner::with_tracer(&tracer)
        .run(SystemKind::EveN(8), &w)
        .unwrap();
    let scan_tracer = Tracer::new();
    let scan = Runner::with_tracer(&scan_tracer)
        .run(SystemKind::EveN(8), &Workload::Scan { n: 260 })
        .unwrap();
    let doc = JsonValue::object([
        ("io", io.to_json()),
        ("eve8_traced", eve.to_json()),
        ("scan_traced", scan.to_json()),
        ("cluster_elastic", cluster_elastic()),
        ("cluster_net", cluster_net()),
    ]);
    let mut text = doc.to_pretty();
    text.push('\n');
    text
}

#[test]
fn report_json_matches_the_checked_in_fixture() {
    let got = snapshot();
    // The snapshot must itself be valid JSON (the parser is the same
    // one trace_run uses to self-validate exports).
    JsonValue::parse(&got).expect("snapshot parses");

    if std::env::var_os("EVE_UPDATE_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture writes");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|_| panic!("missing fixture {FIXTURE}; regenerate with: {REGEN}"));
    assert_eq!(
        got, want,
        "RunReport JSON schema changed; if intentional, regenerate with: {REGEN}"
    );
}
