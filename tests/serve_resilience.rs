//! Integration tests for the resilient serving layer: the ISSUE's
//! acceptance scenario (an engine dies mid-campaign, the pool stays
//! available with zero SDCs, the breaker both opens and re-closes
//! within the run), trace-audit identity, and byte determinism.

use eve::serve::{
    audit_serve, BreakerPolicy, FaultStorm, ServeConfig, ServeReport, ServeSim, ServiceProfile,
    StormEvent, StormEventKind, TrafficConfig,
};
use eve_obs::Tracer;
use eve_workloads::Workload;

/// The acceptance storm: engine 1 dies for good mid-run, engine 2
/// suffers a brownout that *ends* — the recovering engine is what
/// exercises the breaker's half-open → closed path (a dead engine's
/// probes never succeed).
fn acceptance_storm() -> FaultStorm {
    FaultStorm {
        events: vec![
            StormEvent {
                at: 10_000,
                engine: 2,
                kind: StormEventKind::Brownout { duration: 20_000 },
            },
            StormEvent {
                at: 30_000,
                engine: 1,
                kind: StormEventKind::Kill,
            },
        ],
    }
}

fn acceptance_run(tracer: Option<&Tracer>) -> ServeReport {
    let cfg = ServeConfig {
        pool: 4,
        // One failure trips, two successful probes re-close: the
        // brownout window reliably produces both transitions.
        breaker: BreakerPolicy::aggressive(),
        seed: 11,
        ..ServeConfig::default()
    };
    let traffic = TrafficConfig {
        requests: 200,
        mean_gap: 500,
        deadline_slack: 6.0,
        seed: 7,
    };
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, 4);
    let sim = ServeSim::new(cfg, profile, traffic, acceptance_storm()).expect("valid config");
    let sim = match tracer {
        Some(t) => sim.with_tracer(t),
        None => sim,
    };
    sim.run()
}

#[test]
fn a_mid_campaign_engine_death_keeps_the_pool_available() {
    let r = acceptance_run(None);
    // The SLO holds: ≥ 99% of admitted requests got a correct,
    // in-deadline answer, and nothing silently corrupted.
    assert!(
        r.availability >= 0.99,
        "availability {} under the acceptance storm",
        r.availability
    );
    assert_eq!(r.sdc, 0);
    // The dead engine was detected and isolated...
    assert!(r.engines[1].failures > 0);
    assert!(r.engines[1].breaker.opened >= 1);
    assert!(r.engines[1].dead);
    // ...and the browned-out engine's breaker opened AND re-closed
    // within the run (half-open probe succeeded after recovery).
    assert!(r.engines[2].breaker.opened >= 1);
    assert!(r.engines[2].breaker.reclosed >= 1);
    assert!(r.breaker_opens() >= 2);
    assert!(r.breaker_recloses() >= 1);
    // Conservation: every admitted request resolved exactly once.
    assert_eq!(r.completed_eve + r.completed_fallback, r.admitted);
    assert_eq!(r.dispatches, r.completed_eve + r.engine_failures);
}

#[test]
fn the_serve_track_audit_identity_holds() {
    let tracer = Tracer::new();
    let report = acceptance_run(Some(&tracer));
    let summary = audit_serve(&tracer, &report).expect("audit passes");
    assert!(summary.events > 0);
    assert_eq!(summary.engine_tracks, 4);
    assert_eq!(summary.service_spans as u64, report.dispatches);
}

#[test]
fn identical_runs_are_byte_identical() {
    let a = acceptance_run(None).to_json().to_pretty();
    let b = acceptance_run(None).to_json().to_pretty();
    assert_eq!(a, b, "serving runs must be byte-deterministic");
}

#[test]
fn a_measured_profile_drives_the_serving_layer_end_to_end() {
    // The serving layer on top of the real timing model: profile
    // measured by eve-sim, then a short storm-free run.
    let profile =
        ServiceProfile::measured(8, &[Workload::vvadd(300)], 2).expect("profile measures");
    let cfg = ServeConfig {
        pool: 2,
        seed: 5,
        ..ServeConfig::default()
    };
    let traffic = TrafficConfig {
        requests: 40,
        mean_gap: profile.mean_eve_cycles(),
        deadline_slack: 6.0,
        seed: 2,
    };
    let tracer = Tracer::new();
    let report = ServeSim::new(cfg, profile, traffic, FaultStorm::none())
        .expect("valid config")
        .with_tracer(&tracer)
        .run();
    assert_eq!(report.arrivals, 40);
    assert_eq!(report.sdc, 0);
    assert!(report.completed_eve > 0);
    audit_serve(&tracer, &report).expect("audit passes on the measured profile");
}
