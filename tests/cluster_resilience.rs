//! Integration tests for the sharded cluster serving layer: the
//! ISSUE's acceptance scenario (an entire shard dies mid-run under
//! hot-key skew; the cluster stays available with zero SDCs, work is
//! stolen off the backlogged shard, and the degradation ladder both
//! steps down and recovers), the cluster trace-audit identity, and
//! byte determinism.

use eve::serve::{
    audit_cluster, tenant_mix, ClusterConfig, ClusterReport, ClusterSim, ClusterTraffic,
    FaultStorm, Router, ServiceLevel, ServiceProfile,
};
use eve_obs::Tracer;

const SHARDS: usize = 4;
const ENGINES_PER_SHARD: usize = 4;
const VICTIM: usize = 2;
const REQUESTS: usize = 1_200;
const MEAN_GAP: u64 = 400;
const HORIZON: u64 = REQUESTS as u64 * MEAN_GAP;

fn acceptance_config() -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        engines_per_shard: ENGINES_PER_SHARD,
        seed: 11,
        ..ClusterConfig::default()
    }
}

fn acceptance_traffic() -> ClusterTraffic {
    ClusterTraffic {
        requests: REQUESTS,
        mean_gap: MEAN_GAP,
        deadline_slack: 6.0,
        tenants: tenant_mix(3),
        seed: 0x7E57,
        ..ClusterTraffic::default()
    }
}

/// The acceptance storm, aimed at one victim shard:
///
/// 1. a hot-key-skew window concentrates 90% of arrivals on the
///    victim's routing key, building a real backlog there;
/// 2. a partition isolates the victim *with that backlog queued* —
///    the work-stealing case: idle peers must drain its queue;
/// 3. after the partition heals and hot traffic piles back on, every
///    engine in the shard is killed for good — the degradation-ladder
///    case: windowed failures force a step down, and the run must
///    recover the rung once the cluster re-stabilizes.
fn acceptance_storm(cfg: &ClusterConfig, keys: u64) -> FaultStorm {
    let ring = Router::new(cfg.seed, cfg.shards, cfg.vnodes);
    let hot = ring
        .key_for_shard(VICTIM, keys)
        .expect("some key routes to the victim shard");
    FaultStorm::hot_key(hot, HORIZON / 5, HORIZON / 2)
        .merged(FaultStorm::partition(VICTIM, HORIZON / 3, HORIZON / 10))
        .merged(FaultStorm::kill_shard(
            VICTIM,
            ENGINES_PER_SHARD,
            HORIZON * 3 / 5,
        ))
}

fn acceptance_run(tracer: Option<&Tracer>) -> ClusterReport {
    let cfg = acceptance_config();
    let traffic = acceptance_traffic();
    let storm = acceptance_storm(&cfg, traffic.keys);
    let profile = ServiceProfile::synthetic(3, 1_000, 4_000, ENGINES_PER_SHARD);
    let sim = ClusterSim::new(cfg, profile, traffic, storm).expect("valid acceptance setup");
    match tracer {
        Some(t) => sim.with_tracer(t).run(),
        None => sim.run(),
    }
}

#[test]
fn shard_death_under_hot_key_skew_meets_the_acceptance_floor() {
    let report = acceptance_run(None);

    // The victim really died: every one of its engines is gone.
    let victim = &report.shards_detail[VICTIM];
    assert!(
        victim.engines.iter().all(|e| e.dead),
        "storm must kill the whole victim shard"
    );

    // Availability floor with zero silent corruptions.
    assert!(
        report.availability >= 0.99,
        "availability {} under shard death",
        report.availability
    );
    assert_eq!(report.sdc, 0, "checked cluster must not leak SDCs");

    // The backlogged partition window produced real work stealing.
    assert!(
        report.steals >= 1,
        "idle shards must steal from the isolated victim (steals = {})",
        report.steals
    );
    assert!(
        report.rerouted >= 1,
        "arrivals must re-route off the unavailable victim"
    );

    // The ladder stepped down under the storm AND recovered.
    assert!(
        report.step_downs() >= 1,
        "ladder never stepped down: {:?}",
        report.ladder
    );
    assert!(
        report.step_ups() >= 1,
        "ladder never recovered a rung: {:?}",
        report.ladder
    );
    assert_eq!(
        report.final_level,
        ServiceLevel::Full,
        "cluster must end the run back at full service"
    );
}

#[test]
fn every_admitted_request_is_accounted_and_no_tenant_is_starved() {
    let report = acceptance_run(None);
    for t in &report.tenants {
        assert_eq!(
            t.completed, t.admitted,
            "tenant {} leaked admitted requests",
            t.name
        );
        assert_eq!(t.arrivals, t.admitted + t.shed, "tenant {} books", t.name);
        if t.admitted > 0 {
            assert!(
                t.availability >= 0.95,
                "tenant {} starved: availability {}",
                t.name,
                t.availability
            );
        }
    }
    // Weighted fair-share really spread load: every tenant got service.
    assert!(report.tenants.iter().all(|t| t.served_ok > 0));
    // And every healthy shard carried some of it.
    for (i, s) in report.shards_detail.iter().enumerate() {
        assert!(s.routed > 0, "shard {i} never routed a request");
    }
}

#[test]
fn the_cluster_trace_audit_holds_under_the_acceptance_storm() {
    let tracer = Tracer::new();
    let report = acceptance_run(Some(&tracer));
    let summary = audit_cluster(&tracer, &report).expect("audit passes");
    assert!(summary.events > 0, "audit must replay real events");
    assert!(
        summary.identities > 20,
        "audit must check the full identity set, got {}",
        summary.identities
    );
}

#[test]
fn acceptance_runs_are_byte_identical() {
    let a = acceptance_run(None).to_json().to_pretty();
    let b = acceptance_run(None).to_json().to_pretty();
    assert_eq!(a, b, "identical configs must produce identical bytes");
    // The report is real JSON with the cluster-specific sections.
    assert!(a.contains("\"ladder\""));
    assert!(a.contains("\"tenants\""));
    assert!(a.contains("\"steals\""));
}
