//! # EVE: Ephemeral Vector Engines — a Rust reproduction
//!
//! This crate re-exports the whole workspace behind one façade so the
//! examples and integration tests read naturally. See the individual
//! crates for the real APIs:
//!
//! * [`eve_isa`] — the RVV-like kernel IR and functional interpreter
//! * [`eve_uop`] — EVE μops and macro-op μprograms (paper §IV)
//! * [`eve_sram`] — the bit-accurate compute-in-memory SRAM (§III)
//! * [`eve_mem`] — cache hierarchy, MSHRs, DRAM
//! * [`eve_cpu`] — IO and O3 scalar core timing models
//! * [`eve_vector`] — the IV and DV baseline vector units
//! * [`eve_core`] — the EVE engine itself: VCU/VSU/VMU/VRU (§V)
//! * [`eve_analytical`] — §II taxonomy spectrum and §VI area/timing
//! * [`eve_workloads`] — the Rodinia/RiVEC-style kernels (Table IV)
//! * [`eve_sim`] — Table III system assembly and the experiment runner
//! * [`eve_serve`] — the resilient multi-engine serving layer (pool,
//!   breakers, deadlines, fault storms)
//!
//! # Quickstart
//!
//! ```
//! use eve_sim::{SystemKind, Runner};
//! use eve_workloads::Workload;
//!
//! let report = Runner::new()
//!     .run(SystemKind::EveN(8), &Workload::vvadd(1 << 12))
//!     .expect("simulation succeeds");
//! assert!(report.cycles.0 > 0);
//! ```

pub use eve_analytical as analytical;
pub use eve_common as common;
pub use eve_core as core_engine;
pub use eve_cpu as cpu;
pub use eve_isa as isa;
pub use eve_mem as mem;
pub use eve_serve as serve;
pub use eve_sim as sim;
pub use eve_sram as sram;
pub use eve_uop as uop;
pub use eve_vector as vector;
pub use eve_workloads as workloads;
