//! Bit-hybrid lab: poke the bit-accurate EVE SRAM directly.
//!
//! Loads values into two lanes of an EVE array, executes the actual
//! add / multiply μprograms from the VSU ROM at every parallelization
//! factor, and prints the measured cycle counts — the §II latency
//! story, observed rather than asserted.
//!
//! ```sh
//! cargo run --release --example bit_hybrid_lab
//! ```

use eve_sram::{Binding, EveArray};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};

fn main() {
    let (a, b) = (1_000_003u32, 77_777u32);
    println!("computing {a} + {b} and {a} * {b} in-situ, per design point:\n");
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>14}",
        "design", "add cyc", "mul cyc", "add result", "mul result"
    );
    for cfg in HybridConfig::all() {
        let lib = ProgramLibrary::new(cfg);
        let mut arr = EveArray::new(cfg, 2);
        // Lane 0 computes a?b; lane 1 computes b?a simultaneously —
        // every column group is an independent in-situ ALU.
        arr.write_element(1, 0, a);
        arr.write_element(2, 0, b);
        arr.write_element(1, 1, b);
        arr.write_element(2, 1, a);

        let add_prog = lib.program(MacroOpKind::Add);
        let add_cycles = arr.execute(&add_prog, &Binding::new(3, 1, 2));
        let sum = arr.read_element(3, 0);
        assert_eq!(sum, a.wrapping_add(b));
        assert_eq!(arr.read_element(3, 1), sum, "addition commutes");

        let mul_prog = lib.program(MacroOpKind::Mul);
        let mul_cycles = arr.execute(&mul_prog, &Binding::new(4, 1, 2));
        let prod = arr.read_element(4, 0);
        assert_eq!(prod, a.wrapping_mul(b));

        println!(
            "{:>8} {:>10} {:>10} {:>14} {:>14}",
            cfg.to_string(),
            add_cycles.0,
            mul_cycles.0,
            sum,
            prod
        );
    }
    println!(
        "\nbit-serial maximizes lanes but pays thousands of cycles per multiply;\n\
         bit-parallel is fast but wastes rows — bit-hybrid (EVE-4/8) balances both (§II)."
    );
}
