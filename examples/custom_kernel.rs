//! Write your own kernel: a SAXPY (`y = a*x + y`, integer flavour)
//! authored directly in the kernel IR, verified against a golden
//! model, and raced across every Table III system.
//!
//! This is the workflow a downstream user follows to evaluate their
//! own workload on EVE: assemble a strip-mined vector program, run it
//! functionally to check correctness, then feed the same binary to
//! each timing model.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use eve_core::EveEngine;
use eve_cpu::{O3Core, VectorUnit};
use eve_isa::{disasm, vreg, xreg, Asm, Interpreter, Memory, VArithOp, VOperand};
use eve_mem::HierarchyConfig;
use eve_vector::DecoupledVector;

const N: usize = 8192;
const A: i64 = 7;
const X: u64 = 0x1_0000;
const Y: u64 = 0x6_0000;

/// Strip-mined integer SAXPY using the fused multiply-accumulate.
fn saxpy() -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::T0, N as i64); // remaining
    s.li(xreg::A0, X as i64);
    s.li(xreg::A1, Y as i64);
    s.li(xreg::A2, A);
    s.label("strip");
    s.setvl(xreg::T1, xreg::T0);
    s.vload(vreg::V1, xreg::A0); // x
    s.vload(vreg::V2, xreg::A1); // y
                                 // y += a * x  (vmacc.vx)
    s.vop(
        VArithOp::Macc,
        vreg::V2,
        vreg::V1,
        VOperand::Scalar(xreg::A2),
    );
    s.vstore(vreg::V2, xreg::A1);
    s.slli(xreg::T2, xreg::T1, 2);
    s.add(xreg::A0, xreg::A0, xreg::T2);
    s.add(xreg::A1, xreg::A1, xreg::T2);
    s.sub(xreg::T0, xreg::T0, xreg::T1);
    s.bnez(xreg::T0, "strip");
    s.vmfence();
    s.halt();
    s.assemble().expect("saxpy assembles")
}

fn initial_memory() -> Memory {
    let mut mem = Memory::new(1 << 20);
    for i in 0..N as u64 {
        mem.store_u32(X + i * 4, (i * 3 + 1) as u32);
        mem.store_u32(Y + i * 4, (i * 5 + 2) as u32);
    }
    mem
}

fn verify(mem: &Memory) {
    for i in 0..N as u64 {
        let x = (i * 3 + 1) as u32;
        let y0 = (i * 5 + 2) as u32;
        let want = y0.wrapping_add((A as u32).wrapping_mul(x));
        assert_eq!(mem.load_u32(Y + i * 4), want, "element {i}");
    }
}

fn time_on<V: VectorUnit>(unit: V, prog: &eve_isa::Program) -> u64 {
    let mut core = O3Core::with_unit(unit, HierarchyConfig::table_iii());
    let mut interp = Interpreter::new(prog.clone(), initial_memory(), core.hw_vl());
    while let Some(r) = interp.step().expect("runs") {
        core.retire(&r).expect("retires");
    }
    let cycles = core.finish();
    verify(interp.memory());
    cycles.0
}

fn main() {
    let prog = saxpy();
    println!("your kernel, disassembled:\n{}", disasm(&prog));

    // Functional check first: does it compute the right thing?
    let mut interp = Interpreter::new(prog.clone(), initial_memory(), 64);
    interp.run_to_halt().expect("kernel runs");
    verify(interp.memory());
    println!("functional check passed on {N} elements\n");

    // The same binary, timed on different machines.
    let dv = time_on(DecoupledVector::new(), &prog);
    println!("O3+DV : {dv:>9} cycles");
    for n in [1u32, 8, 32] {
        let cycles = time_on(EveEngine::new(n).expect("valid factor"), &prog);
        println!("EVE-{n:<2}: {cycles:>9} cycles");
    }
    println!("\n(one binary, four machines: vsetvl strip-mining adapts the");
    println!(" same code to hardware vector lengths from 64 to 2048)");
}
