//! The "ephemeral" in Ephemeral Vector Engines: watch the engine spawn
//! out of a warm L2 cache (§V-E).
//!
//! Warms the private L2 with scalar traffic, then lets an EVE-8 engine
//! spawn: the L2 halves its associativity, the donated ways flush
//! (dirty lines write back), and the reconfiguration cost scales with
//! resident lines — after which vector execution proceeds on the very
//! SRAM arrays that were cache a few microseconds earlier.
//!
//! ```sh
//! cargo run --release --example ephemeral_engine
//! ```

use eve_common::Cycle;
use eve_core::EveEngine;
use eve_cpu::VectorUnit;
use eve_isa::{vreg, Inst, MemEffect, RegId, Retired, VArithOp, VOperand};
use eve_mem::{Hierarchy, HierarchyConfig, Level};

fn main() {
    let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
    println!(
        "L2 before: {} ways, {} resident lines",
        mem.cache(Level::L2).config().ways,
        mem.cache(Level::L2).resident_lines()
    );

    // Scalar phase: stream through 256 KB, half of it dirty.
    for i in 0..4096u64 {
        mem.access(Level::L1D, 0x10_0000 + i * 64, i % 2 == 0, Cycle(i * 8));
    }
    println!(
        "after scalar warm-up: {} resident L2 lines",
        mem.cache(Level::L2).resident_lines()
    );

    // First vector instruction arrives at commit: the engine spawns.
    let mut engine = EveEngine::new(8).expect("EVE-8 is a valid design point");
    let vadd = Retired {
        seq: 0,
        pc: 0,
        inst: Inst::VOp {
            op: VArithOp::Add,
            vd: vreg::V3,
            vs1: vreg::V1,
            rhs: VOperand::Reg(vreg::V2),
            masked: false,
        },
        reads: [
            Some(RegId::V(vreg::V1)),
            Some(RegId::V(vreg::V2)),
            None,
            None,
        ],
        write: Some(RegId::V(vreg::V3)),
        mem: MemEffect::None,
        vl: 1024,
        branch: None,
        scalar_operand: None,
    };
    let commit = Cycle(40_000);
    engine
        .issue(&vadd, commit, commit, &mut mem)
        .expect("mapped");

    let spawn = engine.stats().get("spawn_cycles");
    println!(
        "\nEVE-8 spawned: {} cycles of reconfiguration (invalidate + write back)",
        spawn
    );
    println!(
        "L2 after spawn: {} ways ({} KB), {} resident lines",
        mem.cache(Level::L2).config().ways,
        mem.cache(Level::L2).config().size_bytes >> 10,
        mem.cache(Level::L2).resident_lines()
    );
    println!(
        "engine: hw VL = {} elements across 32 arrays, first vadd busy {} cycles",
        engine.hw_vl(),
        engine.breakdown().busy.0
    );

    // Returning the ways costs nothing: lines come back invalid.
    let done = engine.drain(&mut mem);
    let back = mem.despawn_vector_mode(done);
    println!(
        "\ndespawned at cycle {}: L2 back to {} ways instantly (lines start invalid)",
        back.0,
        mem.cache(Level::L2).config().ways
    );

    // The scalar stream misses cold now, but the cache refills as usual.
    let a = mem.access(Level::L1D, 0x10_0000, false, back + Cycle(100));
    let refilled = mem.access(Level::L1D, 0x10_0000, false, a.complete + Cycle(100_000));
    println!(
        "first touch after despawn: {:?} hit; second: {:?} hit",
        a.hit_level, refilled.hit_level
    );
}
