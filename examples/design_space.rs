//! Design-space sweep: the paper's headline experiment in miniature.
//!
//! Runs one Rodinia-style kernel across every simulated system and
//! prints performance, area, and area-normalized performance — the
//! §VII argument that EVE reaches decoupled-engine performance at
//! integrated-unit area.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

fn main() {
    let workload = Workload::Pathfinder {
        rows: 6,
        cols: 4096,
    };
    let runner = Runner::new();
    let io = runner
        .run(SystemKind::Io, &workload)
        .expect("baseline runs");

    println!(
        "{} on every Table III system (normalized to IO):\n",
        workload.name()
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12}",
        "system", "wall (ns)", "speedup", "rel.area", "perf/area"
    );
    let mut best: Option<(SystemKind, f64)> = None;
    for sys in SystemKind::all() {
        let r = runner.run(sys, &workload).expect("system runs");
        let speedup = r.speedup_over(&io);
        let per_area = speedup / sys.relative_area();
        if best.is_none_or(|(_, b)| per_area > b) {
            best = Some((sys, per_area));
        }
        println!(
            "{:>8} {:>12.1} {:>9.2}x {:>9.2}x {:>11.2}x",
            sys.to_string(),
            r.wall_ps.as_nanos_f64(),
            speedup,
            sys.relative_area(),
            per_area
        );
    }
    let (sys, per_area) = best.expect("at least one system");
    println!("\nbest area-normalized performance: {sys} at {per_area:.2}x");
}
