//! Quickstart: simulate one kernel on an in-order core and on an
//! EVE-8 engine, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eve_sim::{Runner, SystemKind};
use eve_workloads::Workload;

fn main() {
    // A 16K-element streaming vector add.
    let workload = Workload::vvadd(16384);
    let runner = Runner::new();

    println!("simulating {} ...", workload.name());
    let io = runner
        .run(SystemKind::Io, &workload)
        .expect("IO simulation succeeds");
    let eve = runner
        .run(SystemKind::EveN(8), &workload)
        .expect("EVE-8 simulation succeeds");

    println!(
        "  IO    : {:>12} cycles  ({} dynamic instructions)",
        io.cycles.0, io.dyn_insts
    );
    println!(
        "  EVE-8 : {:>12} cycles  ({} dynamic instructions, hw VL = {})",
        eve.cycles.0,
        eve.dyn_insts,
        eve.stats.get("hw_vl")
    );
    println!("  speedup (wall-time): {:.2}x", eve.speedup_over(&io));

    // Every simulation functionally verifies its outputs against a
    // golden model, so these numbers come from a run that provably
    // computed the right answer.
    let b = eve.breakdown.expect("EVE reports its Fig 7 breakdown");
    println!("\n  where EVE-8's cycles went:");
    for (name, cycles) in b.entries() {
        if cycles.0 > 0 {
            println!("    {name:<14} {:>10}", cycles.0);
        }
    }
}
