//! Flat byte-addressable simulated memory.

/// Little-endian flat memory used by the functional interpreter.
///
/// Addresses start at zero; workloads conventionally place data from
/// `0x1000` upward. Accesses outside the allocated size panic — a
/// simulated segfault that fails tests loudly instead of silently.
///
/// # Examples
///
/// ```
/// use eve_isa::Memory;
/// let mut mem = Memory::new(4096);
/// mem.store_u32(0x100, 0xDEAD_BEEF);
/// assert_eq!(mem.load_u32(0x100), 0xDEAD_BEEF);
/// assert_eq!(mem.load_u8(0x100), 0xEF); // little endian
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed memory.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn slice(&self, addr: u64, len: u64) -> &[u8] {
        let a = addr as usize;
        let l = len as usize;
        assert!(
            a.checked_add(l).is_some_and(|end| end <= self.bytes.len()),
            "memory access at {addr:#x}+{len} out of bounds ({} bytes)",
            self.bytes.len()
        );
        &self.bytes[a..a + l]
    }

    fn slice_mut(&mut self, addr: u64, len: u64) -> &mut [u8] {
        let a = addr as usize;
        let l = len as usize;
        assert!(
            a.checked_add(l).is_some_and(|end| end <= self.bytes.len()),
            "memory access at {addr:#x}+{len} out of bounds ({} bytes)",
            self.bytes.len()
        );
        &mut self.bytes[a..a + l]
    }

    /// Loads one byte.
    #[must_use]
    pub fn load_u8(&self, addr: u64) -> u8 {
        self.slice(addr, 1)[0]
    }

    /// Loads a 16-bit little-endian value.
    #[must_use]
    pub fn load_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.slice(addr, 2).try_into().expect("len 2"))
    }

    /// Loads a 32-bit little-endian value.
    #[must_use]
    pub fn load_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.slice(addr, 4).try_into().expect("len 4"))
    }

    /// Loads a 64-bit little-endian value.
    #[must_use]
    pub fn load_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.slice(addr, 8).try_into().expect("len 8"))
    }

    /// Stores one byte.
    pub fn store_u8(&mut self, addr: u64, value: u8) {
        self.slice_mut(addr, 1)[0] = value;
    }

    /// Stores a 16-bit little-endian value.
    pub fn store_u16(&mut self, addr: u64, value: u16) {
        self.slice_mut(addr, 2)
            .copy_from_slice(&value.to_le_bytes());
    }

    /// Stores a 32-bit little-endian value.
    pub fn store_u32(&mut self, addr: u64, value: u32) {
        self.slice_mut(addr, 4)
            .copy_from_slice(&value.to_le_bytes());
    }

    /// Stores a 64-bit little-endian value.
    pub fn store_u64(&mut self, addr: u64, value: u64) {
        self.slice_mut(addr, 8)
            .copy_from_slice(&value.to_le_bytes());
    }

    /// Reads `count` consecutive 32-bit words starting at `addr`.
    #[must_use]
    pub fn load_u32_slice(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| self.load_u32(addr + i as u64 * 4))
            .collect()
    }

    /// Writes consecutive 32-bit words starting at `addr`.
    pub fn store_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.store_u32(addr + i as u64 * 4, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new(64);
        m.store_u8(0, 0xAB);
        m.store_u16(2, 0xCDEF);
        m.store_u32(4, 0x1234_5678);
        m.store_u64(8, 0x0102_0304_0506_0708);
        assert_eq!(m.load_u8(0), 0xAB);
        assert_eq!(m.load_u16(2), 0xCDEF);
        assert_eq!(m.load_u32(4), 0x1234_5678);
        assert_eq!(m.load_u64(8), 0x0102_0304_0506_0708);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(8);
        m.store_u32(0, 0xAABB_CCDD);
        assert_eq!(m.load_u8(0), 0xDD);
        assert_eq!(m.load_u8(3), 0xAA);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new(64);
        m.store_u32_slice(16, &[1, 2, 3]);
        assert_eq!(m.load_u32_slice(16, 3), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = Memory::new(16);
        let _ = m.load_u32(14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overflow_address_panics() {
        let m = Memory::new(16);
        let _ = m.load_u64(u64::MAX - 2);
    }
}
