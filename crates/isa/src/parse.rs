//! Parsing: the inverse of [`disasm`](crate::disasm) — every textual
//! form the disassembler emits reads back to the identical kernel-IR
//! instruction. The asm → disasm → asm roundtrip is locked by the
//! `isa_properties` fuzz suite.
//!
//! # Examples
//!
//! ```
//! use eve_isa::{parse_inst, Inst};
//! let inst = parse_inst("vadd.vi v3, v1, 7, v0.t")?;
//! assert_eq!(inst.to_string(), "vadd.vi v3, v1, 7, v0.t");
//! assert!(inst.is_vector());
//! # Ok::<(), eve_isa::ParseError>(())
//! ```

use crate::inst::{
    BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VArithOp, VCmpCond, VOperand, VStride,
};
use crate::reg::{Vreg, Xreg};
use std::fmt;

/// A line that is not a well-formed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong, quoting the offending text.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

fn xr(tok: &str) -> Result<Xreg, ParseError> {
    tok.strip_prefix('x')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(Xreg::new)
        .ok_or_else(|| err(format!("bad scalar register `{tok}`")))
}

fn vvr(tok: &str) -> Result<Vreg, ParseError> {
    tok.strip_prefix('v')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(Vreg::new)
        .ok_or_else(|| err(format!("bad vector register `{tok}`")))
}

fn int<T: std::str::FromStr>(tok: &str) -> Result<T, ParseError> {
    tok.parse().map_err(|_| err(format!("bad integer `{tok}`")))
}

fn target(tok: &str) -> Result<u32, ParseError> {
    tok.strip_prefix('@')
        .ok_or_else(|| err(format!("branch target `{tok}` must be `@index`")))
        .and_then(int)
}

/// `(x11)` — the base of a vector memory operand.
fn paren_base(tok: &str) -> Result<Xreg, ParseError> {
    tok.strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| err(format!("expected `(base)`, got `{tok}`")))
        .and_then(xr)
}

/// `8(x10)` — a scalar memory operand.
fn offset_base(tok: &str) -> Result<(i64, Xreg), ParseError> {
    let (off, rest) = tok
        .split_once('(')
        .ok_or_else(|| err(format!("expected `offset(base)`, got `{tok}`")))?;
    let base = rest
        .strip_suffix(')')
        .ok_or_else(|| err(format!("unclosed paren in `{tok}`")))?;
    Ok((int(off)?, xr(base)?))
}

fn expect(mn: &str, ops: &[&str], n: usize) -> Result<(), ParseError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(format!("{mn} takes {n} operand(s), got {}", ops.len())))
    }
}

fn scalar_op(name: &str) -> Option<ScalarOp> {
    Some(match name {
        "add" => ScalarOp::Add,
        "sub" => ScalarOp::Sub,
        "mul" => ScalarOp::Mul,
        "div" => ScalarOp::Div,
        "rem" => ScalarOp::Rem,
        "and" => ScalarOp::And,
        "or" => ScalarOp::Or,
        "xor" => ScalarOp::Xor,
        "sll" => ScalarOp::Sll,
        "srl" => ScalarOp::Srl,
        "sra" => ScalarOp::Sra,
        "slt" => ScalarOp::Slt,
        "sltu" => ScalarOp::Sltu,
        _ => return None,
    })
}

fn varith(name: &str) -> Option<VArithOp> {
    Some(match name {
        "vadd" => VArithOp::Add,
        "vsub" => VArithOp::Sub,
        "vrsub" => VArithOp::Rsub,
        "vmul" => VArithOp::Mul,
        "vmacc" => VArithOp::Macc,
        "vmulh" => VArithOp::Mulh,
        "vmulhu" => VArithOp::Mulhu,
        "vdiv" => VArithOp::Div,
        "vdivu" => VArithOp::Divu,
        "vrem" => VArithOp::Rem,
        "vremu" => VArithOp::Remu,
        "vand" => VArithOp::And,
        "vor" => VArithOp::Or,
        "vxor" => VArithOp::Xor,
        "vsll" => VArithOp::Sll,
        "vsrl" => VArithOp::Srl,
        "vsra" => VArithOp::Sra,
        "vmin" => VArithOp::Min,
        "vmax" => VArithOp::Max,
        "vminu" => VArithOp::Minu,
        "vmaxu" => VArithOp::Maxu,
        _ => return None,
    })
}

fn vcmp(name: &str) -> Option<VCmpCond> {
    Some(match name {
        "vmseq" => VCmpCond::Eq,
        "vmsne" => VCmpCond::Ne,
        "vmslt" => VCmpCond::Lt,
        "vmsltu" => VCmpCond::Ltu,
        "vmsle" => VCmpCond::Le,
        "vmsleu" => VCmpCond::Leu,
        "vmsgt" => VCmpCond::Gt,
        "vmsgtu" => VCmpCond::Gtu,
        _ => return None,
    })
}

fn branch(name: &str) -> Option<BranchCond> {
    Some(match name {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

/// The `.vv`/`.vx`/`.vi` right-hand side of a vector instruction.
fn rhs(mode: &str, tok: &str) -> Result<VOperand, ParseError> {
    match mode {
        "vv" | "v" => Ok(VOperand::Reg(vvr(tok)?)),
        "vx" | "x" => Ok(VOperand::Scalar(xr(tok)?)),
        "vi" | "i" => Ok(VOperand::Imm(int(tok)?)),
        _ => Err(err(format!("bad operand mode `.{mode}`"))),
    }
}

/// Pops a trailing `v0.t` mask annotation, if present.
fn pop_mask(ops: &mut Vec<&str>) -> bool {
    if ops.last() == Some(&"v0.t") {
        ops.pop();
        true
    } else {
        false
    }
}

/// Parses one instruction in the disassembler's textual form.
///
/// # Errors
///
/// Returns [`ParseError`] quoting what could not be read.
#[allow(clippy::too_many_lines)]
pub fn parse_inst(text: &str) -> Result<Inst, ParseError> {
    let text = text.trim();
    let (mn, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    if mn.is_empty() {
        return Err(err("empty instruction"));
    }
    let mut ops: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    // Mnemonics without a dot: scalar world plus a few exact names.
    match mn {
        "halt" => {
            expect(mn, &ops, 0)?;
            return Ok(Inst::Halt);
        }
        "vmfence" => {
            expect(mn, &ops, 0)?;
            return Ok(Inst::VMFence);
        }
        "li" => {
            expect(mn, &ops, 2)?;
            return Ok(Inst::Li {
                rd: xr(ops[0])?,
                imm: int(ops[1])?,
            });
        }
        "j" => {
            expect(mn, &ops, 1)?;
            return Ok(Inst::Jump {
                target: target(ops[0])?,
            });
        }
        "vsetvli" => {
            expect(mn, &ops, 3)?;
            if ops[2] != "e32" {
                return Err(err(format!("vsetvli supports only e32, got `{}`", ops[2])));
            }
            return Ok(Inst::SetVl {
                rd: xr(ops[0])?,
                avl: xr(ops[1])?,
            });
        }
        "lb" | "lh" | "lw" | "ld" | "sb" | "sh" | "sw" | "sd" => {
            expect(mn, &ops, 2)?;
            let width = match &mn[1..] {
                "b" => MemWidth::B,
                "h" => MemWidth::H,
                "w" => MemWidth::W,
                _ => MemWidth::D,
            };
            let (offset, base) = offset_base(ops[1])?;
            return Ok(if mn.starts_with('l') {
                Inst::Load {
                    width,
                    rd: xr(ops[0])?,
                    base,
                    offset,
                }
            } else {
                Inst::Store {
                    width,
                    src: xr(ops[0])?,
                    base,
                    offset,
                }
            });
        }
        _ => {}
    }
    if let Some(cond) = branch(mn) {
        expect(mn, &ops, 3)?;
        return Ok(Inst::Branch {
            cond,
            rs1: xr(ops[0])?,
            rs2: xr(ops[1])?,
            target: target(ops[2])?,
        });
    }
    if let Some(op) = scalar_op(mn) {
        expect(mn, &ops, 3)?;
        return Ok(Inst::Op {
            op,
            rd: xr(ops[0])?,
            rs1: xr(ops[1])?,
            rs2: xr(ops[2])?,
        });
    }
    if let Some(op) = mn.strip_suffix('i').and_then(scalar_op) {
        expect(mn, &ops, 3)?;
        return Ok(Inst::OpImm {
            op,
            rd: xr(ops[0])?,
            rs1: xr(ops[1])?,
            imm: int(ops[2])?,
        });
    }

    // Everything else is `base.suffix` vector syntax.
    let Some((base, suffix)) = mn.split_once('.') else {
        return Err(err(format!("unknown instruction `{mn}`")));
    };
    match (base, suffix) {
        ("vle32" | "vse32", "v") => {
            let masked = pop_mask(&mut ops);
            expect(mn, &ops, 2)?;
            let (reg, mem_base) = (vvr(ops[0])?, paren_base(ops[1])?);
            Ok(build_vmem(base, reg, mem_base, VStride::Unit, masked))
        }
        ("vlse32" | "vsse32", "v") => {
            let masked = pop_mask(&mut ops);
            expect(mn, &ops, 3)?;
            let stride = VStride::Strided(xr(ops[2])?);
            Ok(build_vmem(
                base,
                vvr(ops[0])?,
                paren_base(ops[1])?,
                stride,
                masked,
            ))
        }
        ("vluxei32" | "vsuxei32", "v") => {
            let masked = pop_mask(&mut ops);
            expect(mn, &ops, 3)?;
            let stride = VStride::Indexed(vvr(ops[2])?);
            Ok(build_vmem(
                base,
                vvr(ops[0])?,
                paren_base(ops[1])?,
                stride,
                masked,
            ))
        }
        ("vid", "v") => {
            expect(mn, &ops, 1)?;
            Ok(Inst::VId { vd: vvr(ops[0])? })
        }
        ("vmv", "v.v" | "v.x" | "v.i") => {
            expect(mn, &ops, 2)?;
            Ok(Inst::VMv {
                vd: vvr(ops[0])?,
                rhs: rhs(&suffix[2..], ops[1])?,
            })
        }
        ("vmv", "x.s") => {
            expect(mn, &ops, 2)?;
            Ok(Inst::VMvXS {
                rd: xr(ops[0])?,
                vs: vvr(ops[1])?,
            })
        }
        ("vmv", "s.x") => {
            expect(mn, &ops, 2)?;
            Ok(Inst::VMvSX {
                vd: vvr(ops[0])?,
                rs: xr(ops[1])?,
            })
        }
        ("vmnot", "m") => {
            expect(mn, &ops, 2)?;
            let (md, m1) = (vvr(ops[0])?, vvr(ops[1])?);
            // `vmnot.m` has no second source; it parses as itself.
            Ok(Inst::VMask {
                op: MaskOp::Not,
                md,
                m1,
                m2: m1,
            })
        }
        ("vmand" | "vmor" | "vmxor" | "vmandn", "mm") => {
            expect(mn, &ops, 3)?;
            let op = match base {
                "vmand" => MaskOp::And,
                "vmor" => MaskOp::Or,
                "vmxor" => MaskOp::Xor,
                _ => MaskOp::AndNot,
            };
            Ok(Inst::VMask {
                op,
                md: vvr(ops[0])?,
                m1: vvr(ops[1])?,
                m2: vvr(ops[2])?,
            })
        }
        // `.m` is the vector-vector form: the disassembler compresses
        // `vvm` to `m` (both leading v's trimmed).
        ("vmerge", "m" | "xm" | "im") => {
            if ops.last() != Some(&"v0") {
                return Err(err("vmerge requires a trailing `v0` mask operand"));
            }
            ops.pop();
            expect(mn, &ops, 3)?;
            let mode = match suffix {
                "m" => "v",
                other => &other[..1],
            };
            Ok(Inst::VMerge {
                vd: vvr(ops[0])?,
                vs1: vvr(ops[1])?,
                rhs: rhs(mode, ops[2])?,
            })
        }
        ("vrgather", "vv") => {
            expect(mn, &ops, 3)?;
            Ok(Inst::VRGather {
                vd: vvr(ops[0])?,
                vs: vvr(ops[1])?,
                idx: vvr(ops[2])?,
            })
        }
        ("vslideup" | "vslidedown", "vx") => {
            expect(mn, &ops, 3)?;
            Ok(Inst::VSlide {
                vd: vvr(ops[0])?,
                vs: vvr(ops[1])?,
                amount: xr(ops[2])?,
                up: base == "vslideup",
            })
        }
        ("vredsum" | "vredmin" | "vredmax" | "vredminu" | "vredmaxu", "vs") => {
            expect(mn, &ops, 3)?;
            let op = match base {
                "vredsum" => RedOp::Sum,
                "vredmin" => RedOp::Min,
                "vredmax" => RedOp::Max,
                "vredminu" => RedOp::Minu,
                _ => RedOp::Maxu,
            };
            Ok(Inst::VRed {
                op,
                vd: vvr(ops[0])?,
                vs2: vvr(ops[1])?,
                vs1: vvr(ops[2])?,
            })
        }
        _ => {
            if let Some(cond) = vcmp(base) {
                expect(mn, &ops, 3)?;
                return Ok(Inst::VCmp {
                    cond,
                    vd: vvr(ops[0])?,
                    vs1: vvr(ops[1])?,
                    rhs: rhs(suffix, ops[2])?,
                });
            }
            if let Some(op) = varith(base) {
                let masked = pop_mask(&mut ops);
                expect(mn, &ops, 3)?;
                return Ok(Inst::VOp {
                    op,
                    vd: vvr(ops[0])?,
                    vs1: vvr(ops[1])?,
                    rhs: rhs(suffix, ops[2])?,
                    masked,
                });
            }
            Err(err(format!("unknown instruction `{mn}`")))
        }
    }
}

fn build_vmem(base: &str, reg: Vreg, mem_base: Xreg, stride: VStride, masked: bool) -> Inst {
    if base.starts_with("vl") {
        Inst::VLoad {
            vd: reg,
            base: mem_base,
            stride,
            masked,
        }
    } else {
        Inst::VStore {
            vs: reg,
            base: mem_base,
            stride,
            masked,
        }
    }
}

/// Parses a whole listing, one instruction per line. Blank lines are
/// skipped; a leading `  3:` line number (as printed by
/// [`disasm`](crate::disasm::disasm)) is stripped, so a disassembly
/// feeds straight back in.
///
/// # Errors
///
/// Returns the first line's [`ParseError`], prefixed with its line
/// number.
pub fn parse_program(text: &str) -> Result<Vec<Inst>, ParseError> {
    let mut insts = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let mut line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some((prefix, rest)) = line.split_once(':') {
            if prefix.trim().parse::<usize>().is_ok() {
                line = rest.trim();
            }
        }
        insts.push(
            parse_inst(line).map_err(|e| err(format!("line {}: {}", lineno + 1, e.message)))?,
        );
    }
    Ok(insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{vreg, xreg};

    #[test]
    fn scalar_forms_roundtrip() {
        for text in [
            "li x10, -3",
            "add x1, x2, x3",
            "sltui x4, x5, 17",
            "lw x6, -8(x10)",
            "sd x7, 0(x2)",
            "bne x5, x0, @4",
            "j @9",
            "halt",
            "vsetvli x5, x10, e32",
            "vmfence",
        ] {
            assert_eq!(parse_inst(text).unwrap().to_string(), text);
        }
    }

    #[test]
    fn vector_forms_roundtrip() {
        for text in [
            "vle32.v v1, (x11)",
            "vlse32.v v1, (x11), x12, v0.t",
            "vsuxei32.v v2, (x3), v4",
            "vadd.vi v3, v1, 7, v0.t",
            "vmacc.vx v3, v1, x9",
            "vmseq.vi v0, v1, 0",
            "vmerge.im v2, v3, -5, v0",
            "vmerge.m v2, v3, v4, v0",
            "vmandn.mm v1, v2, v3",
            "vmnot.m v1, v2",
            "vmv.v.i v5, 42",
            "vmv.x.s x5, v9",
            "vredmaxu.vs v4, v2, v3",
            "vslidedown.vx v1, v2, x3",
            "vrgather.vv v1, v2, v3",
            "vid.v v7",
        ] {
            assert_eq!(parse_inst(text).unwrap().to_string(), text);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        for text in [
            "",
            "frobnicate x1",
            "li x99, 3",
            "add x1, x2",
            "vadd.vz v1, v2, v3",
            "vmerge.m v1, v2, v3",
            "lw x1, (x2",
            "beq x1, x2, 4",
        ] {
            assert!(parse_inst(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn listings_with_line_numbers_parse() {
        let mut a = crate::asm::Asm::new();
        a.li(xreg::A0, 64);
        a.setvl(xreg::T0, xreg::A0);
        a.vload(vreg::V1, xreg::A1);
        a.halt();
        let prog = a.assemble().unwrap();
        let text = crate::disasm::disasm(&prog);
        let parsed = parse_program(&text).unwrap();
        assert_eq!(parsed, prog.insts());
    }

    #[test]
    fn errors_name_the_line() {
        let e = parse_program("halt\nwat x1").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }
}
