//! Disassembly: RVV-flavoured textual forms for kernel-IR
//! instructions and whole programs.

use crate::asm::Program;
use crate::inst::{
    BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VArithOp, VCmpCond, VOperand, VStride,
};
use std::fmt;

fn scalar_op_name(op: ScalarOp) -> &'static str {
    match op {
        ScalarOp::Add => "add",
        ScalarOp::Sub => "sub",
        ScalarOp::Mul => "mul",
        ScalarOp::Div => "div",
        ScalarOp::Rem => "rem",
        ScalarOp::And => "and",
        ScalarOp::Or => "or",
        ScalarOp::Xor => "xor",
        ScalarOp::Sll => "sll",
        ScalarOp::Srl => "srl",
        ScalarOp::Sra => "sra",
        ScalarOp::Slt => "slt",
        ScalarOp::Sltu => "sltu",
    }
}

fn varith_name(op: VArithOp) -> &'static str {
    match op {
        VArithOp::Add => "vadd",
        VArithOp::Sub => "vsub",
        VArithOp::Rsub => "vrsub",
        VArithOp::Mul => "vmul",
        VArithOp::Macc => "vmacc",
        VArithOp::Mulh => "vmulh",
        VArithOp::Mulhu => "vmulhu",
        VArithOp::Div => "vdiv",
        VArithOp::Divu => "vdivu",
        VArithOp::Rem => "vrem",
        VArithOp::Remu => "vremu",
        VArithOp::And => "vand",
        VArithOp::Or => "vor",
        VArithOp::Xor => "vxor",
        VArithOp::Sll => "vsll",
        VArithOp::Srl => "vsrl",
        VArithOp::Sra => "vsra",
        VArithOp::Min => "vmin",
        VArithOp::Max => "vmax",
        VArithOp::Minu => "vminu",
        VArithOp::Maxu => "vmaxu",
    }
}

fn vcmp_name(c: VCmpCond) -> &'static str {
    match c {
        VCmpCond::Eq => "vmseq",
        VCmpCond::Ne => "vmsne",
        VCmpCond::Lt => "vmslt",
        VCmpCond::Ltu => "vmsltu",
        VCmpCond::Le => "vmsle",
        VCmpCond::Leu => "vmsleu",
        VCmpCond::Gt => "vmsgt",
        VCmpCond::Gtu => "vmsgtu",
    }
}

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::H => "h",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

struct Rhs(VOperand);

impl fmt::Display for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            VOperand::Reg(v) => write!(f, "{v}"),
            VOperand::Scalar(x) => write!(f, "{x}"),
            VOperand::Imm(i) => write!(f, "{i}"),
        }
    }
}

fn rhs_mode(rhs: VOperand) -> &'static str {
    match rhs {
        VOperand::Reg(_) => "vv",
        VOperand::Scalar(_) => "vx",
        VOperand::Imm(_) => "vi",
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", scalar_op_name(op))
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", scalar_op_name(op))
            }
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => write!(f, "l{} {rd}, {offset}({base})", width_suffix(width)),
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => write!(f, "s{} {src}, {offset}({base})", width_suffix(width)),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, @{target}")
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Halt => write!(f, "halt"),
            Inst::SetVl { rd, avl } => write!(f, "vsetvli {rd}, {avl}, e32"),
            Inst::VMFence => write!(f, "vmfence"),
            Inst::VLoad {
                vd,
                base,
                stride,
                masked,
            } => {
                let m = if masked { ", v0.t" } else { "" };
                match stride {
                    VStride::Unit => write!(f, "vle32.v {vd}, ({base}){m}"),
                    VStride::Strided(s) => write!(f, "vlse32.v {vd}, ({base}), {s}{m}"),
                    VStride::Indexed(i) => write!(f, "vluxei32.v {vd}, ({base}), {i}{m}"),
                }
            }
            Inst::VStore {
                vs,
                base,
                stride,
                masked,
            } => {
                let m = if masked { ", v0.t" } else { "" };
                match stride {
                    VStride::Unit => write!(f, "vse32.v {vs}, ({base}){m}"),
                    VStride::Strided(s) => write!(f, "vsse32.v {vs}, ({base}), {s}{m}"),
                    VStride::Indexed(i) => write!(f, "vsuxei32.v {vs}, ({base}), {i}{m}"),
                }
            }
            Inst::VOp {
                op,
                vd,
                vs1,
                rhs,
                masked,
            } => {
                let m = if masked { ", v0.t" } else { "" };
                write!(
                    f,
                    "{}.{} {vd}, {vs1}, {}{m}",
                    varith_name(op),
                    rhs_mode(rhs),
                    Rhs(rhs)
                )
            }
            Inst::VCmp { cond, vd, vs1, rhs } => write!(
                f,
                "{}.{} {vd}, {vs1}, {}",
                vcmp_name(cond),
                rhs_mode(rhs),
                Rhs(rhs)
            ),
            Inst::VMerge { vd, vs1, rhs } => {
                write!(
                    f,
                    "vmerge.{}m {vd}, {vs1}, {}, v0",
                    rhs_mode(rhs).trim_start_matches('v'),
                    Rhs(rhs)
                )
            }
            Inst::VMask { op, md, m1, m2 } => match op {
                MaskOp::And => write!(f, "vmand.mm {md}, {m1}, {m2}"),
                MaskOp::Or => write!(f, "vmor.mm {md}, {m1}, {m2}"),
                MaskOp::Xor => write!(f, "vmxor.mm {md}, {m1}, {m2}"),
                MaskOp::AndNot => write!(f, "vmandn.mm {md}, {m1}, {m2}"),
                MaskOp::Not => write!(f, "vmnot.m {md}, {m1}"),
            },
            Inst::VMv { vd, rhs } => match rhs {
                VOperand::Reg(v) => write!(f, "vmv.v.v {vd}, {v}"),
                VOperand::Scalar(x) => write!(f, "vmv.v.x {vd}, {x}"),
                VOperand::Imm(i) => write!(f, "vmv.v.i {vd}, {i}"),
            },
            Inst::VMvXS { rd, vs } => write!(f, "vmv.x.s {rd}, {vs}"),
            Inst::VMvSX { vd, rs } => write!(f, "vmv.s.x {vd}, {rs}"),
            Inst::VRed { op, vd, vs2, vs1 } => {
                let name = match op {
                    RedOp::Sum => "vredsum",
                    RedOp::Min => "vredmin",
                    RedOp::Max => "vredmax",
                    RedOp::Minu => "vredminu",
                    RedOp::Maxu => "vredmaxu",
                };
                write!(f, "{name}.vs {vd}, {vs2}, {vs1}")
            }
            Inst::VSlide { vd, vs, amount, up } => {
                let dir = if up { "up" } else { "down" };
                write!(f, "vslide{dir}.vx {vd}, {vs}, {amount}")
            }
            Inst::VRGather { vd, vs, idx } => write!(f, "vrgather.vv {vd}, {vs}, {idx}"),
            Inst::VId { vd } => write!(f, "vid.v {vd}"),
        }
    }
}

/// Disassembles a whole program, one numbered instruction per line.
///
/// # Examples
///
/// ```
/// use eve_isa::{disasm, Asm, xreg};
/// let mut a = Asm::new();
/// a.li(xreg::A0, 7);
/// a.halt();
/// let text = disasm(&a.assemble()?);
/// assert!(text.contains("li x10, 7"));
/// # Ok::<(), eve_isa::IsaError>(())
/// ```
#[must_use]
pub fn disasm(prog: &Program) -> String {
    prog.insts()
        .iter()
        .enumerate()
        .map(|(i, inst)| format!("{i:>5}: {inst}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{vreg, xreg};

    #[test]
    fn scalar_forms() {
        assert_eq!(
            Inst::Li {
                rd: xreg::T0,
                imm: -3
            }
            .to_string(),
            "li x5, -3"
        );
        assert_eq!(
            Inst::Load {
                width: MemWidth::W,
                rd: xreg::T1,
                base: xreg::A0,
                offset: 8
            }
            .to_string(),
            "lw x6, 8(x10)"
        );
        assert_eq!(
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: xreg::T0,
                rs2: xreg::ZERO,
                target: 4
            }
            .to_string(),
            "bne x5, x0, @4"
        );
    }

    #[test]
    fn vector_forms() {
        assert_eq!(
            Inst::VOp {
                op: VArithOp::Add,
                vd: vreg::V3,
                vs1: vreg::V1,
                rhs: VOperand::Imm(7),
                masked: true
            }
            .to_string(),
            "vadd.vi v3, v1, 7, v0.t"
        );
        assert_eq!(
            Inst::VLoad {
                vd: vreg::V1,
                base: xreg::A1,
                stride: VStride::Strided(xreg::A2),
                masked: false
            }
            .to_string(),
            "vlse32.v v1, (x11), x12"
        );
        assert_eq!(
            Inst::VRed {
                op: RedOp::Sum,
                vd: vreg::V4,
                vs2: vreg::V2,
                vs1: vreg::V3
            }
            .to_string(),
            "vredsum.vs v4, v2, v3"
        );
        assert_eq!(
            Inst::VMvXS {
                rd: xreg::T0,
                vs: vreg::V9
            }
            .to_string(),
            "vmv.x.s x5, v9"
        );
    }

    #[test]
    fn whole_program_disassembles() {
        let mut a = crate::asm::Asm::new();
        a.li(xreg::A0, 64);
        a.setvl(xreg::T0, xreg::A0);
        a.vload(vreg::V1, xreg::A1);
        a.halt();
        let text = disasm(&a.assemble().unwrap());
        assert!(text.contains("0: li x10, 64"));
        assert!(text.contains("vsetvli x5, x10, e32"));
        assert!(text.contains("vle32.v v1, (x11)"));
    }
}
