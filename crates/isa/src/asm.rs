//! Label-resolving assembler for kernel-IR programs.
//!
//! [`Asm`] plays the role LLVM played for the paper's hand-vectorized
//! kernels: a convenient way to write scalar + RVV-style assembly. Each
//! mnemonic method appends one [`Inst`]; [`Asm::assemble`] resolves
//! labels into a [`Program`].

use crate::inst::{
    BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VArithOp, VCmpCond, VOperand, VStride,
};
use crate::interp::IsaError;
use crate::reg::{Vreg, Xreg};
use std::collections::HashMap;

/// An assembled, label-resolved program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// The instructions, in order. Branch targets index this slice.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The assembler. See the crate-level example for typical use.
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl Asm {
    /// Starts an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is redefined.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_owned(), self.insts.len() as u32);
        assert!(prev.is_none(), "label {name} defined twice");
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] if a branch references a
    /// label that was never defined.
    pub fn assemble(mut self) -> Result<Program, IsaError> {
        for (at, name) in &self.fixups {
            let Some(&target) = self.labels.get(name) else {
                return Err(IsaError::UndefinedLabel(name.clone()));
            };
            match &mut self.insts[*at] {
                Inst::Branch { target: t, .. } | Inst::Jump { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Ok(Program { insts: self.insts })
    }

    // ---- scalar ----

    /// `rd = imm`.
    pub fn li(&mut self, rd: Xreg, imm: i64) {
        self.push(Inst::Li { rd, imm });
    }

    /// `rd = rs` (scalar move).
    pub fn mv(&mut self, rd: Xreg, rs: Xreg) {
        self.addi(rd, rs, 0);
    }

    fn op(&mut self, op: ScalarOp, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.push(Inst::Op { op, rd, rs1, rs2 });
    }

    fn op_imm(&mut self, op: ScalarOp, rd: Xreg, rs1: Xreg, imm: i64) {
        self.push(Inst::OpImm { op, rd, rs1, imm });
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Mul, rd, rs1, rs2);
    }

    /// `rd = rs1 / rs2` (signed).
    pub fn div(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Div, rd, rs1, rs2);
    }

    /// `rd = rs1 % rs2` (signed).
    pub fn rem(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Rem, rd, rs1, rs2);
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::And, rd, rs1, rs2);
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Or, rd, rs1, rs2);
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Xor, rd, rs1, rs2);
    }

    /// `rd = rs1 << rs2`.
    pub fn sll(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Sll, rd, rs1, rs2);
    }

    /// `rd = rs1 < rs2` (signed).
    pub fn slt(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Slt, rd, rs1, rs2);
    }

    /// `rd = rs1 < rs2` (unsigned).
    pub fn sltu(&mut self, rd: Xreg, rs1: Xreg, rs2: Xreg) {
        self.op(ScalarOp::Sltu, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::Add, rd, rs1, imm);
    }

    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::Mul, rd, rs1, imm);
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::And, rd, rs1, imm);
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::Sll, rd, rs1, imm);
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::Srl, rd, rs1, imm);
    }

    /// `rd = rs1 >> imm` (arithmetic).
    pub fn srai(&mut self, rd: Xreg, rs1: Xreg, imm: i64) {
        self.op_imm(ScalarOp::Sra, rd, rs1, imm);
    }

    /// `rd = zext(mem8[base + offset])`.
    pub fn lb(&mut self, rd: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Load {
            width: MemWidth::B,
            rd,
            base,
            offset,
        });
    }

    /// `rd = zext(mem32[base + offset])`.
    pub fn lw(&mut self, rd: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Load {
            width: MemWidth::W,
            rd,
            base,
            offset,
        });
    }

    /// `rd = mem64[base + offset]`.
    pub fn ld(&mut self, rd: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Load {
            width: MemWidth::D,
            rd,
            base,
            offset,
        });
    }

    /// `mem8[base + offset] = src`.
    pub fn sb(&mut self, src: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Store {
            width: MemWidth::B,
            src,
            base,
            offset,
        });
    }

    /// `mem32[base + offset] = src`.
    pub fn sw(&mut self, src: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Store {
            width: MemWidth::W,
            src,
            base,
            offset,
        });
    }

    /// `mem64[base + offset] = src`.
    pub fn sd(&mut self, src: Xreg, base: Xreg, offset: i64) {
        self.push(Inst::Store {
            width: MemWidth::D,
            src,
            base,
            offset,
        });
    }

    fn branch(&mut self, cond: BranchCond, rs1: Xreg, rs2: Xreg, label: &str) {
        self.fixups.push((self.insts.len(), label.to_owned()));
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Xreg, rs2: Xreg, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Xreg, rs2: Xreg, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Xreg, rs2: Xreg, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Xreg, rs2: Xreg, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Xreg, rs2: Xreg, label: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }

    /// Branch if zero.
    pub fn beqz(&mut self, rs1: Xreg, label: &str) {
        self.branch(BranchCond::Eq, rs1, crate::reg::xreg::ZERO, label);
    }

    /// Branch if nonzero.
    pub fn bnez(&mut self, rs1: Xreg, label: &str) {
        self.branch(BranchCond::Ne, rs1, crate::reg::xreg::ZERO, label);
    }

    /// Unconditional jump.
    pub fn j(&mut self, label: &str) {
        self.fixups.push((self.insts.len(), label.to_owned()));
        self.push(Inst::Jump { target: 0 });
    }

    /// Stop execution.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    // ---- vector ----

    /// `vsetvli rd, avl, e32`.
    pub fn setvl(&mut self, rd: Xreg, avl: Xreg) {
        self.push(Inst::SetVl { rd, avl });
    }

    /// `vmfence` (§V-A).
    pub fn vmfence(&mut self) {
        self.push(Inst::VMFence);
    }

    /// `vle32.v vd, (base)`.
    pub fn vload(&mut self, vd: Vreg, base: Xreg) {
        self.push(Inst::VLoad {
            vd,
            base,
            stride: VStride::Unit,
            masked: false,
        });
    }

    /// `vlse32.v vd, (base), stride` — stride in bytes.
    pub fn vload_strided(&mut self, vd: Vreg, base: Xreg, stride: Xreg) {
        self.push(Inst::VLoad {
            vd,
            base,
            stride: VStride::Strided(stride),
            masked: false,
        });
    }

    /// `vluxei32.v vd, (base), idx` — gather with byte offsets in `idx`.
    pub fn vload_indexed(&mut self, vd: Vreg, base: Xreg, idx: Vreg) {
        self.push(Inst::VLoad {
            vd,
            base,
            stride: VStride::Indexed(idx),
            masked: false,
        });
    }

    /// `vse32.v vs, (base)`.
    pub fn vstore(&mut self, vs: Vreg, base: Xreg) {
        self.push(Inst::VStore {
            vs,
            base,
            stride: VStride::Unit,
            masked: false,
        });
    }

    /// `vsse32.v vs, (base), stride`.
    pub fn vstore_strided(&mut self, vs: Vreg, base: Xreg, stride: Xreg) {
        self.push(Inst::VStore {
            vs,
            base,
            stride: VStride::Strided(stride),
            masked: false,
        });
    }

    /// `vsuxei32.v vs, (base), idx` — scatter.
    pub fn vstore_indexed(&mut self, vs: Vreg, base: Xreg, idx: Vreg) {
        self.push(Inst::VStore {
            vs,
            base,
            stride: VStride::Indexed(idx),
            masked: false,
        });
    }

    /// Masked unit-stride store (`vse32.v vs, (base), v0.t`).
    pub fn vstore_masked(&mut self, vs: Vreg, base: Xreg) {
        self.push(Inst::VStore {
            vs,
            base,
            stride: VStride::Unit,
            masked: true,
        });
    }

    /// Masked gather (`vluxei32.v vd, (base), idx, v0.t`) — inactive
    /// lanes keep their old `vd` contents.
    pub fn vload_indexed_masked(&mut self, vd: Vreg, base: Xreg, idx: Vreg) {
        self.push(Inst::VLoad {
            vd,
            base,
            stride: VStride::Indexed(idx),
            masked: true,
        });
    }

    /// Masked scatter (`vsuxei32.v vs, (base), idx, v0.t`) — inactive
    /// lanes store nothing.
    pub fn vstore_indexed_masked(&mut self, vs: Vreg, base: Xreg, idx: Vreg) {
        self.push(Inst::VStore {
            vs,
            base,
            stride: VStride::Indexed(idx),
            masked: true,
        });
    }

    /// Generic vector ALU op.
    pub fn vop(&mut self, op: VArithOp, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.push(Inst::VOp {
            op,
            vd,
            vs1,
            rhs,
            masked: false,
        });
    }

    /// Generic masked vector ALU op (`..., v0.t`).
    pub fn vop_masked(&mut self, op: VArithOp, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.push(Inst::VOp {
            op,
            vd,
            vs1,
            rhs,
            masked: true,
        });
    }

    /// `vadd`.
    pub fn vadd(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Add, vd, vs1, rhs);
    }

    /// `vsub`.
    pub fn vsub(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Sub, vd, vs1, rhs);
    }

    /// `vmul`.
    pub fn vmul(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Mul, vd, vs1, rhs);
    }

    /// `vmin` (signed).
    pub fn vmin(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Min, vd, vs1, rhs);
    }

    /// `vmax` (signed).
    pub fn vmax(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Max, vd, vs1, rhs);
    }

    /// `vand`.
    pub fn vand(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::And, vd, vs1, rhs);
    }

    /// `vsll`.
    pub fn vsll(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Sll, vd, vs1, rhs);
    }

    /// `vsrl`.
    pub fn vsrl(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.vop(VArithOp::Srl, vd, vs1, rhs);
    }

    /// Vector compare into mask `vd`.
    pub fn vcmp(&mut self, cond: VCmpCond, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.push(Inst::VCmp { cond, vd, vs1, rhs });
    }

    /// `vmerge.vvm/vxm/vim`.
    pub fn vmerge(&mut self, vd: Vreg, vs1: Vreg, rhs: VOperand) {
        self.push(Inst::VMerge { vd, vs1, rhs });
    }

    /// Mask logical op.
    pub fn vmask(&mut self, op: MaskOp, md: Vreg, m1: Vreg, m2: Vreg) {
        self.push(Inst::VMask { op, md, m1, m2 });
    }

    /// `vmv.v.*`: broadcast/copy.
    pub fn vmv(&mut self, vd: Vreg, rhs: VOperand) {
        self.push(Inst::VMv { vd, rhs });
    }

    /// `vmv.x.s`.
    pub fn vmv_xs(&mut self, rd: Xreg, vs: Vreg) {
        self.push(Inst::VMvXS { rd, vs });
    }

    /// `vmv.s.x`.
    pub fn vmv_sx(&mut self, vd: Vreg, rs: Xreg) {
        self.push(Inst::VMvSX { vd, rs });
    }

    /// Reduction (`vred*.vs vd, vs2, vs1`).
    pub fn vred(&mut self, op: RedOp, vd: Vreg, vs2: Vreg, vs1: Vreg) {
        self.push(Inst::VRed { op, vd, vs2, vs1 });
    }

    /// `vslideup.vx` / `vslidedown.vx`.
    pub fn vslide(&mut self, vd: Vreg, vs: Vreg, amount: Xreg, up: bool) {
        self.push(Inst::VSlide { vd, vs, amount, up });
    }

    /// `vrgather.vv`.
    pub fn vrgather(&mut self, vd: Vreg, vs: Vreg, idx: Vreg) {
        self.push(Inst::VRGather { vd, vs, idx });
    }

    /// `vid.v`.
    pub fn vid(&mut self, vd: Vreg) {
        self.push(Inst::VId { vd });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{vreg, xreg};

    #[test]
    fn labels_resolve() {
        let mut a = Asm::new();
        a.li(xreg::T0, 3);
        a.label("top");
        a.addi(xreg::T0, xreg::T0, -1);
        a.bnez(xreg::T0, "top");
        a.halt();
        let p = a.assemble().unwrap();
        match p.insts()[2] {
            Inst::Branch { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.j("nowhere");
        let err = a.assemble().unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn vector_mnemonics_encode() {
        let mut a = Asm::new();
        a.setvl(xreg::T0, xreg::A0);
        a.vload(vreg::V1, xreg::A1);
        a.vadd(vreg::V2, vreg::V1, VOperand::Imm(5));
        a.vstore(vreg::V2, xreg::A1);
        a.vmfence();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 6);
        assert!(p.insts()[..5].iter().all(Inst::is_vector));
    }
}
