//! The kernel IR: an RVV-like vector ISA, assembler, and functional
//! interpreter.
//!
//! The paper evaluates EVE on Rodinia/RiVEC kernels hand-vectorized with
//! RISC-V vector intrinsics. This crate provides the equivalent
//! substrate: a small register machine with RV-style scalar instructions
//! plus the 32-bit integer subset of the RISC-V vector extension —
//! `vsetvl`, unit-stride / strided / indexed loads and stores, the full
//! integer ALU including multiply/divide, compares and mask registers,
//! predication, merges, reductions, slides and gathers, and the
//! scalar-vector memory fence (`vmfence`) EVE introduces (§V-A).
//!
//! Execution is *functional*: [`Interpreter`] runs a [`Program`] against
//! a [`Memory`] and emits one [`Retired`] record per committed
//! instruction. Timing models (in `eve-cpu`, `eve-vector`, `eve-core`)
//! consume that stream and charge cycles — the same
//! execution/timing split the paper's gem5 model uses (§VII-A).
//!
//! # Examples
//!
//! Vector-add two arrays with strip-mining, exactly as an RVV binary
//! would:
//!
//! ```
//! use eve_isa::{Asm, Interpreter, Memory, VOperand, xreg, vreg};
//!
//! let (a, b, n) = (0x1000u64, 0x2000u64, 64i64);
//! let mut asm = Asm::new();
//! asm.li(xreg::T0, n);            // remaining elements
//! asm.li(xreg::T1, a as i64);     // source/dest pointer
//! asm.li(xreg::T2, b as i64);
//! asm.label("strip");
//! asm.setvl(xreg::T3, xreg::T0);  // vl = min(remaining, hw vl)
//! asm.vload(vreg::V1, xreg::T1);
//! asm.vload(vreg::V2, xreg::T2);
//! asm.vadd(vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
//! asm.vstore(vreg::V3, xreg::T1);
//! // advance pointers by vl * 4 and loop
//! asm.slli(xreg::T4, xreg::T3, 2);
//! asm.add(xreg::T1, xreg::T1, xreg::T4);
//! asm.add(xreg::T2, xreg::T2, xreg::T4);
//! asm.sub(xreg::T0, xreg::T0, xreg::T3);
//! asm.bnez(xreg::T0, "strip");
//! asm.halt();
//!
//! let mut mem = Memory::new(1 << 16);
//! for i in 0..64 {
//!     mem.store_u32(a + i * 4, i as u32);
//!     mem.store_u32(b + i * 4, 100);
//! }
//! let mut interp = Interpreter::new(asm.assemble()?, mem, 8); // hw vl = 8
//! interp.run_to_halt()?;
//! assert_eq!(interp.memory().load_u32(a), 100);
//! assert_eq!(interp.memory().load_u32(a + 63 * 4), 163);
//! # Ok::<(), eve_isa::IsaError>(())
//! ```

pub mod asm;
pub mod characterize;
pub mod disasm;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod parse;
pub mod reg;

pub use asm::{Asm, Program};
pub use characterize::{Characterization, InstClass};
pub use disasm::disasm;
pub use inst::{
    BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VArithOp, VCmpCond, VOperand, VStride,
};
pub use interp::{Interpreter, IsaError, MemEffect, Retired};
pub use mem::Memory;
pub use parse::{parse_inst, parse_program, ParseError};
pub use reg::{vreg, xreg, RegId, Vreg, Xreg};
