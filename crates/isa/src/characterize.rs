//! Workload characterization (the left half of Table IV).
//!
//! Feed every [`Retired`] record to a [`Characterization`] and it
//! accumulates the statistics the paper reports per benchmark: dynamic
//! instruction counts, the vector instruction mix (ctrl / ialu / imul /
//! cross-element / unit-stride / strided / indexed / predicated),
//! total operations, vector-operation share, logical parallelism, and
//! arithmetic intensity.

use crate::inst::{Inst, VArithOp, VStride};
use crate::interp::Retired;

/// Classification of a vector instruction, matching Table IV's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Vector control: `vsetvl`, `vmfence`.
    Ctrl,
    /// Vector integer ALU (add/sub/logic/shift/min/max/compare/merge/mv).
    Ialu,
    /// Vector integer multiply/divide.
    Imul,
    /// Cross-element: reductions, slides, gathers, `vmv.x.s`/`vmv.s.x`.
    Xe,
    /// Unit-stride memory.
    UnitStride,
    /// Constant-stride memory.
    ConstStride,
    /// Indexed (gather/scatter) memory.
    Indexed,
}

/// Classifies a vector instruction; `None` for scalar instructions.
#[must_use]
pub fn classify(inst: &Inst) -> Option<InstClass> {
    match inst {
        Inst::SetVl { .. } | Inst::VMFence => Some(InstClass::Ctrl),
        Inst::VLoad { stride, .. } | Inst::VStore { stride, .. } => Some(match stride {
            VStride::Unit => InstClass::UnitStride,
            VStride::Strided(_) => InstClass::ConstStride,
            VStride::Indexed(_) => InstClass::Indexed,
        }),
        Inst::VOp { op, .. } => Some(match op {
            VArithOp::Mul
            | VArithOp::Macc
            | VArithOp::Mulh
            | VArithOp::Mulhu
            | VArithOp::Div
            | VArithOp::Divu
            | VArithOp::Rem
            | VArithOp::Remu => InstClass::Imul,
            _ => InstClass::Ialu,
        }),
        Inst::VCmp { .. } | Inst::VMerge { .. } | Inst::VMask { .. } | Inst::VMv { .. } => {
            Some(InstClass::Ialu)
        }
        Inst::VMvXS { .. }
        | Inst::VMvSX { .. }
        | Inst::VRed { .. }
        | Inst::VSlide { .. }
        | Inst::VRGather { .. }
        | Inst::VId { .. } => Some(InstClass::Xe),
        _ => None,
    }
}

/// Whether the instruction executes under a mask (`prd` column).
#[must_use]
pub fn is_predicated(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::VOp { masked: true, .. }
            | Inst::VLoad { masked: true, .. }
            | Inst::VStore { masked: true, .. }
            | Inst::VMerge { .. }
    )
}

/// Accumulated workload statistics (Table IV, characterization half).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Characterization {
    /// Dynamic instructions (DIns).
    pub dyn_insts: u64,
    /// Dynamic vector-type instructions.
    pub vector_insts: u64,
    /// Vector control instructions.
    pub ctrl: u64,
    /// Vector integer ALU instructions.
    pub ialu: u64,
    /// Vector multiply/divide instructions.
    pub imul: u64,
    /// Cross-element instructions.
    pub xe: u64,
    /// Unit-stride memory instructions.
    pub unit_stride: u64,
    /// Constant-stride memory instructions.
    pub const_stride: u64,
    /// Indexed memory instructions.
    pub indexed: u64,
    /// Predicated vector instructions.
    pub predicated: u64,
    /// Total operations: scalar instructions + vector instructions
    /// weighted by active vector length (DOp).
    pub ops: u64,
    /// Operations performed by the vector unit.
    pub vector_ops: u64,
    /// Vector ALU + mul operations (numerator of arithmetic intensity).
    pub math_ops: u64,
    /// Vector memory operations (denominator of arithmetic intensity).
    pub mem_ops: u64,
}

impl Characterization {
    /// An empty characterization.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one committed instruction.
    pub fn record(&mut self, r: &Retired) {
        self.dyn_insts += 1;
        let Some(class) = classify(&r.inst) else {
            self.ops += 1;
            return;
        };
        self.vector_insts += 1;
        let vl = u64::from(r.vl).max(1);
        self.ops += vl;
        self.vector_ops += vl;
        if is_predicated(&r.inst) {
            self.predicated += 1;
        }
        match class {
            InstClass::Ctrl => {
                self.ctrl += 1;
                // Control configures rather than computes: weight 1.
                self.ops -= vl - 1;
                self.vector_ops -= vl - 1;
            }
            InstClass::Ialu => {
                self.ialu += 1;
                self.math_ops += vl;
            }
            InstClass::Imul => {
                self.imul += 1;
                self.math_ops += vl;
            }
            InstClass::Xe => self.xe += 1,
            InstClass::UnitStride => {
                self.unit_stride += 1;
                self.mem_ops += vl;
            }
            InstClass::ConstStride => {
                self.const_stride += 1;
                self.mem_ops += vl;
            }
            InstClass::Indexed => {
                self.indexed += 1;
                self.mem_ops += vl;
            }
        }
    }

    /// Percentage of dynamic instructions that are vector-type (VI%).
    #[must_use]
    pub fn vector_inst_pct(&self) -> f64 {
        percent(self.vector_insts, self.dyn_insts)
    }

    /// Percentage of operations performed by the vector unit (VO%).
    #[must_use]
    pub fn vector_op_pct(&self) -> f64 {
        percent(self.vector_ops, self.ops)
    }

    /// Logical parallelism: total ops / dynamic instructions (VPar).
    #[must_use]
    pub fn logical_parallelism(&self) -> f64 {
        ratio(self.ops, self.dyn_insts)
    }

    /// Work inflation versus a scalar run of the same kernel (WInf):
    /// total ops in the vectorized program / scalar dynamic instructions.
    #[must_use]
    pub fn work_inflation(&self, scalar_dyn_insts: u64) -> f64 {
        ratio(self.ops, scalar_dyn_insts)
    }

    /// Arithmetic intensity for the vector unit: math ops / memory ops
    /// (ArInt).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        ratio(self.math_ops, self.mem_ops)
    }

    /// Vector instruction-mix percentages in Table IV column order:
    /// (ctrl, ialu, imul, xe, us, st, idx, prd), relative to vector
    /// instructions.
    #[must_use]
    pub fn mix_pct(&self) -> [f64; 8] {
        let v = self.vector_insts;
        [
            percent(self.ctrl, v),
            percent(self.ialu, v),
            percent(self.imul, v),
            percent(self.xe, v),
            percent(self.unit_stride, v),
            percent(self.const_stride, v),
            percent(self.indexed, v),
            percent(self.predicated, v),
        ]
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::inst::VOperand;
    use crate::interp::Interpreter;
    use crate::mem::Memory;
    use crate::reg::{vreg, xreg};

    fn characterize(asm: Asm, hw_vl: u32) -> Characterization {
        let mut i = Interpreter::new(asm.assemble().unwrap(), Memory::new(0x4000), hw_vl);
        let mut c = Characterization::new();
        while let Some(r) = i.step().unwrap() {
            c.record(&r);
        }
        c
    }

    #[test]
    fn scalar_program_has_no_vector_share() {
        let mut a = Asm::new();
        a.li(xreg::T0, 1);
        a.add(xreg::T0, xreg::T0, xreg::T0);
        a.halt();
        let c = characterize(a, 8);
        assert_eq!(c.dyn_insts, 3);
        assert_eq!(c.vector_insts, 0);
        assert_eq!(c.vector_inst_pct(), 0.0);
        assert_eq!(c.ops, 3);
    }

    #[test]
    fn vector_ops_weighted_by_vl() {
        let mut a = Asm::new();
        a.li(xreg::A0, 8);
        a.setvl(xreg::T0, xreg::A0);
        a.li(xreg::A1, 0x100);
        a.vload(vreg::V1, xreg::A1);
        a.vadd(vreg::V2, vreg::V1, VOperand::Imm(1));
        a.vmul(vreg::V3, vreg::V2, VOperand::Reg(vreg::V1));
        a.vstore(vreg::V3, xreg::A1);
        a.halt();
        let c = characterize(a, 8);
        assert_eq!(c.vector_insts, 5); // setvl + 2 mem + 2 alu
        assert_eq!(c.ialu, 1);
        assert_eq!(c.imul, 1);
        assert_eq!(c.unit_stride, 2);
        assert_eq!(c.ctrl, 1);
        // ops: 3 scalar (li/li/halt) + 1 (setvl) + 4 x 8 (vector @ vl 8)
        assert_eq!(c.ops, 3 + 1 + 32);
        assert_eq!(c.math_ops, 16);
        assert_eq!(c.mem_ops, 16);
        assert!((c.arithmetic_intensity() - 1.0).abs() < 1e-9);
        assert!(c.vector_op_pct() > 90.0);
    }

    #[test]
    fn predication_counted() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1);
        a.vcmp(
            crate::inst::VCmpCond::Lt,
            vreg::V0,
            vreg::V1,
            VOperand::Imm(2),
        );
        a.vop_masked(VArithOp::Add, vreg::V1, vreg::V1, VOperand::Imm(1));
        a.vmerge(vreg::V2, vreg::V1, VOperand::Imm(0));
        a.halt();
        let c = characterize(a, 4);
        assert_eq!(c.predicated, 2); // masked add + merge
        assert_eq!(c.xe, 1); // vid
    }

    #[test]
    fn mix_percentages_sum_over_disjoint_classes() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1);
        a.vadd(vreg::V1, vreg::V1, VOperand::Imm(1));
        a.halt();
        let c = characterize(a, 4);
        let mix = c.mix_pct();
        // ctrl + ialu + imul + xe + us + st + idx (first 7, disjoint).
        let sum: f64 = mix[..7].iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "{mix:?}");
    }

    #[test]
    fn work_inflation_against_scalar() {
        let mut c = Characterization::new();
        c.ops = 150;
        assert!((c.work_inflation(100) - 1.5).abs() < 1e-9);
        assert_eq!(c.work_inflation(0), 0.0);
    }
}
