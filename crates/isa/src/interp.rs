//! The functional interpreter and its committed-instruction stream.
//!
//! [`Interpreter::step`] executes one instruction and returns a
//! [`Retired`] record describing everything a timing model needs:
//! source/destination registers (for dependence tracking), the memory
//! footprint (for the cache hierarchy), the branch outcome (for branch
//! predictors), and the active vector length. Architectural state is
//! updated exactly; timing is someone else's job.

use crate::asm::Program;
use crate::inst::{
    BranchCond, Inst, MaskOp, MemWidth, RedOp, ScalarOp, VArithOp, VCmpCond, VOperand, VStride,
};
use crate::mem::Memory;
use crate::reg::{RegId, Vreg, Xreg};
use std::fmt;

/// Errors from assembling or executing kernel-IR programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// Execution left the program without reaching `Halt`.
    PcOutOfRange(u32),
    /// The dynamic-instruction budget was exhausted (runaway loop).
    BudgetExhausted(u64),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            IsaError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program"),
            IsaError::BudgetExhausted(n) => {
                write!(f, "exceeded {n} dynamic instructions without halting")
            }
        }
    }
}

impl std::error::Error for IsaError {}

/// Memory footprint of one committed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEffect {
    /// No memory access.
    None,
    /// One scalar access.
    Scalar {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Whether it writes memory.
        store: bool,
    },
    /// Unit-stride vector access: `vl * 4` consecutive bytes.
    VecUnit {
        /// Starting byte address.
        base: u64,
        /// Total bytes (`active elements * 4`).
        bytes: u64,
        /// Whether it writes memory.
        store: bool,
    },
    /// Constant-stride vector access.
    VecStrided {
        /// Address of element 0.
        base: u64,
        /// Byte stride between elements.
        stride: i64,
        /// Number of elements accessed.
        count: u32,
        /// Whether it writes memory.
        store: bool,
    },
    /// Indexed gather/scatter: one address per element.
    VecIndexed {
        /// Element addresses in element order.
        addrs: Vec<u64>,
        /// Whether it writes memory.
        store: bool,
    },
}

impl MemEffect {
    /// Whether this effect stores to memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        match self {
            MemEffect::None => false,
            MemEffect::Scalar { store, .. }
            | MemEffect::VecUnit { store, .. }
            | MemEffect::VecStrided { store, .. }
            | MemEffect::VecIndexed { store, .. } => *store,
        }
    }
}

/// One committed instruction, as seen by timing models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retired {
    /// Dynamic instruction number (0-based).
    pub seq: u64,
    /// Static program counter.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Source registers (dependence edges), up to four.
    pub reads: [Option<RegId>; 4],
    /// Destination register, if any.
    pub write: Option<RegId>,
    /// Memory footprint.
    pub mem: MemEffect,
    /// Vector length in effect (vector instructions only).
    pub vl: u32,
    /// Branch outcome: `(taken, next_pc)` for branches/jumps.
    pub branch: Option<(bool, u32)>,
    /// Resolved scalar/immediate operand of a vector instruction
    /// (`.vx`/`.vi` value, slide amount) — what the VSU sees at issue
    /// time, e.g. for unrolling shift μops (§III-B).
    pub scalar_operand: Option<u32>,
}

/// Functional interpreter over a [`Program`] and a [`Memory`].
///
/// `hw_vl` is the machine's hardware vector length in 32-bit elements —
/// what `vsetvl` saturates to (Table III: 4 for IV, 64 for DV, up to
/// 2048 for EVE).
#[derive(Debug, Clone)]
pub struct Interpreter {
    prog: Program,
    mem: Memory,
    x: [i64; 32],
    v: Vec<Vec<u32>>,
    vl: u32,
    hw_vl: u32,
    pc: u32,
    seq: u64,
    halted: bool,
}

impl Interpreter {
    /// Creates an interpreter with all registers zero and `vl = hw_vl`.
    ///
    /// # Panics
    ///
    /// Panics if `hw_vl` is zero.
    #[must_use]
    pub fn new(prog: Program, mem: Memory, hw_vl: u32) -> Self {
        assert!(hw_vl > 0, "hardware vector length must be nonzero");
        Self {
            prog,
            mem,
            x: [0; 32],
            v: vec![vec![0; hw_vl as usize]; 32],
            vl: hw_vl,
            hw_vl,
            pc: 0,
            seq: 0,
            halted: false,
        }
    }

    /// The simulated memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the simulated memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Current value of a scalar register.
    #[must_use]
    pub fn xreg(&self, r: Xreg) -> i64 {
        self.x[r.index() as usize]
    }

    /// Current contents of a vector register.
    #[must_use]
    pub fn vreg(&self, r: Vreg) -> &[u32] {
        &self.v[r.index() as usize]
    }

    /// Current vector length.
    #[must_use]
    pub fn vl(&self) -> u32 {
        self.vl
    }

    /// The hardware vector length this machine saturates `vsetvl` to.
    #[must_use]
    pub fn hw_vl(&self) -> u32 {
        self.hw_vl
    }

    /// Whether `Halt` has been executed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions retired so far.
    #[must_use]
    pub fn retired_count(&self) -> u64 {
        self.seq
    }

    /// The instruction the next [`Self::step`] will execute, without
    /// executing it. `None` once halted or if the pc escaped the
    /// program — shadow checkers use this to set up side execution
    /// before the architectural state changes.
    #[must_use]
    pub fn peek(&self) -> Option<Inst> {
        if self.halted {
            return None;
        }
        self.prog.insts().get(self.pc as usize).copied()
    }

    /// Overwrites the first `values.len()` lanes of a vector register
    /// — the fault-recovery hook that lets a detected-but-uncorrected
    /// corruption propagate architecturally (SDC modeling).
    ///
    /// # Panics
    ///
    /// Panics if more lanes are given than the register holds.
    pub fn poke_vreg(&mut self, r: Vreg, values: &[u32]) {
        let reg = &mut self.v[r.index() as usize];
        assert!(
            values.len() <= reg.len(),
            "poke of {} lanes into a {}-lane register",
            values.len(),
            reg.len()
        );
        reg[..values.len()].copy_from_slice(values);
    }

    fn rx(&self, r: Xreg) -> i64 {
        self.x[r.index() as usize]
    }

    fn wx(&mut self, r: Xreg, v: i64) {
        if !r.is_zero() {
            self.x[r.index() as usize] = v;
        }
    }

    fn operand(&self, rhs: VOperand) -> OperandValue<'_> {
        match rhs {
            VOperand::Reg(v) => OperandValue::Vec(&self.v[v.index() as usize]),
            VOperand::Scalar(x) => OperandValue::Broadcast(self.rx(x) as u32),
            VOperand::Imm(i) => OperandValue::Broadcast(i as u32),
        }
    }

    fn operand_read(rhs: VOperand) -> Option<RegId> {
        match rhs {
            VOperand::Reg(v) => Some(RegId::V(v)),
            VOperand::Scalar(x) => Some(RegId::X(x)),
            VOperand::Imm(_) => None,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::PcOutOfRange`] if control flow escapes the
    /// program.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds memory accesses (a workload bug).
    pub fn step(&mut self) -> Result<Option<Retired>, IsaError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let Some(&inst) = self.prog.insts().get(pc as usize) else {
            return Err(IsaError::PcOutOfRange(pc));
        };
        let mut reads: [Option<RegId>; 4] = [None; 4];
        let mut nr = 0;
        let mut read = |r: RegId, reads: &mut [Option<RegId>; 4]| {
            if nr < 4 {
                reads[nr] = Some(r);
                nr += 1;
            }
        };
        let mut write = None;
        let mut mem = MemEffect::None;
        let mut branch = None;
        let mut next = pc + 1;
        let vl = self.vl;
        let scalar_operand = match inst {
            Inst::VOp { rhs, .. }
            | Inst::VCmp { rhs, .. }
            | Inst::VMerge { rhs, .. }
            | Inst::VMv { rhs, .. } => match rhs {
                VOperand::Scalar(x) => Some(self.rx(x) as u32),
                VOperand::Imm(i) => Some(i as u32),
                VOperand::Reg(_) => None,
            },
            Inst::VSlide { amount, .. } => Some(self.rx(amount) as u32),
            _ => None,
        };

        match inst {
            Inst::Li { rd, imm } => {
                self.wx(rd, imm);
                write = Some(RegId::X(rd));
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                read(RegId::X(rs1), &mut reads);
                read(RegId::X(rs2), &mut reads);
                let v = scalar_op(op, self.rx(rs1), self.rx(rs2));
                self.wx(rd, v);
                write = Some(RegId::X(rd));
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                read(RegId::X(rs1), &mut reads);
                let v = scalar_op(op, self.rx(rs1), imm);
                self.wx(rd, v);
                write = Some(RegId::X(rd));
            }
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                read(RegId::X(base), &mut reads);
                let addr = (self.rx(base) + offset) as u64;
                let v = match width {
                    MemWidth::B => i64::from(self.mem.load_u8(addr)),
                    MemWidth::H => i64::from(self.mem.load_u16(addr)),
                    MemWidth::W => i64::from(self.mem.load_u32(addr)),
                    MemWidth::D => self.mem.load_u64(addr) as i64,
                };
                self.wx(rd, v);
                write = Some(RegId::X(rd));
                mem = MemEffect::Scalar {
                    addr,
                    bytes: width.bytes(),
                    store: false,
                };
            }
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => {
                read(RegId::X(src), &mut reads);
                read(RegId::X(base), &mut reads);
                let addr = (self.rx(base) + offset) as u64;
                let v = self.rx(src);
                match width {
                    MemWidth::B => self.mem.store_u8(addr, v as u8),
                    MemWidth::H => self.mem.store_u16(addr, v as u16),
                    MemWidth::W => self.mem.store_u32(addr, v as u32),
                    MemWidth::D => self.mem.store_u64(addr, v as u64),
                }
                mem = MemEffect::Scalar {
                    addr,
                    bytes: width.bytes(),
                    store: true,
                };
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                read(RegId::X(rs1), &mut reads);
                read(RegId::X(rs2), &mut reads);
                let a = self.rx(rs1);
                let b = self.rx(rs2);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => a < b,
                    BranchCond::Ge => a >= b,
                    BranchCond::Ltu => (a as u64) < (b as u64),
                    BranchCond::Geu => (a as u64) >= (b as u64),
                };
                if taken {
                    next = target;
                }
                branch = Some((taken, next));
            }
            Inst::Jump { target } => {
                next = target;
                branch = Some((true, next));
            }
            Inst::Halt => {
                self.halted = true;
            }
            Inst::SetVl { rd, avl } => {
                read(RegId::X(avl), &mut reads);
                let req = self.rx(avl).max(0) as u64;
                self.vl = req.min(u64::from(self.hw_vl)) as u32;
                self.wx(rd, i64::from(self.vl));
                write = Some(RegId::X(rd));
            }
            Inst::VMFence => {}
            Inst::VLoad {
                vd,
                base,
                stride,
                masked,
            } => {
                read(RegId::X(base), &mut reads);
                if masked {
                    read(RegId::V(Vreg::new(0)), &mut reads);
                }
                let b = self.rx(base) as u64;
                mem = self.vmem_effect(b, stride, false, &mut reads);
                for i in 0..vl as usize {
                    if masked && self.v[0][i] & 1 == 0 {
                        continue;
                    }
                    let addr = self.velem_addr(b, stride, i);
                    self.v[vd.index() as usize][i] = self.mem.load_u32(addr);
                }
                write = Some(RegId::V(vd));
            }
            Inst::VStore {
                vs,
                base,
                stride,
                masked,
            } => {
                read(RegId::V(vs), &mut reads);
                read(RegId::X(base), &mut reads);
                if masked {
                    read(RegId::V(Vreg::new(0)), &mut reads);
                }
                let b = self.rx(base) as u64;
                mem = self.vmem_effect(b, stride, true, &mut reads);
                for i in 0..vl as usize {
                    if masked && self.v[0][i] & 1 == 0 {
                        continue;
                    }
                    let addr = self.velem_addr(b, stride, i);
                    let v = self.v[vs.index() as usize][i];
                    self.mem.store_u32(addr, v);
                }
            }
            Inst::VOp {
                op,
                vd,
                vs1,
                rhs,
                masked,
            } => {
                read(RegId::V(vs1), &mut reads);
                if let Some(r) = Self::operand_read(rhs) {
                    read(r, &mut reads);
                }
                if masked {
                    read(RegId::V(Vreg::new(0)), &mut reads);
                }
                if op == VArithOp::Macc {
                    // Accumulating ops also read the destination.
                    read(RegId::V(vd), &mut reads);
                }
                let result: Vec<u32> = (0..vl as usize)
                    .map(|i| {
                        let a = self.v[vs1.index() as usize][i];
                        let b = self.operand(rhs).at(i);
                        if op == VArithOp::Macc {
                            let acc = self.v[vd.index() as usize][i];
                            acc.wrapping_add(a.wrapping_mul(b))
                        } else {
                            varith(op, a, b)
                        }
                    })
                    .collect();
                for (i, r) in result.into_iter().enumerate() {
                    if masked && self.v[0][i] & 1 == 0 {
                        continue;
                    }
                    self.v[vd.index() as usize][i] = r;
                }
                write = Some(RegId::V(vd));
            }
            Inst::VCmp { cond, vd, vs1, rhs } => {
                read(RegId::V(vs1), &mut reads);
                if let Some(r) = Self::operand_read(rhs) {
                    read(r, &mut reads);
                }
                let result: Vec<u32> = (0..vl as usize)
                    .map(|i| {
                        let a = self.v[vs1.index() as usize][i];
                        let b = self.operand(rhs).at(i);
                        u32::from(vcmp(cond, a, b))
                    })
                    .collect();
                for (i, r) in result.into_iter().enumerate() {
                    self.v[vd.index() as usize][i] = r;
                }
                write = Some(RegId::V(vd));
            }
            Inst::VMerge { vd, vs1, rhs } => {
                read(RegId::V(vs1), &mut reads);
                if let Some(r) = Self::operand_read(rhs) {
                    read(r, &mut reads);
                }
                read(RegId::V(Vreg::new(0)), &mut reads);
                let result: Vec<u32> = (0..vl as usize)
                    .map(|i| {
                        if self.v[0][i] & 1 == 1 {
                            self.v[vs1.index() as usize][i]
                        } else {
                            self.operand(rhs).at(i)
                        }
                    })
                    .collect();
                for (i, r) in result.into_iter().enumerate() {
                    self.v[vd.index() as usize][i] = r;
                }
                write = Some(RegId::V(vd));
            }
            Inst::VMask { op, md, m1, m2 } => {
                read(RegId::V(m1), &mut reads);
                if op != MaskOp::Not {
                    read(RegId::V(m2), &mut reads);
                }
                for i in 0..vl as usize {
                    let a = self.v[m1.index() as usize][i] & 1;
                    let b = self.v[m2.index() as usize][i] & 1;
                    self.v[md.index() as usize][i] = match op {
                        MaskOp::And => a & b,
                        MaskOp::Or => a | b,
                        MaskOp::Xor => a ^ b,
                        MaskOp::AndNot => a & (1 - b),
                        MaskOp::Not => 1 - a,
                    };
                }
                write = Some(RegId::V(md));
            }
            Inst::VMv { vd, rhs } => {
                if let Some(r) = Self::operand_read(rhs) {
                    read(r, &mut reads);
                }
                for i in 0..vl as usize {
                    self.v[vd.index() as usize][i] = self.operand(rhs).at(i);
                }
                write = Some(RegId::V(vd));
            }
            Inst::VMvXS { rd, vs } => {
                read(RegId::V(vs), &mut reads);
                let v = self.v[vs.index() as usize][0];
                self.wx(rd, i64::from(v as i32));
                write = Some(RegId::X(rd));
            }
            Inst::VMvSX { vd, rs } => {
                read(RegId::X(rs), &mut reads);
                self.v[vd.index() as usize][0] = self.rx(rs) as u32;
                write = Some(RegId::V(vd));
            }
            Inst::VRed { op, vd, vs2, vs1 } => {
                read(RegId::V(vs2), &mut reads);
                read(RegId::V(vs1), &mut reads);
                let init = self.v[vs1.index() as usize][0];
                let mut acc = init;
                for i in 0..vl as usize {
                    let e = self.v[vs2.index() as usize][i];
                    acc = match op {
                        RedOp::Sum => acc.wrapping_add(e),
                        RedOp::Min => (acc as i32).min(e as i32) as u32,
                        RedOp::Max => (acc as i32).max(e as i32) as u32,
                        RedOp::Minu => acc.min(e),
                        RedOp::Maxu => acc.max(e),
                    };
                }
                self.v[vd.index() as usize][0] = acc;
                write = Some(RegId::V(vd));
            }
            Inst::VSlide { vd, vs, amount, up } => {
                read(RegId::V(vs), &mut reads);
                read(RegId::X(amount), &mut reads);
                let amt = self.rx(amount).max(0) as usize;
                let src = self.v[vs.index() as usize].clone();
                let dst = &mut self.v[vd.index() as usize];
                if up {
                    for i in (amt..vl as usize).rev() {
                        dst[i] = src[i - amt];
                    }
                } else {
                    for i in 0..vl as usize {
                        dst[i] = if i + amt < vl as usize {
                            src[i + amt]
                        } else {
                            0
                        };
                    }
                }
                write = Some(RegId::V(vd));
            }
            Inst::VRGather { vd, vs, idx } => {
                read(RegId::V(vs), &mut reads);
                read(RegId::V(idx), &mut reads);
                let result: Vec<u32> = (0..vl as usize)
                    .map(|i| {
                        let j = self.v[idx.index() as usize][i] as usize;
                        if j < vl as usize {
                            self.v[vs.index() as usize][j]
                        } else {
                            0
                        }
                    })
                    .collect();
                for (i, r) in result.into_iter().enumerate() {
                    self.v[vd.index() as usize][i] = r;
                }
                write = Some(RegId::V(vd));
            }
            Inst::VId { vd } => {
                for i in 0..vl as usize {
                    self.v[vd.index() as usize][i] = i as u32;
                }
                write = Some(RegId::V(vd));
            }
        }

        self.pc = next;
        let seq = self.seq;
        self.seq += 1;
        Ok(Some(Retired {
            seq,
            pc,
            inst,
            reads,
            write,
            mem,
            vl,
            branch,
            scalar_operand,
        }))
    }

    fn velem_addr(&self, base: u64, stride: VStride, i: usize) -> u64 {
        match stride {
            VStride::Unit => base + i as u64 * 4,
            VStride::Strided(r) => (base as i64 + self.rx(r) * i as i64) as u64,
            VStride::Indexed(idx) => base + u64::from(self.v[idx.index() as usize][i]),
        }
    }

    fn vmem_effect(
        &self,
        base: u64,
        stride: VStride,
        store: bool,
        reads: &mut [Option<RegId>; 4],
    ) -> MemEffect {
        match stride {
            VStride::Unit => MemEffect::VecUnit {
                base,
                bytes: u64::from(self.vl) * 4,
                store,
            },
            VStride::Strided(r) => MemEffect::VecStrided {
                base,
                stride: self.rx(r),
                count: self.vl,
                store,
            },
            VStride::Indexed(idx) => {
                for slot in reads.iter_mut() {
                    if slot.is_none() {
                        *slot = Some(RegId::V(idx));
                        break;
                    }
                }
                MemEffect::VecIndexed {
                    addrs: (0..self.vl as usize)
                        .map(|i| base + u64::from(self.v[idx.index() as usize][i]))
                        .collect(),
                    store,
                }
            }
        }
    }

    /// Runs until `Halt`, discarding retire records.
    ///
    /// # Errors
    ///
    /// Propagates [`IsaError`]; errors with
    /// [`IsaError::BudgetExhausted`] after 500 M instructions.
    pub fn run_to_halt(&mut self) -> Result<u64, IsaError> {
        const BUDGET: u64 = 500_000_000;
        while !self.halted {
            self.step()?;
            if self.seq >= BUDGET {
                return Err(IsaError::BudgetExhausted(BUDGET));
            }
        }
        Ok(self.seq)
    }
}

enum OperandValue<'a> {
    Vec(&'a [u32]),
    Broadcast(u32),
}

impl OperandValue<'_> {
    fn at(&self, i: usize) -> u32 {
        match self {
            OperandValue::Vec(v) => v[i],
            OperandValue::Broadcast(b) => *b,
        }
    }
}

fn scalar_op(op: ScalarOp, a: i64, b: i64) -> i64 {
    match op {
        ScalarOp::Add => a.wrapping_add(b),
        ScalarOp::Sub => a.wrapping_sub(b),
        ScalarOp::Mul => a.wrapping_mul(b),
        ScalarOp::Div => {
            if b == 0 {
                -1
            } else {
                a.wrapping_div(b)
            }
        }
        ScalarOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        ScalarOp::And => a & b,
        ScalarOp::Or => a | b,
        ScalarOp::Xor => a ^ b,
        ScalarOp::Sll => a.wrapping_shl((b & 63) as u32),
        ScalarOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        ScalarOp::Sra => a.wrapping_shr((b & 63) as u32),
        ScalarOp::Slt => i64::from(a < b),
        ScalarOp::Sltu => i64::from((a as u64) < (b as u64)),
    }
}

fn varith(op: VArithOp, a: u32, b: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    match op {
        VArithOp::Add => a.wrapping_add(b),
        VArithOp::Sub => a.wrapping_sub(b),
        VArithOp::Rsub => b.wrapping_sub(a),
        VArithOp::Mul | VArithOp::Macc => a.wrapping_mul(b),
        VArithOp::Mulh => ((i64::from(ai) * i64::from(bi)) >> 32) as u32,
        VArithOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        VArithOp::Div => {
            if bi == 0 {
                u32::MAX
            } else if ai == i32::MIN && bi == -1 {
                ai as u32
            } else {
                (ai / bi) as u32
            }
        }
        VArithOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        VArithOp::Rem => {
            if bi == 0 {
                a
            } else if ai == i32::MIN && bi == -1 {
                0
            } else {
                (ai % bi) as u32
            }
        }
        VArithOp::Remu => a.checked_rem(b).unwrap_or(a),
        VArithOp::And => a & b,
        VArithOp::Or => a | b,
        VArithOp::Xor => a ^ b,
        VArithOp::Sll => a.wrapping_shl(b & 31),
        VArithOp::Srl => a.wrapping_shr(b & 31),
        VArithOp::Sra => (ai.wrapping_shr(b & 31)) as u32,
        VArithOp::Min => ai.min(bi) as u32,
        VArithOp::Max => ai.max(bi) as u32,
        VArithOp::Minu => a.min(b),
        VArithOp::Maxu => a.max(b),
    }
}

fn vcmp(cond: VCmpCond, a: u32, b: u32) -> bool {
    let (ai, bi) = (a as i32, b as i32);
    match cond {
        VCmpCond::Eq => a == b,
        VCmpCond::Ne => a != b,
        VCmpCond::Lt => ai < bi,
        VCmpCond::Ltu => a < b,
        VCmpCond::Le => ai <= bi,
        VCmpCond::Leu => a <= b,
        VCmpCond::Gt => ai > bi,
        VCmpCond::Gtu => a > b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::{vreg, xreg};

    fn run(asm: Asm, mem: Memory, hw_vl: u32) -> Interpreter {
        let mut i = Interpreter::new(asm.assemble().unwrap(), mem, hw_vl);
        i.run_to_halt().unwrap();
        i
    }

    #[test]
    fn scalar_arithmetic_and_branches() {
        // Sum 1..=10 with a loop.
        let mut a = Asm::new();
        a.li(xreg::T0, 10);
        a.li(xreg::T1, 0);
        a.label("loop");
        a.add(xreg::T1, xreg::T1, xreg::T0);
        a.addi(xreg::T0, xreg::T0, -1);
        a.bnez(xreg::T0, "loop");
        a.halt();
        let i = run(a, Memory::new(64), 4);
        assert_eq!(i.xreg(xreg::T1), 55);
    }

    #[test]
    fn x0_stays_zero() {
        let mut a = Asm::new();
        a.li(xreg::ZERO, 42);
        a.halt();
        let i = run(a, Memory::new(64), 4);
        assert_eq!(i.xreg(xreg::ZERO), 0);
    }

    #[test]
    fn scalar_loads_and_stores() {
        let mut a = Asm::new();
        a.li(xreg::A0, 0x100);
        a.li(xreg::T0, 0x1234_5678);
        a.sw(xreg::T0, xreg::A0, 0);
        a.lw(xreg::T1, xreg::A0, 0);
        a.sb(xreg::T1, xreg::A0, 8);
        a.lb(xreg::T2, xreg::A0, 8);
        a.halt();
        let i = run(a, Memory::new(0x200), 4);
        assert_eq!(i.xreg(xreg::T1), 0x1234_5678);
        assert_eq!(i.xreg(xreg::T2), 0x78);
    }

    #[test]
    fn setvl_saturates_to_hardware_length() {
        let mut a = Asm::new();
        a.li(xreg::A0, 1000);
        a.setvl(xreg::T0, xreg::A0);
        a.li(xreg::A0, 3);
        a.setvl(xreg::T1, xreg::A0);
        a.halt();
        let i = run(a, Memory::new(64), 64);
        assert_eq!(i.xreg(xreg::T0), 64);
        assert_eq!(i.xreg(xreg::T1), 3);
    }

    #[test]
    fn vector_add_and_store() {
        let mut mem = Memory::new(0x1000);
        for k in 0..8 {
            mem.store_u32(0x100 + k * 4, k as u32 * 10);
        }
        let mut a = Asm::new();
        a.li(xreg::A0, 8);
        a.setvl(xreg::T0, xreg::A0);
        a.li(xreg::A1, 0x100);
        a.vload(vreg::V1, xreg::A1);
        a.vadd(vreg::V2, vreg::V1, VOperand::Imm(7));
        a.li(xreg::A2, 0x200);
        a.vstore(vreg::V2, xreg::A2);
        a.halt();
        let i = run(a, mem, 8);
        for k in 0..8u64 {
            assert_eq!(i.memory().load_u32(0x200 + k * 4), k as u32 * 10 + 7);
        }
    }

    #[test]
    fn strided_and_indexed_access() {
        let mut mem = Memory::new(0x1000);
        for k in 0..16 {
            mem.store_u32(0x100 + k * 4, k as u32);
        }
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.li(xreg::A1, 0x100);
        a.li(xreg::A2, 16); // byte stride 16 = every 4th element
        a.vload_strided(vreg::V1, xreg::A1, xreg::A2);
        // gather elements 1,3,5,7 via byte offsets 4,12,20,28
        a.vid(vreg::V3);
        a.vsll(vreg::V3, vreg::V3, VOperand::Imm(3));
        a.vadd(vreg::V3, vreg::V3, VOperand::Imm(4));
        a.vload_indexed(vreg::V2, xreg::A1, vreg::V3);
        a.halt();
        let i = run(a, mem, 4);
        assert_eq!(i.vreg(vreg::V1), &[0, 4, 8, 12]);
        assert_eq!(i.vreg(vreg::V2), &[1, 3, 5, 7]);
    }

    #[test]
    fn masked_execution() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1);
        // mask = element < 2
        a.vcmp(VCmpCond::Lt, vreg::V0, vreg::V1, VOperand::Imm(2));
        a.vmv(vreg::V2, VOperand::Imm(9));
        a.vop_masked(VArithOp::Add, vreg::V2, vreg::V2, VOperand::Imm(100));
        a.halt();
        let i = run(a, Memory::new(64), 4);
        assert_eq!(i.vreg(vreg::V2), &[109, 109, 9, 9]);
    }

    #[test]
    fn merge_and_mask_logic() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1);
        a.vcmp(VCmpCond::Eq, vreg::V2, vreg::V1, VOperand::Imm(1));
        a.vcmp(VCmpCond::Eq, vreg::V3, vreg::V1, VOperand::Imm(2));
        a.vmask(crate::inst::MaskOp::Or, vreg::V0, vreg::V2, vreg::V3);
        a.vmerge(vreg::V4, vreg::V1, VOperand::Imm(-1));
        a.halt();
        let i = run(a, Memory::new(64), 4);
        assert_eq!(i.vreg(vreg::V4), &[u32::MAX, 1, 2, u32::MAX]);
    }

    #[test]
    fn reductions() {
        let mut a = Asm::new();
        a.li(xreg::A0, 6);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1); // 0..5
        a.vmv(vreg::V2, VOperand::Imm(100));
        a.vred(RedOp::Sum, vreg::V3, vreg::V1, vreg::V2);
        a.vmv_xs(xreg::T1, vreg::V3);
        a.vred(RedOp::Max, vreg::V4, vreg::V1, vreg::V1);
        a.vmv_xs(xreg::T2, vreg::V4);
        a.halt();
        let i = run(a, Memory::new(64), 8);
        assert_eq!(i.xreg(xreg::T1), 115); // 100 + 0+1+..+5
        assert_eq!(i.xreg(xreg::T2), 5);
    }

    #[test]
    fn slides_and_gather() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.vid(vreg::V1); // 0 1 2 3
        a.li(xreg::T1, 1);
        a.vslide(vreg::V2, vreg::V1, xreg::T1, false); // down: 1 2 3 0
        a.vmv(vreg::V3, VOperand::Reg(vreg::V1));
        a.vrgather(vreg::V4, vreg::V2, vreg::V1); // identity gather of V2
        a.halt();
        let i = run(a, Memory::new(64), 4);
        assert_eq!(i.vreg(vreg::V2), &[1, 2, 3, 0]);
        assert_eq!(i.vreg(vreg::V4), &[1, 2, 3, 0]);
    }

    #[test]
    fn retire_records_carry_dependences() {
        let mut a = Asm::new();
        a.li(xreg::T0, 5);
        a.addi(xreg::T1, xreg::T0, 1);
        a.halt();
        let mut i = Interpreter::new(a.assemble().unwrap(), Memory::new(64), 4);
        let r0 = i.step().unwrap().unwrap();
        assert_eq!(r0.write, Some(RegId::X(xreg::T0)));
        let r1 = i.step().unwrap().unwrap();
        assert_eq!(r1.reads[0], Some(RegId::X(xreg::T0)));
        assert_eq!(r1.write, Some(RegId::X(xreg::T1)));
    }

    #[test]
    fn branch_outcomes_recorded() {
        let mut a = Asm::new();
        a.li(xreg::T0, 1);
        a.beqz(xreg::T0, "skip"); // not taken
        a.li(xreg::T1, 7);
        a.label("skip");
        a.halt();
        let mut i = Interpreter::new(a.assemble().unwrap(), Memory::new(64), 4);
        i.step().unwrap();
        let b = i.step().unwrap().unwrap();
        assert_eq!(b.branch, Some((false, 2)));
    }

    #[test]
    fn vector_mem_effects() {
        let mut a = Asm::new();
        a.li(xreg::A0, 4);
        a.setvl(xreg::T0, xreg::A0);
        a.li(xreg::A1, 0x100);
        a.vload(vreg::V1, xreg::A1);
        a.halt();
        let mut i = Interpreter::new(a.assemble().unwrap(), Memory::new(0x200), 4);
        i.step().unwrap();
        i.step().unwrap();
        i.step().unwrap();
        let r = i.step().unwrap().unwrap();
        assert_eq!(
            r.mem,
            MemEffect::VecUnit {
                base: 0x100,
                bytes: 16,
                store: false
            }
        );
    }

    #[test]
    fn runaway_detection() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let mut i = Interpreter::new(a.assemble().unwrap(), Memory::new(16), 4);
        // Not running the full 500M budget in a test; single steps work.
        for _ in 0..100 {
            assert!(i.step().unwrap().is_some());
        }
        assert!(!i.halted());
    }

    #[test]
    fn division_edge_cases_match_rvv() {
        assert_eq!(varith(VArithOp::Div, 5, 0), u32::MAX);
        assert_eq!(varith(VArithOp::Rem, 5, 0), 5);
        assert_eq!(
            varith(VArithOp::Div, i32::MIN as u32, -1i32 as u32),
            i32::MIN as u32
        );
        assert_eq!(varith(VArithOp::Rem, i32::MIN as u32, -1i32 as u32), 0);
    }
}
