//! Instruction definitions for the kernel IR.
//!
//! Scalar instructions are a pragmatic RV64-like subset (64-bit integer
//! registers); vector instructions cover the 32-bit integer surface of
//! the RISC-V vector extension that EVE implements (§I), plus the
//! `vmfence` EVE adds for scalar/vector memory ordering (§V-A).

use crate::reg::{Vreg, Xreg};

/// Scalar ALU operations (register-register and register-immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 64 bits).
    Mul,
    /// Signed division (RV semantics: x/0 = -1).
    Div,
    /// Signed remainder (x%0 = x).
    Rem,
    /// Bit-wise AND.
    And,
    /// Bit-wise OR.
    Or,
    /// Bit-wise XOR.
    Xor,
    /// Logical shift left (amount masked to 63).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than, signed.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

/// Scalar memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte (zero-extended on load).
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Scalar branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Vector integer ALU operations (all `.vv`, `.vx`, or `.vi` via
/// [`VOperand`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VArithOp {
    /// `vadd`.
    Add,
    /// `vsub` (`vd = vs1 - rhs`).
    Sub,
    /// `vrsub` (`vd = rhs - vs1`).
    Rsub,
    /// `vmul` (low 32 bits).
    Mul,
    /// `vmacc` (multiply-accumulate: `vd += vs1 * rhs`).
    Macc,
    /// `vmulh` (high 32 bits, signed).
    Mulh,
    /// `vmulhu` (high 32 bits, unsigned).
    Mulhu,
    /// `vdiv` (signed; x/0 = -1).
    Div,
    /// `vdivu` (unsigned; x/0 = all ones).
    Divu,
    /// `vrem` (signed; x%0 = x).
    Rem,
    /// `vremu`.
    Remu,
    /// `vand`.
    And,
    /// `vor`.
    Or,
    /// `vxor`.
    Xor,
    /// `vsll` (amount masked to 31).
    Sll,
    /// `vsrl`.
    Srl,
    /// `vsra`.
    Sra,
    /// `vmin` (signed).
    Min,
    /// `vmax` (signed).
    Max,
    /// `vminu`.
    Minu,
    /// `vmaxu`.
    Maxu,
}

/// Vector compare conditions (`vmseq` etc.), writing a mask register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VCmpCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Unsigned less-than.
    Ltu,
    /// Signed less-or-equal.
    Le,
    /// Unsigned less-or-equal.
    Leu,
    /// Signed greater-than.
    Gt,
    /// Unsigned greater-than.
    Gtu,
}

/// Reduction operations (`vred*.vs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// `vredsum`.
    Sum,
    /// `vredmin` (signed).
    Min,
    /// `vredmax` (signed).
    Max,
    /// `vredminu`.
    Minu,
    /// `vredmaxu`.
    Maxu,
}

/// Mask-register logical operations (`vm*.mm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskOp {
    /// `vmand.mm`.
    And,
    /// `vmor.mm`.
    Or,
    /// `vmxor.mm`.
    Xor,
    /// `vmandn.mm` (`md = m1 & !m2`).
    AndNot,
    /// `vmnot.m`.
    Not,
}

/// The second operand of a vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOperand {
    /// `.vv`: another vector register.
    Reg(Vreg),
    /// `.vx`: a scalar register broadcast to all elements.
    Scalar(Xreg),
    /// `.vi`: an immediate broadcast to all elements.
    Imm(i32),
}

/// Addressing mode of a vector memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VStride {
    /// Unit stride (`vle32`/`vse32`): consecutive 32-bit elements.
    Unit,
    /// Constant stride in bytes from a scalar register
    /// (`vlse32`/`vsse32`).
    Strided(Xreg),
    /// Indexed (gather/scatter): byte offsets from a vector register
    /// (`vluxei32`/`vsuxei32`).
    Indexed(Vreg),
}

/// One kernel-IR instruction.
///
/// Branch/jump targets are indices into the program's instruction
/// vector, resolved by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    // ---- scalar ----
    /// Load immediate: `rd = imm`.
    Li { rd: Xreg, imm: i64 },
    /// Register-register ALU: `rd = rs1 op rs2`.
    Op {
        op: ScalarOp,
        rd: Xreg,
        rs1: Xreg,
        rs2: Xreg,
    },
    /// Register-immediate ALU: `rd = rs1 op imm`.
    OpImm {
        op: ScalarOp,
        rd: Xreg,
        rs1: Xreg,
        imm: i64,
    },
    /// Scalar load: `rd = mem[rs1 + offset]`, zero-extended.
    Load {
        width: MemWidth,
        rd: Xreg,
        base: Xreg,
        offset: i64,
    },
    /// Scalar store: `mem[rs1 + offset] = rs2`.
    Store {
        width: MemWidth,
        src: Xreg,
        base: Xreg,
        offset: i64,
    },
    /// Conditional branch to `target`.
    Branch {
        cond: BranchCond,
        rs1: Xreg,
        rs2: Xreg,
        target: u32,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Stop execution.
    Halt,

    // ---- vector configuration ----
    /// `vsetvli rd, rs1, e32`: `vl = min(rs1, hardware vl)`; `rd = vl`.
    SetVl { rd: Xreg, avl: Xreg },
    /// `vmfence`: order all prior scalar stores before subsequent
    /// vector memory operations (§V-A).
    VMFence,

    // ---- vector memory ----
    /// Vector load into `vd` from `base` with the given addressing mode.
    VLoad {
        vd: Vreg,
        base: Xreg,
        stride: VStride,
        masked: bool,
    },
    /// Vector store of `vs` to `base`.
    VStore {
        vs: Vreg,
        base: Xreg,
        stride: VStride,
        masked: bool,
    },

    // ---- vector arithmetic ----
    /// `vd = vs1 op rhs` (masked by `v0` when `masked`).
    VOp {
        op: VArithOp,
        vd: Vreg,
        vs1: Vreg,
        rhs: VOperand,
        masked: bool,
    },
    /// Vector compare into mask register `vd`.
    VCmp {
        cond: VCmpCond,
        vd: Vreg,
        vs1: Vreg,
        rhs: VOperand,
    },
    /// `vmerge.v?m`: `vd[i] = v0[i] ? vs1[i] : rhs[i]`.
    VMerge { vd: Vreg, vs1: Vreg, rhs: VOperand },
    /// Mask-register logical op: `md = m1 op m2` (`m2` ignored for
    /// `Not`).
    VMask {
        op: MaskOp,
        md: Vreg,
        m1: Vreg,
        m2: Vreg,
    },
    /// `vmv.v.v` / `vmv.v.x` / `vmv.v.i`: broadcast or copy.
    VMv { vd: Vreg, rhs: VOperand },
    /// `vmv.x.s`: `rd = vs[0]` — the writeback case that stalls the
    /// control processor's commit (§V-A).
    VMvXS { rd: Xreg, vs: Vreg },
    /// `vmv.s.x`: `vd[0] = rs`.
    VMvSX { vd: Vreg, rs: Xreg },
    /// Reduction: `vd[0] = red(vs2[0..vl]) ⊕ vs1[0]`.
    VRed {
        op: RedOp,
        vd: Vreg,
        vs2: Vreg,
        vs1: Vreg,
    },
    /// `vslideup.vx`/`vslidedown.vx` by a scalar amount.
    VSlide {
        vd: Vreg,
        vs: Vreg,
        amount: Xreg,
        up: bool,
    },
    /// `vrgather.vv`: `vd[i] = idx[i] < vl ? vs[idx[i]] : 0`.
    VRGather { vd: Vreg, vs: Vreg, idx: Vreg },
    /// `vid.v`: `vd[i] = i`.
    VId { vd: Vreg },
}

impl Inst {
    /// Whether this is a vector-type instruction (counted in the VI%
    /// column of Table IV).
    #[must_use]
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Inst::SetVl { .. }
                | Inst::VMFence
                | Inst::VLoad { .. }
                | Inst::VStore { .. }
                | Inst::VOp { .. }
                | Inst::VCmp { .. }
                | Inst::VMerge { .. }
                | Inst::VMask { .. }
                | Inst::VMv { .. }
                | Inst::VMvXS { .. }
                | Inst::VMvSX { .. }
                | Inst::VRed { .. }
                | Inst::VSlide { .. }
                | Inst::VRGather { .. }
                | Inst::VId { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{vreg, xreg};

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn vector_classification() {
        assert!(Inst::VMFence.is_vector());
        assert!(Inst::VId { vd: vreg::V1 }.is_vector());
        assert!(!Inst::Halt.is_vector());
        assert!(!Inst::Li {
            rd: xreg::A0,
            imm: 1
        }
        .is_vector());
    }
}
