//! Register names: 32 scalar (`x0`–`x31`) and 32 vector (`v0`–`v31`)
//! registers, plus RV-style ABI aliases.

use std::fmt;

/// A scalar (integer) register. `x0` is hard-wired to zero.
///
/// # Examples
///
/// ```
/// use eve_isa::{xreg, Xreg};
/// assert_eq!(xreg::ZERO, Xreg::new(0));
/// assert_eq!(xreg::A0.index(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xreg(u8);

impl Xreg {
    /// Creates `x<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "scalar register index out of range");
        Xreg(index)
    }

    /// The register number.
    #[must_use]
    pub const fn index(&self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Xreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A vector register. `v0` doubles as the mask register, as in RVV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vreg(u8);

impl Vreg {
    /// Creates `v<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "vector register index out of range");
        Vreg(index)
    }

    /// The register number.
    #[must_use]
    pub const fn index(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Either register file, for dependency tracking in timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegId {
    /// A scalar register.
    X(Xreg),
    /// A vector register.
    V(Vreg),
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegId::X(r) => r.fmt(f),
            RegId::V(r) => r.fmt(f),
        }
    }
}

/// Named scalar registers (RV ABI subset).
pub mod xreg {
    use super::Xreg;

    /// Hard-wired zero.
    pub const ZERO: Xreg = Xreg::new(0);
    /// Return address.
    pub const RA: Xreg = Xreg::new(1);
    /// Stack pointer.
    pub const SP: Xreg = Xreg::new(2);
    /// Argument/return registers.
    pub const A0: Xreg = Xreg::new(10);
    pub const A1: Xreg = Xreg::new(11);
    pub const A2: Xreg = Xreg::new(12);
    pub const A3: Xreg = Xreg::new(13);
    pub const A4: Xreg = Xreg::new(14);
    pub const A5: Xreg = Xreg::new(15);
    pub const A6: Xreg = Xreg::new(16);
    pub const A7: Xreg = Xreg::new(17);
    /// Temporaries.
    pub const T0: Xreg = Xreg::new(5);
    pub const T1: Xreg = Xreg::new(6);
    pub const T2: Xreg = Xreg::new(7);
    pub const T3: Xreg = Xreg::new(28);
    pub const T4: Xreg = Xreg::new(29);
    pub const T5: Xreg = Xreg::new(30);
    pub const T6: Xreg = Xreg::new(31);
    /// Saved registers.
    pub const S0: Xreg = Xreg::new(8);
    pub const S1: Xreg = Xreg::new(9);
    pub const S2: Xreg = Xreg::new(18);
    pub const S3: Xreg = Xreg::new(19);
    pub const S4: Xreg = Xreg::new(20);
    pub const S5: Xreg = Xreg::new(21);
    pub const S6: Xreg = Xreg::new(22);
    pub const S7: Xreg = Xreg::new(23);
    pub const S8: Xreg = Xreg::new(24);
    pub const S9: Xreg = Xreg::new(25);
    pub const S10: Xreg = Xreg::new(26);
    pub const S11: Xreg = Xreg::new(27);
}

/// Named vector registers.
pub mod vreg {
    use super::Vreg;

    /// The mask register.
    pub const V0: Vreg = Vreg::new(0);
    pub const V1: Vreg = Vreg::new(1);
    pub const V2: Vreg = Vreg::new(2);
    pub const V3: Vreg = Vreg::new(3);
    pub const V4: Vreg = Vreg::new(4);
    pub const V5: Vreg = Vreg::new(5);
    pub const V6: Vreg = Vreg::new(6);
    pub const V7: Vreg = Vreg::new(7);
    pub const V8: Vreg = Vreg::new(8);
    pub const V9: Vreg = Vreg::new(9);
    pub const V10: Vreg = Vreg::new(10);
    pub const V11: Vreg = Vreg::new(11);
    pub const V12: Vreg = Vreg::new(12);
    pub const V13: Vreg = Vreg::new(13);
    pub const V14: Vreg = Vreg::new(14);
    pub const V15: Vreg = Vreg::new(15);
    pub const V16: Vreg = Vreg::new(16);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(xreg::ZERO.is_zero());
        assert!(!xreg::A0.is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(xreg::T3.to_string(), "x28");
        assert_eq!(vreg::V2.to_string(), "v2");
        assert_eq!(RegId::X(xreg::A0).to_string(), "x10");
        assert_eq!(RegId::V(vreg::V0).to_string(), "v0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xreg_range_checked() {
        let _ = Xreg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_range_checked() {
        let _ = Vreg::new(255);
    }
}
