//! Cross-layer observability for the EVE simulator.
//!
//! Timing models in this workspace keep meticulous cycle accounting —
//! the Fig 7 stall breakdown is the paper's headline figure — but until
//! now the only window into a run was its final counter totals. This
//! crate adds the missing structure:
//!
//! - [`TraceEvent`]: a cycle-stamped span or instant on a named track
//!   (`"vsu"`, `"vmu"`, `"o3"`, `"mem"`, …), with a category that maps
//!   straight onto the stall-breakdown buckets.
//! - [`TraceBuffer`]: a bounded ring buffer of events. Overflow drops
//!   the oldest events and counts them, so tracing never reallocates
//!   without bound; auditors refuse lossy traces.
//! - [`Tracer`]: a cheaply-cloneable shared handle (the same
//!   `Rc<RefCell<…>>` idiom as `SharedLlc`) threaded through the cores,
//!   hierarchy, and engines. Emission is feature-gated at every call
//!   site (`obs` in the consumer crates), so the hot path compiles to
//!   nothing when tracing is off.
//! - [`CounterRegistry`]: named counters and log2 histograms that
//!   serialize next to `StallBreakdown` in run reports.
//! - [`chrome_trace`]: a Chrome trace-event (`chrome://tracing` /
//!   Perfetto) JSON exporter.
//! - [`audit`]: replay checks over the event stream — monotonicity,
//!   bounds, and the span-tiling machinery the stall-attribution
//!   auditor uses to prove `total == busy + Σ stalls` per run.
//!
//! # Examples
//!
//! ```
//! use eve_obs::{audit, Tracer};
//!
//! let t = Tracer::new();
//! t.span("vsu", "busy", "uprog", 0, 9);
//! t.span("vsu", "ld_mem_stall", "ld_mem_stall", 9, 80);
//! t.count("vmu.lines", 4);
//!
//! let events = t.events();
//! let tiling = audit::tile_track(&events, "vsu").unwrap();
//! assert_eq!(tiling.end - tiling.start, 89);
//! assert_eq!(tiling.by_cat["busy"], 9);
//! ```

pub mod audit;
mod buffer;
mod chrome;
mod event;
mod registry;
mod tracer;

pub use buffer::TraceBuffer;
pub use chrome::chrome_trace;
pub use event::{EventKind, TraceEvent};
pub use registry::{CounterRegistry, Histogram};
pub use tracer::Tracer;
