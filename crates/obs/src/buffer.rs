//! The bounded event ring buffer.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A ring buffer of trace events with a hard capacity.
///
/// When full, pushing drops the *oldest* event and counts the loss, so
/// a long run keeps its most recent window rather than aborting. The
/// attribution auditor checks [`TraceBuffer::dropped`] and refuses to
/// certify a lossy trace (a partial timeline cannot tile).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs nonzero capacity");
        Self {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Buffered event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by overflow since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the buffered events in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Copies the buffered events out in emission order.
    #[must_use]
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            track: "t",
            cat: "c",
            name: "n",
            ts,
            dur: 1,
            kind: EventKind::Span,
            arg: None,
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut b = TraceBuffer::new(3);
        for ts in 0..5 {
            b.push(ev(ts));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 2);
        let kept: Vec<u64> = b.iter().map(|e| e.ts).collect();
        assert_eq!(kept, [2, 3, 4]);
    }

    #[test]
    fn lossless_until_capacity() {
        let mut b = TraceBuffer::new(8);
        for ts in 0..8 {
            b.push(ev(ts));
        }
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.to_vec().len(), 8);
    }
}
