//! Replay checks over an event stream.
//!
//! These are the generic halves of the stall-attribution auditor: the
//! EVE-specific identity (`total == busy + Σ breakdown buckets`) lives
//! in `eve-sim`, built on [`tile_track`] — spans on an attributed
//! timeline must cover it contiguously, without gaps or overlap, and
//! the per-category duration sums are then the re-derived breakdown.

use crate::event::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The ring buffer overflowed; the timeline is incomplete.
    DroppedEvents {
        /// How many events were lost.
        dropped: u64,
    },
    /// An event starts before its predecessor on an ordered track.
    NonMonotonic {
        /// The offending track.
        track: &'static str,
        /// Previous event's start cycle.
        prev: u64,
        /// Offending event's start cycle.
        ts: u64,
    },
    /// Two spans on an attributed track overlap.
    Overlap {
        /// The offending track.
        track: &'static str,
        /// Previous span's end cycle.
        prev_end: u64,
        /// Offending span's start cycle.
        ts: u64,
    },
    /// An attributed track has unaccounted cycles between spans.
    Gap {
        /// The offending track.
        track: &'static str,
        /// Where the previous span ended.
        from: u64,
        /// Where the next span starts.
        to: u64,
    },
    /// An event extends past the run's total cycle count.
    BeyondEnd {
        /// The offending track.
        track: &'static str,
        /// The event's end cycle.
        end: u64,
        /// The run's total cycles.
        limit: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DroppedEvents { dropped } => {
                write!(
                    f,
                    "trace dropped {dropped} events; cannot audit a lossy trace"
                )
            }
            Self::NonMonotonic { track, prev, ts } => {
                write!(
                    f,
                    "track {track}: timestamp {ts} after {prev} runs backwards"
                )
            }
            Self::Overlap {
                track,
                prev_end,
                ts,
            } => {
                write!(
                    f,
                    "track {track}: span at {ts} overlaps previous span ending {prev_end}"
                )
            }
            Self::Gap { track, from, to } => {
                write!(f, "track {track}: unattributed cycles [{from}, {to})")
            }
            Self::BeyondEnd { track, end, limit } => {
                write!(
                    f,
                    "track {track}: event ends at {end}, past run end {limit}"
                )
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Checks that start timestamps never decrease on `track`.
///
/// Only meaningful for tracks with an in-order emitter (the VSU/VMU
/// timelines, in-order issue queues); a track fed at out-of-order
/// execute times (scalar memory accesses) is legitimately unordered.
///
/// # Errors
///
/// Returns [`AuditError::NonMonotonic`] at the first reversal.
pub fn check_monotonic(events: &[TraceEvent], track: &str) -> Result<(), AuditError> {
    let mut prev: Option<&TraceEvent> = None;
    for e in events.iter().filter(|e| e.track == track) {
        if let Some(p) = prev {
            if e.ts < p.ts {
                return Err(AuditError::NonMonotonic {
                    track: e.track,
                    prev: p.ts,
                    ts: e.ts,
                });
            }
        }
        prev = Some(e);
    }
    Ok(())
}

/// Checks that no event extends past `limit` cycles.
///
/// # Errors
///
/// Returns [`AuditError::BeyondEnd`] for the first event whose end
/// exceeds `limit`.
pub fn check_bounds(events: &[TraceEvent], limit: u64) -> Result<(), AuditError> {
    for e in events {
        if e.end() > limit {
            return Err(AuditError::BeyondEnd {
                track: e.track,
                end: e.end(),
                limit,
            });
        }
    }
    Ok(())
}

/// The result of tiling one attributed track.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackTiling {
    /// First cycle covered by a span.
    pub start: u64,
    /// First cycle after the last span.
    pub end: u64,
    /// Number of spans.
    pub spans: usize,
    /// Total span cycles per category — the re-derived breakdown.
    pub by_cat: BTreeMap<&'static str, u64>,
}

impl TrackTiling {
    /// Total cycles attributed to `cat`.
    #[must_use]
    pub fn cat(&self, cat: &str) -> u64 {
        self.by_cat.get(cat).copied().unwrap_or(0)
    }

    /// Sum over all categories; equals `end - start` for a tiled track.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_cat.values().sum()
    }
}

/// Tiles the spans of `track`: they must be emitted in order and cover
/// `[start, end)` exactly — no gap, no overlap. Instants on the track
/// are ignored. An empty track tiles trivially (all-zero result).
///
/// # Errors
///
/// Returns [`AuditError::Overlap`] or [`AuditError::Gap`] at the first
/// tiling violation, or [`AuditError::NonMonotonic`] if spans run
/// backwards.
pub fn tile_track(events: &[TraceEvent], track: &str) -> Result<TrackTiling, AuditError> {
    let mut tiling = TrackTiling::default();
    let mut cursor: Option<u64> = None;
    for e in events
        .iter()
        .filter(|e| e.track == track && e.kind == EventKind::Span)
    {
        match cursor {
            None => tiling.start = e.ts,
            Some(c) => {
                if e.ts < c {
                    return Err(AuditError::Overlap {
                        track: e.track,
                        prev_end: c,
                        ts: e.ts,
                    });
                }
                if e.ts > c {
                    return Err(AuditError::Gap {
                        track: e.track,
                        from: c,
                        to: e.ts,
                    });
                }
            }
        }
        cursor = Some(e.end());
        tiling.spans += 1;
        *tiling.by_cat.entry(e.cat).or_insert(0) += e.dur;
    }
    tiling.end = cursor.unwrap_or(0);
    Ok(tiling)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &'static str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            track: "vsu",
            cat,
            name: cat,
            ts,
            dur,
            kind: EventKind::Span,
            arg: None,
        }
    }

    #[test]
    fn contiguous_spans_tile() {
        let evs = [
            span("busy", 10, 5),
            span("dep_stall", 15, 3),
            span("busy", 18, 2),
        ];
        let t = tile_track(&evs, "vsu").unwrap();
        assert_eq!((t.start, t.end, t.spans), (10, 20, 3));
        assert_eq!(t.cat("busy"), 7);
        assert_eq!(t.cat("dep_stall"), 3);
        assert_eq!(t.total(), t.end - t.start);
    }

    #[test]
    fn gaps_and_overlaps_are_caught() {
        let gap = [span("busy", 0, 5), span("busy", 7, 1)];
        assert!(matches!(
            tile_track(&gap, "vsu"),
            Err(AuditError::Gap { from: 5, to: 7, .. })
        ));
        let overlap = [span("busy", 0, 5), span("busy", 4, 2)];
        assert!(matches!(
            tile_track(&overlap, "vsu"),
            Err(AuditError::Overlap {
                prev_end: 5,
                ts: 4,
                ..
            })
        ));
    }

    #[test]
    fn instants_do_not_break_tiling() {
        let mut inst = span("req", 3, 0);
        inst.kind = EventKind::Instant;
        let evs = [span("busy", 0, 5), inst, span("busy", 5, 5)];
        let t = tile_track(&evs, "vsu").unwrap();
        assert_eq!(t.end, 10);
    }

    #[test]
    fn monotonic_and_bounds_checks() {
        let evs = [span("busy", 0, 5), span("busy", 5, 5)];
        assert!(check_monotonic(&evs, "vsu").is_ok());
        assert!(check_bounds(&evs, 10).is_ok());
        assert!(matches!(
            check_bounds(&evs, 9),
            Err(AuditError::BeyondEnd {
                end: 10,
                limit: 9,
                ..
            })
        ));
        let back = [span("busy", 5, 1), span("busy", 0, 1)];
        assert!(check_monotonic(&back, "vsu").is_err());
    }

    #[test]
    fn empty_track_tiles_trivially() {
        let t = tile_track(&[], "vsu").unwrap();
        assert_eq!(t.total(), 0);
        assert_eq!(t.spans, 0);
    }

    #[test]
    fn errors_render() {
        let e = AuditError::Gap {
            track: "vsu",
            from: 1,
            to: 2,
        };
        assert!(e.to_string().contains("unattributed"));
    }
}
