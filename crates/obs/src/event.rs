//! The structured trace event.

/// How an event occupies time on its track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration event: occupies `[ts, ts + dur)` on the track.
    Span,
    /// A point event at `ts` (duration ignored by consumers).
    Instant,
}

/// One cycle-stamped event.
///
/// All strings are `&'static str` so emitting an event never allocates;
/// emitters name tracks and categories with literals. The category of a
/// span on an attributed track (e.g. the engine's `"vsu"` timeline) is
/// exactly the stall-breakdown bucket the same cycles were charged to,
/// which is what lets the auditor re-derive the breakdown from events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The timeline this event lives on (rendered as a Chrome thread).
    pub track: &'static str,
    /// Category — for attributed spans, the breakdown bucket name.
    pub cat: &'static str,
    /// Human-readable label.
    pub name: &'static str,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (zero for instants).
    pub dur: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Optional single key/value payload.
    pub arg: Option<(&'static str, u64)>,
}

impl TraceEvent {
    /// The first cycle after this event.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.ts + self.dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_is_exclusive() {
        let e = TraceEvent {
            track: "vsu",
            cat: "busy",
            name: "uprog",
            ts: 10,
            dur: 9,
            kind: EventKind::Span,
            arg: None,
        };
        assert_eq!(e.end(), 19);
    }
}
