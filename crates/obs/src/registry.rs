//! Named counters and log2 histograms.

use eve_common::json::JsonValue;
use std::collections::BTreeMap;

/// Number of log2 buckets: values 0, 1, 2, 4, … up to `u64::MAX`.
const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts zeros; bucket `k > 0` counts values in
/// `[2^(k-1), 2^k)`. This is the right shape for latency and queue-wait
/// distributions, which span several orders of magnitude, and it needs
/// no configuration — one `record` per sample, constant space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or zero when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or zero when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Serializes summary plus the nonzero buckets as
    /// `[[bucket_floor, count], …]`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let buckets = self.buckets.iter().enumerate().filter_map(|(i, &n)| {
            if n == 0 {
                return None;
            }
            let floor: u64 = if i == 0 { 0 } else { 1u64 << (i - 1) };
            Some(JsonValue::array([floor.into(), n.into()]))
        });
        JsonValue::object([
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("min", self.min().into()),
            ("max", self.max.into()),
            ("buckets", JsonValue::array(buckets)),
        ])
    }
}

/// An insertion-agnostic (name-ordered) registry of counters and
/// histograms, serialized into run reports next to the stall breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to the counter `name`, creating it at zero.
    pub fn add(&mut self, name: &str, amount: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += amount;
        } else {
            self.counters.insert(name.to_owned(), amount);
        }
    }

    /// Adds one to the counter `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Records one sample into the histogram `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Reads the counter `name` (zero if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads the histogram `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serializes as `{"counters": {…}, "histograms": {…}}` with keys
    /// in name order (deterministic bytes for a deterministic run).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "counters",
                JsonValue::object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::from(v))),
                ),
            ),
            (
                "histograms",
                JsonValue::object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json())),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let json = h.to_json().to_compact();
        // 0 alone; 1 alone; [2,4) holds 2 and 3; 4 alone; 1000 in [512,1024).
        assert!(json.contains("[2,2]"), "{json}");
        assert!(json.contains("[512,1]"), "{json}");
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn registry_round_trips_counters() {
        let mut r = CounterRegistry::new();
        r.incr("vmu.lines");
        r.add("vmu.lines", 3);
        r.record("mem.latency", 80);
        assert_eq!(r.counter("vmu.lines"), 4);
        assert_eq!(r.counter("never"), 0);
        assert_eq!(r.histogram("mem.latency").unwrap().count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_name_ordered_and_stable() {
        let mut r = CounterRegistry::new();
        r.add("z", 1);
        r.add("a", 2);
        let j = r.to_json().to_compact();
        assert!(j.find("\"a\"").unwrap() < j.find("\"z\"").unwrap());
        assert_eq!(j, r.clone().to_json().to_compact());
    }
}
