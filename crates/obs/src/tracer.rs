//! The shared tracer handle.

use crate::buffer::TraceBuffer;
use crate::event::{EventKind, TraceEvent};
use crate::registry::CounterRegistry;
use std::cell::RefCell;
use std::rc::Rc;

/// Default ring-buffer capacity in events (~1M; see DESIGN.md's sizing
/// discussion — enough for every Table IV kernel at audit sizes).
const DEFAULT_CAPACITY: usize = 1 << 20;

/// A cheaply-cloneable handle to one run's trace state.
///
/// The simulator is single-threaded per run (cores already share their
/// LLC through `Rc<RefCell<…>>`), so the tracer uses the same idiom:
/// every core, hierarchy, and engine holds a clone, and all of them
/// append to one buffer in retirement order per track. Emission
/// methods take `&self`, so instrumented models don't need extra
/// mutability.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<State>>,
}

#[derive(Debug)]
struct State {
    buf: TraceBuffer,
    reg: CounterRegistry,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default buffer capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer buffering at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Rc::new(RefCell::new(State {
                buf: TraceBuffer::new(capacity),
                reg: CounterRegistry::new(),
            })),
        }
    }

    fn push(&self, event: TraceEvent) {
        self.inner.borrow_mut().buf.push(event);
    }

    /// Emits a duration span; zero-length spans are skipped.
    pub fn span(
        &self,
        track: &'static str,
        cat: &'static str,
        name: &'static str,
        ts: u64,
        dur: u64,
    ) {
        if dur == 0 {
            return;
        }
        self.push(TraceEvent {
            track,
            cat,
            name,
            ts,
            dur,
            kind: EventKind::Span,
            arg: None,
        });
    }

    /// Emits a duration span carrying one key/value argument.
    pub fn span_arg(
        &self,
        track: &'static str,
        cat: &'static str,
        name: &'static str,
        ts: u64,
        dur: u64,
        arg: (&'static str, u64),
    ) {
        if dur == 0 {
            return;
        }
        self.push(TraceEvent {
            track,
            cat,
            name,
            ts,
            dur,
            kind: EventKind::Span,
            arg: Some(arg),
        });
    }

    /// Emits a point event.
    pub fn instant(&self, track: &'static str, cat: &'static str, name: &'static str, ts: u64) {
        self.push(TraceEvent {
            track,
            cat,
            name,
            ts,
            dur: 0,
            kind: EventKind::Instant,
            arg: None,
        });
    }

    /// Emits a point event carrying one key/value argument.
    pub fn instant_arg(
        &self,
        track: &'static str,
        cat: &'static str,
        name: &'static str,
        ts: u64,
        arg: (&'static str, u64),
    ) {
        self.push(TraceEvent {
            track,
            cat,
            name,
            ts,
            dur: 0,
            kind: EventKind::Instant,
            arg: Some(arg),
        });
    }

    /// Adds `amount` to the registry counter `name`.
    pub fn count(&self, name: &str, amount: u64) {
        self.inner.borrow_mut().reg.add(name, amount);
    }

    /// Records one histogram sample.
    pub fn record(&self, name: &str, value: u64) {
        self.inner.borrow_mut().reg.record(name, value);
    }

    /// Copies out the buffered events in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().buf.to_vec()
    }

    /// Buffered event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().buf.len()
    }

    /// Whether no event was emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().buf.is_empty()
    }

    /// Events lost to ring-buffer overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().buf.dropped()
    }

    /// A snapshot of the counter/histogram registry.
    #[must_use]
    pub fn registry(&self) -> CounterRegistry {
        self.inner.borrow().reg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_buffer() {
        let a = Tracer::with_capacity(16);
        let b = a.clone();
        a.span("vsu", "busy", "busy", 0, 5);
        b.instant("vmu", "req", "line", 3);
        assert_eq!(a.len(), 2);
        assert_eq!(b.events()[0].cat, "busy");
    }

    #[test]
    fn zero_duration_spans_are_skipped() {
        let t = Tracer::with_capacity(4);
        t.span("vsu", "busy", "busy", 7, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn counters_and_histograms_flow_to_registry() {
        let t = Tracer::with_capacity(4);
        t.count("x", 2);
        t.record("lat", 31);
        let reg = t.registry();
        assert_eq!(reg.counter("x"), 2);
        assert_eq!(reg.histogram("lat").unwrap().max(), 31);
    }
}
