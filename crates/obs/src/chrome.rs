//! Chrome trace-event JSON export.
//!
//! The output loads directly in `chrome://tracing` or Perfetto: each
//! track becomes a named thread, spans become complete (`"X"`) events,
//! instants become `"i"` events. Timestamps are simulated cycles
//! reported in the `ts`/`dur` microsecond fields — absolute units
//! don't matter for inspection, relative ones do.

use crate::event::{EventKind, TraceEvent};
use eve_common::json::JsonValue;

/// Renders events as a Chrome trace-event document.
///
/// Tracks get integer thread ids in order of first appearance, each
/// announced with a `thread_name` metadata event so the UI shows the
/// track name instead of a bare number.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> JsonValue {
    let mut tracks: Vec<&'static str> = Vec::new();
    for e in events {
        if !tracks.contains(&e.track) {
            tracks.push(e.track);
        }
    }
    let tid = |track: &str| tracks.iter().position(|&t| t == track).unwrap_or(0) as u64;

    let mut out: Vec<JsonValue> = tracks
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            JsonValue::object([
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", 1u64.into()),
                ("tid", (i as u64).into()),
                ("args", JsonValue::object([("name", JsonValue::from(t))])),
            ])
        })
        .collect();

    for e in events {
        let mut pairs: Vec<(String, JsonValue)> =
            vec![("name".into(), e.name.into()), ("cat".into(), e.cat.into())];
        match e.kind {
            EventKind::Span => {
                pairs.push(("ph".into(), "X".into()));
                pairs.push(("ts".into(), e.ts.into()));
                pairs.push(("dur".into(), e.dur.into()));
            }
            EventKind::Instant => {
                pairs.push(("ph".into(), "i".into()));
                pairs.push(("ts".into(), e.ts.into()));
                pairs.push(("s".into(), "t".into()));
            }
        }
        pairs.push(("pid".into(), 1u64.into()));
        pairs.push(("tid".into(), tid(e.track).into()));
        if let Some((k, v)) = e.arg {
            pairs.push(("args".into(), JsonValue::object([(k, JsonValue::from(v))])));
        }
        out.push(JsonValue::Object(pairs));
    }

    JsonValue::object([
        ("traceEvents", JsonValue::Array(out)),
        ("displayTimeUnit", "ns".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: &'static str, kind: EventKind, ts: u64) -> TraceEvent {
        TraceEvent {
            track,
            cat: "c",
            name: "n",
            ts,
            dur: 2,
            kind,
            arg: None,
        }
    }

    #[test]
    fn tracks_become_named_threads() {
        let events = [
            ev("vsu", EventKind::Span, 0),
            ev("vmu", EventKind::Instant, 1),
            ev("vsu", EventKind::Span, 2),
        ];
        let doc = chrome_trace(&events).to_compact();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("{\"name\":\"vsu\"}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        // Both vsu events share tid 0; vmu gets tid 1.
        assert!(doc.contains("\"tid\":1"));
    }

    #[test]
    fn args_are_carried() {
        let mut e = ev("mem", EventKind::Instant, 5);
        e.arg = Some(("mshr_wait", 12));
        let doc = chrome_trace(&[e]).to_compact();
        assert!(doc.contains("\"args\":{\"mshr_wait\":12}"));
    }
}
