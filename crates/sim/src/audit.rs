//! The stall-attribution auditor.
//!
//! Replays a traced run's event stream against its [`RunReport`] and
//! asserts the accounting identity the Fig 7 breakdown rests on: every
//! engine cycle is attributed to exactly one bucket, so
//!
//! ```text
//! breakdown.total() + spawn_cycles == vsu.end_cycles <= report.cycles
//! ```
//!
//! and, when the `obs` feature traced the run, the `vsu` track's spans
//! tile `[spawn_start, vsu_end)` contiguously with per-category sums
//! that re-derive the breakdown. Generic trace invariants (bounds,
//! monotonicity, lossless buffer) come from [`eve_obs::audit`].

use crate::report::RunReport;
use eve_obs::audit::{check_bounds, check_monotonic, tile_track, AuditError, TrackTiling};
use eve_obs::Tracer;
use std::fmt;

/// Tracks whose emitters stamp events in nondecreasing cycle order.
///
/// Deliberately excluded: `mem` (scalar accesses are stamped at
/// out-of-order execute time) and `vsu_extra` (extra exec pipes start
/// μprograms behind the main timeline). The `serve` track belongs to
/// the `eve-serve` discrete-event layer, whose event loop processes
/// strictly in clock order.
pub const ORDERED_TRACKS: [&str; 15] = [
    "vsu", "vmu", "o3", "io", "dv", "vru", "serve", "dtu0", "dtu1", "dtu2", "dtu3", "dtu4", "dtu5",
    "dtu6", "dtu7",
];

/// Why an audit rejected a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditFailure {
    /// A generic trace invariant failed (lossy buffer, time running
    /// backwards, events past the run end, a gap or overlap on the
    /// attributed timeline).
    Trace(AuditError),
    /// The attribution identity itself failed: the breakdown, the
    /// engine timeline, and the replayed spans disagree.
    Identity {
        /// What disagreed, with the numbers.
        message: String,
    },
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace invariant: {e}"),
            Self::Identity { message } => write!(f, "attribution identity: {message}"),
        }
    }
}

impl std::error::Error for AuditFailure {}

impl From<AuditError> for AuditFailure {
    fn from(e: AuditError) -> Self {
        Self::Trace(e)
    }
}

/// What a passing audit established.
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Events replayed.
    pub events: usize,
    /// The tiled `vsu` timeline; all-zero when the run was not traced
    /// (obs feature off) or the system has no engine.
    pub vsu: TrackTiling,
    /// Cycles between spawn commit and reconfiguration completing.
    pub spawn_cycles: u64,
    /// Whether the span-level re-derivation of the breakdown ran (it
    /// needs a traced single-pipe engine run).
    pub tiled: bool,
}

fn identity(message: String) -> AuditFailure {
    AuditFailure::Identity { message }
}

/// Replays `tracer`'s event stream against `report`.
///
/// Always checks: the buffer dropped nothing, no event outruns
/// `report.cycles`, every [`ORDERED_TRACKS`] track is monotone, and —
/// for engine runs — the stats-level identity
/// `breakdown.total() + spawn_cycles == vsu.end_cycles <= cycles`.
///
/// When the run was traced (spans present) on a single-pipe engine, it
/// additionally tiles the `vsu` track and requires the per-category
/// durations to reproduce every breakdown bucket exactly.
///
/// # Errors
///
/// Returns the first violated invariant as an [`AuditFailure`].
pub fn audit_run(tracer: &Tracer, report: &RunReport) -> Result<AuditSummary, AuditFailure> {
    let dropped = tracer.dropped();
    if dropped > 0 {
        return Err(AuditError::DroppedEvents { dropped }.into());
    }
    let events = tracer.events();
    check_bounds(&events, report.cycles.0)?;
    for track in ORDERED_TRACKS {
        check_monotonic(&events, track)?;
    }
    let vsu = tile_track(&events, "vsu")?;
    let spawn_cycles = report.stats.get("spawn_cycles");
    let mut tiled = false;

    if let Some(b) = &report.breakdown {
        let vsu_end = report.stats.get("vsu.end_cycles");
        // The attributed timeline opens when the first vector
        // instruction commits and the engine spawns.
        let vsu_start = report.stats.get("spawn_commit_cycle");
        let attributed = vsu_start + spawn_cycles + b.total().0;
        if attributed != vsu_end {
            return Err(identity(format!(
                "start + spawn + breakdown.total() = \
                 {vsu_start} + {spawn_cycles} + {} = {attributed}, \
                 but the engine timeline ends at {vsu_end}",
                b.total().0
            )));
        }
        if vsu_end > report.cycles.0 {
            return Err(identity(format!(
                "engine timeline ends at {vsu_end}, past run end {}",
                report.cycles.0
            )));
        }
        // Span-level re-derivation. Extra exec pipes overlap μprograms
        // with the main timeline, so only the 1-pipe engine tiles; an
        // untraced run (obs off) has no spans to replay.
        if report.stats.get("exec_pipes") <= 1 && vsu.spans > 0 {
            tiled = true;
            if vsu.start != vsu_start {
                return Err(identity(format!(
                    "replayed vsu spans start at {}, spawn committed at {vsu_start}",
                    vsu.start
                )));
            }
            if vsu.end != vsu_end {
                return Err(identity(format!(
                    "replayed vsu spans end at {}, stats say {vsu_end}",
                    vsu.end
                )));
            }
            if vsu.cat("spawn") != spawn_cycles {
                return Err(identity(format!(
                    "replayed spawn span is {} cycles, stats say {spawn_cycles}",
                    vsu.cat("spawn")
                )));
            }
            for (bucket, cycles) in b.entries() {
                if vsu.cat(bucket) != cycles.0 {
                    return Err(identity(format!(
                        "bucket {bucket}: replayed spans sum to {}, breakdown says {}",
                        vsu.cat(bucket),
                        cycles.0
                    )));
                }
            }
        }
    }

    Ok(AuditSummary {
        events: events.len(),
        vsu,
        spawn_cycles,
        tiled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use crate::system::SystemKind;
    use eve_workloads::Workload;

    fn traced(system: SystemKind) -> (Tracer, RunReport) {
        let tracer = Tracer::new();
        let report = Runner::with_tracer(&tracer)
            .run(system, &Workload::vvadd(512))
            .unwrap();
        (tracer, report)
    }

    #[test]
    fn eve_run_passes_the_audit() {
        let (tracer, report) = traced(SystemKind::EveN(8));
        let s = audit_run(&tracer, &report).unwrap();
        assert_eq!(s.tiled, cfg!(feature = "obs"));
        #[cfg(feature = "obs")]
        {
            assert!(s.events > 0);
            assert_eq!(s.vsu.total(), s.vsu.end - s.vsu.start);
        }
    }

    #[test]
    fn scalar_runs_pass_trivially() {
        for sys in [SystemKind::Io, SystemKind::O3, SystemKind::O3Dv] {
            let (tracer, report) = traced(sys);
            let s = audit_run(&tracer, &report).unwrap();
            assert!(!s.tiled, "{sys} has no engine timeline");
        }
    }

    #[test]
    fn a_traced_secded_run_passes_with_resilience_buckets_populated() {
        use crate::fault::RecoveryPolicy;
        use eve_sram::{DetectionMode, Fault, FaultConfig};

        let tracer = Tracer::new();
        let runner = Runner::with_tracer(&tracer);
        // Long enough that the engine timeline crosses the SECDED scrub
        // interval, with a statistical transient population plus a
        // stuck source cell: EVE-8 maps v1's segment 0 to row 4, and
        // vvadd sources are < 2^20, so stuck-at-one on bit 30 perturbs
        // every operand write and gets the row remapped.
        let mut cfg = FaultConfig::write_transients(3, 2e-3);
        cfg.scripted.push(Fault::stuck_at(4, 0, 30, true));
        let policy = RecoveryPolicy {
            remap_threshold: 1,
            ..RecoveryPolicy::sparing()
        };
        let report = runner
            .run_faulty_with(
                8,
                &Workload::vvadd(8192),
                cfg,
                policy,
                DetectionMode::Secded,
            )
            .unwrap();
        let b = report.breakdown.as_ref().expect("EVE breakdown");
        assert!(b.ecc_correct_stall.0 > 0, "corrections must be charged");
        assert!(b.remap_stall.0 > 0, "the remap must be charged");
        assert!(b.scrub_stall.0 > 0, "background sweeps must be charged");
        let s = audit_run(&tracer, &report).unwrap();
        assert_eq!(s.tiled, cfg!(feature = "obs"));
    }

    #[test]
    fn a_cooked_timeline_fails_the_identity() {
        let (tracer, mut report) = traced(SystemKind::EveN(8));
        let end = report.stats.get("vsu.end_cycles");
        report.stats.set("vsu.end_cycles", end + 1);
        let err = audit_run(&tracer, &report).unwrap_err();
        assert!(matches!(err, AuditFailure::Identity { .. }), "{err}");
        assert!(err.to_string().contains("timeline"), "{err}");
    }

    #[test]
    fn failures_render() {
        let e = AuditFailure::from(AuditError::DroppedEvents { dropped: 3 });
        assert!(e.to_string().contains("dropped 3"));
    }
}
