//! Run reports.

use crate::fault::ResilienceReport;
use crate::system::SystemKind;
use eve_common::json::JsonValue;
use eve_common::{Cycle, Picos, Stats};
use eve_core::StallBreakdown;
use eve_isa::Characterization;
use eve_obs::CounterRegistry;

/// The result of running one workload on one system.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which system ran.
    pub system: SystemKind,
    /// Which kernel ran.
    pub workload: &'static str,
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Wall time at the system's clock (the paper's comparison basis:
    /// EVE-16/32 pay their cycle-time penalty here).
    pub wall_ps: Picos,
    /// Dynamic instructions committed.
    pub dyn_insts: u64,
    /// All counters from the core, hierarchy, and vector unit.
    pub stats: Stats,
    /// Instruction-mix characterization of this run.
    pub characterization: Characterization,
    /// EVE-only: the Fig 7 cycle attribution.
    pub breakdown: Option<StallBreakdown>,
    /// Fault-injection runs only: what the resilience layer saw and did.
    pub resilience: Option<ResilienceReport>,
    /// Traced runs only: the observability counter/histogram registry
    /// snapshot (see `eve-obs`).
    pub counters: Option<CounterRegistry>,
}

impl RunReport {
    /// Speedup of this run relative to `baseline` (wall-time basis).
    ///
    /// # Panics
    ///
    /// Panics if this run took zero time.
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert!(self.wall_ps.0 > 0, "degenerate run");
        baseline.wall_ps.0 as f64 / self.wall_ps.0 as f64
    }

    /// Fraction of execution during which the VMU could not issue to
    /// the LLC (Fig 8), if this system has a VMU with that counter.
    #[must_use]
    pub fn vmu_llc_stall_fraction(&self) -> Option<f64> {
        let stall = self.stats.get("vmu.llc_issue_stall_cycles");
        self.breakdown?;
        Some(stall as f64 / self.cycles.0.max(1) as f64)
    }

    /// Serializes the report deterministically. The key set and
    /// ordering are locked by the `report_schema` golden test — extend
    /// the schema consciously, then regenerate the fixture.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let c = &self.characterization;
        let characterization = JsonValue::object([
            ("dyn_insts", c.dyn_insts.into()),
            ("vector_insts", c.vector_insts.into()),
            ("ctrl", c.ctrl.into()),
            ("ialu", c.ialu.into()),
            ("imul", c.imul.into()),
            ("xe", c.xe.into()),
            ("unit_stride", c.unit_stride.into()),
            ("const_stride", c.const_stride.into()),
            ("indexed", c.indexed.into()),
            ("predicated", c.predicated.into()),
            ("ops", c.ops.into()),
            ("vector_ops", c.vector_ops.into()),
            ("math_ops", c.math_ops.into()),
            ("mem_ops", c.mem_ops.into()),
        ]);
        let breakdown = match &self.breakdown {
            Some(b) => JsonValue::Object(
                b.entries()
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), JsonValue::from(v.0)))
                    .collect(),
            ),
            None => JsonValue::Null,
        };
        let stats = JsonValue::Object(
            self.stats
                .iter()
                .map(|(k, v)| (k.to_string(), JsonValue::from(v)))
                .collect(),
        );
        let counters = match &self.counters {
            Some(reg) if !reg.is_empty() => reg.to_json(),
            _ => JsonValue::Null,
        };
        JsonValue::object([
            ("system", JsonValue::from(self.system.to_string())),
            ("workload", self.workload.into()),
            ("cycles", self.cycles.0.into()),
            ("wall_ps", self.wall_ps.0.into()),
            ("dyn_insts", self.dyn_insts.into()),
            ("characterization", characterization),
            ("breakdown", breakdown),
            ("stats", stats),
            ("counters", counters),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ps: u64) -> RunReport {
        RunReport {
            system: SystemKind::Io,
            workload: "t",
            cycles: Cycle(ps),
            wall_ps: Picos(ps),
            dyn_insts: 1,
            stats: Stats::new(),
            characterization: Characterization::new(),
            breakdown: None,
            resilience: None,
            counters: None,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let doc = report(10).to_json().to_compact();
        assert!(doc.starts_with("{\"system\":\"IO\""), "{doc}");
        assert!(doc.contains("\"breakdown\":null"));
        assert!(doc.contains("\"counters\":null"));
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = report(100);
        let slow = report(500);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn non_eve_runs_have_no_vmu_fraction() {
        assert!(report(10).vmu_llc_stall_fraction().is_none());
    }
}
