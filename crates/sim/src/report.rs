//! Run reports.

use crate::fault::ResilienceReport;
use crate::system::SystemKind;
use eve_common::{Cycle, Picos, Stats};
use eve_core::StallBreakdown;
use eve_isa::Characterization;

/// The result of running one workload on one system.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which system ran.
    pub system: SystemKind,
    /// Which kernel ran.
    pub workload: &'static str,
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Wall time at the system's clock (the paper's comparison basis:
    /// EVE-16/32 pay their cycle-time penalty here).
    pub wall_ps: Picos,
    /// Dynamic instructions committed.
    pub dyn_insts: u64,
    /// All counters from the core, hierarchy, and vector unit.
    pub stats: Stats,
    /// Instruction-mix characterization of this run.
    pub characterization: Characterization,
    /// EVE-only: the Fig 7 cycle attribution.
    pub breakdown: Option<StallBreakdown>,
    /// Fault-injection runs only: what the resilience layer saw and did.
    pub resilience: Option<ResilienceReport>,
}

impl RunReport {
    /// Speedup of this run relative to `baseline` (wall-time basis).
    ///
    /// # Panics
    ///
    /// Panics if this run took zero time.
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert!(self.wall_ps.0 > 0, "degenerate run");
        baseline.wall_ps.0 as f64 / self.wall_ps.0 as f64
    }

    /// Fraction of execution during which the VMU could not issue to
    /// the LLC (Fig 8), if this system has a VMU with that counter.
    #[must_use]
    pub fn vmu_llc_stall_fraction(&self) -> Option<f64> {
        let stall = self.stats.get("vmu.llc_issue_stall_cycles");
        self.breakdown?;
        Some(stall as f64 / self.cycles.0.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ps: u64) -> RunReport {
        RunReport {
            system: SystemKind::Io,
            workload: "t",
            cycles: Cycle(ps),
            wall_ps: Picos(ps),
            dyn_insts: 1,
            stats: Stats::new(),
            characterization: Characterization::new(),
            breakdown: None,
            resilience: None,
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = report(100);
        let slow = report(500);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn non_eve_runs_have_no_vmu_fraction() {
        assert!(report(10).vmu_llc_stall_fraction().is_none());
    }
}
