//! Fault injection, detection, and graceful degradation at the system
//! level.
//!
//! The bit-accurate injector and the parity model live in `eve-sram`;
//! the check-latency model lives in `eve-core`. This module closes the
//! loop: [`Runner::run_faulty`] drives a workload on an EVE system
//! while a [`ShadowChecker`] executes every checkable compute
//! instruction's μprograms on a live [`EveArray`] with faults armed.
//! Parity alarms trigger bounded re-execution; exhausted retries
//! retire the engine back to cache and re-run the workload on the
//! decoupled vector baseline; silent corruptions are written back into
//! the architectural state so they propagate exactly as real silent
//! data corruption would. The per-run verdict lands in
//! [`RunReport::resilience`].
//!
//! [`Runner::run_faulty`]: crate::Runner::run_faulty
//! [`RunReport::resilience`]: crate::RunReport::resilience

use crate::report::RunReport;
use crate::runner::{CoreStats, Runner, SimError};
use crate::system::SystemKind;
use eve_common::json::JsonValue;
use eve_common::SplitMix64;
use eve_core::{EveEngine, ResilienceConfig};
use eve_cpu::O3Core;
use eve_isa::{Characterization, Inst, Interpreter, VArithOp, VOperand, Vreg};
use eve_mem::HierarchyConfig;
use eve_sram::{Binding, EveArray, FaultConfig, FaultInjector, FaultStats};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use eve_workloads::Workload;

/// Lanes the shadow array carries. Checking is a sampled model — the
/// real detector covers every lane, but corrupting and comparing a
/// fixed-width slice keeps campaign runs fast while still exercising
/// every register row the workload touches.
pub const SHADOW_LANES: usize = 16;

/// How the recovery protocol responds to parity alarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Re-executions allowed per macro-op before the engine degrades.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_retries: 2 }
    }
}

/// The architecturally visible verdict of one faulty run, ordered from
/// benign to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Faults were injected (or none fired) but never became
    /// architecturally visible and never raised an alarm.
    Masked,
    /// Parity alarms fired; bounded re-execution recovered every one.
    DetectedCorrected,
    /// Retries exhausted: the engine retired its ways back to cache
    /// and the workload re-ran on the decoupled vector baseline.
    DetectedDegraded,
    /// A corruption slipped past the parity check and reached
    /// architectural state.
    SilentDataCorruption,
}

impl FaultOutcome {
    /// Stable string form for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::DetectedCorrected => "detected_corrected",
            FaultOutcome::DetectedDegraded => "detected_degraded",
            FaultOutcome::SilentDataCorruption => "silent_data_corruption",
        }
    }
}

/// What the resilience layer observed and did during one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceReport {
    /// The run's verdict.
    pub outcome: FaultOutcome,
    /// Compute instructions shadow-checked.
    pub checked_ops: u64,
    /// Parity alarms raised across all checks and retries.
    pub parity_alarms: u64,
    /// Re-executions performed.
    pub retries: u64,
    /// Lanes where a silent corruption reached architectural state.
    pub corrupted_lanes: u64,
    /// What the injector actually did.
    pub fault_stats: FaultStats,
    /// Whether the final memory image matched the golden outputs.
    pub verified: bool,
    /// The system that degraded, when `outcome` is
    /// [`FaultOutcome::DetectedDegraded`] (the report's own `system`
    /// is then the fallback that finished the work).
    pub degraded_from: Option<SystemKind>,
}

/// A compute instruction captured just before the interpreter executes
/// it: operand values are read pre-step so destructive aliasing
/// (`vd == vs1`) still checks correctly.
#[derive(Debug, Clone)]
pub struct PreparedCheck {
    vd: Vreg,
    vs1: Vreg,
    vs2: Vreg,
    kind: MacroOpKind,
    a: Vec<u32>,
    b: Vec<u32>,
    d0: Vec<u32>,
}

/// What one shadow check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckVerdict {
    /// Execution matched the interpreter (possibly after retries).
    Clean,
    /// A mismatch reached architectural state (already poked into the
    /// interpreter).
    Silent,
    /// Retries exhausted — the engine must degrade.
    Degrade,
}

/// Executes checkable μprograms on a fault-armed [`EveArray`] and
/// compares against the functional interpreter.
#[derive(Debug)]
pub struct ShadowChecker {
    lib: ProgramLibrary,
    arr: EveArray,
    lanes: usize,
    policy: RecoveryPolicy,
    /// Compute instructions checked.
    pub checked_ops: u64,
    /// Parity alarms seen.
    pub parity_alarms: u64,
    /// Re-executions performed.
    pub retries: u64,
    /// Architecturally corrupted lanes.
    pub corrupted_lanes: u64,
}

impl ShadowChecker {
    /// A checker for an EVE-`n` engine with `fault_cfg` armed.
    ///
    /// # Errors
    ///
    /// Returns a [`eve_common::ConfigError`] for an invalid factor.
    pub fn new(
        n: u32,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
    ) -> eve_common::ConfigResult<Self> {
        let cfg = HybridConfig::new(n)?;
        let mut arr = EveArray::new(cfg, SHADOW_LANES);
        arr.attach_injector(FaultInjector::new(fault_cfg));
        Ok(Self {
            lib: ProgramLibrary::new(cfg),
            arr,
            lanes: SHADOW_LANES,
            policy,
            checked_ops: 0,
            parity_alarms: 0,
            retries: 0,
            corrupted_lanes: 0,
        })
    }

    /// The single macro-op the shadow model can execute with full
    /// semantics for a compute instruction, if any. `Mulh`/`Mulhu`
    /// keep only timing fidelity in the μprogram library and shifts /
    /// signed division use multi-program sequences, so those are left
    /// to the parity-latency model alone.
    fn shadow_kind(op: VArithOp) -> Option<MacroOpKind> {
        use MacroOpKind as M;
        Some(match op {
            VArithOp::Add => M::Add,
            VArithOp::Sub => M::Sub,
            VArithOp::Mul => M::Mul,
            VArithOp::Macc => M::MulAcc,
            VArithOp::Divu => M::Divu,
            VArithOp::Remu => M::Remu,
            VArithOp::And => M::And,
            VArithOp::Or => M::Or,
            VArithOp::Xor => M::Xor,
            VArithOp::Min => M::Min,
            VArithOp::Max => M::Max,
            VArithOp::Minu => M::Minu,
            VArithOp::Maxu => M::Maxu,
            _ => return None,
        })
    }

    /// Captures operand state for `inst` if it is shadow-checkable: an
    /// unmasked compute op with a lane to check. Scalar/immediate
    /// right-hand sides are broadcast into a register the instruction
    /// doesn't read — the VSU's `Splat`-into-scratch, compressed to
    /// one write since the shadow register file is reloaded per check.
    #[must_use]
    pub fn prepare(&self, interp: &Interpreter) -> Option<PreparedCheck> {
        let Some(Inst::VOp {
            op,
            vd,
            vs1,
            rhs,
            masked: false,
        }) = interp.peek()
        else {
            return None;
        };
        let kind = Self::shadow_kind(op)?;
        let lanes = self.lanes.min(interp.vl() as usize);
        if lanes == 0 {
            return None;
        }
        let (vs2, b) = match rhs {
            VOperand::Reg(vs2) => (vs2, interp.vreg(vs2)[..lanes].to_vec()),
            VOperand::Scalar(x) => (Self::spare_reg(vd, vs1), vec![interp.xreg(x) as u32; lanes]),
            VOperand::Imm(i) => (Self::spare_reg(vd, vs1), vec![i as u32; lanes]),
        };
        Some(PreparedCheck {
            vd,
            vs1,
            vs2,
            kind,
            a: interp.vreg(vs1)[..lanes].to_vec(),
            b,
            d0: interp.vreg(vd)[..lanes].to_vec(),
        })
    }

    /// An architectural register distinct from both operands, used to
    /// hold a broadcast value. Clobbering it is harmless: the shadow
    /// register file is reloaded from the interpreter on every check.
    fn spare_reg(vd: Vreg, vs1: Vreg) -> Vreg {
        for idx in [29u8, 30, 31] {
            let r = Vreg::new(idx);
            if r != vd && r != vs1 {
                return r;
            }
        }
        unreachable!("three candidates cannot all collide with two registers")
    }

    /// Loads operands into the shadow register file. Rewriting also
    /// *repairs* transiently corrupted rows — this is the recovery
    /// action a retry performs.
    fn load_operands(&mut self, p: &PreparedCheck) {
        for lane in 0..p.a.len() {
            self.arr
                .write_element(u32::from(p.vs1.index()), lane, p.a[lane]);
            self.arr
                .write_element(u32::from(p.vs2.index()), lane, p.b[lane]);
            self.arr
                .write_element(u32::from(p.vd.index()), lane, p.d0[lane]);
        }
    }

    /// Executes the μprogram for a prepared instruction (after the
    /// interpreter stepped), retrying on parity alarms per the policy.
    /// Silent mismatches are poked into the interpreter so they
    /// propagate architecturally.
    pub fn check(&mut self, p: &PreparedCheck, interp: &mut Interpreter) -> CheckVerdict {
        self.checked_ops += 1;
        let prog = self.lib.program(p.kind);
        let binding = Binding::new(p.vd.index(), p.vs1.index(), p.vs2.index());
        let mut attempt = 0;
        loop {
            self.load_operands(p);
            self.arr.take_parity_alarms();
            self.arr.execute(&prog, &binding);
            let alarms = self.arr.take_parity_alarms();
            if alarms == 0 {
                break;
            }
            self.parity_alarms += alarms;
            if attempt >= self.policy.max_retries {
                return CheckVerdict::Degrade;
            }
            attempt += 1;
            self.retries += 1;
        }
        // Alarm-free execution: compare against the architectural
        // result. A mismatch here slipped past the detector.
        let lanes = p.a.len();
        let golden = &interp.vreg(p.vd)[..lanes];
        let mut shadow = Vec::with_capacity(lanes);
        let mut bad = 0u64;
        for (lane, &want) in golden.iter().enumerate() {
            let got = self.arr.read_element(u32::from(p.vd.index()), lane);
            if got != want {
                bad += 1;
            }
            shadow.push(got);
        }
        if bad == 0 {
            return CheckVerdict::Clean;
        }
        self.corrupted_lanes += bad;
        interp.poke_vreg(p.vd, &shadow);
        CheckVerdict::Silent
    }

    /// The injector's damage counters so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.arr.injector().map(|i| *i.stats()).unwrap_or_default()
    }
}

impl Runner {
    /// Simulates `workload` on EVE-`n` with faults armed: the engine
    /// charges parity-check latency, a [`ShadowChecker`] executes each
    /// checkable compute op bit-accurately under injection, alarms
    /// retry per `policy`, and exhausted retries retire the engine and
    /// re-run the workload on the decoupled vector baseline. The
    /// verdict is in [`RunReport::resilience`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, an invalid factor,
    /// or a verification mismatch *not* attributable to injected
    /// faults (a simulator bug).
    pub fn run_faulty(
        &self,
        n: u32,
        workload: &Workload,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
    ) -> Result<RunReport, SimError> {
        let mem_cfg = HierarchyConfig::table_iii();
        let built = workload.build();
        let mut engine = EveEngine::new(n).map_err(|e| SimError::Config(e.to_string()))?;
        engine.enable_resilience(ResilienceConfig::default());
        let mut core = O3Core::with_unit(engine, mem_cfg.clone());
        let mut checker = ShadowChecker::new(n, fault_cfg, policy)
            .map_err(|e| SimError::Config(e.to_string()))?;
        let hw_vl = core.hw_vl();
        let mut interp = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
        let mut chars = Characterization::new();
        let mut degraded = false;
        loop {
            let prepared = checker.prepare(&interp);
            let Some(r) = interp.step()? else { break };
            chars.record(&r);
            core.retire(&r)?;
            if let Some(p) = prepared {
                if checker.check(&p, &mut interp) == CheckVerdict::Degrade {
                    degraded = true;
                    break;
                }
            }
        }

        if degraded {
            // Graceful degradation: give the donated ways back to the
            // cache, then finish the job on the O3+DV baseline.
            let now = core.finish();
            core.hierarchy_mut().despawn_vector_mode(now);
            let mut fallback = self.run_with_memory(SystemKind::O3Dv, workload, mem_cfg)?;
            fallback.resilience = Some(ResilienceReport {
                outcome: FaultOutcome::DetectedDegraded,
                checked_ops: checker.checked_ops,
                parity_alarms: checker.parity_alarms,
                retries: checker.retries,
                corrupted_lanes: checker.corrupted_lanes,
                fault_stats: checker.fault_stats(),
                verified: true,
                degraded_from: Some(SystemKind::EveN(n)),
            });
            return Ok(fallback);
        }

        let cycles = core.finish();
        let verified = built.verify(interp.memory()).is_ok();
        if !verified && checker.corrupted_lanes == 0 {
            // Not explainable by injection — a real simulator bug.
            return Err(SimError::Verification(
                "outputs diverged without any injected corruption".into(),
            ));
        }
        let outcome = if checker.corrupted_lanes > 0 {
            FaultOutcome::SilentDataCorruption
        } else if checker.parity_alarms > 0 {
            FaultOutcome::DetectedCorrected
        } else {
            FaultOutcome::Masked
        };
        let system = SystemKind::EveN(n);
        Ok(RunReport {
            system,
            workload: built.name,
            wall_ps: cycles.to_picos(system.cycle_time()),
            cycles,
            dyn_insts: interp.retired_count(),
            stats: core.stats(),
            characterization: chars,
            breakdown: core.breakdown(),
            resilience: Some(ResilienceReport {
                outcome,
                checked_ops: checker.checked_ops,
                parity_alarms: checker.parity_alarms,
                retries: checker.retries,
                corrupted_lanes: checker.corrupted_lanes,
                fault_stats: checker.fault_stats(),
                verified,
                degraded_from: None,
            }),
            counters: None,
        })
    }
}

/// One fault-injection campaign: the cross product of fault rates and
/// EVE parallelization factors over a workload list.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every run's injector seed derives from it.
    pub seed: u64,
    /// Uniform transient rates to sweep (0.0 is the control point).
    pub rates: Vec<f64>,
    /// EVE factors to sweep.
    pub factors: Vec<u32>,
    /// Recovery policy for every run.
    pub policy: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA_017,
            rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            factors: vec![8, 32],
            policy: RecoveryPolicy::default(),
        }
    }
}

/// One cell of a campaign: the sweep coordinates plus the injector
/// seed, which is derived *serially* from the plan's master seed by
/// [`campaign_jobs`] so a parallel driver can execute cells in any
/// order and still reproduce the serial RNG assignment exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignJob {
    /// Uniform transient fault rate (0.0 is the control point).
    pub rate: f64,
    /// EVE parallelization factor.
    pub factor: u32,
    /// Workload to run.
    pub workload: Workload,
    /// Pre-derived injector seed for this cell.
    pub seed: u64,
}

/// The result of one campaign cell: the verdict for the tally plus the
/// rendered JSON row.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The run's verdict (feeds the summary tally).
    pub outcome: FaultOutcome,
    /// The run's JSON row, in final rendered form.
    pub row: JsonValue,
}

/// Expands a plan into its cell list, deriving every injector seed
/// from the master seed in the canonical rate → factor → workload
/// order. Seed derivation must stay here — outside any worker — or
/// parallel runs would diverge from serial ones.
#[must_use]
pub fn campaign_jobs(plan: &FaultPlan, workloads: &[Workload]) -> Vec<CampaignJob> {
    let mut seeder = SplitMix64::new(plan.seed);
    let mut jobs = Vec::with_capacity(plan.rates.len() * plan.factors.len() * workloads.len());
    for &rate in &plan.rates {
        for &factor in &plan.factors {
            for &workload in workloads {
                jobs.push(CampaignJob {
                    rate,
                    factor,
                    workload,
                    seed: seeder.next_u64(),
                });
            }
        }
    }
    jobs
}

/// Runs one campaign cell to a finished JSON row.
///
/// # Errors
///
/// Propagates the cell's [`SimError`], if any.
pub fn run_campaign_job(plan: &FaultPlan, job: &CampaignJob) -> Result<CampaignRun, SimError> {
    let cfg = if job.rate == 0.0 {
        FaultConfig::none(job.seed)
    } else {
        FaultConfig::uniform(job.seed, job.rate)
    };
    let report = Runner::new().run_faulty(job.factor, &job.workload, cfg, plan.policy)?;
    let res = report.resilience.as_ref().expect("faulty runs report");
    let row = JsonValue::object([
        ("rate", job.rate.into()),
        ("factor", u64::from(job.factor).into()),
        ("workload", report.workload.into()),
        ("seed", job.seed.into()),
        ("system", report.system.to_string().into()),
        ("outcome", res.outcome.as_str().into()),
        ("verified", res.verified.into()),
        ("cycles", report.cycles.0.into()),
        ("wall_ps", report.wall_ps.0.into()),
        ("checked_ops", res.checked_ops.into()),
        ("parity_alarms", res.parity_alarms.into()),
        ("retries", res.retries.into()),
        ("corrupted_lanes", res.corrupted_lanes.into()),
        ("fault_events", res.fault_stats.total_events().into()),
        ("stuck_cells", res.fault_stats.stuck_cells.into()),
    ]);
    Ok(CampaignRun {
        outcome: res.outcome,
        row,
    })
}

/// Assembles finished cell results — in [`campaign_jobs`] order — into
/// the final campaign document.
#[must_use]
pub fn campaign_doc(plan: &FaultPlan, runs: Vec<CampaignRun>) -> String {
    let mut tally = [0u64; 4];
    let mut rows = Vec::with_capacity(runs.len());
    for run in runs {
        tally[match run.outcome {
            FaultOutcome::Masked => 0,
            FaultOutcome::DetectedCorrected => 1,
            FaultOutcome::DetectedDegraded => 2,
            FaultOutcome::SilentDataCorruption => 3,
        }] += 1;
        rows.push(run.row);
    }
    let doc = JsonValue::object([
        ("seed", plan.seed.into()),
        (
            "policy",
            JsonValue::object([("max_retries", u64::from(plan.policy.max_retries).into())]),
        ),
        (
            "summary",
            JsonValue::object([
                ("masked", tally[0].into()),
                ("detected_corrected", tally[1].into()),
                ("detected_degraded", tally[2].into()),
                ("silent_data_corruption", tally[3].into()),
            ]),
        ),
        ("runs", JsonValue::Array(rows)),
    ]);
    doc.to_pretty()
}

/// Runs the campaign serially and renders a deterministic JSON
/// document: the same plan and workloads always produce byte-identical
/// output. The `fault_campaign` binary fans the same jobs out across
/// threads and must byte-match this function.
///
/// # Errors
///
/// Propagates the first [`SimError`] any run hits.
pub fn campaign_json(plan: &FaultPlan, workloads: &[Workload]) -> Result<String, SimError> {
    let runs = campaign_jobs(plan, workloads)
        .iter()
        .map(|job| run_campaign_job(plan, job))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(campaign_doc(plan, runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, Asm, Memory};
    use eve_sram::{Fault, FaultLayer};

    fn vadd_program(n: usize) -> (Interpreter, Vreg) {
        let mut mem = Memory::new(0x8000);
        let a: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i * 7 + 2).collect();
        mem.store_u32_slice(0x1000, &a);
        mem.store_u32_slice(0x2000, &b);
        let mut s = Asm::new();
        s.li(xreg::A0, n as i64);
        s.setvl(xreg::T0, xreg::A0);
        s.li(xreg::A1, 0x1000);
        s.vload(vreg::V1, xreg::A1);
        s.li(xreg::A2, 0x2000);
        s.vload(vreg::V2, xreg::A2);
        s.vop(VArithOp::Add, vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
        s.halt();
        (
            Interpreter::new(s.assemble().unwrap(), mem, n as u32),
            vreg::V3,
        )
    }

    fn drive(interp: &mut Interpreter, checker: &mut ShadowChecker) -> Vec<CheckVerdict> {
        let mut verdicts = Vec::new();
        loop {
            let prepared = checker.prepare(interp);
            if interp.step().unwrap().is_none() {
                break;
            }
            if let Some(p) = prepared {
                verdicts.push(checker.check(&p, interp));
            }
        }
        verdicts
    }

    #[test]
    fn zero_fault_checks_are_clean() {
        let (mut interp, _) = vadd_program(8);
        let mut checker =
            ShadowChecker::new(32, FaultConfig::none(7), RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Clean]);
        assert_eq!(checker.checked_ops, 1);
        assert_eq!(checker.parity_alarms, 0);
        assert_eq!(checker.fault_stats().total_events(), 0);
    }

    #[test]
    fn persistent_alarms_degrade() {
        // A stuck cell in a *source* row: with EVE-32 (1 segment)
        // register v is row v. Every operand reload re-perturbs the
        // row, and the μprogram's parity-checked read alarms on every
        // retry until the policy gives up.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::stuck_at(1, 0, 5, true));
        let (mut interp, _) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert!(
            verdicts.contains(&CheckVerdict::Degrade),
            "stuck destination must exhaust retries: {verdicts:?}"
        );
        assert!(checker.retries > 0);
    }

    #[test]
    fn transient_write_faults_are_corrected_by_retry() {
        // A one-shot writeback-layer transient corrupts a source row
        // after its parity was generated: the μprogram's read alarms,
        // and the retry's operand reload restores a clean row.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            1,
            0,
            3,
            0,
            u64::MAX,
        ));
        let (mut interp, _) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Clean]);
        assert!(checker.parity_alarms > 0, "the flip must be detected");
        assert_eq!(checker.retries, 1, "one re-execution recovers");
    }

    #[test]
    fn sense_faults_are_silent_and_poked() {
        // Sense-layer faults corrupt operands before the parity-bearing
        // latch, so no alarm fires — the corruption must instead land
        // in the interpreter's register (SDC modeling).
        let mut cfg = FaultConfig::none(7);
        cfg.scripted
            .push(Fault::transient(FaultLayer::Sense, 1, 0, 4, 0, u64::MAX));
        let (mut interp, vd) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Silent]);
        assert!(checker.corrupted_lanes > 0);
        // The poked value differs from the true sum for lane 0.
        let true_sum = 1u32 + 2;
        assert_ne!(interp.vreg(vd)[0], true_sum);
    }
}
