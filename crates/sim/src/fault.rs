//! Fault injection, detection, and graceful degradation at the system
//! level.
//!
//! The bit-accurate injector and the parity model live in `eve-sram`;
//! the check-latency model lives in `eve-core`. This module closes the
//! loop: [`Runner::run_faulty`] drives a workload on an EVE system
//! while a [`ShadowChecker`] executes every checkable compute
//! instruction's μprograms on a live [`EveArray`] with faults armed.
//! Parity alarms trigger bounded re-execution; exhausted retries
//! retire the engine back to cache and re-run the workload on the
//! decoupled vector baseline; silent corruptions are written back into
//! the architectural state so they propagate exactly as real silent
//! data corruption would. The per-run verdict lands in
//! [`RunReport::resilience`].
//!
//! [`Runner::run_faulty`]: crate::Runner::run_faulty
//! [`RunReport::resilience`]: crate::RunReport::resilience

use crate::report::RunReport;
use crate::runner::{CoreStats, Runner, SimError};
use crate::system::SystemKind;
use eve_common::json::JsonValue;
use eve_common::SplitMix64;
use eve_core::{EveEngine, ResilienceConfig};
use eve_cpu::O3Core;
use eve_isa::{Characterization, Inst, Interpreter, VArithOp, VOperand, Vreg};
use eve_mem::HierarchyConfig;
use eve_sram::{Binding, DetectionMode, EveArray, FaultConfig, FaultInjector, FaultStats};
use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
use eve_workloads::Workload;

/// Lanes the shadow array carries. Checking is a sampled model — the
/// real detector covers every lane, but corrupting and comparing a
/// fixed-width slice keeps campaign runs fast while still exercising
/// every register row the workload touches.
pub const SHADOW_LANES: usize = 16;

/// How the recovery protocol climbs the escalation ladder
/// (correct in place → retry → remap row → disable way → degrade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Re-executions allowed per macro-op before escalating past the
    /// retry stage.
    pub max_retries: u32,
    /// Spare-row remaps the controller may perform across the run
    /// (0 disables the remap stage).
    pub max_row_remaps: u32,
    /// Way disables (array rebuild onto different physical ways) the
    /// controller may perform (0 disables the stage).
    pub max_way_disables: u32,
    /// Background scrub every this many checked ops (0 disables).
    pub scrub_every_ops: u64,
    /// Detection/correction events on one row before it is considered
    /// permanently damaged and eligible for remap.
    pub remap_threshold: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            max_row_remaps: 0,
            max_way_disables: 0,
            scrub_every_ops: 0,
            remap_threshold: 3,
        }
    }
}

impl RecoveryPolicy {
    /// The full-ladder preset: spare-row remapping, one way disable,
    /// and a background scrub every 32 checked ops.
    #[must_use]
    pub fn sparing() -> Self {
        Self {
            max_row_remaps: 4,
            max_way_disables: 1,
            scrub_every_ops: 32,
            ..Self::default()
        }
    }
}

/// How many macro-ops each escalation stage resolved (or failed to).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EscalationStages {
    /// Resolved by in-place SECDED correction alone (no alarm).
    pub corrected: u64,
    /// Resolved by re-execution.
    pub retried: u64,
    /// Resolved after retiring hot rows to spares.
    pub remapped: u64,
    /// Resolved after rebuilding the array on fresh ways.
    pub way_disabled: u64,
    /// Fell off the ladder into O3+DV degradation.
    pub degraded: u64,
}

/// The architecturally visible verdict of one faulty run, ordered from
/// benign to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Faults were injected (or none fired) but never became
    /// architecturally visible and never raised an alarm.
    Masked,
    /// Parity alarms fired; bounded re-execution recovered every one.
    DetectedCorrected,
    /// Retries exhausted: the engine retired its ways back to cache
    /// and the workload re-ran on the decoupled vector baseline.
    DetectedDegraded,
    /// A corruption slipped past the parity check and reached
    /// architectural state.
    SilentDataCorruption,
}

impl FaultOutcome {
    /// Stable string form for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::DetectedCorrected => "detected_corrected",
            FaultOutcome::DetectedDegraded => "detected_degraded",
            FaultOutcome::SilentDataCorruption => "silent_data_corruption",
        }
    }
}

/// What the resilience layer observed and did during one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The run's verdict.
    pub outcome: FaultOutcome,
    /// Compute instructions shadow-checked.
    pub checked_ops: u64,
    /// Uncorrectable detections (parity mismatches or SECDED
    /// double-bit syndromes) across all checks and retries.
    pub parity_alarms: u64,
    /// SECDED single-bit errors corrected in place.
    pub corrected: u64,
    /// Re-executions performed.
    pub retries: u64,
    /// Rows retired to spares.
    pub remapped_rows: u64,
    /// Ways disabled (array rebuilds).
    pub ways_disabled: u64,
    /// Background scrub sweeps performed.
    pub scrubs: u64,
    /// Errors the scrubber corrected before they could pair up.
    pub scrub_corrected: u64,
    /// Lanes where a silent corruption reached architectural state.
    pub corrupted_lanes: u64,
    /// Per-stage resolution counts for the escalation ladder.
    pub stages: EscalationStages,
    /// Fraction of engine service slots that served requests in EVE
    /// mode: `eve_served / (checked + retries + fallback_served)`.
    /// Retries burn slots re-serving the same request; degraded runs
    /// push the remaining work to the fallback.
    pub availability: f64,
    /// What the injector actually did.
    pub fault_stats: FaultStats,
    /// Whether the final memory image matched the golden outputs.
    pub verified: bool,
    /// The system that degraded, when `outcome` is
    /// [`FaultOutcome::DetectedDegraded`] (the report's own `system`
    /// is then the fallback that finished the work).
    pub degraded_from: Option<SystemKind>,
}

/// The escalation ladder's externally visible health, exported for the
/// serving layer: `eve-serve` converts a snapshot into circuit-breaker
/// signals (a degradation trips the breaker, an exhausted remap budget
/// or a way disable counts as a failure).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineHealth {
    /// Per-stage resolution tallies.
    pub stages: EscalationStages,
    /// Uncorrectable detections seen so far.
    pub parity_alarms: u64,
    /// Single-bit errors corrected in place.
    pub corrected: u64,
    /// Rows retired to spares.
    pub remapped_rows: u64,
    /// Ways disabled (array rebuilds).
    pub ways_disabled: u64,
    /// The spare-row budget is spent: the next persistent error can
    /// only be absorbed by a way disable or a degradation.
    pub remap_exhausted: bool,
    /// The way-disable budget is spent: the next persistent error
    /// degrades the engine.
    pub way_budget_exhausted: bool,
    /// The engine fell off the ladder into O3+DV degradation.
    pub degraded: bool,
}

impl ShadowChecker {
    /// A health snapshot of this checker's escalation ladder.
    #[must_use]
    pub fn health(&self) -> EngineHealth {
        EngineHealth {
            stages: self.stages,
            parity_alarms: self.parity_alarms,
            corrected: self.corrected,
            remapped_rows: self.remapped_rows,
            ways_disabled: self.ways_disabled,
            remap_exhausted: self.remapped_rows >= u64::from(self.policy.max_row_remaps),
            way_budget_exhausted: self.ways_disabled >= u64::from(self.policy.max_way_disables),
            degraded: self.stages.degraded > 0,
        }
    }
}

impl ResilienceReport {
    /// The run's final health snapshot. Budgets are not recorded in
    /// the report, so exhaustion is inferred from the outcome: a
    /// degraded run fell through the whole ladder.
    #[must_use]
    pub fn health(&self) -> EngineHealth {
        let degraded = self.outcome == FaultOutcome::DetectedDegraded;
        EngineHealth {
            stages: self.stages,
            parity_alarms: self.parity_alarms,
            corrected: self.corrected,
            remapped_rows: self.remapped_rows,
            ways_disabled: self.ways_disabled,
            remap_exhausted: degraded,
            way_budget_exhausted: degraded,
            degraded,
        }
    }
}

/// A compute instruction captured just before the interpreter executes
/// it: operand values are read pre-step so destructive aliasing
/// (`vd == vs1`) still checks correctly.
#[derive(Debug, Clone)]
pub struct PreparedCheck {
    vd: Vreg,
    vs1: Vreg,
    vs2: Vreg,
    kind: MacroOpKind,
    a: Vec<u32>,
    b: Vec<u32>,
    d0: Vec<u32>,
}

/// What one shadow check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckVerdict {
    /// Execution matched the interpreter (possibly after retries).
    Clean,
    /// A mismatch reached architectural state (already poked into the
    /// interpreter).
    Silent,
    /// Retries exhausted — the engine must degrade.
    Degrade,
}

/// Executes checkable μprograms on a fault-armed [`EveArray`] and
/// compares against the functional interpreter, climbing the
/// escalation ladder (correct → retry → remap → disable way →
/// degrade) on detected errors.
#[derive(Debug)]
pub struct ShadowChecker {
    lib: ProgramLibrary,
    arr: EveArray,
    lanes: usize,
    policy: RecoveryPolicy,
    mode: DetectionMode,
    /// The armed fault population; way-disable rebuilds re-arm a fresh
    /// injector over it with a deterministically derived seed.
    base_cfg: FaultConfig,
    /// Compute instructions checked.
    pub checked_ops: u64,
    /// Uncorrectable detections seen (parity mismatches or SECDED
    /// double-bit syndromes).
    pub parity_alarms: u64,
    /// SECDED single-bit errors corrected in place.
    pub corrected: u64,
    /// Re-executions performed.
    pub retries: u64,
    /// Rows retired to spares.
    pub remapped_rows: u64,
    /// Ways disabled (array rebuilds onto fresh physical ways).
    pub ways_disabled: u64,
    /// Background scrub sweeps performed.
    pub scrubs: u64,
    /// Errors the scrubber corrected.
    pub scrub_corrected: u64,
    /// Architecturally corrupted lanes.
    pub corrupted_lanes: u64,
    /// Per-stage resolution tallies.
    pub stages: EscalationStages,
    /// Correction events not yet charged to the engine's timeline.
    pending_corrections: u64,
    /// Remapped rows not yet charged to the engine's timeline.
    pending_remaps: u64,
    /// Reused lane buffer for the silent-mismatch audit (`check` runs
    /// once per compute instruction — no per-call allocation).
    shadow: Vec<u32>,
}

impl ShadowChecker {
    /// A parity-mode checker for an EVE-`n` engine with `fault_cfg`
    /// armed.
    ///
    /// # Errors
    ///
    /// Returns a [`eve_common::ConfigError`] for an invalid factor.
    pub fn new(
        n: u32,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
    ) -> eve_common::ConfigResult<Self> {
        Self::with_mode(n, fault_cfg, policy, DetectionMode::Parity)
    }

    /// A checker with an explicit detection mode.
    ///
    /// # Errors
    ///
    /// Returns a [`eve_common::ConfigError`] for an invalid factor.
    pub fn with_mode(
        n: u32,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
        mode: DetectionMode,
    ) -> eve_common::ConfigResult<Self> {
        let cfg = HybridConfig::new(n)?;
        let mut arr = EveArray::new(cfg, SHADOW_LANES);
        arr.attach_injector_with(FaultInjector::new(fault_cfg.clone()), mode);
        Ok(Self {
            lib: ProgramLibrary::new(cfg),
            arr,
            lanes: SHADOW_LANES,
            policy,
            mode,
            base_cfg: fault_cfg,
            checked_ops: 0,
            parity_alarms: 0,
            corrected: 0,
            retries: 0,
            remapped_rows: 0,
            ways_disabled: 0,
            scrubs: 0,
            scrub_corrected: 0,
            corrupted_lanes: 0,
            stages: EscalationStages::default(),
            pending_corrections: 0,
            pending_remaps: 0,
            shadow: Vec::with_capacity(SHADOW_LANES),
        })
    }

    /// The active detection mode.
    #[must_use]
    pub fn mode(&self) -> DetectionMode {
        self.mode
    }

    /// Drains the (corrections, remapped rows) not yet charged to the
    /// engine's timing model; the driver forwards them to
    /// [`eve_core::EveEngine::charge_ecc_corrections`] and
    /// [`eve_core::EveEngine::charge_remaps`].
    pub fn take_charges(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.pending_corrections),
            std::mem::take(&mut self.pending_remaps),
        )
    }

    /// The single macro-op the shadow model can execute with full
    /// semantics for a compute instruction, if any. `Mulh`/`Mulhu`
    /// keep only timing fidelity in the μprogram library and shifts /
    /// signed division use multi-program sequences, so those are left
    /// to the parity-latency model alone.
    fn shadow_kind(op: VArithOp) -> Option<MacroOpKind> {
        use MacroOpKind as M;
        Some(match op {
            VArithOp::Add => M::Add,
            VArithOp::Sub => M::Sub,
            VArithOp::Mul => M::Mul,
            VArithOp::Macc => M::MulAcc,
            VArithOp::Divu => M::Divu,
            VArithOp::Remu => M::Remu,
            VArithOp::And => M::And,
            VArithOp::Or => M::Or,
            VArithOp::Xor => M::Xor,
            VArithOp::Min => M::Min,
            VArithOp::Max => M::Max,
            VArithOp::Minu => M::Minu,
            VArithOp::Maxu => M::Maxu,
            _ => return None,
        })
    }

    /// Captures operand state for `inst` if it is shadow-checkable: an
    /// unmasked compute op with a lane to check. Scalar/immediate
    /// right-hand sides are broadcast into a register the instruction
    /// doesn't read — the VSU's `Splat`-into-scratch, compressed to
    /// one write since the shadow register file is reloaded per check.
    #[must_use]
    pub fn prepare(&self, interp: &Interpreter) -> Option<PreparedCheck> {
        let Some(Inst::VOp {
            op,
            vd,
            vs1,
            rhs,
            masked: false,
        }) = interp.peek()
        else {
            return None;
        };
        let kind = Self::shadow_kind(op)?;
        let lanes = self.lanes.min(interp.vl() as usize);
        if lanes == 0 {
            return None;
        }
        let (vs2, b) = match rhs {
            VOperand::Reg(vs2) => (vs2, interp.vreg(vs2)[..lanes].to_vec()),
            VOperand::Scalar(x) => (Self::spare_reg(vd, vs1), vec![interp.xreg(x) as u32; lanes]),
            VOperand::Imm(i) => (Self::spare_reg(vd, vs1), vec![i as u32; lanes]),
        };
        Some(PreparedCheck {
            vd,
            vs1,
            vs2,
            kind,
            a: interp.vreg(vs1)[..lanes].to_vec(),
            b,
            d0: interp.vreg(vd)[..lanes].to_vec(),
        })
    }

    /// An architectural register distinct from both operands, used to
    /// hold a broadcast value. Clobbering it is harmless: the shadow
    /// register file is reloaded from the interpreter on every check.
    fn spare_reg(vd: Vreg, vs1: Vreg) -> Vreg {
        for idx in [29u8, 30, 31] {
            let r = Vreg::new(idx);
            if r != vd && r != vs1 {
                return r;
            }
        }
        unreachable!("three candidates cannot all collide with two registers")
    }

    /// Loads operands into the shadow register file. Rewriting also
    /// *repairs* transiently corrupted rows — this is the recovery
    /// action a retry performs.
    fn load_operands(&mut self, p: &PreparedCheck) {
        for lane in 0..p.a.len() {
            self.arr
                .write_element(u32::from(p.vs1.index()), lane, p.a[lane]);
            self.arr
                .write_element(u32::from(p.vs2.index()), lane, p.b[lane]);
            self.arr
                .write_element(u32::from(p.vd.index()), lane, p.d0[lane]);
        }
    }

    /// Retires rows whose event counters crossed the policy threshold
    /// to spares, within the remap budget. Returns how many rows were
    /// remapped.
    fn remap_hot_rows(&mut self) -> u64 {
        let budget = u64::from(self.policy.max_row_remaps).saturating_sub(self.remapped_rows);
        if budget == 0 {
            return 0;
        }
        let mut done = 0u64;
        for row in self.arr.hot_rows(self.policy.remap_threshold.max(1)) {
            if done >= budget || !self.arr.remap_row(row as usize) {
                break;
            }
            done += 1;
        }
        self.remapped_rows += done;
        self.pending_remaps += done;
        done
    }

    /// Disables the current way group: rebuilds the array on fresh
    /// physical ways, re-arming the same fault population under a
    /// deterministically derived seed (different ways, different
    /// physical defects). Returns `false` once the budget is spent.
    fn disable_way(&mut self) -> bool {
        if self.ways_disabled >= u64::from(self.policy.max_way_disables) {
            return false;
        }
        self.ways_disabled += 1;
        let mut cfg = self.base_cfg.clone();
        // Scripted faults describe defects in the *original* ways;
        // the replacement ways only carry the statistical population.
        cfg.scripted.clear();
        cfg.seed = SplitMix64::new(self.base_cfg.seed ^ self.ways_disabled).next_u64();
        let mut arr = EveArray::new(self.arr.config(), SHADOW_LANES);
        arr.attach_injector_with(FaultInjector::new(cfg), self.mode);
        self.arr = arr;
        true
    }

    /// Runs a background scrub sweep when the policy's cadence is due.
    fn maybe_scrub(&mut self) {
        if self.policy.scrub_every_ops == 0
            || !self.checked_ops.is_multiple_of(self.policy.scrub_every_ops)
        {
            return;
        }
        let stats = self.arr.scrub();
        self.scrubs += 1;
        self.scrub_corrected += stats.corrected;
        // Scrub-found events flow through the same array counters as
        // read-path events; drain them into the run totals/charges.
        let corrected = self.arr.take_corrected_events();
        self.corrected += corrected;
        self.pending_corrections += corrected;
        self.parity_alarms += self.arr.take_parity_alarms();
    }

    /// Executes the μprogram for a prepared instruction (after the
    /// interpreter stepped), climbing the escalation ladder on
    /// uncorrectable detections: bounded retry, then spare-row remap,
    /// then way disable, then degrade. Silent mismatches are poked
    /// into the interpreter so they propagate architecturally.
    pub fn check(&mut self, p: &PreparedCheck, interp: &mut Interpreter) -> CheckVerdict {
        self.checked_ops += 1;
        let prog = self.lib.program(p.kind);
        let binding = Binding::new(p.vd.index(), p.vs1.index(), p.vs2.index());
        let mut attempt = 0;
        let mut stage_retried = false;
        let mut stage_remapped = false;
        let mut stage_way = false;
        loop {
            self.load_operands(p);
            self.arr.take_parity_alarms();
            self.arr.take_corrected_events();
            self.arr.execute(&prog, &binding);
            // Drain-path audit: the destination leaves the engine
            // through the same check/correct pipeline operand reads
            // use, so writeback flips on rows the μprogram never
            // re-reads are still caught here.
            let _ = self.arr.audit_register(u32::from(p.vd.index()));
            let corrected = self.arr.take_corrected_events();
            let alarms = self.arr.take_parity_alarms();
            self.corrected += corrected;
            self.pending_corrections += corrected;
            if alarms == 0 {
                // Resolution bookkeeping: attribute the op to the
                // highest ladder stage it needed.
                if stage_way {
                    self.stages.way_disabled += 1;
                } else if stage_remapped {
                    self.stages.remapped += 1;
                } else if stage_retried {
                    self.stages.retried += 1;
                } else if corrected > 0 {
                    self.stages.corrected += 1;
                }
                break;
            }
            self.parity_alarms += alarms;
            if attempt < self.policy.max_retries {
                attempt += 1;
                self.retries += 1;
                stage_retried = true;
                continue;
            }
            // Retries exhausted: retire hot rows to spares and grant a
            // fresh retry round.
            if self.remap_hot_rows() > 0 {
                attempt = 0;
                stage_remapped = true;
                continue;
            }
            // No row to blame (or spares gone): rebuild on fresh ways.
            if self.disable_way() {
                attempt = 0;
                stage_way = true;
                continue;
            }
            self.stages.degraded += 1;
            return CheckVerdict::Degrade;
        }
        // A repeatedly-correcting row is permanently damaged even if
        // it never alarms; retire it before a second flip pairs up.
        if self.remap_hot_rows() > 0 {
            self.stages.remapped += 1;
        }
        self.maybe_scrub();
        // Alarm-free execution: compare against the architectural
        // result. A mismatch here slipped past the detector.
        let lanes = p.a.len();
        let golden = &interp.vreg(p.vd)[..lanes];
        self.shadow.clear();
        let mut bad = 0u64;
        for (lane, &want) in golden.iter().enumerate() {
            let got = self.arr.read_element(u32::from(p.vd.index()), lane);
            if got != want {
                bad += 1;
            }
            self.shadow.push(got);
        }
        if bad == 0 {
            return CheckVerdict::Clean;
        }
        self.corrupted_lanes += bad;
        interp.poke_vreg(p.vd, &self.shadow);
        CheckVerdict::Silent
    }

    /// The injector's damage counters so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.arr.injector().map(|i| *i.stats()).unwrap_or_default()
    }
}

impl Runner {
    /// Simulates `workload` on EVE-`n` with faults armed: the engine
    /// charges parity-check latency, a [`ShadowChecker`] executes each
    /// checkable compute op bit-accurately under injection, alarms
    /// retry per `policy`, and exhausted retries retire the engine and
    /// re-run the workload on the decoupled vector baseline. The
    /// verdict is in [`RunReport::resilience`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, an invalid factor,
    /// or a verification mismatch *not* attributable to injected
    /// faults (a simulator bug).
    pub fn run_faulty(
        &self,
        n: u32,
        workload: &Workload,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
    ) -> Result<RunReport, SimError> {
        self.run_faulty_with(n, workload, fault_cfg, policy, DetectionMode::Parity)
    }

    /// [`Runner::run_faulty`] with an explicit detection mode: SECDED
    /// rows correct single-bit errors in place (charged to the
    /// engine's `ecc_correct_stall`), spare-row remaps and background
    /// scrubs land in their own buckets, and the report carries the
    /// escalation tallies plus the availability metric.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, an invalid factor,
    /// or a verification mismatch *not* attributable to injected
    /// faults (a simulator bug).
    pub fn run_faulty_with(
        &self,
        n: u32,
        workload: &Workload,
        fault_cfg: FaultConfig,
        policy: RecoveryPolicy,
        mode: DetectionMode,
    ) -> Result<RunReport, SimError> {
        let mem_cfg = HierarchyConfig::table_iii();
        let built = workload.build();
        let mut engine = EveEngine::new(n).map_err(|e| SimError::Config(e.to_string()))?;
        engine.enable_resilience(match mode {
            DetectionMode::Parity => ResilienceConfig::default(),
            DetectionMode::Secded => ResilienceConfig::secded(),
        });
        let mut core = O3Core::with_unit(engine, mem_cfg.clone());
        if let Some(t) = self.tracer() {
            core.set_tracer(t);
        }
        let mut checker = ShadowChecker::with_mode(n, fault_cfg, policy, mode)
            .map_err(|e| SimError::Config(e.to_string()))?;
        let hw_vl = core.hw_vl();
        let mut interp = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
        let mut chars = Characterization::new();
        let mut degraded = false;
        loop {
            let prepared = checker.prepare(&interp);
            let Some(r) = interp.step()? else { break };
            chars.record(&r);
            core.retire(&r)?;
            if let Some(p) = prepared {
                let verdict = checker.check(&p, &mut interp);
                let (corrections, remaps) = checker.take_charges();
                core.vector_unit_mut().charge_ecc_corrections(corrections);
                core.vector_unit_mut().charge_remaps(remaps);
                if verdict == CheckVerdict::Degrade {
                    degraded = true;
                    break;
                }
            }
        }

        if degraded {
            // Graceful degradation: give the donated ways back to the
            // cache, then finish the job on the O3+DV baseline. The
            // remaining checkable work is counted (functionally) so
            // the availability metric knows how much the fallback
            // served.
            let mut fallback_ops = 0u64;
            loop {
                let checkable = checker.prepare(&interp).is_some();
                if interp.step()?.is_none() {
                    break;
                }
                if checkable {
                    fallback_ops += 1;
                }
            }
            let now = core.finish();
            core.hierarchy_mut().despawn_vector_mode(now);
            let mut fallback = self.run_with_memory(SystemKind::O3Dv, workload, mem_cfg)?;
            fallback.resilience = Some(ResilienceReport {
                outcome: FaultOutcome::DetectedDegraded,
                checked_ops: checker.checked_ops,
                parity_alarms: checker.parity_alarms,
                corrected: checker.corrected,
                retries: checker.retries,
                remapped_rows: checker.remapped_rows,
                ways_disabled: checker.ways_disabled,
                scrubs: checker.scrubs,
                scrub_corrected: checker.scrub_corrected,
                corrupted_lanes: checker.corrupted_lanes,
                stages: checker.stages,
                availability: availability(&checker, fallback_ops),
                fault_stats: checker.fault_stats(),
                verified: true,
                degraded_from: Some(SystemKind::EveN(n)),
            });
            return Ok(fallback);
        }

        let cycles = core.finish();
        let verified = built.verify(interp.memory()).is_ok();
        if !verified && checker.corrupted_lanes == 0 {
            // Not explainable by injection — a real simulator bug.
            return Err(SimError::Verification(
                "outputs diverged without any injected corruption".into(),
            ));
        }
        let outcome = if checker.corrupted_lanes > 0 {
            FaultOutcome::SilentDataCorruption
        } else if checker.parity_alarms > 0 || checker.corrected > 0 {
            FaultOutcome::DetectedCorrected
        } else {
            FaultOutcome::Masked
        };
        let system = SystemKind::EveN(n);
        Ok(RunReport {
            system,
            workload: built.name,
            wall_ps: cycles.to_picos(system.cycle_time()),
            cycles,
            dyn_insts: interp.retired_count(),
            stats: core.stats(),
            characterization: chars,
            breakdown: core.breakdown(),
            resilience: Some(ResilienceReport {
                outcome,
                checked_ops: checker.checked_ops,
                parity_alarms: checker.parity_alarms,
                corrected: checker.corrected,
                retries: checker.retries,
                remapped_rows: checker.remapped_rows,
                ways_disabled: checker.ways_disabled,
                scrubs: checker.scrubs,
                scrub_corrected: checker.scrub_corrected,
                corrupted_lanes: checker.corrupted_lanes,
                stages: checker.stages,
                availability: availability(&checker, 0),
                fault_stats: checker.fault_stats(),
                verified,
                degraded_from: None,
            }),
            counters: None,
        })
    }
}

/// Fraction of engine service slots that served requests in EVE mode.
/// Every checked op and every retry occupies one slot; requests the
/// degraded fallback served never reached the engine at all. An op
/// that fell off the ladder was ultimately served by the fallback, so
/// it leaves the numerator.
fn availability(checker: &ShadowChecker, fallback_ops: u64) -> f64 {
    let served = checker.checked_ops - checker.stages.degraded;
    let slots = checker.checked_ops + checker.retries + fallback_ops;
    if slots == 0 {
        1.0
    } else {
        served as f64 / slots as f64
    }
}

/// One protection scheme a campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// Interleaved parity, detect-and-retry only.
    Parity,
    /// SECDED, correct-in-place (no sparing).
    Secded,
    /// SECDED plus the full ladder: spare-row remapping, way disable,
    /// and background scrubbing.
    SecdedSparing,
}

impl CampaignMode {
    /// Stable string form for report rows.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CampaignMode::Parity => "parity",
            CampaignMode::Secded => "secded",
            CampaignMode::SecdedSparing => "secded_sparing",
        }
    }

    /// The array-level detection mode this scheme arms.
    #[must_use]
    pub fn detection(&self) -> DetectionMode {
        match self {
            CampaignMode::Parity => DetectionMode::Parity,
            CampaignMode::Secded | CampaignMode::SecdedSparing => DetectionMode::Secded,
        }
    }

    /// The recovery policy this scheme runs under, derived from the
    /// plan's base policy: only the sparing scheme gets the remap /
    /// way-disable / scrub stages.
    #[must_use]
    pub fn policy(&self, base: RecoveryPolicy) -> RecoveryPolicy {
        match self {
            CampaignMode::Parity | CampaignMode::Secded => RecoveryPolicy {
                max_row_remaps: 0,
                max_way_disables: 0,
                scrub_every_ops: 0,
                ..base
            },
            CampaignMode::SecdedSparing => RecoveryPolicy {
                max_row_remaps: base.max_row_remaps.max(4),
                max_way_disables: base.max_way_disables.max(1),
                scrub_every_ops: if base.scrub_every_ops == 0 {
                    32
                } else {
                    base.scrub_every_ops
                },
                ..base
            },
        }
    }
}

/// One fault-injection campaign: the cross product of fault rates,
/// protection modes, and EVE parallelization factors over a workload
/// list.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every run's injector seed derives from it.
    pub seed: u64,
    /// Uniform transient rates to sweep (0.0 is the control point).
    pub rates: Vec<f64>,
    /// Protection schemes to sweep.
    pub modes: Vec<CampaignMode>,
    /// EVE factors to sweep.
    pub factors: Vec<u32>,
    /// Base recovery policy (each mode derives its own from it).
    pub policy: RecoveryPolicy,
    /// Restrict the population to writeback-layer transients — the
    /// single-bit class SECDED corrects completely (the CI zero-SDC
    /// gate). `false` arms the full uniform population.
    pub write_only: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA_017,
            rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            modes: vec![
                CampaignMode::Parity,
                CampaignMode::Secded,
                CampaignMode::SecdedSparing,
            ],
            factors: vec![8, 32],
            policy: RecoveryPolicy::default(),
            write_only: false,
        }
    }
}

/// One cell of a campaign: the sweep coordinates plus the injector
/// seed, which is derived *serially* from the plan's master seed by
/// [`campaign_jobs`] so a parallel driver can execute cells in any
/// order and still reproduce the serial RNG assignment exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignJob {
    /// Uniform transient fault rate (0.0 is the control point).
    pub rate: f64,
    /// Protection scheme for this cell.
    pub mode: CampaignMode,
    /// EVE parallelization factor.
    pub factor: u32,
    /// Workload to run.
    pub workload: Workload,
    /// Pre-derived injector seed for this cell.
    pub seed: u64,
}

/// The result of one campaign cell: the verdict for the tally, the
/// coordinates and availability for the per-mode aggregation, plus
/// the rendered JSON row.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The run's verdict (feeds the summary tally).
    pub outcome: FaultOutcome,
    /// The cell's protection scheme.
    pub mode: CampaignMode,
    /// The cell's fault rate.
    pub rate: f64,
    /// The run's availability (feeds the per-mode summary).
    pub availability: f64,
    /// The run's JSON row, in final rendered form.
    pub row: JsonValue,
}

/// Expands a plan into its cell list, deriving every injector seed
/// from the master seed in the canonical rate → mode → factor →
/// workload order. Seed derivation must stay here — outside any
/// worker — or parallel runs would diverge from serial ones.
#[must_use]
pub fn campaign_jobs(plan: &FaultPlan, workloads: &[Workload]) -> Vec<CampaignJob> {
    let mut seeder = SplitMix64::new(plan.seed);
    let mut jobs = Vec::with_capacity(
        plan.rates.len() * plan.modes.len() * plan.factors.len() * workloads.len(),
    );
    for &rate in &plan.rates {
        for &mode in &plan.modes {
            for &factor in &plan.factors {
                for &workload in workloads {
                    jobs.push(CampaignJob {
                        rate,
                        mode,
                        factor,
                        workload,
                        seed: seeder.next_u64(),
                    });
                }
            }
        }
    }
    jobs
}

/// Runs one campaign cell to a finished JSON row.
///
/// # Errors
///
/// Propagates the cell's [`SimError`], if any.
pub fn run_campaign_job(plan: &FaultPlan, job: &CampaignJob) -> Result<CampaignRun, SimError> {
    let cfg = if job.rate == 0.0 {
        FaultConfig::none(job.seed)
    } else if plan.write_only {
        FaultConfig::write_transients(job.seed, job.rate)
    } else {
        FaultConfig::uniform(job.seed, job.rate)
    };
    let report = Runner::new().run_faulty_with(
        job.factor,
        &job.workload,
        cfg,
        job.mode.policy(plan.policy),
        job.mode.detection(),
    )?;
    let res = report
        .resilience
        .as_ref()
        .ok_or_else(|| SimError::Verification("faulty run produced no resilience report".into()))?;
    let row = JsonValue::object([
        ("rate", job.rate.into()),
        ("mode", job.mode.as_str().into()),
        ("factor", u64::from(job.factor).into()),
        ("workload", report.workload.into()),
        ("seed", job.seed.into()),
        ("system", report.system.to_string().into()),
        ("outcome", res.outcome.as_str().into()),
        ("verified", res.verified.into()),
        ("cycles", report.cycles.0.into()),
        ("wall_ps", report.wall_ps.0.into()),
        ("checked_ops", res.checked_ops.into()),
        ("parity_alarms", res.parity_alarms.into()),
        ("corrected", res.corrected.into()),
        ("retries", res.retries.into()),
        ("remapped_rows", res.remapped_rows.into()),
        ("ways_disabled", res.ways_disabled.into()),
        ("scrubs", res.scrubs.into()),
        ("scrub_corrected", res.scrub_corrected.into()),
        ("corrupted_lanes", res.corrupted_lanes.into()),
        ("availability", res.availability.into()),
        ("fault_events", res.fault_stats.total_events().into()),
        ("stuck_cells", res.fault_stats.stuck_cells.into()),
    ]);
    Ok(CampaignRun {
        outcome: res.outcome,
        mode: job.mode,
        rate: job.rate,
        availability: res.availability,
        row,
    })
}

/// A campaign cell that could not produce a result: the harness keeps
/// the sweep alive and reports the cell as an error row instead.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The failed cell's coordinates.
    pub job: CampaignJob,
    /// Human-readable cause (simulation error, panic, or timeout).
    pub error: String,
}

impl CampaignFailure {
    /// The failure's JSON row: the cell coordinates plus the error.
    #[must_use]
    pub fn row(&self) -> JsonValue {
        JsonValue::object([
            ("rate", self.job.rate.into()),
            ("mode", self.job.mode.as_str().into()),
            ("factor", u64::from(self.job.factor).into()),
            ("seed", self.job.seed.into()),
            ("error", self.error.as_str().into()),
        ])
    }
}

/// One finished-or-failed campaign cell.
pub type CampaignCell = Result<CampaignRun, CampaignFailure>;

/// Assembles finished cell results — in [`campaign_jobs`] order — into
/// the final campaign document. Failed cells become error rows and a
/// `failed` entry in the summary rather than sinking the whole sweep.
#[must_use]
pub fn campaign_doc(plan: &FaultPlan, cells: Vec<CampaignCell>) -> String {
    let mut tally = [0u64; 4];
    let mut failed = 0u64;
    let mut rows = Vec::with_capacity(cells.len());
    // Mean availability per (mode, rate), keyed in plan order so the
    // output stays byte-deterministic.
    let mut avail: Vec<((CampaignMode, f64), (f64, u64))> = Vec::new();
    for &mode in &plan.modes {
        for &rate in &plan.rates {
            avail.push(((mode, rate), (0.0, 0)));
        }
    }
    for cell in cells {
        let run = match cell {
            Ok(run) => run,
            Err(failure) => {
                failed += 1;
                rows.push(failure.row());
                continue;
            }
        };
        tally[match run.outcome {
            FaultOutcome::Masked => 0,
            FaultOutcome::DetectedCorrected => 1,
            FaultOutcome::DetectedDegraded => 2,
            FaultOutcome::SilentDataCorruption => 3,
        }] += 1;
        if let Some((_, (sum, count))) = avail
            .iter_mut()
            .find(|((m, r), _)| *m == run.mode && *r == run.rate)
        {
            *sum += run.availability;
            *count += 1;
        }
        rows.push(run.row);
    }
    let availability = avail
        .into_iter()
        .filter(|(_, (_, count))| *count > 0)
        .map(|((mode, rate), (sum, count))| {
            JsonValue::object([
                ("mode", mode.as_str().into()),
                ("rate", rate.into()),
                ("mean_availability", (sum / count as f64).into()),
            ])
        })
        .collect::<Vec<_>>();
    let doc = JsonValue::object([
        ("seed", plan.seed.into()),
        (
            "policy",
            JsonValue::object([
                ("max_retries", u64::from(plan.policy.max_retries).into()),
                ("remap_threshold", plan.policy.remap_threshold.into()),
            ]),
        ),
        (
            "summary",
            JsonValue::object([
                ("masked", tally[0].into()),
                ("detected_corrected", tally[1].into()),
                ("detected_degraded", tally[2].into()),
                ("silent_data_corruption", tally[3].into()),
                ("failed", failed.into()),
            ]),
        ),
        ("availability", JsonValue::Array(availability)),
        ("runs", JsonValue::Array(rows)),
    ]);
    doc.to_pretty()
}

/// Runs the campaign serially and renders a deterministic JSON
/// document: the same plan and workloads always produce byte-identical
/// output. The `fault_campaign` binary fans the same jobs out across
/// threads and must byte-match this function.
///
/// # Errors
///
/// Propagates the first [`SimError`] any run hits.
pub fn campaign_json(plan: &FaultPlan, workloads: &[Workload]) -> Result<String, SimError> {
    let runs = campaign_jobs(plan, workloads)
        .iter()
        .map(|job| run_campaign_job(plan, job))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(campaign_doc(plan, runs.into_iter().map(Ok).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, Asm, Memory};
    use eve_sram::{Fault, FaultLayer};

    fn vadd_program(n: usize) -> (Interpreter, Vreg) {
        let mut mem = Memory::new(0x8000);
        let a: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i * 7 + 2).collect();
        mem.store_u32_slice(0x1000, &a);
        mem.store_u32_slice(0x2000, &b);
        let mut s = Asm::new();
        s.li(xreg::A0, n as i64);
        s.setvl(xreg::T0, xreg::A0);
        s.li(xreg::A1, 0x1000);
        s.vload(vreg::V1, xreg::A1);
        s.li(xreg::A2, 0x2000);
        s.vload(vreg::V2, xreg::A2);
        s.vop(VArithOp::Add, vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
        s.halt();
        (
            Interpreter::new(s.assemble().unwrap(), mem, n as u32),
            vreg::V3,
        )
    }

    fn drive(interp: &mut Interpreter, checker: &mut ShadowChecker) -> Vec<CheckVerdict> {
        let mut verdicts = Vec::new();
        loop {
            let prepared = checker.prepare(interp);
            if interp.step().unwrap().is_none() {
                break;
            }
            if let Some(p) = prepared {
                verdicts.push(checker.check(&p, interp));
            }
        }
        verdicts
    }

    #[test]
    fn zero_fault_checks_are_clean() {
        let (mut interp, _) = vadd_program(8);
        let mut checker =
            ShadowChecker::new(32, FaultConfig::none(7), RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Clean]);
        assert_eq!(checker.checked_ops, 1);
        assert_eq!(checker.parity_alarms, 0);
        assert_eq!(checker.fault_stats().total_events(), 0);
    }

    #[test]
    fn persistent_alarms_degrade() {
        // A stuck cell in a *source* row: with EVE-32 (1 segment)
        // register v is row v. Every operand reload re-perturbs the
        // row, and the μprogram's parity-checked read alarms on every
        // retry until the policy gives up.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::stuck_at(1, 0, 5, true));
        let (mut interp, _) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert!(
            verdicts.contains(&CheckVerdict::Degrade),
            "stuck destination must exhaust retries: {verdicts:?}"
        );
        assert!(checker.retries > 0);
    }

    #[test]
    fn transient_write_faults_are_corrected_by_retry() {
        // A one-shot writeback-layer transient corrupts a source row
        // after its parity was generated: the μprogram's read alarms,
        // and the retry's operand reload restores a clean row.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::transient(
            FaultLayer::Writeback,
            1,
            0,
            3,
            0,
            u64::MAX,
        ));
        let (mut interp, _) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Clean]);
        assert!(checker.parity_alarms > 0, "the flip must be detected");
        assert_eq!(checker.retries, 1, "one re-execution recovers");
    }

    #[test]
    fn health_snapshot_tracks_the_ladder() {
        let (mut interp, _) = vadd_program(8);
        let mut checker =
            ShadowChecker::new(32, FaultConfig::none(7), RecoveryPolicy::default()).unwrap();
        drive(&mut interp, &mut checker);
        let h = checker.health();
        assert!(!h.degraded);
        assert_eq!(h.parity_alarms, 0);
        // The default policy has no remap/way budget, so both read as
        // exhausted: the only stages left are retry and degrade.
        assert!(h.remap_exhausted);
        assert!(h.way_budget_exhausted);

        // A degraded run's report-level snapshot flags the fall-through.
        let mut cfg = FaultConfig::none(7);
        cfg.scripted.push(Fault::stuck_at(1, 0, 5, true));
        let (mut interp, _) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert!(verdicts.contains(&CheckVerdict::Degrade));
        assert!(checker.health().degraded);
    }

    #[test]
    fn sense_faults_are_silent_and_poked() {
        // Sense-layer faults corrupt operands before the parity-bearing
        // latch, so no alarm fires — the corruption must instead land
        // in the interpreter's register (SDC modeling).
        let mut cfg = FaultConfig::none(7);
        cfg.scripted
            .push(Fault::transient(FaultLayer::Sense, 1, 0, 4, 0, u64::MAX));
        let (mut interp, vd) = vadd_program(4);
        let mut checker = ShadowChecker::new(32, cfg, RecoveryPolicy::default()).unwrap();
        let verdicts = drive(&mut interp, &mut checker);
        assert_eq!(verdicts, vec![CheckVerdict::Silent]);
        assert!(checker.corrupted_lanes > 0);
        // The poked value differs from the true sum for lane 0.
        let true_sum = 1u32 + 2;
        assert_ne!(interp.vreg(vd)[0], true_sum);
    }
}
