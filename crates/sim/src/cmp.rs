//! Chip-multiprocessor simulation: several cores, each with private
//! L1s/L2 (and optionally a private ephemeral engine), sharing one LLC
//! and memory channel.
//!
//! The paper frames EVE inside a CMP — "each core in a CMP can
//! dynamically create an ephemeral private vector engine" (§I) — but
//! evaluates a single core. This module quantifies the missing piece:
//! how private engines interact through the *shared* memory system.
//! Cores run disjoint copies of a workload laid out in disjoint
//! address regions; contention appears only where it physically lives,
//! in the LLC's banks/MSHRs and the DRAM channel.

use crate::report::RunReport;
use crate::runner::{CoreStats, SimError};
use crate::system::SystemKind;
use eve_common::Cycle;
use eve_core::EveEngine;
use eve_cpu::{IoCore, NoVector, O3Core, VectorUnit};
use eve_isa::{Characterization, Interpreter};
use eve_mem::{Hierarchy, HierarchyConfig, SharedLlc};
use eve_vector::{DecoupledVector, IntegratedVector};
use eve_workloads::{Built, Workload};

/// Address spacing between cores' data regions (32 MB: larger than any
/// suite workload's footprint).
const CORE_STRIDE: u64 = 0x200_0000;

/// Result of a CMP run.
#[derive(Debug, Clone)]
pub struct CmpReport {
    /// Core count.
    pub cores: usize,
    /// Per-core reports (shared-LLC/DRAM stats appear in each core's
    /// roll-up; read them once).
    pub per_core: Vec<RunReport>,
    /// When the last core finished.
    pub finish: Cycle,
}

impl CmpReport {
    /// The slowest core's wall time — the CMP's completion time.
    #[must_use]
    pub fn worst_wall_ps(&self) -> u64 {
        self.per_core.iter().map(|r| r.wall_ps.0).max().unwrap_or(0)
    }
}

/// One core mid-simulation: its interpreter plus timing model.
trait CoreDriver {
    /// Executes one instruction; `false` once halted.
    fn step(&mut self) -> Result<bool, SimError>;
    /// Finalizes and produces this core's report.
    fn finish(&mut self, system: SystemKind) -> Result<RunReport, SimError>;
}

struct Driver<C> {
    built: Built,
    interp: Interpreter,
    core: C,
    chars: Characterization,
}

impl<C> Driver<C> {
    fn new(built: Built, hw_vl: u32, vector: bool, core: C) -> Self {
        let prog = if vector {
            built.vector.clone()
        } else {
            built.scalar.clone()
        };
        let interp = Interpreter::new(prog, built.memory.clone(), hw_vl);
        Self {
            built,
            interp,
            core,
            chars: Characterization::new(),
        }
    }
}

impl CoreDriver for Driver<IoCore> {
    fn step(&mut self) -> Result<bool, SimError> {
        match self.interp.step()? {
            Some(r) => {
                self.chars.record(&r);
                self.core.retire(&r)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn finish(&mut self, system: SystemKind) -> Result<RunReport, SimError> {
        let cycles = self.core.finish();
        self.built
            .verify(self.interp.memory())
            .map_err(SimError::Verification)?;
        Ok(RunReport {
            system,
            workload: self.built.name,
            wall_ps: cycles.to_picos(system.cycle_time()),
            cycles,
            dyn_insts: self.interp.retired_count(),
            stats: self.core.stats(),
            characterization: self.chars.clone(),
            breakdown: None,
            resilience: None,
            counters: None,
        })
    }
}

impl<V: VectorUnit> CoreDriver for Driver<O3Core<V>>
where
    O3Core<V>: CoreStats<V>,
{
    fn step(&mut self) -> Result<bool, SimError> {
        match self.interp.step()? {
            Some(r) => {
                self.chars.record(&r);
                self.core.retire(&r)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn finish(&mut self, system: SystemKind) -> Result<RunReport, SimError> {
        let cycles = self.core.finish();
        self.built
            .verify(self.interp.memory())
            .map_err(SimError::Verification)?;
        Ok(RunReport {
            system,
            workload: self.built.name,
            wall_ps: cycles.to_picos(system.cycle_time()),
            cycles,
            dyn_insts: self.interp.retired_count(),
            stats: self.core.stats(),
            characterization: self.chars.clone(),
            breakdown: self.core.breakdown(),
            resilience: None,
            counters: None,
        })
    }
}

/// Runs `cores` copies of `workload` — one per core, in disjoint
/// address regions — on `system`-type cores sharing one LLC and DRAM.
///
/// # Errors
///
/// Propagates simulation and verification failures; rejects a zero
/// core count or an invalid EVE factor as [`SimError::Config`].
pub fn run_cmp(
    system: SystemKind,
    workload: &Workload,
    cores: usize,
) -> Result<CmpReport, SimError> {
    if cores == 0 {
        return Err(SimError::Config("a CMP needs at least one core".into()));
    }
    let cfg = HierarchyConfig::table_iii();
    let shared = SharedLlc::new(cfg.llc.clone(), cfg.dram);
    let mut drivers: Vec<Box<dyn CoreDriver>> = Vec::with_capacity(cores);
    for c in 0..cores {
        let built = workload.build_at(eve_workloads::common::DATA_BASE + c as u64 * CORE_STRIDE);
        let hier = Hierarchy::with_shared(cfg.clone(), shared.clone());
        let driver: Box<dyn CoreDriver> = match system {
            SystemKind::Io => Box::new(Driver::new(built, 1, false, IoCore::with_hierarchy(hier))),
            SystemKind::O3 => Box::new(Driver::new(
                built,
                1,
                false,
                O3Core::with_unit_and_hierarchy(NoVector, hier),
            )),
            SystemKind::O3Iv => {
                let core = O3Core::with_unit_and_hierarchy(IntegratedVector::new(), hier);
                Box::new(Driver::new(built, core.hw_vl(), true, core))
            }
            SystemKind::O3Dv => {
                let core = O3Core::with_unit_and_hierarchy(DecoupledVector::new(), hier);
                Box::new(Driver::new(built, core.hw_vl(), true, core))
            }
            SystemKind::EveN(n) => {
                let engine = EveEngine::new(n).map_err(|e| SimError::Config(e.to_string()))?;
                let core = O3Core::with_unit_and_hierarchy(engine, hier);
                Box::new(Driver::new(built, core.hw_vl(), true, core))
            }
        };
        drivers.push(driver);
    }

    // Interleave cores round-robin, one instruction at a time, so
    // their accesses hit the shared LLC in roughly chronological
    // order.
    let mut live = cores;
    let mut running = vec![true; cores];
    while live > 0 {
        for (c, driver) in drivers.iter_mut().enumerate() {
            if running[c] && !driver.step()? {
                running[c] = false;
                live -= 1;
            }
        }
    }

    let per_core: Vec<RunReport> = drivers
        .iter_mut()
        .map(|d| d.finish(system))
        .collect::<Result<_, _>>()?;
    let finish = per_core
        .iter()
        .map(|r| r.cycles)
        .max()
        .unwrap_or(Cycle::ZERO);
    Ok(CmpReport {
        cores,
        per_core,
        finish,
    })
}

/// Measures how much `system` cores slow each other down through the
/// shared LLC/DRAM: entry `k-1` is the completion-time multiplier of a
/// `k`-core CMP run over a solo run (`entry[0] == 1.0`). The serving
/// layer (`eve-serve`) uses this to scale per-request service times by
/// the number of concurrently busy pool engines instead of pretending
/// engines are independent.
///
/// # Errors
///
/// Propagates simulation failures; rejects `max_cores == 0` as
/// [`SimError::Config`]; returns [`SimError::Report`] if the solo run
/// finishes in zero cycles (nothing to normalize against).
pub fn contention_profile(
    system: SystemKind,
    workload: &Workload,
    max_cores: usize,
) -> Result<Vec<f64>, SimError> {
    if max_cores == 0 {
        return Err(SimError::Config(
            "a contention profile needs at least one core".into(),
        ));
    }
    let solo = run_cmp(system, workload, 1)?.finish.0;
    if solo == 0 {
        return Err(SimError::Report(format!(
            "solo {system} run of {} finished in zero cycles",
            workload.name()
        )));
    }
    let mut out = vec![1.0];
    for k in 2..=max_cores {
        let finish = run_cmp(system, workload, k)?.finish.0;
        // Contention can only slow cores down; clamp measurement noise.
        out.push((finish as f64 / solo as f64).max(1.0));
    }
    Ok(out)
}

// O3 without a vector unit still needs a CoreStats impl for the
// generic driver.
impl CoreStats<NoVector> for O3Core<NoVector> {
    fn breakdown(&self) -> Option<eve_core::StallBreakdown> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cores_rejected() {
        let err = run_cmp(SystemKind::EveN(8), &Workload::vvadd(64), 0).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn single_core_cmp_matches_single_core_runner() {
        let w = Workload::vvadd(2048);
        let cmp = run_cmp(SystemKind::EveN(8), &w, 1).unwrap();
        let solo = crate::Runner::new().run(SystemKind::EveN(8), &w).unwrap();
        assert_eq!(cmp.per_core[0].cycles, solo.cycles);
    }

    #[test]
    fn contention_slows_cores_down() {
        // A memory-bound kernel on 4 engines sharing one DRAM channel:
        // the slowest core must be clearly slower than a solo run.
        let w = Workload::vvadd(8192);
        let solo = run_cmp(SystemKind::EveN(8), &w, 1).unwrap();
        let quad = run_cmp(SystemKind::EveN(8), &w, 4).unwrap();
        let slowdown = quad.finish.0 as f64 / solo.finish.0 as f64;
        assert!(
            slowdown > 1.5,
            "expected DRAM contention, got {slowdown:.2}x"
        );
        // And every core still verified its golden outputs (finish()
        // would have errored otherwise).
        assert_eq!(quad.per_core.len(), 4);
    }

    #[test]
    fn compute_bound_kernels_scale_cleanly() {
        let w = Workload::Mmult { n: 16 };
        let solo = run_cmp(SystemKind::EveN(8), &w, 1).unwrap();
        let quad = run_cmp(SystemKind::EveN(8), &w, 4).unwrap();
        let slowdown = quad.finish.0 as f64 / solo.finish.0 as f64;
        assert!(
            slowdown < 1.3,
            "compute-bound work should barely contend: {slowdown:.2}x"
        );
    }

    #[test]
    fn contention_profile_is_monotonic_enough() {
        let p = contention_profile(SystemKind::EveN(8), &Workload::vvadd(4096), 2).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1] >= 1.0, "a second core cannot speed the first up");
        assert!(matches!(
            contention_profile(SystemKind::EveN(8), &Workload::vvadd(64), 0),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn scalar_cmp_runs() {
        let cmp = run_cmp(SystemKind::O3, &Workload::vvadd(512), 2).unwrap();
        assert_eq!(cmp.cores, 2);
        assert!(cmp.per_core.iter().all(|r| r.cycles.0 > 0));
    }
}
