//! Experiment drivers for the paper's tables and figures.
//!
//! Each function sweeps the systems × workloads matrix a figure needs
//! and returns a serializable result the bench binaries print and
//! EXPERIMENTS.md records.

use crate::runner::{Runner, SimError};
use crate::system::SystemKind;
use eve_workloads::Workload;
use std::collections::BTreeMap;

/// One cell of the performance matrix.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// System label.
    pub system: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Wall picoseconds (cycle-time adjusted).
    pub wall_ps: u64,
    /// Speedup over the IO baseline (Fig 6's y-axis).
    pub speedup_vs_io: f64,
}

/// Fig 6 / Table IV performance data for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadPerf {
    /// Kernel name.
    pub workload: String,
    /// Scalar dynamic instructions (Table IV `DIns`).
    pub scalar_dyn_insts: u64,
    /// Vector dynamic instructions.
    pub vector_dyn_insts: u64,
    /// Per-system cells, in [`SystemKind::all`] order.
    pub cells: Vec<PerfCell>,
}

/// One workload's Fig 6 row: every system, normalized to IO. The unit
/// of work a parallel driver fans out.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn workload_perf(w: &Workload) -> Result<WorkloadPerf, SimError> {
    let runner = Runner::new();
    let io = runner.run(SystemKind::Io, w)?;
    let mut cells = Vec::new();
    let mut vector_dyn = 0;
    for sys in SystemKind::all() {
        let r = if sys == SystemKind::Io {
            io.clone()
        } else {
            runner.run(sys, w)?
        };
        if sys.is_vector() {
            vector_dyn = r.dyn_insts;
        }
        cells.push(PerfCell {
            system: sys.to_string(),
            cycles: r.cycles.0,
            wall_ps: r.wall_ps.0,
            speedup_vs_io: r.speedup_over(&io).max(f64::MIN_POSITIVE),
        });
    }
    Ok(WorkloadPerf {
        workload: w.name().to_string(),
        scalar_dyn_insts: io.dyn_insts,
        vector_dyn_insts: vector_dyn,
        cells,
    })
}

/// The full Fig 6 sweep.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn performance_matrix(workloads: &[Workload]) -> Result<Vec<WorkloadPerf>, SimError> {
    workloads.iter().map(workload_perf).collect()
}

/// Geometric mean of speedups for one system across workloads.
#[must_use]
pub fn geomean_speedup(perf: &[WorkloadPerf], system: &str) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for wp in perf {
        if let Some(cell) = wp.cells.iter().find(|c| c.system == system) {
            log_sum += cell.speedup_vs_io.ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Fig 7 data: the EVE stall breakdown per workload per design point,
/// normalized to EVE-1's total.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Kernel name.
    pub workload: String,
    /// EVE factor.
    pub factor: u32,
    /// `(category, fraction-of-EVE-1-total)` in plot order.
    pub fractions: BTreeMap<String, f64>,
    /// Total cycles of this design point.
    pub total_cycles: u64,
}

/// One workload's Fig 7 rows: every EVE design point, normalized to
/// that workload's EVE-1 total. The unit of work a parallel driver
/// fans out (the normalization base is internal to the workload, so
/// rows stay identical regardless of scheduling).
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn workload_breakdown(w: &Workload) -> Result<Vec<BreakdownRow>, SimError> {
    let runner = Runner::new();
    let mut out = Vec::new();
    let mut eve1_total: f64 = 0.0;
    for n in SystemKind::eve_factors() {
        let sys = SystemKind::EveN(n);
        let r = runner.run(sys, w)?;
        let b = r.breakdown.ok_or_else(|| {
            SimError::Report(format!(
                "EVE-{n} run of {} has no stall breakdown",
                w.name()
            ))
        })?;
        if n == 1 {
            eve1_total = b.total().0.max(1) as f64;
        }
        let fractions = b
            .entries()
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.0 as f64 / eve1_total))
            .collect();
        out.push(BreakdownRow {
            workload: w.name().to_string(),
            factor: n,
            fractions,
            total_cycles: r.cycles.0,
        });
    }
    Ok(out)
}

/// Runs the Fig 7 sweep.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn breakdown_matrix(workloads: &[Workload]) -> Result<Vec<BreakdownRow>, SimError> {
    let mut out = Vec::new();
    for w in workloads {
        out.extend(workload_breakdown(w)?);
    }
    Ok(out)
}

/// Fig 8 data: the fraction of time the VMU stalls issuing to the LLC.
#[derive(Debug, Clone)]
pub struct VmuStallRow {
    /// Kernel name.
    pub workload: String,
    /// EVE factor.
    pub factor: u32,
    /// Stall fraction in `[0, ...)`.
    pub stall_fraction: f64,
}

/// One workload's Fig 8 rows: every EVE design point. The unit of work
/// a parallel driver fans out.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn workload_vmu_stalls(w: &Workload) -> Result<Vec<VmuStallRow>, SimError> {
    let runner = Runner::new();
    let mut out = Vec::new();
    for n in SystemKind::eve_factors() {
        let r = runner.run(SystemKind::EveN(n), w)?;
        out.push(VmuStallRow {
            workload: w.name().to_string(),
            factor: n,
            stall_fraction: r.vmu_llc_stall_fraction().unwrap_or(0.0),
        });
    }
    Ok(out)
}

/// Runs the Fig 8 sweep.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn vmu_stall_matrix(workloads: &[Workload]) -> Result<Vec<VmuStallRow>, SimError> {
    let mut out = Vec::new();
    for w in workloads {
        out.extend(workload_vmu_stalls(w)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tiny() -> Vec<Workload> {
        vec![Workload::Vvadd { n: 600 }, Workload::Mmult { n: 10 }]
    }

    #[test]
    fn performance_matrix_covers_all_systems() {
        let perf = performance_matrix(&two_tiny()).unwrap();
        assert_eq!(perf.len(), 2);
        for wp in &perf {
            assert_eq!(wp.cells.len(), 10);
            let io = &wp.cells[0];
            assert!((io.speedup_vs_io - 1.0).abs() < 1e-9);
            assert!(wp.scalar_dyn_insts > wp.vector_dyn_insts);
        }
    }

    #[test]
    fn geomean_of_identity_is_one() {
        let perf = performance_matrix(&two_tiny()).unwrap();
        let g = geomean_speedup(&perf, "IO");
        assert!((g - 1.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&perf, "NOPE"), 0.0);
    }

    #[test]
    fn breakdown_rows_normalize_to_eve1() {
        let rows = breakdown_matrix(&[Workload::Vvadd { n: 600 }]).unwrap();
        assert_eq!(rows.len(), 6);
        let eve1: f64 = rows[0].fractions.values().sum();
        assert!(
            (eve1 - 1.0).abs() < 1e-9,
            "EVE-1 fractions sum to 1: {eve1}"
        );
    }

    #[test]
    fn vmu_stall_fractions_are_finite() {
        let rows = vmu_stall_matrix(&[Workload::Vvadd { n: 600 }]).unwrap();
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.stall_fraction.is_finite());
            assert!(r.stall_fraction >= 0.0);
        }
    }
}
