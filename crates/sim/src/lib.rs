//! System assembly (Table III) and the experiment runner.
//!
//! [`SystemKind`] enumerates the paper's simulated systems; [`Runner`]
//! executes a workload on one of them, producing a [`RunReport`] with
//! cycles, wall time (cycle-time-adjusted, §VI.B), statistics, and the
//! EVE stall breakdown. Every run functionally verifies its outputs
//! against the workload's golden values, so a timing model can never
//! silently desynchronize from architectural state.
//!
//! # Examples
//!
//! ```
//! use eve_sim::{Runner, SystemKind};
//! use eve_workloads::Workload;
//!
//! let runner = Runner::new();
//! let io = runner.run(SystemKind::Io, &Workload::vvadd(512)).unwrap();
//! let eve = runner.run(SystemKind::EveN(8), &Workload::vvadd(512)).unwrap();
//! assert!(eve.wall_ps < io.wall_ps, "EVE-8 must beat the in-order core");
//! ```

pub mod audit;
pub mod cmp;
pub mod experiments;
pub mod fault;
pub mod report;
pub mod runner;
pub mod system;

pub use audit::{audit_run, AuditFailure, AuditSummary};
pub use cmp::{contention_profile, run_cmp, CmpReport};
pub use fault::{
    campaign_json, CampaignCell, CampaignFailure, CampaignMode, CheckVerdict, EngineHealth,
    EscalationStages, FaultOutcome, FaultPlan, RecoveryPolicy, ResilienceReport, ShadowChecker,
};
pub use report::RunReport;
pub use runner::{Runner, SimError};
pub use system::SystemKind;
