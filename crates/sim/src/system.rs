//! The simulated systems of Table III.

use eve_analytical::area::SystemAreaTable;
use eve_analytical::timing::cycle_time;
use eve_common::Picos;
use std::fmt;

/// One of the paper's simulated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Single-issue in-order core.
    Io,
    /// 8-way out-of-order core.
    O3,
    /// O3 plus the integrated vector unit (VL = 4).
    O3Iv,
    /// O3 plus the decoupled vector engine (VL = 64).
    O3Dv,
    /// O3 plus an EVE-*n* engine.
    EveN(u32),
}

impl SystemKind {
    /// Every system in Fig 6's legend order: IO, O3, O3+IV, O3+DV,
    /// then the six EVE design points.
    #[must_use]
    pub fn all() -> Vec<SystemKind> {
        let mut v = vec![
            SystemKind::Io,
            SystemKind::O3,
            SystemKind::O3Iv,
            SystemKind::O3Dv,
        ];
        v.extend([1u32, 2, 4, 8, 16, 32].map(SystemKind::EveN));
        v
    }

    /// Only the EVE design points.
    #[must_use]
    pub fn eve_points() -> Vec<SystemKind> {
        Self::eve_factors().map(SystemKind::EveN).to_vec()
    }

    /// The swept EVE parallelization factors, in design-point order.
    /// Sweeps that need the factor itself iterate this instead of
    /// destructuring [`SystemKind::eve_points`].
    #[must_use]
    pub fn eve_factors() -> [u32; 6] {
        [1, 2, 4, 8, 16, 32]
    }

    /// Whether this system runs the vectorized binary.
    #[must_use]
    pub fn is_vector(&self) -> bool {
        !matches!(self, SystemKind::Io | SystemKind::O3)
    }

    /// System clock period: EVE-16/EVE-32 slow the shared arrays
    /// (§VI.B); everything else runs the base clock.
    #[must_use]
    pub fn cycle_time(&self) -> Picos {
        match self {
            SystemKind::EveN(n) => cycle_time(*n),
            _ => cycle_time(0),
        }
    }

    /// Relative silicon area (§VII area-efficiency analysis).
    #[must_use]
    pub fn relative_area(&self) -> f64 {
        match self {
            SystemKind::Io => 0.25, // small in-order core
            SystemKind::O3 => SystemAreaTable::o3().relative_area,
            SystemKind::O3Iv => SystemAreaTable::o3_iv().relative_area,
            SystemKind::O3Dv => SystemAreaTable::o3_dv().relative_area,
            SystemKind::EveN(n) => SystemAreaTable::o3_eve(*n).relative_area,
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemKind::Io => write!(f, "IO"),
            SystemKind::O3 => write!(f, "O3"),
            SystemKind::O3Iv => write!(f, "O3+IV"),
            SystemKind::O3Dv => write!(f, "O3+DV"),
            SystemKind::EveN(n) => write!(f, "EVE-{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_systems() {
        assert_eq!(SystemKind::all().len(), 10);
        assert_eq!(SystemKind::eve_points().len(), 6);
    }

    #[test]
    fn display_names() {
        assert_eq!(SystemKind::O3Iv.to_string(), "O3+IV");
        assert_eq!(SystemKind::EveN(8).to_string(), "EVE-8");
    }

    #[test]
    fn only_scalar_systems_run_scalar_binaries() {
        assert!(!SystemKind::Io.is_vector());
        assert!(!SystemKind::O3.is_vector());
        assert!(SystemKind::O3Dv.is_vector());
        assert!(SystemKind::EveN(1).is_vector());
    }

    #[test]
    fn cycle_time_penalties_only_for_wide_hybrid() {
        assert_eq!(SystemKind::O3Dv.cycle_time(), SystemKind::Io.cycle_time());
        assert_eq!(
            SystemKind::EveN(8).cycle_time(),
            SystemKind::O3.cycle_time()
        );
        assert!(SystemKind::EveN(16).cycle_time() > SystemKind::O3.cycle_time());
        assert!(SystemKind::EveN(32).cycle_time() > SystemKind::EveN(16).cycle_time());
    }
}
