//! Drives the functional interpreter through a timing model.

use crate::report::RunReport;
use crate::system::SystemKind;
use eve_common::Stats;
use eve_core::EveEngine;
use eve_cpu::{EngineError, IoCore, O3Core, VectorUnit};
use eve_isa::{Characterization, Interpreter, IsaError};
use eve_mem::HierarchyConfig;
use eve_obs::Tracer;
use eve_vector::{DecoupledVector, IntegratedVector};
use eve_workloads::Workload;
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel program misbehaved (assembler/interpreter error).
    Isa(IsaError),
    /// Outputs did not match the golden values — a simulator bug.
    Verification(String),
    /// An invalid system configuration (e.g. EVE-3).
    Config(String),
    /// The timing engine rejected an instruction (unmapped vector op,
    /// vector work on a scalar core).
    Engine(EngineError),
    /// A run finished but its report is missing data the caller
    /// depends on (e.g. an EVE run without a stall breakdown) — a
    /// poisoned run surfaces as an error value, not a process abort.
    Report(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Isa(e) => write!(f, "isa error: {e}"),
            SimError::Verification(e) => write!(f, "verification failed: {e}"),
            SimError::Config(e) => write!(f, "bad configuration: {e}"),
            SimError::Engine(e) => write!(f, "engine error: {e}"),
            SimError::Report(e) => write!(f, "incomplete report: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::Isa(e)
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        SimError::Engine(e)
    }
}

/// Runs workloads on simulated systems.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    tracer: Option<Tracer>,
}

impl Runner {
    /// A runner with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A runner that attaches `tracer` to every core, hierarchy, and
    /// vector unit it builds. With the `obs` feature the run then
    /// fills the tracer's event buffer and registry; without it the
    /// handle is carried but nothing is emitted.
    #[must_use]
    pub fn with_tracer(tracer: &Tracer) -> Self {
        Self {
            tracer: Some(tracer.clone()),
        }
    }

    /// The tracer this runner attaches to the cores it builds, if any.
    pub(crate) fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Simulates `workload` on `system` with the Table III memory
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, golden-output
    /// mismatch, or an invalid EVE factor.
    pub fn run(&self, system: SystemKind, workload: &Workload) -> Result<RunReport, SimError> {
        self.run_with_memory(system, workload, HierarchyConfig::table_iii())
    }

    /// Simulates `workload` on `system` with a custom memory hierarchy
    /// — the hook the MSHR/cache ablation studies use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, golden-output
    /// mismatch, or an invalid EVE factor.
    pub fn run_with_memory(
        &self,
        system: SystemKind,
        workload: &Workload,
        mem_cfg: HierarchyConfig,
    ) -> Result<RunReport, SimError> {
        let built = workload.build();
        let name = built.name;
        match system {
            SystemKind::Io => {
                let mut interp = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
                let mut core = IoCore::with_config(mem_cfg);
                if let Some(t) = &self.tracer {
                    core.set_tracer(t);
                }
                let mut c = Characterization::new();
                while let Some(r) = interp.step()? {
                    c.record(&r);
                    core.retire(&r)?;
                }
                let cycles = core.finish();
                built
                    .verify(interp.memory())
                    .map_err(SimError::Verification)?;
                Ok(self.report(
                    system,
                    name,
                    cycles,
                    interp.retired_count(),
                    core.stats(),
                    c,
                    None,
                ))
            }
            SystemKind::O3 => {
                let mut interp = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
                let mut core = O3Core::with_unit(eve_cpu::NoVector, mem_cfg);
                if let Some(t) = &self.tracer {
                    core.set_tracer(t);
                }
                let mut c = Characterization::new();
                while let Some(r) = interp.step()? {
                    c.record(&r);
                    core.retire(&r)?;
                }
                let cycles = core.finish();
                built
                    .verify(interp.memory())
                    .map_err(SimError::Verification)?;
                Ok(self.report(
                    system,
                    name,
                    cycles,
                    interp.retired_count(),
                    core.stats(),
                    c,
                    None,
                ))
            }
            SystemKind::O3Iv => self.run_vector(
                system,
                &built,
                O3Core::with_unit(IntegratedVector::new(), mem_cfg),
            ),
            SystemKind::O3Dv => self.run_vector(
                system,
                &built,
                O3Core::with_unit(DecoupledVector::new(), mem_cfg),
            ),
            SystemKind::EveN(n) => {
                let engine = EveEngine::new(n).map_err(|e| SimError::Config(e.to_string()))?;
                // The L2 starts at full capacity; the engine halves it
                // when it spawns (§V-E).
                self.run_vector(system, &built, O3Core::with_unit(engine, mem_cfg))
            }
        }
    }

    /// Simulates `workload` on an EVE-`n` engine with custom tuning
    /// (the DTU/queue ablation hook).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interpreter failure, golden-output
    /// mismatch, or an invalid configuration.
    pub fn run_eve_tuned(
        &self,
        n: u32,
        tuning: eve_core::EngineTuning,
        workload: &Workload,
        mem_cfg: HierarchyConfig,
    ) -> Result<RunReport, SimError> {
        let engine =
            EveEngine::with_tuning(n, tuning).map_err(|e| SimError::Config(e.to_string()))?;
        let built = workload.build();
        self.run_vector(
            SystemKind::EveN(n),
            &built,
            O3Core::with_unit(engine, mem_cfg),
        )
    }

    fn run_vector<V: VectorUnit>(
        &self,
        system: SystemKind,
        built: &eve_workloads::Built,
        mut core: O3Core<V>,
    ) -> Result<RunReport, SimError>
    where
        O3Core<V>: CoreStats<V>,
    {
        if let Some(t) = &self.tracer {
            core.set_tracer(t);
        }
        let hw_vl = core.hw_vl();
        let mut interp = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
        let mut c = Characterization::new();
        while let Some(r) = interp.step()? {
            c.record(&r);
            core.retire(&r)?;
        }
        let cycles = core.finish();
        built
            .verify(interp.memory())
            .map_err(SimError::Verification)?;
        let breakdown = core.breakdown();
        Ok(self.report(
            system,
            built.name,
            cycles,
            interp.retired_count(),
            core.stats(),
            c,
            breakdown,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        system: SystemKind,
        workload: &'static str,
        cycles: eve_common::Cycle,
        dyn_insts: u64,
        stats: Stats,
        characterization: Characterization,
        breakdown: Option<eve_core::StallBreakdown>,
    ) -> RunReport {
        RunReport {
            system,
            workload,
            wall_ps: cycles.to_picos(system.cycle_time()),
            cycles,
            dyn_insts,
            stats,
            characterization,
            breakdown,
            resilience: None,
            counters: self.tracer.as_ref().map(Tracer::registry),
        }
    }
}

/// Extracts the EVE stall breakdown from a core when its unit is an
/// EVE engine; other units report none.
pub trait CoreStats<V: VectorUnit> {
    /// The Fig 7 breakdown, if this core hosts an EVE engine.
    fn breakdown(&self) -> Option<eve_core::StallBreakdown>;
}

impl CoreStats<IntegratedVector> for O3Core<IntegratedVector> {
    fn breakdown(&self) -> Option<eve_core::StallBreakdown> {
        None
    }
}

impl CoreStats<DecoupledVector> for O3Core<DecoupledVector> {
    fn breakdown(&self) -> Option<eve_core::StallBreakdown> {
        None
    }
}

impl CoreStats<EveEngine> for O3Core<EveEngine> {
    fn breakdown(&self) -> Option<eve_core::StallBreakdown> {
        Some(*self.vector_unit().breakdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_runs_and_verifies() {
        let r = Runner::new()
            .run(SystemKind::Io, &Workload::vvadd(300))
            .unwrap();
        assert!(r.cycles.0 > 300);
        assert_eq!(r.workload, "vvadd");
        assert!(r.breakdown.is_none());
    }

    #[test]
    fn invalid_eve_factor_is_a_config_error() {
        let err = Runner::new()
            .run(SystemKind::EveN(3), &Workload::vvadd(64))
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn eve_reports_a_breakdown() {
        let r = Runner::new()
            .run(SystemKind::EveN(8), &Workload::vvadd(2048))
            .unwrap();
        let b = r.breakdown.expect("EVE reports a breakdown");
        assert!(b.total().0 > 0);
        assert!(r.vmu_llc_stall_fraction().is_some());
    }

    #[test]
    fn vector_systems_beat_io_on_vvadd() {
        let runner = Runner::new();
        let w = Workload::vvadd(4096);
        let io = runner.run(SystemKind::Io, &w).unwrap();
        for sys in [SystemKind::O3Dv, SystemKind::EveN(8)] {
            let r = runner.run(sys, &w).unwrap();
            assert!(
                r.speedup_over(&io) > 1.5,
                "{sys}: {:.2}x",
                r.speedup_over(&io)
            );
        }
    }

    #[test]
    fn every_system_verifies_every_tiny_kernel() {
        let runner = Runner::new();
        for w in Workload::tiny_suite() {
            for sys in SystemKind::all() {
                let r = runner.run(sys, &w).unwrap();
                assert!(r.cycles.0 > 0, "{sys} on {}", r.workload);
            }
        }
    }
}
