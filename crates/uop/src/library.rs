//! The macro-operation μprogram library (paper §IV-B, Fig 4).
//!
//! The VSU holds a ROM of μprograms, one per macro-operation kind. This
//! module generates those programs for any EVE-*n* configuration. All
//! programs follow the VLIW tuple conventions of [`crate::uop`]:
//!
//! * loops keep their `decr`/`bnz` in the *final* tuple of the body, so
//!   arithmetic μops in the body observe the pre-decrement segment index
//!   (synchronous-hardware semantics: every μop in a tuple reads
//!   start-of-cycle state; the control μop alone sees the counter update
//!   it is fused with);
//! * the inter-segment carry lives in the spare-shifter flip-flop and is
//!   preset by `SetCarry` before each multi-segment addition;
//! * subtraction is the classic two-pass S-CIM sequence: complement the
//!   subtrahend, then add with carry-in one.
//!
//! # Scratch register convention
//!
//! Programs may use [`VSlot::Scratch`] slots 0–5. The engine reserves
//! matching rows in each EVE array:
//!
//! | slot | use |
//! |------|-----|
//! | 0    | accumulating / doubling operand (`mul` addend, `div` remainder) |
//! | 1    | discarded sums, division quotient shadow |
//! | 2    | complemented operand / broadcast constants |
//! | 3    | working copies (dividend, shifted values) |
//! | 4, 5 | mask temporaries (single row each) |

use crate::counter::CounterId;
use crate::program::{HybridConfig, MicroProgram, ProgramBuilder};
use crate::uop::{
    ArithUop, CarryIn, ComputeSrc, ControlUop, CounterUop, MaskSrc, Operand, SegSel, VSlot, WbDest,
};
use eve_common::bits::extract_bits;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Kinds of macro-operations the VSU can sequence.
///
/// Shift-immediate kinds carry the shift amount because the VSU knows it
/// at issue time and unrolls exactly the needed μops (§III-B binary
/// decomposition); everything else is amount-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroOpKind {
    /// Copy a vector register (`vmv.v.v`).
    Mv,
    /// Bit-wise complement (`vnot`, i.e. `vxor.vi -1`).
    Not,
    /// Bit-wise AND (`vand`).
    And,
    /// Bit-wise OR (`vor`).
    Or,
    /// Bit-wise XOR (`vxor`).
    Xor,
    /// Wrapping 32-bit addition (`vadd`).
    Add,
    /// Wrapping 32-bit subtraction (`vsub`): `d = s1 - s2`.
    Sub,
    /// Low 32 bits of the product (`vmul`).
    Mul,
    /// Multiply-accumulate (`vmacc`): `d += s1 * s2`. The `mul`
    /// μprogram without its zeroing prologue — the predicated
    /// summation already accumulates into the destination.
    MulAcc,
    /// High 32 bits of the product (`vmulh`/`vmulhu`). Sequenced like
    /// `Mul`; the engine computes the high half functionally.
    Mulh,
    /// Unsigned division (`vdivu`): quotient.
    Divu,
    /// Unsigned remainder (`vremu`).
    Remu,
    /// Signed division (`vdiv`): unsigned core plus sign fix-up passes.
    Div,
    /// Signed remainder (`vrem`).
    Rem,
    /// Logical shift left by a known amount (`vsll.vx/.vi`).
    SllI(u8),
    /// Logical shift right by a known amount (`vsrl.vx/.vi`).
    SrlI(u8),
    /// Arithmetic shift right by a known amount (`vsra.vx/.vi`).
    SraI(u8),
    /// Rotate left by a known amount (`vrol` from the Zvbb bit-manip
    /// extension — future-proofing beyond the paper's integer set).
    RotlI(u8),
    /// Rotate right by a known amount (`vror`).
    RotrI(u8),
    /// Logical shift left by per-element amounts (`vsll.vv`).
    SllV,
    /// Logical shift right by per-element amounts (`vsrl.vv`).
    SrlV,
    /// Arithmetic shift right by per-element amounts (`vsra.vv`).
    SraV,
    /// Mask := element-wise equality (`vmseq`).
    CmpEq,
    /// Mask := element-wise inequality (`vmsne`).
    CmpNe,
    /// Mask := signed less-than (`vmslt`).
    CmpLt,
    /// Mask := unsigned less-than (`vmsltu`).
    CmpLtu,
    /// Signed minimum (`vmin`).
    Min,
    /// Signed maximum (`vmax`).
    Max,
    /// Unsigned minimum (`vminu`).
    Minu,
    /// Unsigned maximum (`vmaxu`).
    Maxu,
    /// Mask-predicated select (`vmerge.vvm`): `d = mask ? s1 : s2`.
    Merge,
    /// Mask-register AND (`vmand.mm`) — a single-row operation.
    MaskAnd,
    /// Mask-register OR (`vmor.mm`).
    MaskOr,
    /// Mask-register XOR (`vmxor.mm`).
    MaskXor,
    /// Mask-register NOT (`vmnot.m`).
    MaskNot,
    /// Broadcast a scalar into a vector register (`vmv.v.x/.i`).
    Splat(u32),
}

impl MacroOpKind {
    /// Whether the generated μprogram is bit-exact when run on the
    /// bit-accurate SRAM model. Signed division/remainder sequence the
    /// unsigned core plus *timing-representative* sign-fix passes; their
    /// results come from the functional model (exactly the paper's
    /// "execution happens functionally" split, §VII-A).
    #[must_use]
    pub fn is_bit_exact(&self) -> bool {
        !matches!(
            self,
            MacroOpKind::Div | MacroOpKind::Rem | MacroOpKind::Mulh
        )
    }
}

const SEG: CounterId = CounterId::SEG0;
const OUTER: CounterId = CounterId::SEG1;
const BIT: CounterId = CounterId::BIT0;

/// Generates μprograms for one EVE-*n* configuration.
///
/// Generated programs are memoized per [`MacroOpKind`]: the VSU ROM
/// holds a fixed image per configuration, so regenerating the same
/// program on every fetch (as the executors do, once per macro-op)
/// would only burn allocator time. The cache hands out shared
/// [`Arc`]s; two fetches of the same kind return the same program.
///
/// # Examples
///
/// ```
/// use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
/// let lib = ProgramLibrary::new(HybridConfig::new(4)?);
/// let mul = lib.program(MacroOpKind::Mul);
/// assert_eq!(mul.name(), "mul");
/// # Ok::<(), eve_common::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ProgramLibrary {
    cfg: HybridConfig,
    cache: Mutex<HashMap<MacroOpKind, Arc<MicroProgram>>>,
}

impl Clone for ProgramLibrary {
    fn clone(&self) -> Self {
        // Share the already-generated programs; they are immutable.
        let cache = self.cache.lock().expect("library cache poisoned").clone();
        Self {
            cfg: self.cfg,
            cache: Mutex::new(cache),
        }
    }
}

impl ProgramLibrary {
    /// A library targeting `cfg`.
    #[must_use]
    pub fn new(cfg: HybridConfig) -> Self {
        Self {
            cfg,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration programs are generated for.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// The μprogram implementing `kind`, generated on first request and
    /// memoized for the library's lifetime.
    ///
    /// # Panics
    ///
    /// Never panics for the kinds defined in this crate; the generators
    /// are exhaustively tested against every configuration.
    #[must_use]
    pub fn program(&self, kind: MacroOpKind) -> Arc<MicroProgram> {
        let mut cache = self.cache.lock().expect("library cache poisoned");
        if let Some(prog) = cache.get(&kind) {
            return Arc::clone(prog);
        }
        let prog = Arc::new(self.generate(kind));
        cache.insert(kind, Arc::clone(&prog));
        prog
    }

    /// Builds the μprogram for `kind` from scratch (the generation the
    /// cache fronts).
    fn generate(&self, kind: MacroOpKind) -> MicroProgram {
        let mut g = Gen::new(self.cfg, kind_name(kind));
        match kind {
            MacroOpKind::Mv => g.unary(VSlot::S1, VSlot::D, ComputeSrc::And),
            MacroOpKind::Not => g.unary(VSlot::S1, VSlot::D, ComputeSrc::Nand),
            MacroOpKind::And => g.binary(ComputeSrc::And),
            MacroOpKind::Or => g.binary(ComputeSrc::Or),
            MacroOpKind::Xor => g.binary(ComputeSrc::Xor),
            MacroOpKind::Add => g.add(),
            MacroOpKind::Sub => g.sub(),
            MacroOpKind::Mul | MacroOpKind::Mulh => g.mul(true),
            MacroOpKind::MulAcc => g.mul(false),
            MacroOpKind::Divu => g.divu(false),
            MacroOpKind::Remu => g.divu(true),
            MacroOpKind::Div => g.div_signed(false),
            MacroOpKind::Rem => g.div_signed(true),
            MacroOpKind::SllI(k) => g.shift_imm(k, true, false),
            MacroOpKind::RotlI(k) => g.rotate_imm(k, true),
            MacroOpKind::RotrI(k) => g.rotate_imm(k, false),
            MacroOpKind::SrlI(k) => g.shift_imm(k, false, false),
            MacroOpKind::SraI(k) => g.shift_imm(k, false, true),
            MacroOpKind::SllV => g.shift_var(true, false),
            MacroOpKind::SrlV => g.shift_var(false, false),
            MacroOpKind::SraV => g.shift_var(false, true),
            MacroOpKind::CmpEq => g.cmp_eq(false),
            MacroOpKind::CmpNe => g.cmp_eq(true),
            MacroOpKind::CmpLt => g.cmp_lt(true, VSlot::S1, VSlot::S2, WbTarget::DRow),
            MacroOpKind::CmpLtu => g.cmp_lt(false, VSlot::S1, VSlot::S2, WbTarget::DRow),
            MacroOpKind::Min => g.minmax(true, true),
            MacroOpKind::Max => g.minmax(true, false),
            MacroOpKind::Minu => g.minmax(false, true),
            MacroOpKind::Maxu => g.minmax(false, false),
            MacroOpKind::Merge => g.merge(),
            MacroOpKind::MaskAnd => g.mask_op(ComputeSrc::And),
            MacroOpKind::MaskOr => g.mask_op(ComputeSrc::Or),
            MacroOpKind::MaskXor => g.mask_op(ComputeSrc::Xor),
            MacroOpKind::MaskNot => g.mask_not(),
            MacroOpKind::Splat(v) => g.splat(v),
        }
        g.finish()
    }
}

fn kind_name(kind: MacroOpKind) -> &'static str {
    match kind {
        MacroOpKind::Mv => "mv",
        MacroOpKind::Not => "not",
        MacroOpKind::And => "and",
        MacroOpKind::Or => "or",
        MacroOpKind::Xor => "xor",
        MacroOpKind::Add => "add",
        MacroOpKind::Sub => "sub",
        MacroOpKind::Mul => "mul",
        MacroOpKind::MulAcc => "mulacc",
        MacroOpKind::Mulh => "mulh",
        MacroOpKind::Divu => "divu",
        MacroOpKind::Remu => "remu",
        MacroOpKind::Div => "div",
        MacroOpKind::Rem => "rem",
        MacroOpKind::SllI(_) => "slli",
        MacroOpKind::RotlI(_) => "rotli",
        MacroOpKind::RotrI(_) => "rotri",
        MacroOpKind::SrlI(_) => "srli",
        MacroOpKind::SraI(_) => "srai",
        MacroOpKind::SllV => "sllv",
        MacroOpKind::SrlV => "srlv",
        MacroOpKind::SraV => "srav",
        MacroOpKind::CmpEq => "cmpeq",
        MacroOpKind::CmpNe => "cmpne",
        MacroOpKind::CmpLt => "cmplt",
        MacroOpKind::CmpLtu => "cmpltu",
        MacroOpKind::Min => "min",
        MacroOpKind::Max => "max",
        MacroOpKind::Minu => "minu",
        MacroOpKind::Maxu => "maxu",
        MacroOpKind::Merge => "merge",
        MacroOpKind::MaskAnd => "maskand",
        MacroOpKind::MaskOr => "maskor",
        MacroOpKind::MaskXor => "maskxor",
        MacroOpKind::MaskNot => "masknot",
        MacroOpKind::Splat(_) => "splat",
    }
}

/// Where a computed mask should be persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(dead_code)] // LatchesOnly kept for symmetric API use by future macro-ops
enum WbTarget {
    /// Into the destination register's row 0 (compare instructions).
    DRow,
    /// Into a scratch mask row.
    Scratch(u8),
    /// Leave it in the latches only.
    LatchesOnly,
}

/// Internal program generator: a [`ProgramBuilder`] plus the segment
/// geometry, offering the reusable "passes" the macro-ops compose.
struct Gen {
    b: ProgramBuilder,
    segs: u32,
    bits: u32,
    next_label: u32,
}

impl Gen {
    fn new(cfg: HybridConfig, name: &str) -> Self {
        Self {
            b: ProgramBuilder::new(name),
            segs: cfg.segments(),
            bits: cfg.segment_bits(),
            next_label: 0,
        }
    }

    fn finish(self) -> MicroProgram {
        self.b.build().expect("generated programs are well formed")
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        let l = format!("{stem}_{}", self.next_label);
        self.next_label += 1;
        l
    }

    /// Emits `init seg, S` fused with an optional carry preset, then a
    /// 2-tuple/segment loop `body(blc)` / `wb`. `terminal` makes the loop
    /// end the program on completion.
    fn seg_loop<F>(&mut self, terminal: bool, mut body: F)
    where
        F: FnMut(u32) -> (ArithUop, ArithUop),
    {
        // `body` receives an opaque token (unused; segment selection is
        // by counter) and returns the (first, second) arithmetic μops.
        let label = self.fresh_label("seg");
        self.b.label(&label);
        let (first, second) = body(0);
        self.b.arith(first);
        if terminal {
            self.b.arith_branch_nz_ret_with_decr(second, SEG, &label);
        } else {
            self.b.arith_branch_nz_with_decr(second, SEG, &label);
        }
    }

    fn init_seg(&mut self, carry: Option<bool>) {
        let init = CounterUop::Init {
            ctr: SEG,
            value: self.segs,
        };
        match carry {
            Some(v) => self
                .b
                .emit(init, ArithUop::SetCarry { value: v }, ControlUop::Nop),
            None => self.b.counter(init),
        }
    }

    /// Unary pass: `dst = op(src, src)` segment by segment (copy via
    /// AND, complement via NAND). Cost: 2S + 1.
    fn unary_pass(&mut self, src: VSlot, dst: VSlot, op: ComputeSrc, masked: bool, terminal: bool) {
        self.init_seg(None);
        self.seg_loop(terminal, |_| {
            (
                ArithUop::Blc {
                    a: Operand::up(src, SEG),
                    b: Operand::up(src, SEG),
                    carry_in: CarryIn::Zero,
                },
                ArithUop::Writeback {
                    dst: WbDest::Row(Operand::up(dst, SEG)),
                    src: op,
                    masked,
                },
            )
        });
    }

    /// Binary pass: `dst = op(a, b)` segment by segment. Cost: 2S + 1
    /// (2S + 2 when a carry preset is requested).
    #[allow(clippy::too_many_arguments)] // mirrors the μop's full operand set
    fn binary_pass(
        &mut self,
        a: VSlot,
        b: VSlot,
        dst: VSlot,
        op: ComputeSrc,
        carry: Option<bool>,
        masked: bool,
        terminal: bool,
    ) {
        self.init_seg(carry);
        self.seg_loop(terminal, |_| {
            (
                ArithUop::Blc {
                    a: Operand::up(a, SEG),
                    b: Operand::up(b, SEG),
                    carry_in: if carry.is_some() {
                        CarryIn::Stored
                    } else {
                        CarryIn::Zero
                    },
                },
                ArithUop::Writeback {
                    dst: WbDest::Row(Operand::up(dst, SEG)),
                    src: op,
                    masked,
                },
            )
        });
    }

    /// Zero-fill pass: `dst = 0`. Cost: S + 1.
    fn zero_pass(&mut self, dst: VSlot) {
        self.init_seg(None);
        let label = self.fresh_label("zero");
        self.b.label(&label);
        self.b.arith_branch_nz_with_decr(
            ArithUop::WriteConst {
                op: Operand::up(dst, SEG),
                value: 0,
                masked: false,
            },
            SEG,
            &label,
        );
    }

    fn unary(&mut self, src: VSlot, dst: VSlot, op: ComputeSrc) {
        self.unary_pass(src, dst, op, false, true);
    }

    fn binary(&mut self, op: ComputeSrc) {
        self.binary_pass(VSlot::S1, VSlot::S2, VSlot::D, op, None, false, true);
    }

    /// Fig 4(a): segment-serial addition with the carry chained through
    /// the spare-shifter flip-flop. Cost: 2S + 1.
    fn add(&mut self) {
        self.binary_pass(
            VSlot::S1,
            VSlot::S2,
            VSlot::D,
            ComputeSrc::Add,
            Some(false),
            false,
            true,
        );
    }

    /// Two-pass subtraction: complement `s2` into scratch 2, then add
    /// with carry-in one. Cost: 4S + 3.
    fn sub(&mut self) {
        self.unary_pass(VSlot::S2, VSlot::Scratch(2), ComputeSrc::Nand, false, false);
        self.binary_pass(
            VSlot::S1,
            VSlot::Scratch(2),
            VSlot::D,
            ComputeSrc::Add,
            Some(true),
            false,
            true,
        );
    }

    /// Fig 4(b): shift-and-add multiplication. The multiplier streams
    /// through the XRegister one bit per inner iteration; each set bit
    /// adds the doubling addend (scratch 0) into the destination under
    /// the mask.
    fn mul(&mut self, zero_dest: bool) {
        // Accumulate into scratch 1 and copy to `d` only at the end, so
        // `d` may alias either source (RVV allows vmul vd, vd, vd).
        // A(scratch0) = s1 is the doubling addend.
        if zero_dest {
            self.zero_pass(VSlot::Scratch(1));
        } else {
            // Multiply-accumulate: seed the accumulator from `d`.
            self.unary_pass(VSlot::D, VSlot::Scratch(1), ComputeSrc::And, false, false);
        }
        self.unary_pass(VSlot::S1, VSlot::Scratch(0), ComputeSrc::And, false, false);
        // Outer loop over multiplier segments.
        self.b.counter(CounterUop::Init {
            ctr: OUTER,
            value: self.segs,
        });
        self.b.label("outer");
        // Load the current multiplier segment into the XRegister.
        self.b.arith(ArithUop::Blc {
            a: Operand::up(VSlot::S2, OUTER),
            b: Operand::up(VSlot::S2, OUTER),
            carry_in: CarryIn::Zero,
        });
        self.b.emit(
            CounterUop::Init {
                ctr: BIT,
                value: self.bits,
            },
            ArithUop::Writeback {
                dst: WbDest::XReg,
                src: ComputeSrc::And,
                masked: false,
            },
            ControlUop::Nop,
        );
        self.b.label("inner");
        self.b.arith(ArithUop::SetMask {
            src: MaskSrc::XRegLsb,
            invert: false,
        });
        // acc += A where mask.
        self.binary_pass(
            VSlot::Scratch(1),
            VSlot::Scratch(0),
            VSlot::Scratch(1),
            ComputeSrc::Add,
            Some(false),
            true,
            false,
        );
        // A += A (unconditional doubling).
        self.binary_pass(
            VSlot::Scratch(0),
            VSlot::Scratch(0),
            VSlot::Scratch(0),
            ComputeSrc::Add,
            Some(false),
            false,
            false,
        );
        // Next multiplier bit; next segment once the XRegister drains.
        self.b
            .arith_branch_nz_with_decr(ArithUop::MaskShift, BIT, "inner");
        self.b.decr_branch_nz(OUTER, "outer");
        // Commit the accumulator to the destination.
        self.unary_pass(VSlot::Scratch(1), VSlot::D, ComputeSrc::And, false, true);
    }

    /// Restoring division: 32 iterations of shift-in / trial-subtract /
    /// conditional-restore. Quotient lands in `d` (or the remainder when
    /// `remainder` is set). Uses scratch 0 (R), 2 (~divisor), 3 (working
    /// dividend), 1 (trial difference), 4 (constant one).
    fn divu(&mut self, remainder: bool) {
        // Copy both sources out before clearing the quotient, so `d`
        // may alias `s1` or `s2`.
        self.unary_pass(VSlot::S1, VSlot::Scratch(3), ComputeSrc::And, false, false);
        self.unary_pass(VSlot::S2, VSlot::Scratch(2), ComputeSrc::Nand, false, false);
        self.zero_pass(VSlot::D); // quotient
        self.zero_pass(VSlot::Scratch(0)); // remainder R
        self.splat_into(VSlot::Scratch(4), 1);
        self.b.counter(CounterUop::Init {
            ctr: OUTER,
            value: 32,
        });
        self.b.label("step");
        // mask = msb(working dividend).
        self.b.arith(ArithUop::Blc {
            a: Operand::at(VSlot::Scratch(3), (self.segs - 1) as u8),
            b: Operand::at(VSlot::Scratch(3), (self.segs - 1) as u8),
            carry_in: CarryIn::Zero,
        });
        self.b.arith(ArithUop::Writeback {
            dst: WbDest::XReg,
            src: ComputeSrc::And,
            masked: false,
        });
        self.b.arith(ArithUop::SetMask {
            src: MaskSrc::XRegMsb,
            invert: false,
        });
        // N += N; R += R; R += 1 where msb(N) was set.
        self.double(VSlot::Scratch(3));
        self.double(VSlot::Scratch(0));
        self.binary_pass(
            VSlot::Scratch(0),
            VSlot::Scratch(4),
            VSlot::Scratch(0),
            ComputeSrc::Add,
            Some(false),
            true,
            false,
        );
        // T = R - divisor; no borrow (carry out) means R >= divisor.
        self.binary_pass(
            VSlot::Scratch(0),
            VSlot::Scratch(2),
            VSlot::Scratch(1),
            ComputeSrc::Add,
            Some(true),
            false,
            false,
        );
        self.b.arith(ArithUop::SetMask {
            src: MaskSrc::Carry,
            invert: false,
        });
        // Restore: R = T where mask; Q = 2Q + mask.
        self.unary_pass(
            VSlot::Scratch(1),
            VSlot::Scratch(0),
            ComputeSrc::And,
            true,
            false,
        );
        self.double(VSlot::D);
        self.binary_pass(
            VSlot::D,
            VSlot::Scratch(4),
            VSlot::D,
            ComputeSrc::Add,
            Some(false),
            true,
            false,
        );
        if remainder {
            self.b.decr_branch_nz(OUTER, "step");
        } else {
            self.b.decr_branch_nz_ret(OUTER, "step");
        }
        if remainder {
            self.unary_pass(VSlot::Scratch(0), VSlot::D, ComputeSrc::And, false, true);
        }
    }

    /// Signed division: the unsigned core bracketed by
    /// timing-representative operand/result negation passes (execution is
    /// functional for the signed variants; see
    /// [`MacroOpKind::is_bit_exact`]).
    fn div_signed(&mut self, remainder: bool) {
        // Sign extraction + conditional negate of both operands: two
        // complement-and-increment passes each.
        for slot in [VSlot::S1, VSlot::S2] {
            self.unary_pass(slot, VSlot::Scratch(1), ComputeSrc::Nand, false, false);
            self.binary_pass(
                VSlot::Scratch(1),
                VSlot::Scratch(4),
                VSlot::Scratch(1),
                ComputeSrc::Add,
                Some(false),
                true,
                false,
            );
        }
        self.divu(remainder);
    }

    fn double(&mut self, slot: VSlot) {
        self.binary_pass(slot, slot, slot, ComputeSrc::Add, Some(false), false, false);
    }

    /// Broadcast `value` into `slot`: one constant row write per segment
    /// (the VSU drives the data-in port). Cost: S.
    fn splat_into(&mut self, slot: VSlot, value: u32) {
        for s in 0..self.segs {
            let pattern = extract_bits(value, s * self.bits, self.bits);
            self.b.arith(ArithUop::WriteConst {
                op: Operand::at(slot, s as u8),
                value: pattern,
                masked: false,
            });
        }
    }

    fn splat(&mut self, value: u32) {
        self.splat_into(VSlot::D, value);
        self.b.ret();
    }

    /// Computes `mask = a < b` (signed or unsigned) into the latches,
    /// optionally persisting per `target`.
    ///
    /// Unsigned: `a < b` iff the subtraction `a + ~b + 1` produces no
    /// carry-out. Signed: bias both operands by flipping the sign bit
    /// first (`x ^ 0x8000_0000`), then compare unsigned.
    fn cmp_lt(&mut self, signed: bool, a: VSlot, b: VSlot, target: WbTarget) {
        let (lhs, rhs_inv) = if signed {
            let msb = 1 << (self.bits - 1);
            let top = (self.segs - 1) as u8;
            // scratch3 = a with sign flipped; scratch2 = ~(b with sign
            // flipped) = ~b with sign flipped.
            self.b.arith(ArithUop::WriteConst {
                op: Operand::at(VSlot::Scratch(1), top),
                value: msb,
                masked: false,
            });
            self.unary_pass(a, VSlot::Scratch(3), ComputeSrc::And, false, false);
            self.b.arith(ArithUop::Blc {
                a: Operand::at(VSlot::Scratch(3), top),
                b: Operand::at(VSlot::Scratch(1), top),
                carry_in: CarryIn::Zero,
            });
            self.b.arith(ArithUop::Writeback {
                dst: WbDest::Row(Operand::at(VSlot::Scratch(3), top)),
                src: ComputeSrc::Xor,
                masked: false,
            });
            self.unary_pass(b, VSlot::Scratch(2), ComputeSrc::Nand, false, false);
            self.b.arith(ArithUop::Blc {
                a: Operand::at(VSlot::Scratch(2), top),
                b: Operand::at(VSlot::Scratch(1), top),
                carry_in: CarryIn::Zero,
            });
            self.b.arith(ArithUop::Writeback {
                dst: WbDest::Row(Operand::at(VSlot::Scratch(2), top)),
                src: ComputeSrc::Xor,
                masked: false,
            });
            (VSlot::Scratch(3), VSlot::Scratch(2))
        } else {
            self.unary_pass(b, VSlot::Scratch(2), ComputeSrc::Nand, false, false);
            (a, VSlot::Scratch(2))
        };
        // Subtract, keeping only the carry.
        self.binary_pass(
            lhs,
            rhs_inv,
            VSlot::Scratch(1),
            ComputeSrc::Add,
            Some(true),
            false,
            false,
        );
        self.b.arith(ArithUop::SetMask {
            src: MaskSrc::Carry,
            invert: true,
        });
        match target {
            WbTarget::DRow => {
                self.b.emit(
                    CounterUop::Nop,
                    ArithUop::Writeback {
                        dst: WbDest::Row(Operand::at(VSlot::D, 0)),
                        src: ComputeSrc::Mask,
                        masked: false,
                    },
                    ControlUop::Ret,
                );
            }
            WbTarget::Scratch(slot) => {
                self.b.arith(ArithUop::Writeback {
                    dst: WbDest::Row(Operand::at(VSlot::Scratch(slot), 0)),
                    src: ComputeSrc::Mask,
                    masked: false,
                });
            }
            WbTarget::LatchesOnly => {}
        }
    }

    /// `vmseq`/`vmsne`: two unsigned compares combined through the
    /// sense amps (`eq = !(a<b) & !(b<a)`).
    fn cmp_eq(&mut self, negate: bool) {
        self.cmp_lt(false, VSlot::S1, VSlot::S2, WbTarget::Scratch(4));
        self.cmp_lt(false, VSlot::S2, VSlot::S1, WbTarget::Scratch(5));
        self.b.arith(ArithUop::Blc {
            a: Operand::at(VSlot::Scratch(4), 0),
            b: Operand::at(VSlot::Scratch(5), 0),
            carry_in: CarryIn::Zero,
        });
        self.b.emit(
            CounterUop::Nop,
            ArithUop::Writeback {
                dst: WbDest::Row(Operand::at(VSlot::D, 0)),
                src: if negate {
                    ComputeSrc::Or
                } else {
                    ComputeSrc::Nor
                },
                masked: false,
            },
            ControlUop::Ret,
        );
    }

    /// `vmin*`/`vmax*`: compare into the latches, masked-copy the
    /// winner, flip the latches, masked-copy the loser.
    fn minmax(&mut self, signed: bool, min: bool) {
        self.cmp_lt(signed, VSlot::S1, VSlot::S2, WbTarget::Scratch(4));
        // When mask = (s1 < s2): min takes s1 under mask, max takes s2.
        let (first, second) = if min {
            (VSlot::S1, VSlot::S2)
        } else {
            (VSlot::S2, VSlot::S1)
        };
        self.load_mask_from(VSlot::Scratch(4), false);
        self.unary_pass(first, VSlot::Scratch(1), ComputeSrc::And, true, false);
        self.load_mask_from(VSlot::Scratch(4), true);
        self.unary_pass(second, VSlot::Scratch(1), ComputeSrc::And, true, false);
        // Commit: both sources were read before `d` is written.
        self.unary_pass(VSlot::Scratch(1), VSlot::D, ComputeSrc::And, false, true);
    }

    /// `vmerge.vvm`: `d = v0 ? s1 : s2`, aliasing-safe via scratch 1.
    fn merge(&mut self) {
        self.load_mask_from(VSlot::Mask, false);
        self.unary_pass(VSlot::S1, VSlot::Scratch(1), ComputeSrc::And, true, false);
        self.load_mask_from(VSlot::Mask, true);
        self.unary_pass(VSlot::S2, VSlot::Scratch(1), ComputeSrc::And, true, false);
        self.unary_pass(VSlot::Scratch(1), VSlot::D, ComputeSrc::And, false, true);
    }

    /// Loads the mask latches from a stored mask row (optionally
    /// complemented). Cost: 2.
    fn load_mask_from(&mut self, slot: VSlot, invert: bool) {
        self.b.arith(ArithUop::Blc {
            a: Operand::at(slot, 0),
            b: Operand::at(slot, 0),
            carry_in: CarryIn::Zero,
        });
        self.b.arith(ArithUop::Writeback {
            dst: WbDest::MaskReg,
            src: if invert {
                ComputeSrc::Nand
            } else {
                ComputeSrc::And
            },
            masked: false,
        });
    }

    /// Single-row mask-register operation. Cost: 2 + ret.
    fn mask_op(&mut self, op: ComputeSrc) {
        self.b.arith(ArithUop::Blc {
            a: Operand::at(VSlot::S1, 0),
            b: Operand::at(VSlot::S2, 0),
            carry_in: CarryIn::Zero,
        });
        self.b.emit(
            CounterUop::Nop,
            ArithUop::Writeback {
                dst: WbDest::Row(Operand::at(VSlot::D, 0)),
                src: op,
                masked: false,
            },
            ControlUop::Ret,
        );
    }

    fn mask_not(&mut self) {
        self.b.arith(ArithUop::Blc {
            a: Operand::at(VSlot::S1, 0),
            b: Operand::at(VSlot::S1, 0),
            carry_in: CarryIn::Zero,
        });
        self.b.emit(
            CounterUop::Nop,
            ArithUop::Writeback {
                dst: WbDest::Row(Operand::at(VSlot::D, 0)),
                src: ComputeSrc::Nand,
                masked: false,
            },
            ControlUop::Ret,
        );
    }

    /// One full-element one-bit shift pass over `slot`, optionally
    /// masked. The spare shifter carries bits across segment boundaries
    /// (§III-C); left shifts walk segments low→high, right shifts
    /// high→low. Cost: 3S + 1.
    fn shift_pass(&mut self, slot: VSlot, left: bool, masked: bool) {
        self.b.emit(
            CounterUop::Init {
                ctr: SEG,
                value: self.segs,
            },
            ArithUop::ClearSpare,
            ControlUop::Nop,
        );
        let label = self.fresh_label("shift");
        self.b.label(&label);
        let seg = if left {
            SegSel::Up(SEG)
        } else {
            SegSel::Down(SEG)
        };
        self.b.arith(ArithUop::LoadShifter {
            op: Operand::new(slot, seg),
        });
        self.b.arith(if left {
            ArithUop::ShiftLeft { masked }
        } else {
            ArithUop::ShiftRight { masked }
        });
        self.b.arith_branch_nz_with_decr(
            ArithUop::StoreShifter {
                op: Operand::new(slot, seg),
                masked,
            },
            SEG,
            &label,
        );
    }

    /// Moves `slot` by whole segments: `shift` segments up (left) or
    /// down (right), zero-filling the vacated segments. Unrolled; cost
    /// ≤ 2S.
    fn segment_move(&mut self, slot: VSlot, seg_shift: u32, left: bool, masked: bool) {
        let s = self.segs;
        if left {
            // d.seg[i] = d.seg[i - k], walking from the top down.
            for i in (0..s).rev() {
                if i >= seg_shift {
                    self.b.arith(ArithUop::Blc {
                        a: Operand::at(slot, (i - seg_shift) as u8),
                        b: Operand::at(slot, (i - seg_shift) as u8),
                        carry_in: CarryIn::Zero,
                    });
                    self.b.arith(ArithUop::Writeback {
                        dst: WbDest::Row(Operand::at(slot, i as u8)),
                        src: ComputeSrc::And,
                        masked,
                    });
                } else {
                    self.b.arith(ArithUop::WriteConst {
                        op: Operand::at(slot, i as u8),
                        value: 0,
                        masked,
                    });
                }
            }
        } else {
            for i in 0..s {
                if i + seg_shift < s {
                    self.b.arith(ArithUop::Blc {
                        a: Operand::at(slot, (i + seg_shift) as u8),
                        b: Operand::at(slot, (i + seg_shift) as u8),
                        carry_in: CarryIn::Zero,
                    });
                    self.b.arith(ArithUop::Writeback {
                        dst: WbDest::Row(Operand::at(slot, i as u8)),
                        src: ComputeSrc::And,
                        masked,
                    });
                } else {
                    self.b.arith(ArithUop::WriteConst {
                        op: Operand::at(slot, i as u8),
                        value: 0,
                        masked,
                    });
                }
            }
        }
    }

    /// Shift by a known amount: whole-segment moves for the multiple-of-
    /// `n` part, then `k mod n` one-bit shifter passes — exactly the
    /// §III-C observation that bit-hybrid turns large shifts into cheap
    /// row moves.
    fn shift_imm(&mut self, k: u8, left: bool, arithmetic: bool) {
        let k = (k as u32) & 31;
        if arithmetic {
            // sra via the xor trick: t = x ^ sext(sign); srl; xor again.
            self.sign_mask_of(VSlot::S1);
            self.zero_pass(VSlot::Scratch(2));
            for s in 0..self.segs {
                self.b.arith(ArithUop::WriteConst {
                    op: Operand::at(VSlot::Scratch(2), s as u8),
                    value: extract_bits(u32::MAX, s * self.bits, self.bits),
                    masked: true,
                });
            }
            self.binary_pass(
                VSlot::S1,
                VSlot::Scratch(2),
                VSlot::D,
                ComputeSrc::Xor,
                None,
                false,
                false,
            );
            self.shift_core(VSlot::D, k, false);
            self.binary_pass(
                VSlot::D,
                VSlot::Scratch(2),
                VSlot::D,
                ComputeSrc::Xor,
                None,
                false,
                true,
            );
        } else {
            self.unary_pass(VSlot::S1, VSlot::D, ComputeSrc::And, false, false);
            self.shift_core(VSlot::D, k, left);
            self.b.ret();
        }
    }

    /// Rotate by a known amount. On the bit-parallel layout (one
    /// segment) this is exactly `k` one-bit rotate μops in the constant
    /// shifter (Table II's `lrotate`/`rrotate`); multi-segment layouts
    /// compose it from two opposing shifts OR-ed together.
    fn rotate_imm(&mut self, k: u8, left: bool) {
        let k = u32::from(k) & 31;
        if self.segs == 1 {
            self.b.arith(ArithUop::LoadShifter {
                op: Operand::at(VSlot::S1, 0),
            });
            for _ in 0..k {
                self.b.arith(if left {
                    ArithUop::RotateLeft { masked: false }
                } else {
                    ArithUop::RotateRight { masked: false }
                });
            }
            self.b.arith(ArithUop::StoreShifter {
                op: Operand::at(VSlot::D, 0),
                masked: false,
            });
            self.b.ret();
            return;
        }
        if k == 0 {
            self.unary_pass(VSlot::S1, VSlot::D, ComputeSrc::And, false, true);
            return;
        }
        // sc3 = x << k; sc0 = x >> (32 - k); d = sc3 | sc0.
        self.unary_pass(VSlot::S1, VSlot::Scratch(3), ComputeSrc::And, false, false);
        self.shift_core(VSlot::Scratch(3), if left { k } else { 32 - k }, true);
        self.unary_pass(VSlot::S1, VSlot::Scratch(0), ComputeSrc::And, false, false);
        self.shift_core(VSlot::Scratch(0), if left { 32 - k } else { k }, false);
        self.binary_pass(
            VSlot::Scratch(3),
            VSlot::Scratch(0),
            VSlot::D,
            ComputeSrc::Or,
            None,
            false,
            true,
        );
    }

    fn shift_core(&mut self, slot: VSlot, k: u32, left: bool) {
        let seg_part = k / self.bits;
        let bit_part = k % self.bits;
        if seg_part > 0 {
            self.segment_move(slot, seg_part, left, false);
        }
        for _ in 0..bit_part {
            self.shift_pass(slot, left, false);
        }
    }

    /// Loads `mask = sign(slot)` into the latches. Cost: 3.
    fn sign_mask_of(&mut self, slot: VSlot) {
        let top = (self.segs - 1) as u8;
        self.b.arith(ArithUop::Blc {
            a: Operand::at(slot, top),
            b: Operand::at(slot, top),
            carry_in: CarryIn::Zero,
        });
        self.b.arith(ArithUop::Writeback {
            dst: WbDest::XReg,
            src: ComputeSrc::And,
            masked: false,
        });
        self.b.arith(ArithUop::SetMask {
            src: MaskSrc::XRegMsb,
            invert: false,
        });
    }

    /// Variable (element-wise) shift via binary decomposition of the
    /// shift amount: for each amount bit `i`, extract it into the mask
    /// and perform `2^i` conditional one-bit shifts (or conditional
    /// whole-segment moves once `2^i >= n`).
    fn shift_var(&mut self, left: bool, arithmetic: bool) {
        // Shift amounts move to scratch 3 first: the destination (which
        // is shifted in place) may alias `s2`.
        self.unary_pass(VSlot::S2, VSlot::Scratch(3), ComputeSrc::And, false, false);
        if arithmetic {
            self.sign_mask_of(VSlot::S1);
            self.zero_pass(VSlot::Scratch(2));
            for s in 0..self.segs {
                self.b.arith(ArithUop::WriteConst {
                    op: Operand::at(VSlot::Scratch(2), s as u8),
                    value: extract_bits(u32::MAX, s * self.bits, self.bits),
                    masked: true,
                });
            }
            self.binary_pass(
                VSlot::S1,
                VSlot::Scratch(2),
                VSlot::D,
                ComputeSrc::Xor,
                None,
                false,
                false,
            );
        } else {
            self.unary_pass(VSlot::S1, VSlot::D, ComputeSrc::And, false, false);
        }
        for i in 0..5u32 {
            // mask = bit i of the shift amount.
            let seg = (i / self.bits) as u8;
            let within = i % self.bits;
            self.b.arith(ArithUop::Blc {
                a: Operand::at(VSlot::Scratch(3), seg),
                b: Operand::at(VSlot::Scratch(3), seg),
                carry_in: CarryIn::Zero,
            });
            self.b.arith(ArithUop::Writeback {
                dst: WbDest::XReg,
                src: ComputeSrc::And,
                masked: false,
            });
            for _ in 0..within {
                self.b.arith(ArithUop::MaskShift);
            }
            self.b.arith(ArithUop::SetMask {
                src: MaskSrc::XRegLsb,
                invert: false,
            });
            let amount = 1u32 << i;
            if amount < self.bits {
                for _ in 0..amount {
                    self.shift_pass(VSlot::D, left, true);
                }
            } else {
                self.segment_move(VSlot::D, amount / self.bits, left, true);
            }
        }
        if arithmetic {
            self.binary_pass(
                VSlot::D,
                VSlot::Scratch(2),
                VSlot::D,
                ComputeSrc::Xor,
                None,
                false,
                true,
            );
        } else {
            self.b.ret();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::count_cycles;

    fn all_kinds() -> Vec<MacroOpKind> {
        use MacroOpKind::*;
        vec![
            Mv,
            Not,
            And,
            Or,
            Xor,
            Add,
            Sub,
            Mul,
            Mulh,
            Divu,
            Remu,
            Div,
            Rem,
            SllI(0),
            SllI(1),
            SllI(7),
            SllI(31),
            SrlI(5),
            SraI(9),
            SllV,
            SrlV,
            SraV,
            CmpEq,
            CmpNe,
            CmpLt,
            CmpLtu,
            Min,
            Max,
            Minu,
            Maxu,
            Merge,
            MaskAnd,
            MaskOr,
            MaskXor,
            MaskNot,
            Splat(0xDEAD_BEEF),
        ]
    }

    #[test]
    fn every_kind_builds_for_every_config() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let p = lib.program(kind);
                assert!(!p.is_empty(), "{kind:?} on {cfg} is empty");
            }
        }
    }

    #[test]
    fn every_program_terminates_under_count() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let p = lib.program(kind);
                let c = count_cycles(&p, cfg);
                assert!(c.0 > 0, "{kind:?} on {cfg} took zero cycles");
                assert!(c.0 < 100_000, "{kind:?} on {cfg} runaway: {c}");
            }
        }
    }

    #[test]
    fn add_latency_matches_segment_count() {
        // add = init + 2 tuples per segment.
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let c = count_cycles(&lib.program(MacroOpKind::Add), cfg);
            assert_eq!(c.0, u64::from(2 * cfg.segments() + 1), "{cfg}");
        }
    }

    #[test]
    fn add_latency_decreases_with_parallelization() {
        let lat: Vec<u64> = HybridConfig::all()
            .iter()
            .map(|&cfg| count_cycles(&ProgramLibrary::new(cfg).program(MacroOpKind::Add), cfg).0)
            .collect();
        assert!(lat.windows(2).all(|w| w[0] > w[1]), "{lat:?}");
    }

    #[test]
    fn bit_serial_mul_takes_thousands_of_cycles() {
        // §I: "duality cache suffers from high latencies (i.e.,
        // thousands of cycles)" for bit-serial multiplication.
        let cfg = HybridConfig::new(1).unwrap();
        let c = count_cycles(&ProgramLibrary::new(cfg).program(MacroOpKind::Mul), cfg);
        assert!(c.0 > 2000, "bit-serial mul too fast: {c}");
    }

    #[test]
    fn bit_parallel_mul_is_an_order_of_magnitude_faster() {
        let c1 = {
            let cfg = HybridConfig::new(1).unwrap();
            count_cycles(&ProgramLibrary::new(cfg).program(MacroOpKind::Mul), cfg).0
        };
        let c32 = {
            let cfg = HybridConfig::new(32).unwrap();
            count_cycles(&ProgramLibrary::new(cfg).program(MacroOpKind::Mul), cfg).0
        };
        assert!(c32 * 10 < c1, "mul: EVE-1 {c1} vs EVE-32 {c32}");
    }

    #[test]
    fn hybrid_shift_beats_serial_shift() {
        // §III-C: segment-multiple shifts are far cheaper bit-hybrid.
        let serial = {
            let cfg = HybridConfig::new(1).unwrap();
            count_cycles(
                &ProgramLibrary::new(cfg).program(MacroOpKind::SllI(16)),
                cfg,
            )
            .0
        };
        let hybrid = {
            let cfg = HybridConfig::new(8).unwrap();
            count_cycles(
                &ProgramLibrary::new(cfg).program(MacroOpKind::SllI(16)),
                cfg,
            )
            .0
        };
        assert!(hybrid < serial, "slli16: serial {serial} hybrid {hybrid}");
    }

    #[test]
    fn signed_kinds_marked_non_bit_exact() {
        assert!(!MacroOpKind::Div.is_bit_exact());
        assert!(!MacroOpKind::Rem.is_bit_exact());
        assert!(!MacroOpKind::Mulh.is_bit_exact());
        assert!(MacroOpKind::Divu.is_bit_exact());
        assert!(MacroOpKind::Mul.is_bit_exact());
        assert!(MacroOpKind::SraV.is_bit_exact());
    }

    #[test]
    fn repeated_program_fetches_are_identical_and_memoized() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let a = lib.program(kind);
                let b = lib.program(kind);
                assert_eq!(*a, *b, "{kind:?} on {cfg} regenerated differently");
                assert!(
                    Arc::ptr_eq(&a, &b),
                    "{kind:?} on {cfg} was regenerated instead of memoized"
                );
            }
        }
    }

    #[test]
    fn cloned_library_serves_the_same_programs() {
        let lib = ProgramLibrary::new(HybridConfig::new(8).unwrap());
        let before = lib.program(MacroOpKind::Add);
        let clone = lib.clone();
        assert_eq!(*clone.program(MacroOpKind::Add), *before);
        assert_eq!(clone.config(), lib.config());
    }

    #[test]
    fn mask_ops_are_constant_time() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let c = count_cycles(&lib.program(MacroOpKind::MaskAnd), cfg);
            assert_eq!(c.0, 2, "{cfg}");
        }
    }
}
