//! Cycle counting for μprograms.
//!
//! The engine's timing model and the §II analytical model both need to
//! know how many cycles each macro-operation occupies the VSU and the
//! EVE SRAMs. Because every tuple takes exactly one cycle (§IV), that
//! number falls out of executing just the counter and control μops —
//! no SRAM state needed. [`count_cycles`] does exactly that, and
//! [`LatencyTable`] memoizes the results per macro-op kind.

use crate::counter::CounterFile;
use crate::library::{MacroOpKind, ProgramLibrary};
use crate::program::{HybridConfig, MicroProgram};
use crate::uop::{ControlUop, CounterUop};
use eve_common::Cycle;
use std::collections::HashMap;

/// Upper bound on tuples executed before declaring a runaway program.
/// The slowest legitimate program (bit-serial signed division) runs
/// ~20 k tuples; anything past this is a generator bug.
const RUNAWAY_LIMIT: u64 = 1_000_000;

/// Executes the counter/control μops of `prog` and returns how many
/// cycles (tuples) it runs before returning.
///
/// # Panics
///
/// Panics if the program exceeds the runaway limit or branches outside
/// itself — both indicate a malformed generator, not a user error.
///
/// # Examples
///
/// ```
/// use eve_uop::{count_cycles, HybridConfig, MacroOpKind, ProgramLibrary};
/// let cfg = HybridConfig::new(8)?;
/// let lib = ProgramLibrary::new(cfg);
/// let c = count_cycles(&lib.program(MacroOpKind::Add), cfg);
/// assert_eq!(c.0, 9); // init + 2 tuples x 4 segments
/// # Ok::<(), eve_common::ConfigError>(())
/// ```
#[must_use]
pub fn count_cycles(prog: &MicroProgram, _cfg: HybridConfig) -> Cycle {
    let mut counters = CounterFile::new();
    let mut pc: usize = 0;
    let mut cycles: u64 = 0;
    let tuples = prog.tuples();
    loop {
        assert!(
            pc < tuples.len(),
            "program {} ran off the end at pc {pc}",
            prog.name()
        );
        let tuple = &tuples[pc];
        cycles += 1;
        assert!(
            cycles < RUNAWAY_LIMIT,
            "program {} exceeded {RUNAWAY_LIMIT} tuples",
            prog.name()
        );
        match tuple.counter {
            CounterUop::Nop => {}
            CounterUop::Init { ctr, value } => counters.init(ctr, value),
            CounterUop::Decr(ctr) => counters.decr(ctr),
            CounterUop::Incr(ctr) => counters.incr(ctr),
        }
        match tuple.control {
            ControlUop::Nop => pc += 1,
            ControlUop::Bnz { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    pc += 1;
                } else {
                    pc = target as usize;
                }
            }
            ControlUop::BnzRet { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    return Cycle(cycles);
                }
                pc = target as usize;
            }
            ControlUop::Bnd { ctr, target } => {
                if counters.take_decade_flag(ctr) {
                    pc = target as usize;
                } else {
                    pc += 1;
                }
            }
            ControlUop::Jump { target } => pc = target as usize,
            ControlUop::Ret => return Cycle(cycles),
        }
    }
}

/// Memoized macro-op latencies for one EVE-*n* configuration.
///
/// # Examples
///
/// ```
/// use eve_uop::{HybridConfig, LatencyTable, MacroOpKind};
/// let mut table = LatencyTable::new(HybridConfig::new(4)?);
/// let add = table.latency(MacroOpKind::Add);
/// let mul = table.latency(MacroOpKind::Mul);
/// assert!(mul > add);
/// # Ok::<(), eve_common::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LatencyTable {
    library: ProgramLibrary,
    cache: HashMap<MacroOpKind, Cycle>,
}

impl LatencyTable {
    /// A table for `cfg`, filled lazily.
    #[must_use]
    pub fn new(cfg: HybridConfig) -> Self {
        Self {
            library: ProgramLibrary::new(cfg),
            cache: HashMap::new(),
        }
    }

    /// The configuration this table measures.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.library.config()
    }

    /// The program library backing the table (shared by callers that
    /// need the μprograms themselves, e.g. the tier profiler).
    #[must_use]
    pub fn library(&self) -> &ProgramLibrary {
        &self.library
    }

    /// Cycles the μprogram for `kind` occupies the VSU.
    pub fn latency(&mut self, kind: MacroOpKind) -> Cycle {
        if let Some(&c) = self.cache.get(&kind) {
            return c;
        }
        let prog = self.library.program(kind);
        let c = count_cycles(&prog, self.library.config());
        self.cache.insert(kind, c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_table_caches() {
        let mut t = LatencyTable::new(HybridConfig::new(2).unwrap());
        let a = t.latency(MacroOpKind::Mul);
        let b = t.latency(MacroOpKind::Mul);
        assert_eq!(a, b);
        assert_eq!(t.cache.len(), 1);
    }

    #[test]
    fn add_formula_across_configs() {
        // 2S + 1 exactly, for every configuration.
        for cfg in HybridConfig::all() {
            let mut t = LatencyTable::new(cfg);
            assert_eq!(
                t.latency(MacroOpKind::Add).0,
                u64::from(2 * cfg.segments() + 1)
            );
        }
    }

    #[test]
    fn sub_costs_two_passes() {
        for cfg in HybridConfig::all() {
            let mut t = LatencyTable::new(cfg);
            let add = t.latency(MacroOpKind::Add).0;
            let sub = t.latency(MacroOpKind::Sub).0;
            assert!(
                sub > add && sub <= 2 * add + 2,
                "{cfg}: add {add} sub {sub}"
            );
        }
    }

    #[test]
    fn division_slower_than_multiplication() {
        for cfg in HybridConfig::all() {
            let mut t = LatencyTable::new(cfg);
            assert!(t.latency(MacroOpKind::Divu) > t.latency(MacroOpKind::Mul));
        }
    }

    #[test]
    fn latency_not_linear_in_segments() {
        // §II: "latency is not linearly correlated with the number of
        // segments" because of control overhead. Going EVE-1 -> EVE-32
        // cuts segments 32x but mul latency by less than 32x.
        let l1 = {
            let mut t = LatencyTable::new(HybridConfig::new(1).unwrap());
            t.latency(MacroOpKind::Mul).0 as f64
        };
        let l32 = {
            let mut t = LatencyTable::new(HybridConfig::new(32).unwrap());
            t.latency(MacroOpKind::Mul).0 as f64
        };
        let ratio = l1 / l32;
        assert!(ratio < 32.0, "mul latency ratio {ratio} >= 32");
        assert!(ratio > 4.0, "mul latency ratio {ratio} suspiciously flat");
    }
}
