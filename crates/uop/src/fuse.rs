//! Tier-2 μprogram compilation: specialize, unroll, and fuse.
//!
//! The bit-accurate interpreter in `eve-sram` walks one VLIW tuple per
//! cycle, paying counter updates, branch resolution, and a full μop
//! dispatch for every tuple of every execution — and the library loops
//! are identical on every trip. §IV's key property makes all of that
//! overhead removable ahead of time: control flow depends *only* on the
//! counter file, never on vector data. A μprogram's trip through its
//! loops is therefore a pure function of the program text and the
//! EVE-*n* configuration, and can be replayed symbolically once:
//!
//! 1. **Specialize** ([`compile`]): execute the counter/control μops
//!    against a [`CounterFile`] exactly as the interpreter would,
//!    recording each cycle's arithmetic μop with its segment selectors
//!    resolved to concrete [`SegSel::At`] indices. Counter-only tuples
//!    vanish from the trace (their cycle cost is kept in
//!    [`CompiledProgram::cycles`]), and register slots stay symbolic
//!    ([`VSlot`]) so one compiled program serves every operand binding.
//! 2. **Fuse**: a peephole pass collapses the dominant tuple pair —
//!    a bit-line compute immediately followed by a row writeback of one
//!    of its latch outputs (the and/or/xor chains, the add carry
//!    recurrence, and the complement + add-carry-one subtraction are
//!    all instances) — into one [`CompiledOp::Fused`] super-op that
//!    computes and stores in a single pass over the u64 bit-planes.
//! 3. **Liveness**: a backward pass decides which latch planes each
//!    fused op must still materialize. Latch state persists across
//!    program executions (a later program may read the latches before
//!    its first `blc`), so liveness at the end of the trace is "all
//!    planes"; interior fused ops keep only the planes read before the
//!    next redefining compute.
//!
//! The [`ProgramCache`] memoizes compiled programs per
//! `(MacroOpKind, HybridConfig, lanes)` and tracks the tier ladder's
//! hit/miss/retired counters; [`profile`] is the allocation-free
//! variant the timing model uses when it only needs the counts.

use std::collections::HashMap;
use std::sync::Arc;

use crate::counter::CounterFile;
use crate::library::MacroOpKind;
use crate::program::{HybridConfig, MicroProgram};
use crate::uop::{
    ArithUop, CarryIn, ComputeSrc, ControlUop, CounterUop, MaskSrc, Operand, SegSel, WbDest,
};
use eve_common::Cycle;

/// Upper bound on unrolled tuples, matching the interpreter's runaway
/// guard: a program this long is a generator bug, not a workload.
const RUNAWAY_LIMIT: u64 = 2_000_000;

/// Which bit-line-compute latch plane a writeback source reads, if any.
///
/// Complement sources read the stored positive plane (the complement is
/// derived over the live lanes at read time); `Shift` and `Mask` read
/// other latches entirely.
fn latch_plane(src: ComputeSrc) -> Option<Plane> {
    match src {
        ComputeSrc::And | ComputeSrc::Nand => Some(Plane::And),
        ComputeSrc::Or | ComputeSrc::Nor => Some(Plane::Or),
        ComputeSrc::Xor | ComputeSrc::Xnor => Some(Plane::Xor),
        ComputeSrc::Add => Some(Plane::Sum),
        ComputeSrc::Shift | ComputeSrc::Mask => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    And,
    Or,
    Xor,
    Sum,
}

/// The latch planes a fused compute must materialize (beyond feeding
/// its own writeback inline). Planes not kept hold stale values until
/// the next compute redefines them — legal exactly because the
/// backward liveness pass proved nothing reads them in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchKeep {
    /// Keep the AND plane (also serves `Nand` reads).
    pub and: bool,
    /// Keep the OR plane (also serves `Nor` reads).
    pub or: bool,
    /// Keep the XOR plane (also serves `Xnor` reads).
    pub xor: bool,
    /// Keep the SUM plane (serves `Add` writebacks and `AddMsb` masks).
    pub sum: bool,
}

impl LatchKeep {
    /// Every plane demanded — the end-of-program obligation.
    pub const ALL: Self = Self {
        and: true,
        or: true,
        xor: true,
        sum: true,
    };
    /// No plane demanded.
    pub const NONE: Self = Self {
        and: false,
        or: false,
        xor: false,
        sum: false,
    };

    fn mark(&mut self, plane: Plane) {
        match plane {
            Plane::And => self.and = true,
            Plane::Or => self.or = true,
            Plane::Xor => self.xor = true,
            Plane::Sum => self.sum = true,
        }
    }
}

/// One operation of a compiled (tier-2) program.
///
/// Every embedded [`Operand`] is fully resolved: segment selectors are
/// [`SegSel::At`], so execution needs no counter file. Register slots
/// remain symbolic and are bound at dispatch, which is what lets one
/// compiled program serve every `(d, s1, s2)` binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledOp {
    /// An arithmetic μop executed through the interpreter's own leaf
    /// (already word-parallel; nothing to fuse).
    Raw(ArithUop),
    /// A bit-line compute fused with the row writeback of one of its
    /// latch outputs: one pass over the bit-planes computes all logic
    /// layers, advances the carry recurrence, stores `src` directly
    /// into `dst`, and materializes only the `keep` planes.
    Fused {
        /// First sensed operand row.
        a: Operand,
        /// Second sensed operand row.
        b: Operand,
        /// Carry preset for the add layer.
        carry_in: CarryIn,
        /// Destination row of the fused writeback.
        dst: Operand,
        /// Which logic layer's output is stored.
        src: ComputeSrc,
        /// Mask-predicated store.
        masked: bool,
        /// Latch planes that must still be materialized.
        keep: LatchKeep,
    },
}

/// A μprogram specialized to one configuration and lane count: a flat
/// trace of [`CompiledOp`]s with loops unrolled, counters folded away,
/// and adjacent compute/writeback tuples fused.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    cfg: HybridConfig,
    lanes: usize,
    ops: Vec<CompiledOp>,
    cycles: Cycle,
    uops: u64,
    fused: u64,
}

impl CompiledProgram {
    /// The source μprogram's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration this program was specialized for.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// The lane count this program was specialized for.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The flat operation trace.
    #[must_use]
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// Cycles the source program occupies the VSU — identical to
    /// interpreting it (every tuple is one cycle, fused or not).
    #[must_use]
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// Non-nop arithmetic μops retired per execution.
    #[must_use]
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Compute/writeback pairs collapsed into fused super-ops.
    #[must_use]
    pub fn fused(&self) -> u64 {
        self.fused
    }
}

/// Resolves an operand's segment selector against the counter file.
fn resolve(op: Operand, counters: &CounterFile) -> Operand {
    let seg = match op.seg {
        SegSel::Up(ctr) => counters.seg_up(ctr),
        SegSel::Down(ctr) => counters.seg_down(ctr),
        SegSel::At(k) => u32::from(k),
    };
    debug_assert!(seg < 32, "segment index {seg} out of range");
    Operand::at(op.slot, seg as u8)
}

/// Resolves every operand of an arithmetic μop to a concrete segment.
fn resolve_arith(uop: &ArithUop, counters: &CounterFile) -> ArithUop {
    match *uop {
        ArithUop::Read { op } => ArithUop::Read {
            op: resolve(op, counters),
        },
        ArithUop::WriteConst { op, value, masked } => ArithUop::WriteConst {
            op: resolve(op, counters),
            value,
            masked,
        },
        ArithUop::WriteDataIn { op } => ArithUop::WriteDataIn {
            op: resolve(op, counters),
        },
        ArithUop::Blc { a, b, carry_in } => ArithUop::Blc {
            a: resolve(a, counters),
            b: resolve(b, counters),
            carry_in,
        },
        ArithUop::Writeback { dst, src, masked } => ArithUop::Writeback {
            dst: match dst {
                WbDest::Row(op) => WbDest::Row(resolve(op, counters)),
                other => other,
            },
            src,
            masked,
        },
        ArithUop::LoadShifter { op } => ArithUop::LoadShifter {
            op: resolve(op, counters),
        },
        ArithUop::StoreShifter { op, masked } => ArithUop::StoreShifter {
            op: resolve(op, counters),
            masked,
        },
        ArithUop::LoadXReg { op } => ArithUop::LoadXReg {
            op: resolve(op, counters),
        },
        other => other,
    }
}

/// Symbolically executes the counter/control μops of `prog`, returning
/// the resolved arithmetic trace and the total cycle count.
///
/// # Panics
///
/// Panics on runaway or malformed programs — generator bugs, exactly
/// as the interpreter would.
fn unroll(prog: &MicroProgram) -> (Vec<ArithUop>, u64) {
    let mut counters = CounterFile::new();
    let mut pc: usize = 0;
    let mut cycles: u64 = 0;
    let mut trace = Vec::new();
    let tuples = prog.tuples();
    loop {
        assert!(pc < tuples.len(), "{}: pc {pc} off the end", prog.name());
        let tuple = &tuples[pc];
        cycles += 1;
        assert!(cycles < RUNAWAY_LIMIT, "{}: runaway program", prog.name());
        if !matches!(tuple.arith, ArithUop::Nop) {
            trace.push(resolve_arith(&tuple.arith, &counters));
        }
        match tuple.counter {
            CounterUop::Nop => {}
            CounterUop::Init { ctr, value } => counters.init(ctr, value),
            CounterUop::Decr(ctr) => counters.decr(ctr),
            CounterUop::Incr(ctr) => counters.incr(ctr),
        }
        match tuple.control {
            ControlUop::Nop => pc += 1,
            ControlUop::Bnz { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    pc += 1;
                } else {
                    pc = target as usize;
                }
            }
            ControlUop::BnzRet { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    return (trace, cycles);
                }
                pc = target as usize;
            }
            ControlUop::Bnd { ctr, target } => {
                if counters.take_decade_flag(ctr) {
                    pc = target as usize;
                } else {
                    pc += 1;
                }
            }
            ControlUop::Jump { target } => pc = target as usize,
            ControlUop::Ret => return (trace, cycles),
        }
    }
}

/// True when a compute/writeback pair at `(blc, next)` is fusable: the
/// writeback targets a row and stores a latch output of the compute it
/// follows.
fn fusable(next: &ArithUop) -> Option<(Operand, ComputeSrc, bool)> {
    if let ArithUop::Writeback {
        dst: WbDest::Row(d),
        src,
        masked,
    } = *next
    {
        if latch_plane(src).is_some() {
            return Some((d, src, masked));
        }
    }
    None
}

/// Marks the latch planes a raw op reads into the live set.
fn mark_reads(live: &mut LatchKeep, uop: &ArithUop) {
    match *uop {
        ArithUop::Writeback { src, .. } => {
            if let Some(p) = latch_plane(src) {
                live.mark(p);
            }
        }
        ArithUop::SetMask {
            src: MaskSrc::AddMsb,
            ..
        } => live.mark(Plane::Sum),
        _ => {}
    }
}

/// Compiles `prog` for `cfg` and `lanes`: unroll, fuse, and compute
/// per-op latch liveness. The result is execution-equivalent to
/// interpreting `prog` on a healthy array — byte-identical
/// architectural state, identical cycle count.
///
/// # Panics
///
/// Panics on runaway or malformed programs (generator bugs).
#[must_use]
pub fn compile(prog: &MicroProgram, cfg: HybridConfig, lanes: usize) -> CompiledProgram {
    let (trace, cycles) = unroll(prog);
    let uops = trace.len() as u64;

    // Peephole fuse: Blc + Writeback(Row, latch-src) → one super-op.
    let mut ops = Vec::with_capacity(trace.len());
    let mut fused = 0u64;
    let mut i = 0;
    while i < trace.len() {
        if let ArithUop::Blc { a, b, carry_in } = trace[i] {
            if let Some((dst, src, masked)) = trace.get(i + 1).and_then(fusable) {
                ops.push(CompiledOp::Fused {
                    a,
                    b,
                    carry_in,
                    dst,
                    src,
                    masked,
                    keep: LatchKeep::ALL,
                });
                fused += 1;
                i += 2;
                continue;
            }
        }
        ops.push(CompiledOp::Raw(trace[i]));
        i += 1;
    }

    // Backward latch liveness. The latches persist across program
    // executions (later programs may read them before their first
    // compute), so everything is live at the end of the trace. An
    // unfused Blc redefines all four planes; a fused one redefines
    // exactly what it keeps, which is exactly what is live.
    let mut live = LatchKeep::ALL;
    for op in ops.iter_mut().rev() {
        match op {
            CompiledOp::Fused { keep, .. } => {
                *keep = live;
                live = LatchKeep::NONE;
            }
            CompiledOp::Raw(u) => {
                if matches!(u, ArithUop::Blc { .. }) {
                    live = LatchKeep::NONE;
                } else {
                    mark_reads(&mut live, u);
                }
            }
        }
    }

    CompiledProgram {
        name: prog.name().to_string(),
        cfg,
        lanes,
        ops,
        cycles: Cycle(cycles),
        uops,
        fused,
    }
}

/// Tier-ladder counters: cache traffic and per-tier retirement.
///
/// One struct serves both executors: the bit-accurate array reports
/// real executions, the engine timing model reports the VSU ladder it
/// simulates. All counters flow through `eve-obs` into `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Compiled-program cache hits (dispatches that took tier 2).
    pub hits: u64,
    /// Cache misses (first sight of a key; tier 1 ran and compiled).
    pub misses: u64,
    /// Executions interpreted tuple-by-tuple (tier 1).
    pub tier1_executions: u64,
    /// Cycles retired by the interpreter tier.
    pub tier1_cycles: u64,
    /// Executions dispatched to compiled programs (tier 2).
    pub tier2_executions: u64,
    /// Cycles retired by the compiled tier.
    pub tier2_cycles: u64,
    /// Arithmetic μops retired by the compiled tier.
    pub tier2_uops: u64,
    /// Compute/writeback pairs executed as fused super-ops.
    pub tier2_fused: u64,
}

impl TierStats {
    /// Records one interpreted execution of `cycles` cycles.
    pub fn record_tier1(&mut self, cycles: Cycle) {
        self.tier1_executions += 1;
        self.tier1_cycles += cycles.0;
    }

    /// Records one compiled execution with the program's counts.
    pub fn record_tier2(&mut self, cycles: Cycle, uops: u64, fused: u64) {
        self.tier2_executions += 1;
        self.tier2_cycles += cycles.0;
        self.tier2_uops += uops;
        self.tier2_fused += fused;
    }

    /// Cache hit rate over all lookups, or 0 when none happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A memoization cache for compiled programs, keyed by
/// `(MacroOpKind, HybridConfig, lanes)`, with the tier ladder's
/// counters attached.
///
/// The kind alone does not determine the program (`SllI(3)` differs
/// from `SllI(7)`; every configuration unrolls differently; the lane
/// count fixes the word geometry the executor asserts against), so the
/// full triple is the key.
#[derive(Debug, Clone, Default)]
pub struct ProgramCache {
    map: HashMap<(MacroOpKind, HybridConfig, usize), Arc<CompiledProgram>>,
    stats: TierStats,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a compiled program, counting the hit or miss.
    pub fn lookup(
        &mut self,
        kind: MacroOpKind,
        cfg: HybridConfig,
        lanes: usize,
    ) -> Option<Arc<CompiledProgram>> {
        match self.map.get(&(kind, cfg, lanes)) {
            Some(cp) => {
                self.stats.hits += 1;
                Some(Arc::clone(cp))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs a compiled program under `kind` (the configuration and
    /// lane count come from the program itself).
    pub fn insert(&mut self, kind: MacroOpKind, cp: Arc<CompiledProgram>) {
        self.map.insert((kind, cp.config(), cp.lanes()), cp);
    }

    /// Number of compiled programs resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been compiled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The tier ladder's counters so far.
    #[must_use]
    pub fn stats(&self) -> &TierStats {
        &self.stats
    }

    /// Mutable access for executors recording retirements.
    pub fn stats_mut(&mut self) -> &mut TierStats {
        &mut self.stats
    }
}

/// The per-execution counts of a compiled program, without the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierProfile {
    /// Cycles per execution (identical to interpreting).
    pub cycles: Cycle,
    /// Arithmetic μops retired per execution.
    pub uops: u64,
    /// Compute/writeback pairs the fuser collapses.
    pub fused: u64,
}

/// Streams the counts [`compile`] would produce without materializing
/// the trace — O(cycles) time, O(1) space. The engine timing model
/// uses this to drive the tier counters for macro-ops it never
/// executes bit-accurately.
///
/// # Panics
///
/// Panics on runaway or malformed programs (generator bugs).
#[must_use]
pub fn profile(prog: &MicroProgram) -> TierProfile {
    let mut counters = CounterFile::new();
    let mut pc: usize = 0;
    let mut cycles: u64 = 0;
    let mut uops: u64 = 0;
    let mut fused: u64 = 0;
    // The previous non-nop arithmetic μop was an unconsumed Blc.
    let mut pending_blc = false;
    let tuples = prog.tuples();
    loop {
        assert!(pc < tuples.len(), "{}: pc {pc} off the end", prog.name());
        let tuple = &tuples[pc];
        cycles += 1;
        assert!(cycles < RUNAWAY_LIMIT, "{}: runaway program", prog.name());
        match tuple.arith {
            ArithUop::Nop => {}
            ArithUop::Blc { .. } => {
                uops += 1;
                pending_blc = true;
            }
            ref u => {
                uops += 1;
                if pending_blc && fusable(u).is_some() {
                    fused += 1;
                }
                pending_blc = false;
            }
        }
        match tuple.counter {
            CounterUop::Nop => {}
            CounterUop::Init { ctr, value } => counters.init(ctr, value),
            CounterUop::Decr(ctr) => counters.decr(ctr),
            CounterUop::Incr(ctr) => counters.incr(ctr),
        }
        match tuple.control {
            ControlUop::Nop => pc += 1,
            ControlUop::Bnz { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    pc += 1;
                } else {
                    pc = target as usize;
                }
            }
            ControlUop::BnzRet { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    break;
                }
                pc = target as usize;
            }
            ControlUop::Bnd { ctr, target } => {
                if counters.take_decade_flag(ctr) {
                    pc = target as usize;
                } else {
                    pc += 1;
                }
            }
            ControlUop::Jump { target } => pc = target as usize,
            ControlUop::Ret => break,
        }
    }
    TierProfile {
        cycles: Cycle(cycles),
        uops,
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::count_cycles;
    use crate::library::ProgramLibrary;
    use crate::uop::VSlot;

    fn all_kinds() -> Vec<MacroOpKind> {
        use MacroOpKind::*;
        vec![
            Mv,
            Not,
            And,
            Or,
            Xor,
            Add,
            Sub,
            Mul,
            Mulh,
            MulAcc,
            Divu,
            Remu,
            Div,
            Rem,
            SllI(0),
            SllI(7),
            SrlI(5),
            SraI(9),
            RotlI(5),
            RotrI(11),
            SllV,
            SrlV,
            SraV,
            CmpEq,
            CmpNe,
            CmpLt,
            CmpLtu,
            Min,
            Max,
            Minu,
            Maxu,
            Merge,
            MaskAnd,
            MaskOr,
            MaskXor,
            MaskNot,
            Splat(0xDEAD_BEEF),
        ]
    }

    #[test]
    fn compiled_cycles_match_the_interpreter_count() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let prog = lib.program(kind);
                let cp = compile(&prog, cfg, 64);
                assert_eq!(
                    cp.cycles(),
                    count_cycles(&prog, cfg),
                    "{kind:?} on {cfg}: compiled cycle count drifted"
                );
            }
        }
    }

    #[test]
    fn profile_agrees_with_compile_on_every_program() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let prog = lib.program(kind);
                let cp = compile(&prog, cfg, 1);
                let p = profile(&prog);
                assert_eq!(p.cycles, cp.cycles(), "{kind:?} on {cfg} cycles");
                assert_eq!(p.uops, cp.uops(), "{kind:?} on {cfg} uops");
                assert_eq!(p.fused, cp.fused(), "{kind:?} on {cfg} fused");
            }
        }
    }

    #[test]
    fn add_fuses_every_segment_pair() {
        // add is `init+preset` then S iterations of blc/writeback —
        // every pair must fuse.
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            let cp = compile(&lib.program(MacroOpKind::Add), cfg, 64);
            assert_eq!(cp.fused(), u64::from(cfg.segments()), "{cfg}");
            assert!(
                cp.ops().iter().all(|op| matches!(
                    op,
                    CompiledOp::Fused { .. } | CompiledOp::Raw(ArithUop::SetCarry { .. })
                )),
                "{cfg}: add should reduce to carry preset + fused adds"
            );
        }
    }

    #[test]
    fn final_fused_op_keeps_every_latch_plane() {
        // Latches persist across executions, so the last compute in a
        // trace must materialize all four planes.
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                let cp = compile(&lib.program(kind), cfg, 64);
                let last_compute = cp.ops().iter().rev().find(|op| {
                    matches!(
                        op,
                        CompiledOp::Fused { .. } | CompiledOp::Raw(ArithUop::Blc { .. })
                    )
                });
                if let Some(CompiledOp::Fused { keep, .. }) = last_compute {
                    assert_eq!(*keep, LatchKeep::ALL, "{kind:?} on {cfg}");
                }
            }
        }
    }

    #[test]
    fn interior_fused_ops_drop_dead_planes() {
        // Copy chains (mv) redefine the latches every iteration; all
        // but the last fused op should keep nothing.
        let cfg = HybridConfig::new(8).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let cp = compile(&lib.program(MacroOpKind::Mv), cfg, 64);
        let keeps: Vec<LatchKeep> = cp
            .ops()
            .iter()
            .filter_map(|op| match op {
                CompiledOp::Fused { keep, .. } => Some(*keep),
                CompiledOp::Raw(_) => None,
            })
            .collect();
        assert!(keeps.len() > 1);
        let (last, interior) = keeps.split_last().unwrap();
        assert_eq!(*last, LatchKeep::ALL);
        assert!(interior.iter().all(|k| *k == LatchKeep::NONE), "{keeps:?}");
    }

    #[test]
    fn compiled_trace_is_fully_resolved() {
        fn assert_at(op: &Operand) {
            assert!(matches!(op.seg, SegSel::At(_)), "unresolved operand {op:?}");
        }
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in all_kinds() {
                for op in compile(&lib.program(kind), cfg, 64).ops() {
                    match op {
                        CompiledOp::Fused { a, b, dst, .. } => {
                            assert_at(a);
                            assert_at(b);
                            assert_at(dst);
                        }
                        CompiledOp::Raw(u) => match u {
                            ArithUop::Read { op }
                            | ArithUop::WriteConst { op, .. }
                            | ArithUop::WriteDataIn { op }
                            | ArithUop::LoadShifter { op }
                            | ArithUop::StoreShifter { op, .. }
                            | ArithUop::LoadXReg { op } => assert_at(op),
                            ArithUop::Blc { a, b, .. } => {
                                assert_at(a);
                                assert_at(b);
                            }
                            ArithUop::Writeback {
                                dst: WbDest::Row(op),
                                ..
                            } => assert_at(op),
                            _ => {}
                        },
                    }
                }
            }
        }
    }

    #[test]
    fn cache_counts_hits_and_misses_per_key() {
        let cfg8 = HybridConfig::new(8).unwrap();
        let cfg1 = HybridConfig::new(1).unwrap();
        let lib = ProgramLibrary::new(cfg8);
        let mut cache = ProgramCache::new();
        assert!(cache.lookup(MacroOpKind::Add, cfg8, 64).is_none());
        cache.insert(
            MacroOpKind::Add,
            Arc::new(compile(&lib.program(MacroOpKind::Add), cfg8, 64)),
        );
        assert!(cache.lookup(MacroOpKind::Add, cfg8, 64).is_some());
        // Same kind, different config or lane count: distinct keys.
        assert!(cache.lookup(MacroOpKind::Add, cfg1, 64).is_none());
        assert!(cache.lookup(MacroOpKind::Add, cfg8, 63).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mask_and_shift_writebacks_do_not_fuse() {
        // A compare ends with `SetMask` + `Writeback(Mask)`; the mask
        // source is not a latch plane and must stay raw.
        let cfg = HybridConfig::new(32).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let cp = compile(&lib.program(MacroOpKind::CmpLtu), cfg, 64);
        assert!(cp.ops().iter().any(|op| matches!(
            op,
            CompiledOp::Raw(ArithUop::Writeback {
                src: ComputeSrc::Mask,
                ..
            })
        )));
    }

    #[test]
    fn slots_stay_symbolic() {
        // The compiled program must not bake in a binding: destination
        // slots survive as VSlot::D.
        let cfg = HybridConfig::new(8).unwrap();
        let lib = ProgramLibrary::new(cfg);
        let cp = compile(&lib.program(MacroOpKind::Add), cfg, 64);
        assert!(cp.ops().iter().any(|op| matches!(
            op,
            CompiledOp::Fused { dst, .. } if dst.slot == VSlot::D
        )));
    }
}
