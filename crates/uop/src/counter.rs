//! The twelve shared EVE counters (paper §IV-A).
//!
//! EVE groups its counters as four *segment* counters (`seg_cnt[0-3]`),
//! four *bit* counters (`bit_cnt[0-3]`), and four *array* counters
//! (`arr_cnt[0-3]`). A counter decremented to zero resets to its initial
//! value and raises its **zero flag**; a counter landing on a power of two
//! raises its **binary decade flag**. Conditional branches (`bnz`, `bnd`)
//! inspect and consume these flags.

use std::fmt;

/// Which of the three counter groups a counter belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterGroup {
    /// Initialized to the number of segments per element.
    Segment,
    /// Initialized to the segment width in bits.
    Bit,
    /// Initialized to the number of active EVE arrays.
    Array,
}

/// Identifier of one of the twelve shared counters.
///
/// # Examples
///
/// ```
/// use eve_uop::CounterId;
/// let c = CounterId::seg(1);
/// assert_eq!(c.to_string(), "seg_cnt[1]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterId {
    group: CounterGroup,
    index: u8,
}

impl CounterId {
    /// `seg_cnt[0]`, conventionally the inner segment-loop counter.
    pub const SEG0: CounterId = CounterId {
        group: CounterGroup::Segment,
        index: 0,
    };
    /// `seg_cnt[1]`, conventionally the outer loop counter.
    pub const SEG1: CounterId = CounterId {
        group: CounterGroup::Segment,
        index: 1,
    };
    /// `bit_cnt[0]`, conventionally the within-segment bit counter.
    pub const BIT0: CounterId = CounterId {
        group: CounterGroup::Bit,
        index: 0,
    };
    /// `arr_cnt[0]`, conventionally the active-array counter.
    pub const ARR0: CounterId = CounterId {
        group: CounterGroup::Array,
        index: 0,
    };

    /// Segment counter `seg_cnt[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn seg(index: u8) -> Self {
        assert!(index < 4, "seg_cnt index {index} out of range");
        Self {
            group: CounterGroup::Segment,
            index,
        }
    }

    /// Bit counter `bit_cnt[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn bit(index: u8) -> Self {
        assert!(index < 4, "bit_cnt index {index} out of range");
        Self {
            group: CounterGroup::Bit,
            index,
        }
    }

    /// Array counter `arr_cnt[index]`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn arr(index: u8) -> Self {
        assert!(index < 4, "arr_cnt index {index} out of range");
        Self {
            group: CounterGroup::Array,
            index,
        }
    }

    /// The counter's group.
    #[must_use]
    pub fn group(&self) -> CounterGroup {
        self.group
    }

    /// Index within the group (0–3).
    #[must_use]
    pub fn index(&self) -> u8 {
        self.index
    }

    fn flat(&self) -> usize {
        let base = match self.group {
            CounterGroup::Segment => 0,
            CounterGroup::Bit => 4,
            CounterGroup::Array => 8,
        };
        base + self.index as usize
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.group {
            CounterGroup::Segment => "seg_cnt",
            CounterGroup::Bit => "bit_cnt",
            CounterGroup::Array => "arr_cnt",
        };
        write!(f, "{name}[{}]", self.index)
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counter {
    init: u32,
    value: u32,
    zero_flag: bool,
    decade_flag: bool,
}

/// The VSU's file of twelve shared counters.
///
/// # Examples
///
/// ```
/// use eve_uop::{CounterFile, CounterId};
/// let mut file = CounterFile::new();
/// let c = CounterId::seg(0);
/// file.init(c, 3);
/// file.decr(c); // 2
/// file.decr(c); // 1
/// assert!(!file.zero_flag(c));
/// file.decr(c); // 0 -> resets to 3, raises zero flag
/// assert!(file.zero_flag(c));
/// assert_eq!(file.value(c), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterFile {
    counters: [Counter; 12],
}

impl CounterFile {
    /// A fresh counter file, all counters at zero with clear flags.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `init cnt, val`: sets both the live value and the reset value.
    pub fn init(&mut self, id: CounterId, value: u32) {
        self.counters[id.flat()] = Counter {
            init: value,
            value,
            zero_flag: false,
            decade_flag: false,
        };
    }

    /// `decr cnt`: decrements; on hitting zero, resets to the initial
    /// value and raises the zero flag. Landing on a power of two raises
    /// the binary decade flag.
    pub fn decr(&mut self, id: CounterId) {
        let c = &mut self.counters[id.flat()];
        if c.value == 0 {
            // Decrementing an exhausted counter keeps it pinned; real
            // hardware would never issue this, but stay total.
            c.zero_flag = true;
            return;
        }
        c.value -= 1;
        if c.value == 0 {
            c.zero_flag = true;
            c.value = c.init;
        } else if c.value.is_power_of_two() {
            c.decade_flag = true;
        }
    }

    /// `incr cnt`: increments by one.
    pub fn incr(&mut self, id: CounterId) {
        let c = &mut self.counters[id.flat()];
        c.value += 1;
        if c.value.is_power_of_two() {
            c.decade_flag = true;
        }
    }

    /// Live value of a counter.
    #[must_use]
    pub fn value(&self, id: CounterId) -> u32 {
        self.counters[id.flat()].value
    }

    /// Reset (initial) value of a counter.
    #[must_use]
    pub fn init_value(&self, id: CounterId) -> u32 {
        self.counters[id.flat()].init
    }

    /// Whether the counter has completed a full count since the flag was
    /// last consumed.
    #[must_use]
    pub fn zero_flag(&self, id: CounterId) -> bool {
        self.counters[id.flat()].zero_flag
    }

    /// Consumes (clears) the zero flag, returning its prior state.
    pub fn take_zero_flag(&mut self, id: CounterId) -> bool {
        let c = &mut self.counters[id.flat()];
        std::mem::take(&mut c.zero_flag)
    }

    /// Whether the counter has landed on a binary decade since the flag
    /// was last consumed.
    #[must_use]
    pub fn decade_flag(&self, id: CounterId) -> bool {
        self.counters[id.flat()].decade_flag
    }

    /// Consumes (clears) the decade flag, returning its prior state.
    pub fn take_decade_flag(&mut self, id: CounterId) -> bool {
        let c = &mut self.counters[id.flat()];
        std::mem::take(&mut c.decade_flag)
    }

    /// Current segment index for an *upward* walk driven by `id`:
    /// `init - value`. While a loop counts down from `S`, this walks
    /// `0, 1, .., S-1`.
    #[must_use]
    pub fn seg_up(&self, id: CounterId) -> u32 {
        let c = &self.counters[id.flat()];
        c.init.saturating_sub(c.value)
    }

    /// Current segment index for a *downward* walk driven by `id`:
    /// `value - 1`. While a loop counts down from `S`, this walks
    /// `S-1, S-2, .., 0`.
    #[must_use]
    pub fn seg_down(&self, id: CounterId) -> u32 {
        self.counters[id.flat()].value.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_loop_runs_exactly_init_times() {
        // Simulate `init 5; loop { decr; bnz }`: body must run 5 times.
        let mut file = CounterFile::new();
        let c = CounterId::seg(0);
        file.init(c, 5);
        let mut iterations = 0;
        loop {
            iterations += 1; // loop body
            file.decr(c);
            if file.take_zero_flag(c) {
                break;
            }
        }
        assert_eq!(iterations, 5);
        // Counter auto-reset: can run the loop again without re-init.
        let mut again = 0;
        loop {
            again += 1;
            file.decr(c);
            if file.take_zero_flag(c) {
                break;
            }
        }
        assert_eq!(again, 5);
    }

    #[test]
    fn seg_walks() {
        let mut file = CounterFile::new();
        let c = CounterId::seg(1);
        file.init(c, 4);
        let mut ups = Vec::new();
        let mut downs = Vec::new();
        for _ in 0..4 {
            ups.push(file.seg_up(c));
            downs.push(file.seg_down(c));
            file.decr(c);
            file.take_zero_flag(c);
        }
        assert_eq!(ups, [0, 1, 2, 3]);
        assert_eq!(downs, [3, 2, 1, 0]);
    }

    #[test]
    fn decade_flag_on_powers_of_two() {
        let mut file = CounterFile::new();
        let c = CounterId::bit(0);
        file.init(c, 9);
        let mut decades = Vec::new();
        for _ in 0..8 {
            file.decr(c);
            if file.take_decade_flag(c) {
                decades.push(file.value(c));
            }
        }
        assert_eq!(decades, [8, 4, 2, 1]);
    }

    #[test]
    fn decr_at_zero_is_total() {
        let mut file = CounterFile::new();
        let c = CounterId::arr(3);
        // Never initialized: value 0.
        file.decr(c);
        assert!(file.zero_flag(c));
        assert_eq!(file.value(c), 0);
    }

    #[test]
    fn incr_counts_up() {
        let mut file = CounterFile::new();
        let c = CounterId::arr(0);
        file.init(c, 0);
        file.incr(c);
        file.incr(c);
        assert_eq!(file.value(c), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = CounterId::seg(4);
    }

    #[test]
    fn twelve_distinct_counters() {
        use std::collections::HashSet;
        let mut all = HashSet::new();
        for i in 0..4 {
            all.insert(CounterId::seg(i));
            all.insert(CounterId::bit(i));
            all.insert(CounterId::arr(i));
        }
        assert_eq!(all.len(), 12);
    }
}
