//! Micro-programs and the builder used to assemble them.
//!
//! A [`MicroProgram`] is a straight-line vector of [`Tuple`]s plus the
//! μpc-relative branch targets already resolved — the contents of one ROM
//! entry in the VSU. [`ProgramBuilder`] provides the label-based assembler
//! the program library uses.

use crate::uop::{ArithUop, ControlUop, CounterUop, Tuple};
use eve_common::{ConfigError, ConfigResult};
use std::collections::HashMap;
use std::fmt;

/// Element width EVE operates on, in bits. EVE supports all 32-bit
/// integer instructions of the RISC-V vector extension (§I).
pub const ELEMENT_BITS: u32 = 32;

/// An EVE-*n* bit-hybrid configuration: elements are processed as
/// `32 / n` segments of `n` bits each.
///
/// `n = 1` is bit-serial (EVE-1), `n = 32` bit-parallel (EVE-32), and the
/// values between are the bit-hybrid designs of §III-C.
///
/// # Examples
///
/// ```
/// use eve_uop::HybridConfig;
/// let cfg = HybridConfig::new(8)?;
/// assert_eq!(cfg.segment_bits(), 8);
/// assert_eq!(cfg.segments(), 4);
/// assert!(HybridConfig::new(5).is_err()); // must divide 32
/// # Ok::<(), eve_common::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HybridConfig {
    segment_bits: u32,
}

impl HybridConfig {
    /// Creates a configuration with `n`-bit segments.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] unless `n` is one of 1, 2, 4, 8, 16, 32
    /// (the parallelization factors explored by the paper, all of which
    /// divide the 32-bit element width).
    pub fn new(segment_bits: u32) -> ConfigResult<Self> {
        if !segment_bits.is_power_of_two() || segment_bits > ELEMENT_BITS {
            return Err(ConfigError::new(format!(
                "parallelization factor {segment_bits} must be a power of \
                 two dividing {ELEMENT_BITS}"
            )));
        }
        Ok(Self { segment_bits })
    }

    /// All configurations evaluated in the paper, in ascending order.
    #[must_use]
    pub fn all() -> [HybridConfig; 6] {
        [1, 2, 4, 8, 16, 32].map(|n| HybridConfig { segment_bits: n })
    }

    /// The parallelization factor `n`: bits processed per cycle per lane.
    #[must_use]
    pub fn segment_bits(&self) -> u32 {
        self.segment_bits
    }

    /// Number of segments per 32-bit element (`32 / n`).
    #[must_use]
    pub fn segments(&self) -> u32 {
        ELEMENT_BITS / self.segment_bits
    }

    /// Whether this is the bit-serial extreme (EVE-1).
    #[must_use]
    pub fn is_bit_serial(&self) -> bool {
        self.segment_bits == 1
    }

    /// Whether this is the bit-parallel extreme (EVE-32).
    #[must_use]
    pub fn is_bit_parallel(&self) -> bool {
        self.segment_bits == ELEMENT_BITS
    }
}

impl fmt::Display for HybridConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EVE-{}", self.segment_bits)
    }
}

/// An assembled micro-program: the ROM image for one macro-operation.
///
/// Construct through [`ProgramBuilder`]; execute with
/// [`count_cycles`](crate::latency::count_cycles) or the bit-accurate
/// array in `eve-sram`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroProgram {
    name: String,
    tuples: Vec<Tuple>,
}

impl MicroProgram {
    /// The macro-operation this program implements, for diagnostics.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The VLIW tuples, in ROM order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of ROM entries this program occupies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the program is empty (never true for built programs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Label-based assembler for [`MicroProgram`]s.
///
/// # Examples
///
/// ```
/// use eve_uop::{ArithUop, ControlUop, CounterUop, CounterId, ProgramBuilder};
///
/// let seg = CounterId::seg(0);
/// let mut b = ProgramBuilder::new("copy");
/// b.emit(CounterUop::Init { ctr: seg, value: 4 }, ArithUop::Nop, ControlUop::Nop);
/// b.label("loop");
/// b.emit(
///     CounterUop::Decr(seg),
///     ArithUop::Nop,
///     ControlUop::Nop,
/// );
/// b.branch_nz(seg, "loop");
/// b.ret();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    tuples: Vec<Tuple>,
    labels: HashMap<String, u16>,
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Starts assembling a program named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tuples: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) {
        let at = self.tuples.len() as u16;
        let prev = self.labels.insert(name.to_owned(), at);
        assert!(prev.is_none(), "label {name} defined twice");
    }

    /// Emits a full tuple.
    pub fn emit(&mut self, counter: CounterUop, arith: ArithUop, control: ControlUop) {
        self.tuples.push(Tuple {
            counter,
            arith,
            control,
        });
    }

    /// Emits a tuple carrying only an arithmetic μop.
    pub fn arith(&mut self, arith: ArithUop) {
        self.emit(CounterUop::Nop, arith, ControlUop::Nop);
    }

    /// Emits a tuple carrying only a counter μop.
    pub fn counter(&mut self, counter: CounterUop) {
        self.emit(counter, ArithUop::Nop, ControlUop::Nop);
    }

    /// Emits an arithmetic μop fused with a counter μop.
    pub fn arith_counter(&mut self, counter: CounterUop, arith: ArithUop) {
        self.emit(counter, arith, ControlUop::Nop);
    }

    /// Emits an arithmetic μop fused with `bnz ctr, label` — the hot-loop
    /// back edge shape from Fig 4.
    pub fn arith_branch_nz(&mut self, arith: ArithUop, ctr: crate::CounterId, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(CounterUop::Nop, arith, ControlUop::Bnz { ctr, target: 0 });
    }

    /// Emits the canonical loop back-edge: `decr ctr` fused with an
    /// arithmetic μop and `bnz ctr, label`. The arithmetic μop observes
    /// the pre-decrement segment index (start-of-cycle state); the
    /// branch sees the decremented counter.
    pub fn arith_branch_nz_with_decr(
        &mut self,
        arith: ArithUop,
        ctr: crate::CounterId,
        label: &str,
    ) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Decr(ctr),
            arith,
            ControlUop::Bnz { ctr, target: 0 },
        );
    }

    /// Like [`Self::arith_branch_nz_with_decr`] but the loop's
    /// fall-through terminates the program (`bnz.r`).
    pub fn arith_branch_nz_ret_with_decr(
        &mut self,
        arith: ArithUop,
        ctr: crate::CounterId,
        label: &str,
    ) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Decr(ctr),
            arith,
            ControlUop::BnzRet { ctr, target: 0 },
        );
    }

    /// Emits `decr ctr` fused with `bnz ctr, label`.
    pub fn decr_branch_nz(&mut self, ctr: crate::CounterId, label: &str) {
        self.arith_branch_nz_with_decr(ArithUop::Nop, ctr, label);
    }

    /// Emits `decr ctr` fused with `bnz.r ctr, label`.
    pub fn decr_branch_nz_ret(&mut self, ctr: crate::CounterId, label: &str) {
        self.arith_branch_nz_ret_with_decr(ArithUop::Nop, ctr, label);
    }

    /// Emits `bnz ctr, label` alone.
    pub fn branch_nz(&mut self, ctr: crate::CounterId, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Nop,
            ArithUop::Nop,
            ControlUop::Bnz { ctr, target: 0 },
        );
    }

    /// Emits `bnz.r ctr, label`: loop back while counting, return once
    /// done.
    pub fn branch_nz_ret(&mut self, ctr: crate::CounterId, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Nop,
            ArithUop::Nop,
            ControlUop::BnzRet { ctr, target: 0 },
        );
    }

    /// Emits an arithmetic μop fused with `bnz.r`.
    pub fn arith_branch_nz_ret(&mut self, arith: ArithUop, ctr: crate::CounterId, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Nop,
            arith,
            ControlUop::BnzRet { ctr, target: 0 },
        );
    }

    /// Emits `bnd ctr, label`.
    pub fn branch_decade(&mut self, ctr: crate::CounterId, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Nop,
            ArithUop::Nop,
            ControlUop::Bnd { ctr, target: 0 },
        );
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) {
        let at = self.tuples.len();
        self.fixups.push((at, label.to_owned()));
        self.emit(
            CounterUop::Nop,
            ArithUop::Nop,
            ControlUop::Jump { target: 0 },
        );
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.emit(CounterUop::Nop, ArithUop::Nop, ControlUop::Ret);
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a referenced label was never defined
    /// or the program does not end by returning.
    pub fn build(mut self) -> ConfigResult<MicroProgram> {
        for (at, label) in &self.fixups {
            let Some(&target) = self.labels.get(label) else {
                return Err(ConfigError::new(format!(
                    "program {}: undefined label {label}",
                    self.name
                )));
            };
            let tuple = &mut self.tuples[*at];
            tuple.control = match tuple.control {
                ControlUop::Bnz { ctr, .. } => ControlUop::Bnz { ctr, target },
                ControlUop::BnzRet { ctr, .. } => ControlUop::BnzRet { ctr, target },
                ControlUop::Bnd { ctr, .. } => ControlUop::Bnd { ctr, target },
                ControlUop::Jump { .. } => ControlUop::Jump { target },
                other => other,
            };
        }
        let terminates = self
            .tuples
            .iter()
            .any(|t| matches!(t.control, ControlUop::Ret | ControlUop::BnzRet { .. }));
        if !terminates {
            return Err(ConfigError::new(format!(
                "program {} never returns",
                self.name
            )));
        }
        Ok(MicroProgram {
            name: self.name,
            tuples: self.tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterId;

    #[test]
    fn config_validation() {
        for n in [1u32, 2, 4, 8, 16, 32] {
            let cfg = HybridConfig::new(n).unwrap();
            assert_eq!(cfg.segment_bits() * cfg.segments(), 32);
        }
        assert!(HybridConfig::new(0).is_err());
        assert!(HybridConfig::new(3).is_err());
        assert!(HybridConfig::new(64).is_err());
    }

    #[test]
    fn config_extremes() {
        assert!(HybridConfig::new(1).unwrap().is_bit_serial());
        assert!(HybridConfig::new(32).unwrap().is_bit_parallel());
        let hybrid = HybridConfig::new(8).unwrap();
        assert!(!hybrid.is_bit_serial() && !hybrid.is_bit_parallel());
        assert_eq!(hybrid.to_string(), "EVE-8");
    }

    #[test]
    fn all_lists_six_configs() {
        let all = HybridConfig::all();
        assert_eq!(all.len(), 6);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        b.branch_nz(CounterId::seg(0), "nowhere");
        b.ret();
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn program_must_return() {
        let mut b = ProgramBuilder::new("fallsoff");
        b.arith(ArithUop::Nop);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("never returns"));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new("dup");
        b.label("x");
        b.label("x");
    }

    #[test]
    fn branch_targets_resolve() {
        let seg = CounterId::seg(0);
        let mut b = ProgramBuilder::new("loop");
        b.counter(CounterUop::Init { ctr: seg, value: 2 });
        b.label("top");
        b.counter(CounterUop::Decr(seg));
        b.branch_nz(seg, "top");
        b.ret();
        let p = b.build().unwrap();
        match p.tuples()[2].control {
            ControlUop::Bnz { target, .. } => assert_eq!(target, 1),
            other => panic!("expected bnz, got {other:?}"),
        }
        assert_eq!(p.name(), "loop");
        assert!(!p.is_empty());
    }
}
