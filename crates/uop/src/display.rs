//! Textual μprogram listings (the notation of the paper's Fig 4).
//!
//! Each ROM entry prints as its VLIW tuple: `counter | arithmetic |
//! control`, with the paper's mnemonics (`blc`, `wb`, `rd`, `m_shft`,
//! `init`/`decr`, `bnz`/`bnd`/`ret`).

use crate::program::MicroProgram;
use crate::uop::{
    ArithUop, ComputeSrc, ControlUop, CounterUop, MaskSrc, Operand, SegSel, Tuple, VSlot, WbDest,
};
use std::fmt;

impl fmt::Display for VSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VSlot::D => write!(f, "d"),
            VSlot::S1 => write!(f, "a"),
            VSlot::S2 => write!(f, "b"),
            VSlot::Mask => write!(f, "v0"),
            VSlot::Scratch(k) => write!(f, "sc{k}"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seg {
            SegSel::Up(c) => write!(f, "{}[{}\u{2191}]", self.slot, c),
            SegSel::Down(c) => write!(f, "{}[{}\u{2193}]", self.slot, c),
            SegSel::At(k) => write!(f, "{}[{k}]", self.slot),
        }
    }
}

impl fmt::Display for ComputeSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputeSrc::And => "and",
            ComputeSrc::Nand => "nand",
            ComputeSrc::Or => "or",
            ComputeSrc::Nor => "nor",
            ComputeSrc::Xor => "xor",
            ComputeSrc::Xnor => "xnor",
            ComputeSrc::Add => "add",
            ComputeSrc::Shift => "shift",
            ComputeSrc::Mask => "mask",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for ArithUop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithUop::Nop => write!(f, "-"),
            ArithUop::Read { op } => write!(f, "rd {op}"),
            ArithUop::WriteConst { op, value, masked } => {
                let m = if *masked { ", m" } else { "" };
                write!(f, "wr {op}, #{value:#x}{m}")
            }
            ArithUop::WriteDataIn { op } => write!(f, "wr {op}, data_in"),
            ArithUop::Blc { a, b, carry_in } => {
                let c = match carry_in {
                    crate::uop::CarryIn::Stored => "",
                    crate::uop::CarryIn::Zero => ", c0",
                    crate::uop::CarryIn::One => ", c1",
                };
                write!(f, "blc {a}, {b}{c}")
            }
            ArithUop::Writeback { dst, src, masked } => {
                let m = if *masked { ", m" } else { "" };
                match dst {
                    WbDest::Row(op) => write!(f, "wb {op}, {src}{m}"),
                    WbDest::MaskReg => write!(f, "wb mask, {src}{m}"),
                    WbDest::XReg => write!(f, "wb xreg, {src}{m}"),
                }
            }
            ArithUop::LoadShifter { op } => write!(f, "ldsh {op}"),
            ArithUop::StoreShifter { op, masked } => {
                let m = if *masked { ", m" } else { "" };
                write!(f, "stsh {op}{m}")
            }
            ArithUop::LoadXReg { op } => write!(f, "ldx {op}"),
            ArithUop::ShiftLeft { masked } => {
                write!(f, "lshft{}", if *masked { " m" } else { "" })
            }
            ArithUop::ShiftRight { masked } => {
                write!(f, "rshft{}", if *masked { " m" } else { "" })
            }
            ArithUop::RotateLeft { masked } => {
                write!(f, "lrot{}", if *masked { " m" } else { "" })
            }
            ArithUop::RotateRight { masked } => {
                write!(f, "rrot{}", if *masked { " m" } else { "" })
            }
            ArithUop::MaskShift => write!(f, "m_shft"),
            ArithUop::SetMask { src, invert } => {
                let s = match src {
                    MaskSrc::XRegLsb => "xreg.lsb",
                    MaskSrc::XRegMsb => "xreg.msb",
                    MaskSrc::AddMsb => "add.msb",
                    MaskSrc::Carry => "carry",
                    MaskSrc::AllOnes => "ones",
                };
                write!(f, "setm {}{s}", if *invert { "!" } else { "" })
            }
            ArithUop::SetCarry { value } => write!(f, "setc {}", u8::from(*value)),
            ArithUop::ClearSpare => write!(f, "clrsp"),
        }
    }
}

impl fmt::Display for CounterUop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterUop::Nop => write!(f, "-"),
            CounterUop::Init { ctr, value } => write!(f, "init {ctr}, {value}"),
            CounterUop::Decr(c) => write!(f, "decr {c}"),
            CounterUop::Incr(c) => write!(f, "incr {c}"),
        }
    }
}

impl fmt::Display for ControlUop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlUop::Nop => write!(f, "-"),
            ControlUop::Bnz { ctr, target } => write!(f, "bnz {ctr}, @{target}"),
            ControlUop::BnzRet { ctr, target } => write!(f, "bnz.r {ctr}, @{target}"),
            ControlUop::Bnd { ctr, target } => write!(f, "bnd {ctr}, @{target}"),
            ControlUop::Jump { target } => write!(f, "j @{target}"),
            ControlUop::Ret => write!(f, "ret"),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} | {:<28} | {}",
            self.counter.to_string(),
            self.arith.to_string(),
            self.control
        )
    }
}

/// Renders a μprogram as a Fig 4-style listing.
///
/// # Examples
///
/// ```
/// use eve_uop::{listing, HybridConfig, MacroOpKind, ProgramLibrary};
/// let lib = ProgramLibrary::new(HybridConfig::new(8)?);
/// let text = listing(&lib.program(MacroOpKind::Add));
/// assert!(text.contains("blc"));
/// assert!(text.contains("bnz.r"));
/// # Ok::<(), eve_common::ConfigError>(())
/// ```
#[must_use]
pub fn listing(prog: &MicroProgram) -> String {
    let mut out = format!(
        "{} ({} tuples)\n{:>4}  {:<16} | {:<28} | control\n",
        prog.name(),
        prog.len(),
        "pc",
        "counter",
        "arithmetic",
    );
    for (i, t) in prog.tuples().iter().enumerate() {
        out.push_str(&format!("{i:>4}: {t}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{MacroOpKind, ProgramLibrary};
    use crate::program::HybridConfig;

    #[test]
    fn add_listing_shows_fig4_shape() {
        let lib = ProgramLibrary::new(HybridConfig::new(8).unwrap());
        let text = listing(&lib.program(MacroOpKind::Add));
        // Fig 4(a): init, blc, writeback of the sum, loop-ret.
        assert!(text.contains("init seg_cnt[0], 4"), "{text}");
        assert!(
            text.contains("blc a[seg_cnt[0]\u{2191}], b[seg_cnt[0]\u{2191}]"),
            "{text}"
        );
        assert!(text.contains("wb d[seg_cnt[0]\u{2191}], add"), "{text}");
        assert!(text.contains("bnz.r seg_cnt[0], @1"), "{text}");
    }

    #[test]
    fn mul_listing_has_nested_loops_and_mask_shift() {
        let lib = ProgramLibrary::new(HybridConfig::new(4).unwrap());
        let text = listing(&lib.program(MacroOpKind::Mul));
        assert!(text.contains("m_shft"), "{text}");
        assert!(text.contains("init bit_cnt[0], 4"), "{text}");
        assert!(text.contains("setm xreg.lsb"), "{text}");
        // Predicated accumulate writes under the mask (into the
        // aliasing-safe scratch-1 accumulator).
        assert!(
            text.contains("wb sc1[seg_cnt[0]\u{2191}], add, m"),
            "{text}"
        );
    }

    #[test]
    fn every_program_renders() {
        for cfg in HybridConfig::all() {
            let lib = ProgramLibrary::new(cfg);
            for kind in [
                MacroOpKind::Add,
                MacroOpKind::Sub,
                MacroOpKind::Mul,
                MacroOpKind::Divu,
                MacroOpKind::SllV,
                MacroOpKind::Merge,
                MacroOpKind::CmpLt,
            ] {
                let text = listing(&lib.program(kind));
                assert!(text.lines().count() > 3, "{cfg} {kind:?}");
            }
        }
    }
}
