//! EVE micro-operations and micro-programs (paper §IV).
//!
//! EVE controls its compute-in-memory SRAM through a μop abstraction.
//! Every cycle the vector sequencing unit (VSU) fetches one VLIW
//! [`Tuple`] containing a counter μop, an arithmetic μop, and a control
//! μop, and executes all three (counter first, then arithmetic, then
//! control — §IV-B). Incoming vector instructions become *macro-ops*,
//! each implemented by a [`MicroProgram`] from the [`ProgramLibrary`].
//!
//! Two executors consume μprograms:
//!
//! * the bit-accurate SRAM model in `eve-sram`, which applies the
//!   arithmetic μops to real bit cells, and
//! * the cycle counter in [`latency`], which executes only the counter
//!   and control μops to measure how many cycles a macro-op takes on a
//!   given EVE-*n* configuration — the numbers the engine timing model
//!   and the §II analytical model are built from.
//!
//! # Examples
//!
//! ```
//! use eve_uop::{HybridConfig, MacroOpKind, ProgramLibrary};
//!
//! let cfg = HybridConfig::new(8).unwrap(); // EVE-8: 8-bit segments
//! let lib = ProgramLibrary::new(cfg);
//! let add = lib.program(MacroOpKind::Add);
//! // Bit-hybrid addition iterates over 32/8 = 4 segments.
//! let cycles = eve_uop::latency::count_cycles(&add, cfg);
//! assert!(cycles.0 > 4, "must at least touch every segment");
//! ```

pub mod counter;
pub mod display;
pub mod fuse;
pub mod latency;
pub mod library;
pub mod program;
pub mod uop;

pub use counter::{CounterFile, CounterId};
pub use display::listing;
pub use fuse::{
    compile, profile, CompiledOp, CompiledProgram, LatchKeep, ProgramCache, TierProfile, TierStats,
};
pub use latency::{count_cycles, LatencyTable};
pub use library::{MacroOpKind, ProgramLibrary};
pub use program::{HybridConfig, MicroProgram, ProgramBuilder};
pub use uop::{
    ArithUop, CarryIn, ComputeSrc, ControlUop, CounterUop, MaskSrc, Operand, SegSel, Tuple, VSlot,
    WbDest,
};
