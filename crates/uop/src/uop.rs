//! The μop vocabulary (paper Table II).
//!
//! A [`Tuple`] is the VLIW word the VSU fetches each cycle: one
//! [`CounterUop`], one [`ArithUop`], one [`ControlUop`]. Arithmetic μops
//! are executed by the EVE SRAM circuits (§III); counter and control μops
//! by the VSU's unified control logic.

use crate::counter::CounterId;

/// Virtual register slot referenced by a μprogram.
///
/// μprograms are written against abstract slots; the VSU binds them to
/// physical vector registers when it issues the macro-op, so one ROM image
/// serves every register combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VSlot {
    /// Destination vector register.
    D,
    /// First source vector register.
    S1,
    /// Second source vector register.
    S2,
    /// Current mask register (`v0` in RVV terms).
    Mask,
    /// Engine-managed scratch register (partial products, inverted
    /// operands, constants). EVE reserves a handful of rows for these.
    Scratch(u8),
}

/// Selects which segment of an element a μop addresses.
///
/// Segment-serial loops address "the current segment"; the direction
/// matters because carry chains run low→high while shifts and sign logic
/// sometimes run high→low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegSel {
    /// `segments - counter_value`: walks segments from least significant
    /// to most significant as `ctr` counts down.
    Up(CounterId),
    /// `counter_value - 1`: walks segments from most significant to least
    /// significant as `ctr` counts down.
    Down(CounterId),
    /// A fixed segment index.
    At(u8),
}

/// A row operand: a segment of a register slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// Which register slot.
    pub slot: VSlot,
    /// Which segment of each element in that register.
    pub seg: SegSel,
}

impl Operand {
    /// Operand addressing `seg` of `slot`.
    #[must_use]
    pub fn new(slot: VSlot, seg: SegSel) -> Self {
        Self { slot, seg }
    }

    /// Operand walking segments upward with `ctr`.
    #[must_use]
    pub fn up(slot: VSlot, ctr: CounterId) -> Self {
        Self::new(slot, SegSel::Up(ctr))
    }

    /// Operand walking segments downward with `ctr`.
    #[must_use]
    pub fn down(slot: VSlot, ctr: CounterId) -> Self {
        Self::new(slot, SegSel::Down(ctr))
    }

    /// Operand at a fixed segment.
    #[must_use]
    pub fn at(slot: VSlot, seg: u8) -> Self {
        Self::new(slot, SegSel::At(seg))
    }
}

/// Values the bit-line compute and the circuit stacks produce, selectable
/// by the bus logic for writeback (`src` column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeSrc {
    /// Bit-wise AND from the single-ended sense amplifiers.
    And,
    /// Bit-wise NAND from the single-ended sense amplifiers.
    Nand,
    /// Bit-wise OR from the single-ended sense amplifiers.
    Or,
    /// Bit-wise NOR from the single-ended sense amplifiers.
    Nor,
    /// XOR computed by the XOR/XNOR logic layer.
    Xor,
    /// XNOR computed by the XOR/XNOR logic layer.
    Xnor,
    /// Sum from the add logic (Manchester carry chain).
    Add,
    /// Contents of the constant shifter.
    Shift,
    /// The per-lane mask latches driven onto the bus (persisting a
    /// computed mask into a mask-register row).
    Mask,
}

/// Writeback destination (`wb` μop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WbDest {
    /// A row of the SRAM.
    Row(Operand),
    /// The per-column mask latches.
    MaskReg,
    /// The XRegister shift register.
    XReg,
}

/// Carry-in source for the add logic on a `blc` μop.
///
/// Bit-hybrid addition stores the inter-segment carry in a spare-shifter
/// flip-flop (§III-C); subtraction presets it to one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarryIn {
    /// Use the stored carry flip-flop (chained segments).
    Stored,
    /// Force zero (first segment of an add).
    Zero,
    /// Force one (first segment of a subtract).
    One,
}

/// Sources the mask latch can be loaded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskSrc {
    /// XRegister value of the least-significant column of the segment —
    /// extracts multiplier bits during `mul`.
    XRegLsb,
    /// XRegister value of the most-significant column of the segment —
    /// extracts sign bits for compares and division.
    XRegMsb,
    /// Most-significant bit of the last add result (per lane) — the sign
    /// of a just-computed difference.
    AddMsb,
    /// The per-lane carry flip-flop — the borrow-complement after a
    /// subtraction, which is how unsigned compares reach the mask.
    Carry,
    /// All lanes active.
    AllOnes,
}

/// Arithmetic μops, executed by the EVE SRAM circuits (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithUop {
    /// No SRAM activity this cycle.
    Nop,
    /// Native SRAM read: drive `op`'s row onto the data port (used when
    /// streaming to the VRU or the store path).
    Read { op: Operand },
    /// Native SRAM write of a broadcast constant segment into `op`'s row.
    /// The VSU supplies the value on the data-in port; `masked` restricts
    /// the write to lanes whose mask latch is set.
    WriteConst {
        op: Operand,
        value: u32,
        masked: bool,
    },
    /// Native SRAM write from the data-in port (memory fill path).
    WriteDataIn { op: Operand },
    /// Bit-line compute between the rows of `a` and `b`: both wordlines
    /// asserted, sense amps in single-ended mode. Feeds every circuit
    /// layer; the add logic consumes `carry_in` and latches carry-out.
    Blc {
        a: Operand,
        b: Operand,
        carry_in: CarryIn,
    },
    /// Write a computed value back into the SRAM (or the mask/X
    /// registers). `masked` gates the write per lane by the mask latch.
    Writeback {
        dst: WbDest,
        src: ComputeSrc,
        masked: bool,
    },
    /// Load a row into the constant shifter.
    LoadShifter { op: Operand },
    /// Store the constant shifter back to a row (optionally masked).
    StoreShifter { op: Operand, masked: bool },
    /// Load a row into the XRegister.
    LoadXReg { op: Operand },
    /// Shift the constant shifter left one bit; in bit-hybrid mode the
    /// spare shifter simultaneously shifts right, catching the bits that
    /// cross segment boundaries. `masked` makes it conditional per lane.
    ShiftLeft { masked: bool },
    /// Shift the constant shifter right one bit (spare shifter left).
    ShiftRight { masked: bool },
    /// Rotate the constant shifter left one bit within the segment
    /// (`lrotate` in Table II).
    RotateLeft { masked: bool },
    /// Rotate the constant shifter right one bit within the segment
    /// (`rrotate` in Table II).
    RotateRight { masked: bool },
    /// Shift the XRegister right one bit (`mask_shft` in Table II):
    /// exposes successive bits at the LSB column.
    MaskShift,
    /// Load the mask latches.
    SetMask { src: MaskSrc, invert: bool },
    /// Preset the carry flip-flop.
    SetCarry { value: bool },
    /// Clear the spare shifter's cross-segment bit (shift-pass setup:
    /// the first segment of a pass must shift in zero).
    ClearSpare,
}

/// Counter μops, executed by the VSU's unified control logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterUop {
    /// No counter activity.
    Nop,
    /// `init cnt, val`: force-initialize `ctr` to `value`.
    Init { ctr: CounterId, value: u32 },
    /// `decr cnt`: decrement by one; on reaching zero the counter resets
    /// to its initial value and raises its zero flag.
    Decr(CounterId),
    /// `incr cnt`: increment by one.
    Incr(CounterId),
}

/// Control μops: manipulate the micro-program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlUop {
    /// Fall through to the next tuple.
    Nop,
    /// `bnz cnt, l`: branch to `target` while `ctr` has not completed its
    /// count (zero flag clear); consumes the flag on fall-through.
    Bnz { ctr: CounterId, target: u16 },
    /// `bnz.r`: like [`ControlUop::Bnz`] but the fall-through also
    /// terminates the μprogram (the `ret` flag of §IV-A).
    BnzRet { ctr: CounterId, target: u16 },
    /// `bnd cnt, l`: branch to `target` if `ctr` sits on a binary decade
    /// (power of two); consumes the decade flag when taken.
    Bnd { ctr: CounterId, target: u16 },
    /// Unconditional jump.
    Jump { target: u16 },
    /// `ret`: conclude execution, yield to the next macro-op.
    Ret,
}

/// One VLIW micro-instruction: the three μops the VSU executes in a
/// single cycle, in counter → arithmetic → control order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Counter μop.
    pub counter: CounterUop,
    /// Arithmetic μop (sent to the EVE SRAMs).
    pub arith: ArithUop,
    /// Control μop.
    pub control: ControlUop,
}

impl Tuple {
    /// A tuple doing nothing in every slot (an `empty` VSU cycle).
    pub const NOP: Tuple = Tuple {
        counter: CounterUop::Nop,
        arith: ArithUop::Nop,
        control: ControlUop::Nop,
    };
}

impl Default for Tuple {
    fn default() -> Self {
        Tuple::NOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterId;

    #[test]
    fn operand_constructors() {
        let ctr = CounterId::seg(0);
        assert_eq!(Operand::up(VSlot::D, ctr).seg, SegSel::Up(ctr));
        assert_eq!(Operand::down(VSlot::S1, ctr).seg, SegSel::Down(ctr));
        assert_eq!(Operand::at(VSlot::S2, 3).seg, SegSel::At(3));
    }

    #[test]
    fn default_tuple_is_nop() {
        let t = Tuple::default();
        assert_eq!(t.counter, CounterUop::Nop);
        assert_eq!(t.arith, ArithUop::Nop);
        assert_eq!(t.control, ControlUop::Nop);
    }

    #[test]
    fn table_ii_surface_is_covered() {
        // Every μop class from Table II exists: rd, wr, blc, lshift,
        // rshift, rotates (as shifts w/ wraparound handled by programs),
        // mask shift, cnt init/decr, bnz, bnd, ret.
        let _rd = ArithUop::Read {
            op: Operand::at(VSlot::D, 0),
        };
        let _wr = ArithUop::WriteDataIn {
            op: Operand::at(VSlot::D, 0),
        };
        let _blc = ArithUop::Blc {
            a: Operand::at(VSlot::S1, 0),
            b: Operand::at(VSlot::S2, 0),
            carry_in: CarryIn::Zero,
        };
        let _ls = ArithUop::ShiftLeft { masked: false };
        let _rs = ArithUop::ShiftRight { masked: false };
        let _ms = ArithUop::MaskShift;
        let _init = CounterUop::Init {
            ctr: CounterId::seg(0),
            value: 4,
        };
        let _decr = CounterUop::Decr(CounterId::seg(0));
        let _bnz = ControlUop::Bnz {
            ctr: CounterId::seg(0),
            target: 0,
        };
        let _bnd = ControlUop::Bnd {
            ctr: CounterId::bit(0),
            target: 0,
        };
        let _ret = ControlUop::Ret;
    }
}
