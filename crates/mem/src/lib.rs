//! Memory-system substrate: caches, MSHRs, DRAM, and the TLB.
//!
//! The paper simulates its systems on gem5 with ARM's CHI cache model
//! (Table III). This crate provides the equivalent substrate as a
//! latency/occupancy model: a three-level hierarchy (L1I/L1D → private
//! L2 → shared LLC) backed by a single-channel DDR4-2400-like DRAM.
//! Each level models
//!
//! * hit latency and banked access (bank busy times bound bandwidth),
//! * a finite set of MSHRs — misses wait for a free slot, and that wait
//!   is reported separately so vector memory units can attribute stalls
//!   (the Fig 8 measurement),
//! * miss-status coalescing: a second miss to an in-flight line
//!   completes with the first and consumes no MSHR,
//! * LRU replacement with dirty-line writebacks charging downstream
//!   bandwidth,
//! * way-partitioning of the L2 for EVE's vector mode (§V-E): spawning
//!   an engine halves the associativity and invalidates the donated
//!   ways, with writebacks accounted linearly per line.
//!
//! # Examples
//!
//! ```
//! use eve_common::Cycle;
//! use eve_mem::{Hierarchy, HierarchyConfig, Level};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
//! // Cold miss goes to DRAM...
//! let a = mem.access(Level::L1D, 0x1000, false, Cycle(0));
//! assert_eq!(a.hit_level, Level::Dram);
//! // ...the next access to the same line hits in L1D.
//! let b = mem.access(Level::L1D, 0x1004, false, a.complete);
//! assert_eq!(b.hit_level, Level::L1D);
//! assert!(b.complete < a.complete + Cycle(10));
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod shared;
pub mod tlb;

pub use cache::Cache;
pub use config::{CacheConfig, DramConfig, HierarchyConfig};
pub use dram::Dram;
pub use hierarchy::{Access, Hierarchy, Level};
pub use shared::SharedLlc;
pub use tlb::Tlb;

/// Cache line size used throughout the hierarchy, in bytes.
pub const LINE_BYTES: u64 = 64;

/// Maps a byte address to its cache-line address.
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
