//! Address-translation model.
//!
//! The paper's VMU "uses its TLB port to translate addresses for each
//! generated cacheline memory request. Our model accounts for the
//! request generation and address translation with one cycle and it
//! assumes translated addresses always hit in the TLB" (§VII-A). This
//! model matches that: a fixed one-cycle charge, with hit/translation
//! counters kept for reporting.

use eve_common::{Cycle, Stats};

/// A TLB port with the paper's always-hit, one-cycle behaviour.
///
/// # Examples
///
/// ```
/// use eve_common::Cycle;
/// use eve_mem::Tlb;
/// let mut tlb = Tlb::new();
/// assert_eq!(tlb.translate(0x1234, Cycle(10)), Cycle(11));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tlb {
    stats: Stats,
}

impl Tlb {
    /// A fresh TLB.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Translates `addr` at `now`: one cycle, always a hit.
    pub fn translate(&mut self, _addr: u64, now: Cycle) -> Cycle {
        self.stats.incr("translations");
        now + Cycle(1)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_always() {
        let mut t = Tlb::new();
        assert_eq!(t.translate(0, Cycle(0)), Cycle(1));
        assert_eq!(t.translate(u64::MAX, Cycle(100)), Cycle(101));
        assert_eq!(t.stats().get("translations"), 2);
    }
}
