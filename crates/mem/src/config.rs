//! Cache and DRAM configuration, with Table III presets.

use crate::LINE_BYTES;
use eve_common::{ConfigError, ConfigResult};

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Diagnostic name (`"l1d"`, `"l2"`, ...).
    pub name: String,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Cycles from request to data on a hit.
    pub hit_latency: u64,
    /// Miss-status holding registers: outstanding misses supported.
    pub mshrs: u32,
    /// Independent banks (per-cycle access throughput).
    pub banks: u32,
}

impl CacheConfig {
    /// Validates and computes the set count.
    ///
    /// # Errors
    ///
    /// Returns an error unless `size / (ways * 64)` is a power of two
    /// and all parameters are nonzero.
    pub fn sets(&self) -> ConfigResult<u64> {
        if self.ways == 0 || self.mshrs == 0 || self.banks == 0 {
            return Err(ConfigError::new(format!(
                "cache {}: ways/mshrs/banks must be nonzero",
                self.name
            )));
        }
        let denom = u64::from(self.ways) * LINE_BYTES;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(ConfigError::new(format!(
                "cache {}: size {} not divisible by ways*line",
                self.name, self.size_bytes
            )));
        }
        let sets = self.size_bytes / denom;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "cache {}: set count {sets} not a power of two",
                self.name
            )));
        }
        Ok(sets)
    }

    /// Table III L1I: 1-cycle-hit 4-way 32 KB, 16 MSHRs.
    #[must_use]
    pub fn l1i() -> Self {
        Self {
            name: "l1i".into(),
            size_bytes: 32 << 10,
            ways: 4,
            hit_latency: 1,
            mshrs: 16,
            banks: 1,
        }
    }

    /// Table III L1D: 2-cycle-hit 4-way 32 KB, 16 MSHRs.
    #[must_use]
    pub fn l1d() -> Self {
        Self {
            name: "l1d".into(),
            size_bytes: 32 << 10,
            ways: 4,
            hit_latency: 2,
            mshrs: 16,
            banks: 1,
        }
    }

    /// Table III L2: 8-way 8-bank 8-cycle-hit 512 KB, 32 MSHRs.
    #[must_use]
    pub fn l2() -> Self {
        Self {
            name: "l2".into(),
            size_bytes: 512 << 10,
            ways: 8,
            hit_latency: 8,
            mshrs: 32,
            banks: 8,
        }
    }

    /// Table III L2 in EVE vector mode: 4-way 256 KB (half the ways
    /// donated to the engine).
    #[must_use]
    pub fn l2_vector_mode() -> Self {
        Self {
            name: "l2v".into(),
            size_bytes: 256 << 10,
            ways: 4,
            hit_latency: 8,
            mshrs: 32,
            banks: 8,
        }
    }

    /// Table III L2 with an arbitrary way split: `ways` of the eight
    /// 64 KB ways left to the cache, the rest donated to engines. The
    /// set count stays at 1024 for any split — way partitioning never
    /// re-indexes (§V-E), it only narrows associativity.
    #[must_use]
    pub fn l2_with_ways(ways: u32) -> Self {
        Self {
            name: if ways == 8 { "l2".into() } else { "l2v".into() },
            size_bytes: u64::from(ways) * (64 << 10),
            ways,
            hit_latency: 8,
            mshrs: 32,
            banks: 8,
        }
    }

    /// Table III LLC: 16-way 12-cycle-hit 2 MB, 32 MSHRs.
    #[must_use]
    pub fn llc() -> Self {
        Self {
            name: "llc".into(),
            size_bytes: 2 << 20,
            ways: 16,
            hit_latency: 12,
            mshrs: 32,
            banks: 8,
        }
    }
}

/// DRAM channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from channel issue to first data (closed-page typical).
    pub latency: u64,
    /// Channel occupancy per 64-byte line (bounds bandwidth).
    pub cycles_per_line: u64,
}

impl DramConfig {
    /// Single-channel DDR4-2400-like: ~60-cycle access latency at a
    /// ~1 GHz core clock, 19.2 GB/s peak → one line every ~3 cycles.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            latency: 60,
            cycles_per_line: 3,
        }
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Instruction L1.
    pub l1i: CacheConfig,
    /// Data L1.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Memory channel.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// The configuration every simulated system shares (Table III).
    #[must_use]
    pub fn table_iii() -> Self {
        Self {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            dram: DramConfig::ddr4_2400(),
        }
    }

    /// Table III with the L2 way-partitioned for EVE's vector mode.
    #[must_use]
    pub fn table_iii_vector_mode() -> Self {
        Self {
            l2: CacheConfig::l2_vector_mode(),
            ..Self::table_iii()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(CacheConfig::l1i().sets().unwrap(), 128);
        assert_eq!(CacheConfig::l1d().sets().unwrap(), 128);
        assert_eq!(CacheConfig::l2().sets().unwrap(), 1024);
        assert_eq!(CacheConfig::l2_vector_mode().sets().unwrap(), 1024);
        assert_eq!(CacheConfig::llc().sets().unwrap(), 2048);
    }

    #[test]
    fn way_partitioned_l2_keeps_geometry() {
        assert_eq!(CacheConfig::l2_with_ways(8), CacheConfig::l2());
        let half = CacheConfig::l2_with_ways(4);
        assert_eq!(half, CacheConfig::l2_vector_mode());
        for w in [1u32, 2, 3, 4, 6, 8] {
            assert_eq!(CacheConfig::l2_with_ways(w).sets().unwrap(), 1024);
        }
    }

    #[test]
    fn vector_mode_keeps_sets_but_halves_ways() {
        // §V-E: associativity is halved; the set count is unchanged.
        let full = CacheConfig::l2();
        let vm = CacheConfig::l2_vector_mode();
        assert_eq!(full.sets().unwrap(), vm.sets().unwrap());
        assert_eq!(vm.ways * 2, full.ways);
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = CacheConfig::l1d();
        c.size_bytes = 1000;
        assert!(c.sets().is_err());
        let mut c = CacheConfig::l1d();
        c.ways = 0;
        assert!(c.sets().is_err());
        let mut c = CacheConfig::l1d();
        c.size_bytes = 3 * 64 * 4; // 3 sets: not a power of two
        assert!(c.sets().is_err());
    }
}
