//! The shared back end: LLC + DRAM, shareable between cores.
//!
//! The paper places EVE in a chip multi-processor: every core owns its
//! private L1s and L2 (and can turn half that L2 into an engine), while
//! the last-level cache and the memory channel are shared. This module
//! owns that shared tail. A single-core system simply holds the sole
//! reference.

use crate::cache::Cache;
use crate::config::{CacheConfig, DramConfig};
use crate::dram::Dram;
use crate::hierarchy::{Access, Level};
use eve_common::{Cycle, Stats};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug)]
struct LlcDram {
    llc: Cache,
    dram: Dram,
}

impl LlcDram {
    fn access(&mut self, addr: u64, store: bool, now: Cycle) -> Access {
        let out = self.llc.lookup(addr, store, now);
        if out.hit {
            return Access {
                complete: out.ready,
                hit_level: Level::Llc,
                mshr_wait: out.mshr_wait,
            };
        }
        let done = self.dram.access(out.ready);
        if let Some(evicted) = self.llc.fill_slot(addr, store, done, out.mshr_slot) {
            let _ = evicted;
            self.dram.writeback(done);
        }
        Access {
            complete: done,
            hit_level: Level::Dram,
            mshr_wait: out.mshr_wait,
        }
    }

    fn writeback(&mut self, addr: u64, now: Cycle) {
        // A dirty line arriving from a private L2: allocate in the LLC,
        // charging banks/DRAM bandwidth but nobody's latency.
        let out = self.llc.lookup(addr, true, now);
        if !out.hit
            && self
                .llc
                .fill_slot(addr, true, out.ready, out.mshr_slot)
                .is_some()
        {
            self.dram.writeback(out.ready);
        }
    }
}

/// A handle to the shared LLC + DRAM. Clones share state: give every
/// core's [`Hierarchy`](crate::Hierarchy) a clone to build a CMP.
///
/// # Examples
///
/// ```
/// use eve_common::Cycle;
/// use eve_mem::{Hierarchy, HierarchyConfig, Level, SharedLlc};
///
/// let cfg = HierarchyConfig::table_iii();
/// let shared = SharedLlc::new(cfg.llc.clone(), cfg.dram);
/// let mut core0 = Hierarchy::with_shared(cfg.clone(), shared.clone());
/// let mut core1 = Hierarchy::with_shared(cfg, shared);
/// // Core 0 pulls a line through the shared LLC...
/// let a = core0.access(Level::L1D, 0x4000, false, Cycle(0));
/// assert_eq!(a.hit_level, Level::Dram);
/// // ...and core 1 finds it there (its private levels still miss).
/// let b = core1.access(Level::L1D, 0x4000, false, a.complete);
/// assert_eq!(b.hit_level, Level::Llc);
/// ```
#[derive(Debug, Clone)]
pub struct SharedLlc {
    inner: Rc<RefCell<LlcDram>>,
}

impl SharedLlc {
    /// Creates a shared LLC + DRAM pair.
    ///
    /// # Panics
    ///
    /// Panics if the cache configuration is invalid.
    #[must_use]
    pub fn new(llc: CacheConfig, dram: DramConfig) -> Self {
        Self {
            inner: Rc::new(RefCell::new(LlcDram {
                llc: Cache::new(llc),
                dram: Dram::new(dram),
            })),
        }
    }

    /// One access entering at the LLC.
    pub fn access(&self, addr: u64, store: bool, now: Cycle) -> Access {
        self.inner.borrow_mut().access(addr, store, now)
    }

    /// Absorbs a dirty writeback from a private L2.
    pub fn writeback(&self, addr: u64, now: Cycle) {
        self.inner.borrow_mut().writeback(addr, now);
    }

    /// Charges DRAM bandwidth for lines flushed during an EVE spawn.
    pub fn spawn_flush(&self, dirty_lines: u64, now: Cycle) {
        let mut inner = self.inner.borrow_mut();
        for _ in 0..dirty_lines {
            inner.dram.writeback(now);
        }
    }

    /// Whether the LLC has no free MSHR at `now` (the Fig 8 probe).
    #[must_use]
    pub fn mshr_full_at(&self, now: Cycle) -> bool {
        self.inner.borrow().llc.mshr_full_at(now)
    }

    /// LLC + DRAM statistics under `llc.` / `dram.` prefixes.
    #[must_use]
    pub fn collect_stats(&self) -> Stats {
        let inner = self.inner.borrow();
        let mut s = Stats::new();
        for (k, v) in inner.llc.stats().iter() {
            s.add(&format!("llc.{k}"), v);
        }
        for (k, v) in inner.dram.stats().iter() {
            s.add(&format!("dram.{k}"), v);
        }
        s
    }

    /// Number of distinct owners (cores) currently sharing this LLC.
    #[must_use]
    pub fn owners(&self) -> usize {
        Rc::strong_count(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedLlc {
        SharedLlc::new(CacheConfig::llc(), DramConfig::ddr4_2400())
    }

    #[test]
    fn miss_then_hit_through_handle() {
        let s = shared();
        let a = s.access(0x8000, false, Cycle(0));
        assert_eq!(a.hit_level, Level::Dram);
        let b = s.access(0x8000, false, a.complete);
        assert_eq!(b.hit_level, Level::Llc);
    }

    #[test]
    fn clones_share_state() {
        let s = shared();
        let t = s.clone();
        s.access(0x4000, false, Cycle(0));
        let hit = t.access(0x4000, false, Cycle(500));
        assert_eq!(hit.hit_level, Level::Llc);
        assert_eq!(t.collect_stats().get("llc.hits"), 1);
        assert_eq!(s.owners(), 2);
    }

    #[test]
    fn contention_shows_in_bank_and_channel_times() {
        let s = shared();
        // Two "cores" slam the same cycle: completions serialize.
        let a = s.access(0x1_0000, false, Cycle(0));
        let b = s.access(0x2_0000, false, Cycle(0));
        assert!(b.complete > a.complete);
    }
}
