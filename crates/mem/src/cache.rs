//! One cache level: tags, LRU, banks, and MSHRs.

use crate::config::CacheConfig;
use crate::line_of;
use eve_common::{Cycle, Stats};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    line: u64,
    dirty: bool,
    last_used: u64,
}

/// Outcome of a tag lookup plus resource accounting at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// When this level can deliver (hit) or start the downstream miss
    /// (miss): request time + bank wait + hit latency.
    pub ready: Cycle,
    /// Cycles spent waiting for a free MSHR (misses only).
    pub mshr_wait: Cycle,
    /// The MSHR slot this miss claimed; the caller must release it via
    /// [`Cache::fill`].
    pub mshr_slot: Option<usize>,
}

/// One cache level.
///
/// The cache tracks *timing state* (tags, bank busy times, MSHR busy
/// times, in-flight fills) but no data — the functional interpreter
/// owns the bytes. This mirrors the paper's split between functional
/// execution and timing (§VII-A).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    tags: Vec<Vec<Option<TagEntry>>>,
    banks: Vec<Cycle>,
    mshrs: Vec<Cycle>,
    /// Lines currently being filled: line -> fill completion time.
    inflight: HashMap<u64, Cycle>,
    use_clock: u64,
    stats: Stats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (checked by presets and
    /// tests; see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets().expect("valid cache configuration");
        Self {
            tags: vec![vec![None; cfg.ways as usize]; sets as usize],
            banks: vec![Cycle::ZERO; cfg.banks as usize],
            mshrs: vec![Cycle::ZERO; cfg.mshrs as usize],
            inflight: HashMap::new(),
            use_clock: 0,
            sets,
            cfg,
            stats: Stats::new(),
        }
    }

    /// The level's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics (`hits`, `misses`, `mshr_wait_cycles`,
    /// `writebacks`, ...).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets) as usize
    }

    fn bank_of(&self, line: u64) -> usize {
        (line % u64::from(self.cfg.banks)) as usize
    }

    /// Claims the line's bank from `now`, returning when the access can
    /// proceed (each access occupies its bank for one cycle).
    fn claim_bank(&mut self, line: u64, now: Cycle) -> Cycle {
        let b = self.bank_of(line);
        let start = now.max(self.banks[b]);
        self.banks[b] = start + Cycle(1);
        start
    }

    /// Looks up `addr` at time `now`. On a hit the line's LRU state and
    /// dirtiness are updated. On a miss an MSHR is claimed (waiting for
    /// a free one if needed); the caller must later call
    /// [`Cache::fill`] with the downstream completion time.
    ///
    /// A miss to a line already in flight coalesces: reported as a miss
    /// with `ready` equal to the in-flight completion and zero MSHR
    /// cost; the caller must treat it as already handled downstream.
    pub fn lookup(&mut self, addr: u64, store: bool, now: Cycle) -> LevelOutcome {
        let line = line_of(addr);
        let start = self.claim_bank(line, now);
        let set = self.set_of(line);
        self.use_clock += 1;
        let clock = self.use_clock;
        if let Some(entry) = self.tags[set].iter_mut().flatten().find(|e| e.line == line) {
            entry.last_used = clock;
            entry.dirty |= store;
            self.stats.incr("hits");
            // A line whose fill is still in flight cannot deliver until
            // the fill lands.
            let pending = self.inflight.get(&line).copied().unwrap_or(Cycle::ZERO);
            return LevelOutcome {
                hit: true,
                ready: (start + Cycle(self.cfg.hit_latency)).max(pending),
                mshr_wait: Cycle::ZERO,
                mshr_slot: None,
            };
        }
        self.stats.incr("misses");
        let lookup_done = start + Cycle(self.cfg.hit_latency);
        if let Some(&fill_done) = self.inflight.get(&line) {
            if fill_done > lookup_done {
                // Genuinely in flight: coalesce onto the pending fill.
                // Reported as a hit — this level supplies the data
                // when the outstanding fill lands, and the request
                // must not propagate downstream again.
                self.stats.incr("mshr_coalesced");
                return LevelOutcome {
                    hit: true,
                    ready: fill_done,
                    mshr_wait: Cycle::ZERO,
                    mshr_slot: None,
                };
            }
            // The old fill completed long ago (and the line has since
            // been evicted): this is a fresh miss.
            self.inflight.remove(&line);
        }
        // Claim the earliest-free MSHR; it stays held until `fill`
        // releases it at the downstream completion time.
        let (slot, &free_at) = self
            .mshrs
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("mshrs nonzero");
        let issue = lookup_done.max(free_at);
        let wait = issue.saturating_since(lookup_done);
        self.stats.add("mshr_wait_cycles", wait.0);
        self.mshrs[slot] = Cycle(u64::MAX); // held until fill
        LevelOutcome {
            hit: false,
            ready: issue,
            mshr_wait: wait,
            mshr_slot: Some(slot),
        }
    }

    /// Whether a request arriving `now` would have to wait for an MSHR
    /// (used by vector memory units to count issue stalls without
    /// side effects).
    #[must_use]
    pub fn mshr_full_at(&self, now: Cycle) -> bool {
        self.mshrs.iter().all(|&c| c > now)
    }

    /// Completes a miss: installs `addr`'s line, releases the claimed
    /// MSHR slot at `fill_done`, and returns the evicted dirty line
    /// (if any) that must be written back downstream.
    pub fn fill(&mut self, addr: u64, store: bool, fill_done: Cycle) -> Option<u64> {
        self.fill_slot(addr, store, fill_done, None)
    }

    /// Like [`Cache::fill`], releasing the specific slot claimed by the
    /// matching [`Cache::lookup`].
    pub fn fill_slot(
        &mut self,
        addr: u64,
        store: bool,
        fill_done: Cycle,
        slot: Option<usize>,
    ) -> Option<u64> {
        let line = line_of(addr);
        let set = self.set_of(line);
        self.inflight.insert(line, fill_done);
        match slot {
            Some(s) => self.mshrs[s] = fill_done,
            None => {
                // No slot tracked (caller used the simple API):
                // release the longest-held slot.
                if let Some(s) = self.mshrs.iter_mut().max_by_key(|c| **c) {
                    *s = fill_done;
                }
            }
        }
        self.use_clock += 1;
        let clock = self.use_clock;
        // Install: prefer an invalid way, else evict true-LRU.
        let ways = &mut self.tags[set];
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.as_ref().map_or(0, |t| t.last_used))
                .map(|(i, _)| i)
                .expect("ways nonzero"),
        };
        let evicted = ways[victim].filter(|e| e.dirty).map(|e| e.line);
        ways[victim] = Some(TagEntry {
            line,
            dirty: store,
            last_used: clock,
        });
        if evicted.is_some() {
            self.stats.incr("writebacks");
        }
        evicted
    }

    /// Drops completed in-flight records older than `now` (periodic
    /// housekeeping so the map stays small).
    pub fn retire_inflight(&mut self, now: Cycle) {
        self.inflight.retain(|_, &mut done| done > now);
    }

    /// Invalidates every line, returning `(clean, dirty)` line counts —
    /// the §V-E reconfiguration cost drivers.
    pub fn invalidate_all(&mut self) -> (u64, u64) {
        let mut clean = 0;
        let mut dirty = 0;
        for set in &mut self.tags {
            for way in set.iter_mut() {
                if let Some(e) = way.take() {
                    if e.dirty {
                        dirty += 1;
                    } else {
                        clean += 1;
                    }
                }
            }
        }
        self.inflight.clear();
        (clean, dirty)
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> u64 {
        self.tags
            .iter()
            .map(|s| s.iter().flatten().count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            name: "t".into(),
            size_bytes: 4 * 2 * 64, // 4 sets? no: sets = size/(ways*64) = 4
            ways: 2,
            hit_latency: 2,
            mshrs: 2,
            banks: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let m = c.lookup(0x1000, false, Cycle(0));
        assert!(!m.hit);
        c.fill(0x1000, false, Cycle(50));
        let h = c.lookup(0x1008, false, Cycle(60));
        assert!(h.hit);
        assert_eq!(h.ready, Cycle(62));
        assert_eq!(c.stats().get("hits"), 1);
        assert_eq!(c.stats().get("misses"), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // 4 sets; lines 0, 4, 8 map to set 0 (line % 4).
        for (i, line) in [0u64, 4, 8].iter().enumerate() {
            let addr = line * 64;
            c.lookup(addr, false, Cycle(i as u64 * 10));
            c.fill(addr, false, Cycle(i as u64 * 10 + 5));
        }
        // Line 0 (oldest) must be gone; 4 and 8 resident.
        assert!(!c.lookup(0, false, Cycle(100)).hit);
        assert!(c.lookup(4 * 64, false, Cycle(101)).hit);
        assert!(c.lookup(8 * 64, false, Cycle(102)).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.lookup(0, true, Cycle(0));
        c.fill(0, true, Cycle(5));
        c.lookup(4 * 64, false, Cycle(10));
        c.fill(4 * 64, false, Cycle(15));
        c.lookup(8 * 64, false, Cycle(20));
        let evicted = c.fill(8 * 64, false, Cycle(25));
        assert_eq!(evicted, Some(0));
        assert_eq!(c.stats().get("writebacks"), 1);
    }

    #[test]
    fn mshr_exhaustion_delays() {
        let mut c = small();
        // Two MSHRs: the third simultaneous miss must wait.
        let a = c.lookup(0, false, Cycle(0));
        c.fill(0, false, Cycle(100));
        let b = c.lookup(64, false, Cycle(0));
        c.fill(64, false, Cycle(100));
        let third = c.lookup(128, false, Cycle(0));
        assert!(third.mshr_wait > Cycle::ZERO, "{third:?}");
        assert!(a.mshr_wait == Cycle::ZERO && b.mshr_wait == Cycle::ZERO);
        assert!(c.stats().get("mshr_wait_cycles") > 0);
    }

    #[test]
    fn second_access_to_inflight_line_waits_for_fill() {
        let mut c = small();
        c.lookup(0x40, false, Cycle(0));
        c.fill(0x40, false, Cycle(80));
        // The line is tagged but its fill lands at 80: an access at
        // t=1 "hits" yet cannot complete before the data arrives.
        let co = c.lookup(0x48, false, Cycle(1));
        assert!(co.hit);
        assert_eq!(co.ready, Cycle(80));
        assert_eq!(co.mshr_wait, Cycle::ZERO);
        // After housekeeping past the fill, hits are fast again.
        c.retire_inflight(Cycle(100));
        let h = c.lookup(0x40, false, Cycle(200));
        assert_eq!(h.ready, Cycle(202));
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut c = small();
        c.lookup(0, false, Cycle(0));
        c.fill(0, false, Cycle(2));
        c.lookup(4 * 64, false, Cycle(10));
        c.fill(4 * 64, false, Cycle(12));
        // Two hits in the same cycle to the single bank: second starts
        // a cycle later.
        let h1 = c.lookup(0, false, Cycle(20));
        let h2 = c.lookup(4 * 64, false, Cycle(20));
        assert_eq!(h1.ready, Cycle(22));
        assert_eq!(h2.ready, Cycle(23));
    }

    #[test]
    fn invalidate_counts_clean_and_dirty() {
        let mut c = small();
        c.lookup(0, true, Cycle(0));
        c.fill(0, true, Cycle(2));
        c.lookup(64, false, Cycle(5));
        c.fill(64, false, Cycle(7));
        assert_eq!(c.resident_lines(), 2);
        let (clean, dirty) = c.invalidate_all();
        assert_eq!((clean, dirty), (1, 1));
        assert_eq!(c.resident_lines(), 0);
    }
}
