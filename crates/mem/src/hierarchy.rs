//! The assembled three-level hierarchy.

use crate::cache::Cache;
use crate::config::{CacheConfig, HierarchyConfig};
use crate::shared::SharedLlc;
use eve_common::{Cycle, Stats};
use eve_obs::Tracer;

/// Where a request enters (or is satisfied in) the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Instruction L1.
    L1I,
    /// Data L1.
    L1D,
    /// Private unified L2.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl Level {
    /// Stable lowercase name, used as the trace category for accesses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::L1I => "l1i",
            Self::L1D => "l1d",
            Self::L2 => "l2",
            Self::Llc => "llc",
            Self::Dram => "dram",
        }
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// When the requested data is available to the requester.
    pub complete: Cycle,
    /// The level that supplied the line.
    pub hit_level: Level,
    /// Total cycles spent waiting for MSHRs along the way.
    pub mshr_wait: Cycle,
}

/// A private L1I/L1D + L2 in front of a shared LLC and DRAM.
///
/// Different requesters enter at different levels: scalar cores at the
/// L1s, the decoupled vector engine at the L2, and EVE's VMU directly
/// at the LLC (its L2 ways *are* the engine).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    shared: SharedLlc,
    stats: Stats,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    tracer: Option<Tracer>,
}

impl Hierarchy {
    /// Builds a single-core hierarchy: this core is the sole owner of
    /// its LLC and memory channel.
    #[must_use]
    pub fn new(cfg: HierarchyConfig) -> Self {
        let shared = SharedLlc::new(cfg.llc.clone(), cfg.dram);
        Self::with_shared(cfg, shared)
    }

    /// Builds one core's private levels in front of an existing shared
    /// LLC + DRAM (CMP construction: clone the handle per core).
    #[must_use]
    pub fn with_shared(cfg: HierarchyConfig, shared: SharedLlc) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            shared,
            stats: Stats::new(),
            tracer: None,
        }
    }

    /// Attaches a tracer; memory accesses then emit instants on the
    /// `mem` track (when built with the `obs` feature).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// The shared LLC handle (clone it to attach more cores).
    #[must_use]
    pub fn shared_llc(&self) -> SharedLlc {
        self.shared.clone()
    }

    /// Performs one access entering at `entry` for byte address `addr`
    /// at time `now`.
    pub fn access(&mut self, entry: Level, addr: u64, store: bool, now: Cycle) -> Access {
        self.stats.incr("accesses");
        let mut wait = Cycle::ZERO;
        let levels: &[Level] = match entry {
            Level::L1I => &[Level::L1I, Level::L2],
            Level::L1D => &[Level::L1D, Level::L2],
            Level::L2 => &[Level::L2],
            Level::Llc | Level::Dram => &[],
        };
        let mut t = now;
        let mut missed: Vec<(Level, Option<usize>)> = Vec::new();
        let mut hit_level = Level::Dram;
        let mut found = false;
        for &lv in levels {
            let out = self.cache_mut(lv).lookup(addr, store, t);
            wait += out.mshr_wait;
            t = out.ready;
            if out.hit {
                hit_level = lv;
                found = true;
                break;
            }
            missed.push((lv, out.mshr_slot));
        }
        if !found {
            let a = self.shared.access(addr, store, t);
            t = a.complete;
            wait += a.mshr_wait;
            hit_level = a.hit_level;
        }
        // Fill the missed private levels top-down, releasing each
        // level's MSHR at the fill time; dirty evictions charge
        // downstream bandwidth.
        for &(lv, slot) in missed.iter().rev() {
            let evicted = self.cache_mut(lv).fill_slot(addr, store, t, slot);
            if let Some(line) = evicted {
                self.writeback_below(lv, line * crate::LINE_BYTES, t);
            }
        }
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            // Stamp at the *request* time: completions are out of order
            // under an O3 core, so request order keeps the track usable.
            let name = if store { "store" } else { "load" };
            tr.instant_arg("mem", hit_level.name(), name, now.0, ("mshr_wait", wait.0));
            tr.record("mem.latency", (t - now).0);
            if wait > Cycle::ZERO {
                tr.record("mem.mshr_wait", wait.0);
            }
        }
        Access {
            complete: t,
            hit_level,
            mshr_wait: wait,
        }
    }

    fn writeback_below(&mut self, from: Level, addr: u64, now: Cycle) {
        match from {
            Level::L1I | Level::L1D => {
                let out = self.l2.lookup(addr, true, now);
                if !out.hit {
                    // Allocate-on-writeback.
                    let t = out.ready;
                    if let Some(l2evict) = self.l2.fill_slot(addr, true, t, out.mshr_slot) {
                        self.writeback_below(Level::L2, l2evict * crate::LINE_BYTES, t);
                    }
                }
            }
            Level::L2 => self.shared.writeback(addr, now),
            Level::Llc | Level::Dram => {}
        }
    }

    fn cache_mut(&mut self, lv: Level) -> &mut Cache {
        match lv {
            Level::L1I => &mut self.l1i,
            Level::L1D => &mut self.l1d,
            Level::L2 => &mut self.l2,
            Level::Llc | Level::Dram => {
                unreachable!("the LLC and DRAM are shared; use SharedLlc")
            }
        }
    }

    /// Shared read access to a *private* level's cache (stats, line
    /// counts).
    ///
    /// # Panics
    ///
    /// Panics for [`Level::Llc`]/[`Level::Dram`]: those are shared —
    /// use [`Hierarchy::shared_llc`].
    #[must_use]
    pub fn cache(&self, lv: Level) -> &Cache {
        match lv {
            Level::L1I => &self.l1i,
            Level::L1D => &self.l1d,
            Level::L2 => &self.l2,
            Level::Llc | Level::Dram => {
                panic!("the LLC and DRAM are shared; use shared_llc()")
            }
        }
    }

    /// Whether `lv` has no free MSHR at `now` — the VMU's issue-stall
    /// probe (Fig 8).
    #[must_use]
    pub fn mshr_full_at(&self, lv: Level, now: Cycle) -> bool {
        match lv {
            Level::Llc => self.shared.mshr_full_at(now),
            _ => self.cache(lv).mshr_full_at(now),
        }
    }

    /// Reconfigures the private L2 for EVE's vector mode (§V-E):
    /// invalidates everything resident (the donated ways' lines), with
    /// dirty lines written back to the LLC, each line costing a
    /// constant number of cycles. Returns when reconfiguration is done.
    pub fn spawn_vector_mode(&mut self, now: Cycle) -> Cycle {
        const CYCLES_PER_LINE: u64 = 2;
        let (clean, dirty) = self.l2.invalidate_all();
        self.shared.spawn_flush(dirty, now);
        self.l2 = Cache::new(CacheConfig::l2_vector_mode());
        self.stats.add("l2_reconfig_lines", clean + dirty);
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            tr.instant_arg(
                "mem",
                "reconfig",
                "spawn_flush",
                now.0,
                ("lines", clean + dirty),
            );
        }
        now + Cycle((clean + dirty) * CYCLES_PER_LINE)
    }

    /// Returns the L2 to cache duty: no overhead, lines start invalid
    /// (§V-E).
    pub fn despawn_vector_mode(&mut self, now: Cycle) -> Cycle {
        self.l2 = Cache::new(CacheConfig::l2());
        now
    }

    /// Repartitions the private L2 to `ways` cache ways (the rest
    /// donated to engines) — the elastic controller's generalization of
    /// [`Hierarchy::spawn_vector_mode`]. A no-op when the split already
    /// matches; otherwise every resident line is invalidated (dirty
    /// lines written back) at the same per-line cost as a spawn flush,
    /// and the same `l2_reconfig_lines` stat attributes the work.
    /// Returns when the repartition is done.
    pub fn repartition_l2(&mut self, ways: u32, now: Cycle) -> Cycle {
        const CYCLES_PER_LINE: u64 = 2;
        if self.l2.config().ways == ways {
            return now;
        }
        let (clean, dirty) = self.l2.invalidate_all();
        self.shared.spawn_flush(dirty, now);
        self.l2 = Cache::new(CacheConfig::l2_with_ways(ways));
        self.stats.add("l2_reconfig_lines", clean + dirty);
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            tr.instant_arg(
                "mem",
                "reconfig",
                "repartition",
                now.0,
                ("lines", clean + dirty),
            );
        }
        now + Cycle((clean + dirty) * CYCLES_PER_LINE)
    }

    /// Collects all statistics under dotted prefixes.
    #[must_use]
    pub fn collect_stats(&self) -> Stats {
        let mut s = Stats::new();
        for (lv, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            for (k, v) in c.stats().iter() {
                s.add(&format!("{lv}.{k}"), v);
            }
        }
        // In a CMP the shared counters appear in every core's roll-up;
        // aggregate reporting must de-duplicate by reading one core.
        s.merge(&self.shared.collect_stats());
        for (k, v) in self.stats.iter() {
            s.add(k, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::table_iii())
    }

    #[test]
    fn cold_miss_reaches_dram_and_fills_all_levels() {
        let mut h = hier();
        let a = h.access(Level::L1D, 0x4000, false, Cycle(0));
        assert_eq!(a.hit_level, Level::Dram);
        // 2 (L1D) + 8 (L2) + 12 (LLC) + 60 (DRAM) plus queueing.
        assert!(a.complete >= Cycle(82), "{a:?}");
        let b = h.access(Level::L1D, 0x4000, false, a.complete + Cycle(1));
        assert_eq!(b.hit_level, Level::L1D);
    }

    #[test]
    fn l2_entry_skips_l1() {
        let mut h = hier();
        h.access(Level::L1D, 0x4000, false, Cycle(0));
        // New line entering at L2: hits LLC? no - not resident; goes to
        // DRAM without touching L1 stats further.
        let before = h.cache(Level::L1D).stats().get("misses");
        let a = h.access(Level::L2, 0x9000, false, Cycle(0));
        assert_eq!(a.hit_level, Level::Dram);
        assert_eq!(h.cache(Level::L1D).stats().get("misses"), before);
    }

    #[test]
    fn llc_hit_after_l2_eviction_path() {
        let mut h = hier();
        let a = h.access(Level::L1D, 0x4000, false, Cycle(0));
        // Direct LLC probe of the same line hits.
        let b = h.access(Level::Llc, 0x4000, false, a.complete);
        assert_eq!(b.hit_level, Level::Llc);
    }

    #[test]
    fn vector_mode_reconfig_costs_scale_with_lines() {
        let mut h = hier();
        // Touch a bunch of lines, some dirty.
        for i in 0..64u64 {
            h.access(Level::L1D, 0x10000 + i * 64, i % 2 == 0, Cycle(i * 200));
        }
        let resident = h.cache(Level::L2).resident_lines();
        assert!(resident > 0);
        let done = h.spawn_vector_mode(Cycle(100_000));
        assert_eq!(done, Cycle(100_000 + resident * 2));
        // L2 is now half-sized.
        assert_eq!(h.cache(Level::L2).config().ways, 4);
        let back = h.despawn_vector_mode(done);
        assert_eq!(back, done);
        assert_eq!(h.cache(Level::L2).config().ways, 8);
        assert_eq!(h.cache(Level::L2).resident_lines(), 0);
    }

    #[test]
    fn repartition_generalizes_spawn() {
        let mut h = hier();
        for i in 0..64u64 {
            h.access(Level::L1D, 0x10000 + i * 64, i % 2 == 0, Cycle(i * 200));
        }
        let resident = h.cache(Level::L2).resident_lines();
        assert!(resident > 0);
        // Matching split: free, nothing flushed.
        assert_eq!(h.repartition_l2(8, Cycle(50_000)), Cycle(50_000));
        assert_eq!(h.cache(Level::L2).resident_lines(), resident);
        // Narrowing to 2 ways flushes everything at 2 cycles/line.
        let done = h.repartition_l2(2, Cycle(100_000));
        assert_eq!(done, Cycle(100_000 + resident * 2));
        assert_eq!(h.cache(Level::L2).config().ways, 2);
        assert_eq!(h.cache(Level::L2).resident_lines(), 0);
        assert_eq!(h.collect_stats().get("l2_reconfig_lines"), resident);
        // Widening back is a flush of whatever is resident (nothing).
        assert_eq!(h.repartition_l2(8, done), done);
        assert_eq!(h.cache(Level::L2).config().ways, 8);
    }

    #[test]
    fn stats_roll_up() {
        let mut h = hier();
        h.access(Level::L1D, 0, false, Cycle(0));
        h.access(Level::L1D, 0, false, Cycle(200));
        let s = h.collect_stats();
        assert_eq!(s.get("l1d.hits"), 1);
        assert_eq!(s.get("l1d.misses"), 1);
        assert_eq!(s.get("dram.accesses"), 1);
        assert_eq!(s.get("accesses"), 2);
    }

    #[test]
    fn mshr_probe() {
        let mut h = hier();
        assert!(!h.mshr_full_at(Level::Llc, Cycle(0)));
        // Saturate the LLC's 32 MSHRs with distinct-line misses at t=0.
        for i in 0..40u64 {
            h.access(Level::Llc, 0x100_0000 + i * 64, false, Cycle(0));
        }
        assert!(h.mshr_full_at(Level::Llc, Cycle(0)));
    }
}
