//! Single-channel DRAM latency/bandwidth model.

use crate::config::DramConfig;
use eve_common::{Cycle, Stats};

/// A DDR4-like memory channel: fixed access latency plus a channel
/// occupancy per line that bounds sustained bandwidth.
///
/// # Examples
///
/// ```
/// use eve_common::Cycle;
/// use eve_mem::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::ddr4_2400());
/// let first = dram.access(Cycle(0));
/// let second = dram.access(Cycle(0)); // same-cycle: queued behind
/// assert!(second > first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channel_free: Cycle,
    stats: Stats,
}

impl Dram {
    /// A channel with the given configuration.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            channel_free: Cycle::ZERO,
            stats: Stats::new(),
        }
    }

    /// Performs one line access issued at `now`; returns when the data
    /// is available.
    pub fn access(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.channel_free);
        self.channel_free = start + Cycle(self.cfg.cycles_per_line);
        self.stats.incr("accesses");
        self.stats
            .add("queue_cycles", start.saturating_since(now).0);
        start + Cycle(self.cfg.latency)
    }

    /// Charges channel occupancy for a writeback without modelling its
    /// completion (writebacks are off the critical path).
    pub fn writeback(&mut self, now: Cycle) {
        let start = now.max(self.channel_free);
        self.channel_free = start + Cycle(self.cfg.cycles_per_line);
        self.stats.incr("writebacks");
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applied() {
        let mut d = Dram::new(DramConfig {
            latency: 50,
            cycles_per_line: 4,
        });
        assert_eq!(d.access(Cycle(10)), Cycle(60));
    }

    #[test]
    fn bandwidth_bound() {
        let mut d = Dram::new(DramConfig {
            latency: 50,
            cycles_per_line: 4,
        });
        // Burst of 10 simultaneous requests: completions spaced by the
        // per-line occupancy.
        let done: Vec<Cycle> = (0..10).map(|_| d.access(Cycle(0))).collect();
        for (i, c) in done.iter().enumerate() {
            assert_eq!(*c, Cycle(50 + 4 * i as u64));
        }
        assert!(d.stats().get("queue_cycles") > 0);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = Dram::new(DramConfig {
            latency: 50,
            cycles_per_line: 4,
        });
        d.writeback(Cycle(0));
        // The read behind the writeback starts late.
        assert_eq!(d.access(Cycle(0)), Cycle(54));
    }
}
