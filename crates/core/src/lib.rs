//! The EVE engine: an ephemeral vector engine carved out of the
//! private L2 cache (paper §V).
//!
//! [`EveEngine`] implements [`eve_cpu::VectorUnit`], so it plugs into
//! the O3 control processor exactly like the IV/DV baselines. Inside,
//! it models the paper's micro-architecture (Fig 3a):
//!
//! * **VCU** — receives vector instructions at commit (§V-A), queues
//!   them, and spawns the engine on first use by way-partitioning the
//!   L2 (§V-E, charged through `eve_mem::Hierarchy::spawn_vector_mode`);
//! * **VSU** — sequences each macro-operation's μprogram; macro-op
//!   latencies come from actually executing the `eve-uop` programs
//!   (via [`eve_uop::LatencyTable`]), not hand-picked constants;
//! * **VMU** — generates line-aligned requests (one per cycle,
//!   translated through an always-hit TLB port) directly to the LLC —
//!   the engine's SRAM *is* the L2 ways — and tracks the issue stalls
//!   Fig 8 reports;
//! * **VRU** — streams elements segment-by-segment for reductions and
//!   cross-element operations (§V-D);
//! * **DTUs** — eight transpose units convert line-ordered data to the
//!   segment-per-row layout (and back on stores); EVE-32 needs no
//!   transpose (§VII-B).
//!
//! Every cycle of engine time is attributed to one of the Fig 7
//! categories in a [`StallBreakdown`].
//!
//! # Examples
//!
//! ```
//! use eve_core::EveEngine;
//! use eve_cpu::VectorUnit;
//!
//! let eve8 = EveEngine::new(8)?;
//! assert_eq!(eve8.hw_vl(), 1024); // Table III
//! let eve1 = EveEngine::new(1)?;
//! assert_eq!(eve1.hw_vl(), 2048);
//! # Ok::<(), eve_common::ConfigError>(())
//! ```

pub mod engine;
pub mod mapping;
pub mod stats;

pub use engine::{EccMode, EngineTuning, EveEngine, ResilienceConfig, EVE_ARRAYS};
pub use mapping::macro_ops;
pub use stats::StallBreakdown;
