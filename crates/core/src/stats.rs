//! Execution-time attribution (the Fig 7 categories).

use eve_common::{Cycle, Stats};

/// Where the engine's cycles went, using the paper's Fig 7 categories.
///
/// * `busy` — executing useful μops (compute, row reads/writes,
///   reduction streaming);
/// * `vru_stall` — VRU structural hazard;
/// * `ld_mem_stall` / `st_mem_stall` — waiting on the memory system;
/// * `ld_dt_stall` / `st_dt_stall` — waiting on (de)transpose units;
/// * `vmu_stall` — VMU structural hazard (request generation backlog);
/// * `empty_stall` — no instruction available;
/// * `dep_stall` — register dependences not yet resolved;
/// * `parity_stall` — checking row parity/ECC syndromes on μprogram
///   operand reads (only nonzero when resilience checking is enabled);
/// * `ecc_correct_stall` — read-modify-write repair of SECDED
///   single-bit corrections;
/// * `scrub_stall` — background scrub sweeps stealing the array's
///   read port;
/// * `remap_stall` — copying a retired row into its spare and
///   updating the remap latches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles doing useful work.
    pub busy: Cycle,
    /// VRU structural stalls.
    pub vru_stall: Cycle,
    /// Load memory stalls.
    pub ld_mem_stall: Cycle,
    /// Store memory stalls.
    pub st_mem_stall: Cycle,
    /// Load transpose stalls.
    pub ld_dt_stall: Cycle,
    /// Store detranspose stalls.
    pub st_dt_stall: Cycle,
    /// VMU structural stalls.
    pub vmu_stall: Cycle,
    /// Empty (no work) cycles.
    pub empty_stall: Cycle,
    /// Register-dependency stalls.
    pub dep_stall: Cycle,
    /// Parity/ECC-check cycles charged by the resilience layer.
    pub parity_stall: Cycle,
    /// SECDED single-bit correction (repair writeback) cycles.
    pub ecc_correct_stall: Cycle,
    /// Background scrub cycles.
    pub scrub_stall: Cycle,
    /// Spare-row remap (row copy + latch update) cycles.
    pub remap_stall: Cycle,
}

impl StallBreakdown {
    /// Sum of every category.
    #[must_use]
    pub fn total(&self) -> Cycle {
        self.busy
            + self.vru_stall
            + self.ld_mem_stall
            + self.st_mem_stall
            + self.ld_dt_stall
            + self.st_dt_stall
            + self.vmu_stall
            + self.empty_stall
            + self.dep_stall
            + self.parity_stall
            + self.ecc_correct_stall
            + self.scrub_stall
            + self.remap_stall
    }

    /// `(label, cycles)` pairs in the paper's plotting order, with
    /// the resilience categories appended.
    #[must_use]
    pub fn entries(&self) -> [(&'static str, Cycle); 13] {
        [
            ("busy", self.busy),
            ("vru_stall", self.vru_stall),
            ("ld_mem_stall", self.ld_mem_stall),
            ("st_mem_stall", self.st_mem_stall),
            ("ld_dt_stall", self.ld_dt_stall),
            ("st_dt_stall", self.st_dt_stall),
            ("vmu_stall", self.vmu_stall),
            ("empty_stall", self.empty_stall),
            ("dep_stall", self.dep_stall),
            ("parity_stall", self.parity_stall),
            ("ecc_correct_stall", self.ecc_correct_stall),
            ("scrub_stall", self.scrub_stall),
            ("remap_stall", self.remap_stall),
        ]
    }

    /// Exports as dotted stats (`breakdown.busy`, ...).
    #[must_use]
    pub fn as_stats(&self) -> Stats {
        let mut s = Stats::new();
        for (k, v) in self.entries() {
            s.set(&format!("breakdown.{k}"), v.0);
        }
        s
    }

    /// Fraction of total time spent busy (0 when nothing ran).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        let t = self.total().0;
        if t == 0 {
            0.0
        } else {
            self.busy.0 as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_every_category() {
        let b = StallBreakdown {
            busy: Cycle(10),
            vru_stall: Cycle(1),
            ld_mem_stall: Cycle(2),
            st_mem_stall: Cycle(3),
            ld_dt_stall: Cycle(4),
            st_dt_stall: Cycle(5),
            vmu_stall: Cycle(6),
            empty_stall: Cycle(7),
            dep_stall: Cycle(8),
            parity_stall: Cycle(9),
            ecc_correct_stall: Cycle(10),
            scrub_stall: Cycle(11),
            remap_stall: Cycle(12),
        };
        assert_eq!(b.total(), Cycle(88));
        assert!((b.busy_fraction() - 10.0 / 88.0).abs() < 1e-12);
    }

    #[test]
    fn stats_export() {
        let b = StallBreakdown {
            busy: Cycle(5),
            ..StallBreakdown::default()
        };
        let s = b.as_stats();
        assert_eq!(s.get("breakdown.busy"), 5);
        assert_eq!(s.get("breakdown.empty_stall"), 0);
        assert_eq!(s.get("breakdown.scrub_stall"), 0);
        assert_eq!(s.len(), 13);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StallBreakdown::default();
        assert_eq!(b.total(), Cycle::ZERO);
        assert_eq!(b.busy_fraction(), 0.0);
    }
}
