//! Vector-instruction → macro-operation mapping (the VCU's decode,
//! §V-A).
//!
//! Non-memory, non-cross-element instructions become one or more
//! macro-operations executed by the VSU against the EVE SRAMs. A
//! scalar or immediate operand costs an extra `Splat` macro-op (the
//! VSU broadcasts the value into a scratch register through the
//! data-in port); shifts by a known amount unroll to exactly the
//! needed μops (§III).

use eve_isa::{Inst, MaskOp, VArithOp, VCmpCond, VOperand};
use eve_uop::MacroOpKind;

fn needs_splat(rhs: VOperand) -> bool {
    !matches!(rhs, VOperand::Reg(_))
}

fn splat_value(scalar_operand: Option<u32>) -> u32 {
    scalar_operand.unwrap_or(0)
}

/// Macro-operations the VCU generates for a compute instruction.
/// Returns `None` for instructions that are not VSU compute work
/// (memory, reductions, cross-element, fences — those go to the
/// VMU/VRU paths).
#[must_use]
pub fn macro_ops(inst: &Inst, scalar_operand: Option<u32>) -> Option<Vec<MacroOpKind>> {
    use MacroOpKind as M;
    let ops = match *inst {
        Inst::VOp { op, rhs, .. } => {
            let mut v = Vec::new();
            let k = splat_value(scalar_operand);
            match op {
                VArithOp::Sll | VArithOp::Srl | VArithOp::Sra => {
                    let imm = !matches!(rhs, VOperand::Reg(_));
                    v.push(match (op, imm) {
                        (VArithOp::Sll, true) => M::SllI((k & 31) as u8),
                        (VArithOp::Srl, true) => M::SrlI((k & 31) as u8),
                        (VArithOp::Sra, true) => M::SraI((k & 31) as u8),
                        (VArithOp::Sll, false) => M::SllV,
                        (VArithOp::Srl, false) => M::SrlV,
                        _ => M::SraV,
                    });
                }
                _ => {
                    if needs_splat(rhs) {
                        v.push(M::Splat(k));
                    }
                    v.push(match op {
                        VArithOp::Add => M::Add,
                        VArithOp::Sub | VArithOp::Rsub => M::Sub,
                        VArithOp::Mul => M::Mul,
                        VArithOp::Macc => M::MulAcc,
                        VArithOp::Mulh | VArithOp::Mulhu => M::Mulh,
                        VArithOp::Div => M::Div,
                        VArithOp::Divu => M::Divu,
                        VArithOp::Rem => M::Rem,
                        VArithOp::Remu => M::Remu,
                        VArithOp::And => M::And,
                        VArithOp::Or => M::Or,
                        VArithOp::Xor => M::Xor,
                        VArithOp::Min => M::Min,
                        VArithOp::Max => M::Max,
                        VArithOp::Minu => M::Minu,
                        VArithOp::Maxu => M::Maxu,
                        VArithOp::Sll | VArithOp::Srl | VArithOp::Sra => unreachable!(),
                    });
                }
            }
            v
        }
        Inst::VCmp { cond, rhs, .. } => {
            let mut v = Vec::new();
            if needs_splat(rhs) {
                v.push(M::Splat(splat_value(scalar_operand)));
            }
            match cond {
                VCmpCond::Eq => v.push(M::CmpEq),
                VCmpCond::Ne => v.push(M::CmpNe),
                VCmpCond::Lt | VCmpCond::Gt => v.push(M::CmpLt),
                VCmpCond::Ltu | VCmpCond::Gtu => v.push(M::CmpLtu),
                VCmpCond::Le => {
                    v.push(M::CmpLt);
                    v.push(M::MaskNot);
                }
                VCmpCond::Leu => {
                    v.push(M::CmpLtu);
                    v.push(M::MaskNot);
                }
            }
            v
        }
        Inst::VMerge { rhs, .. } => {
            let mut v = Vec::new();
            if needs_splat(rhs) {
                v.push(M::Splat(splat_value(scalar_operand)));
            }
            v.push(M::Merge);
            v
        }
        Inst::VMask { op, .. } => vec![match op {
            MaskOp::And => M::MaskAnd,
            MaskOp::Or => M::MaskOr,
            MaskOp::Xor => M::MaskXor,
            MaskOp::Not => M::MaskNot,
            MaskOp::AndNot => return Some(vec![M::MaskNot, M::MaskAnd]),
        }],
        Inst::VMv { rhs, .. } => match rhs {
            VOperand::Reg(_) => vec![M::Mv],
            _ => vec![M::Splat(splat_value(scalar_operand))],
        },
        _ => return None,
    };
    Some(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::vreg;

    fn vop(op: VArithOp, rhs: VOperand) -> Inst {
        Inst::VOp {
            op,
            vd: vreg::V1,
            vs1: vreg::V2,
            rhs,
            masked: false,
        }
    }

    #[test]
    fn vv_add_is_one_macro_op() {
        let ops = macro_ops(&vop(VArithOp::Add, VOperand::Reg(vreg::V3)), None).unwrap();
        assert_eq!(ops, vec![MacroOpKind::Add]);
    }

    #[test]
    fn vx_add_needs_a_splat() {
        let ops = macro_ops(&vop(VArithOp::Add, VOperand::Imm(7)), Some(7)).unwrap();
        assert_eq!(ops, vec![MacroOpKind::Splat(7), MacroOpKind::Add]);
    }

    #[test]
    fn scalar_shift_carries_the_amount() {
        let ops = macro_ops(&vop(VArithOp::Sll, VOperand::Imm(13)), Some(13)).unwrap();
        assert_eq!(ops, vec![MacroOpKind::SllI(13)]);
        let ops = macro_ops(&vop(VArithOp::Sra, VOperand::Imm(45)), Some(45)).unwrap();
        assert_eq!(ops, vec![MacroOpKind::SraI(13)]); // masked to 31
    }

    #[test]
    fn vector_shift_uses_variable_program() {
        let ops = macro_ops(&vop(VArithOp::Srl, VOperand::Reg(vreg::V4)), None).unwrap();
        assert_eq!(ops, vec![MacroOpKind::SrlV]);
    }

    #[test]
    fn le_compare_costs_an_extra_mask_not() {
        let i = Inst::VCmp {
            cond: VCmpCond::Le,
            vd: vreg::V0,
            vs1: vreg::V1,
            rhs: VOperand::Reg(vreg::V2),
        };
        let ops = macro_ops(&i, None).unwrap();
        assert_eq!(ops, vec![MacroOpKind::CmpLt, MacroOpKind::MaskNot]);
    }

    #[test]
    fn memory_and_xe_are_not_compute() {
        assert!(macro_ops(&Inst::VMFence, None).is_none());
        assert!(macro_ops(&Inst::VId { vd: vreg::V1 }, None).is_none());
        assert!(macro_ops(
            &Inst::VLoad {
                vd: vreg::V1,
                base: eve_isa::xreg::A0,
                stride: eve_isa::VStride::Unit,
                masked: false
            },
            None
        )
        .is_none());
    }

    #[test]
    fn broadcast_move() {
        let i = Inst::VMv {
            vd: vreg::V1,
            rhs: VOperand::Imm(42),
        };
        assert_eq!(
            macro_ops(&i, Some(42)).unwrap(),
            vec![MacroOpKind::Splat(42)]
        );
        let i = Inst::VMv {
            vd: vreg::V1,
            rhs: VOperand::Reg(vreg::V2),
        };
        assert_eq!(macro_ops(&i, None).unwrap(), vec![MacroOpKind::Mv]);
    }
}
