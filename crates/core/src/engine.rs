//! The engine proper: VCU + VSU + VMU + VRU + DTUs on two decoupled
//! timelines (compute and memory), with full Fig 7 cycle attribution.

use crate::mapping::macro_ops;
use crate::stats::StallBreakdown;
use eve_common::{ConfigError, ConfigResult, Cycle, Stats};
use eve_cpu::{EngineError, VectorPlacement, VectorUnit};
use eve_isa::{Inst, MemEffect, RegId, Retired, VStride};
use eve_mem::{Hierarchy, Level, Tlb, LINE_BYTES};
use eve_obs::Tracer;
use eve_sram::{LayoutModel, SramGeometry};
use eve_uop::fuse::{self, TierProfile, TierStats};
use eve_uop::{HybridConfig, LatencyTable, MacroOpKind};
use std::collections::{HashMap, VecDeque};

/// Static track names for the first DTUs; higher slots share "dtu".
#[cfg(feature = "obs")]
const DTU_TRACKS: [&str; 8] = [
    "dtu0", "dtu1", "dtu2", "dtu3", "dtu4", "dtu5", "dtu6", "dtu7",
];

#[cfg(feature = "obs")]
fn dtu_track(slot: usize) -> &'static str {
    DTU_TRACKS.get(slot).copied().unwrap_or("dtu")
}

/// EVE arrays available when half of the 512 KB L2's ways are donated:
/// 256 KB of 8 KB arrays (two banked 256×128 sub-arrays each).
pub const EVE_ARRAYS: u32 = 32;
/// Extra μop cycles for a mask prologue on `v0.t`-masked instructions.
const MASK_PROLOGUE: u64 = 2;

/// Tunable engine parameters (defaults match the paper; the ablation
/// benches sweep them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTuning {
    /// Data transpose units (§VII-B: the paper uses eight, each half a
    /// sub-array).
    pub dtus: usize,
    /// VCU instruction-queue depth.
    pub queue_depth: usize,
    /// VRU pipeline depth for the dot + linear reduction (§V-D).
    pub vru_pipeline: u64,
    /// VSU execution pipes. The paper's EVE has one (Table III);
    /// values above one explore the §IX future-work idea of dynamic
    /// μop scheduling: independent compute macro-ops dispatch onto
    /// separate array groups and overlap.
    pub exec_pipes: usize,
}

impl Default for EngineTuning {
    fn default() -> Self {
        Self {
            dtus: 8,
            queue_depth: 8,
            vru_pipeline: 40,
            exec_pipes: 1,
        }
    }
}

/// How the detection layer protects each SRAM row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EccMode {
    /// No per-row protection; nothing is charged.
    Off,
    /// One interleaved parity bit per row: detect-only, escalation
    /// handles repair.
    #[default]
    Parity,
    /// SECDED Hamming+P check planes per row: single-bit errors are
    /// corrected in place, double-bit errors flagged uncorrectable.
    Secded,
}

/// Timing model of the detection layer: parity or SECDED check planes
/// per SRAM row, verified when a μprogram reads its operand rows. The
/// checker is a narrow tree shared per array, so it retires a few rows
/// per cycle; the charge lands in the `parity_stall` breakdown bucket.
/// SECDED additionally pays per corrected event (`ecc_correct_stall`),
/// per remapped row (`remap_stall`), and — when a scrub interval is
/// set — a periodic background sweep (`scrub_stall`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Protection scheme per row.
    pub mode: EccMode,
    /// Check-plane rows the shared checker verifies per cycle.
    pub check_rows_per_cycle: u64,
    /// Background scrub period in VSU cycles (0 disables scrubbing).
    pub scrub_interval_cycles: u64,
    /// Read-modify-write cycles to repair one corrected event.
    pub ecc_correct_cycles: u64,
    /// Cycles to copy one retired row into its spare and update the
    /// remap latches.
    pub remap_cycles: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            mode: EccMode::Parity,
            check_rows_per_cycle: 4,
            scrub_interval_cycles: 0,
            ecc_correct_cycles: 3,
            remap_cycles: 64,
        }
    }
}

impl ResilienceConfig {
    /// The SECDED preset: correct-in-place with a background scrub
    /// every 4096 VSU cycles.
    #[must_use]
    pub fn secded() -> Self {
        Self {
            mode: EccMode::Secded,
            scrub_interval_cycles: 4096,
            ..Self::default()
        }
    }

    /// Cycles to verify both operand registers of a compute macro-op
    /// (`segments` rows each). Zero when protection is off.
    #[must_use]
    pub fn check_cycles(&self, segments: u64) -> Cycle {
        if matches!(self.mode, EccMode::Off) {
            return Cycle::ZERO;
        }
        Cycle((2 * segments).div_ceil(self.check_rows_per_cycle.max(1)))
    }

    /// Cycles for one background scrub sweep over the register file
    /// (32 vregs × `segments` rows, through the same shared checker).
    #[must_use]
    pub fn scrub_cycles(&self, segments: u64) -> Cycle {
        Cycle((32 * segments).div_ceil(self.check_rows_per_cycle.max(1)))
    }
}

/// The ephemeral vector engine.
#[derive(Debug)]
pub struct EveEngine {
    cfg: HybridConfig,
    tuning: EngineTuning,
    hw_vl: u32,
    segments: u64,
    lat: LatencyTable,
    spawned: bool,
    queue_done: VecDeque<Cycle>,
    /// VSU/compute timeline (pipe 0; memory and VRU traffic always
    /// use this one).
    vsu_now: Cycle,
    /// Additional compute pipes (§IX exploration); empty in the
    /// paper's single-pipe configuration.
    extra_pipes: Vec<Cycle>,
    /// VMU request-generation timeline.
    vmu_now: Cycle,
    vru_free: Cycle,
    dtu_free: Vec<Cycle>,
    dtu_rr: usize,
    vreg_ready: [Cycle; 32],
    pending_store_done: Cycle,
    breakdown: StallBreakdown,
    /// Detection-layer timing model, when fault checking is enabled.
    resilience: Option<ResilienceConfig>,
    /// VSU time of the next background scrub sweep (SECDED only).
    next_scrub: Cycle,
    /// Cycles the VMU spent unable to issue to the LLC (Fig 8).
    llc_issue_stall: Cycle,
    tlb: Tlb,
    stats: Stats,
    /// Per-macro-op compiled-tier profiles: the VSU's program cache,
    /// modeled. A macro-op's first issue is a miss (the specializer
    /// compiles while the interpreter runs); every later issue retires
    /// through the compiled tier.
    uprog_profiles: HashMap<MacroOpKind, TierProfile>,
    /// Tier-ladder counters mirroring the cache's lifetime.
    tier: TierStats,
    /// Reused scratch for per-instruction line-request lists, so the
    /// retire hot path allocates nothing.
    line_buf: Vec<u64>,
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    tracer: Option<Tracer>,
}

impl EveEngine {
    /// An EVE-`n` engine with the paper's default tuning.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n` is not a valid parallelization
    /// factor (1, 2, 4, 8, 16, 32).
    pub fn new(n: u32) -> ConfigResult<Self> {
        Self::with_tuning(n, EngineTuning::default())
    }

    /// An EVE-`n` engine with custom tuning (ablation studies).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n` is invalid or the tuning is
    /// degenerate (zero DTUs with n < 32, zero queue depth).
    pub fn with_tuning(n: u32, tuning: EngineTuning) -> ConfigResult<Self> {
        let cfg = HybridConfig::new(n)?;
        if tuning.queue_depth == 0 {
            return Err(ConfigError::new("queue depth must be nonzero"));
        }
        if tuning.exec_pipes == 0 {
            return Err(ConfigError::new("need at least one exec pipe"));
        }
        if tuning.dtus == 0 && !cfg.is_bit_parallel() {
            return Err(ConfigError::new("transposed layouts need at least one DTU"));
        }
        let layout = LayoutModel::new(SramGeometry::PAPER, 32, 32, n)?;
        let hw_vl = layout.lanes() * EVE_ARRAYS;
        if hw_vl == 0 {
            return Err(ConfigError::new("layout yields zero lanes"));
        }
        Ok(Self {
            segments: u64::from(cfg.segments()),
            lat: LatencyTable::new(cfg),
            cfg,
            hw_vl,
            spawned: false,
            queue_done: VecDeque::new(),
            vsu_now: Cycle::ZERO,
            extra_pipes: vec![Cycle::ZERO; tuning.exec_pipes.saturating_sub(1)],
            vmu_now: Cycle::ZERO,
            vru_free: Cycle::ZERO,
            dtu_free: vec![Cycle::ZERO; tuning.dtus.max(1)],
            tuning,
            dtu_rr: 0,
            vreg_ready: [Cycle::ZERO; 32],
            pending_store_done: Cycle::ZERO,
            breakdown: StallBreakdown::default(),
            resilience: None,
            next_scrub: Cycle::ZERO,
            llc_issue_stall: Cycle::ZERO,
            tlb: Tlb::new(),
            stats: Stats::new(),
            uprog_profiles: HashMap::new(),
            tier: TierStats::default(),
            line_buf: Vec::new(),
            tracer: None,
        })
    }

    /// The bit-hybrid configuration.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// The Fig 7 cycle attribution so far.
    #[must_use]
    pub fn breakdown(&self) -> &StallBreakdown {
        &self.breakdown
    }

    /// Enables the detection layer: every compute macro-op pays for
    /// verifying the check planes of its operand rows, and (with a
    /// scrub interval set) the VSU periodically pays for a background
    /// sweep of the whole register file.
    pub fn enable_resilience(&mut self, cfg: ResilienceConfig) {
        self.resilience = Some(cfg);
        self.next_scrub = self.vsu_now + Cycle(cfg.scrub_interval_cycles);
    }

    /// Charges `events` SECDED single-bit corrections to the VSU
    /// timeline (`ecc_correct_stall`). The functional array reports
    /// corrected-event counts after each op; the controller calls this
    /// so the repair writebacks show up in the attribution.
    pub fn charge_ecc_corrections(&mut self, events: u64) {
        let Some(res) = self.resilience else { return };
        let cost = Cycle(events.saturating_mul(res.ecc_correct_cycles.max(1)));
        if cost == Cycle::ZERO {
            return;
        }
        self.trace_vsu("ecc_correct_stall", "ecc_correct", self.vsu_now, cost);
        self.breakdown.ecc_correct_stall += cost;
        self.vsu_now += cost;
        self.stats.add("ecc_correct_cycles", cost.0);
        self.stats.add("ecc_corrected_events", events);
    }

    /// Charges `rows` spare-row remaps to the VSU timeline
    /// (`remap_stall`): each retired row is copied into its spare and
    /// the remap latches updated before execution resumes.
    pub fn charge_remaps(&mut self, rows: u64) {
        let Some(res) = self.resilience else { return };
        let cost = Cycle(rows.saturating_mul(res.remap_cycles.max(1)));
        if cost == Cycle::ZERO {
            return;
        }
        self.trace_vsu("remap_stall", "row_remap", self.vsu_now, cost);
        self.breakdown.remap_stall += cost;
        self.vsu_now += cost;
        self.stats.add("remap_cycles", cost.0);
        self.stats.add("remapped_rows", rows);
    }

    /// Retires the ephemeral engine: returns the donated L2 ways to
    /// the scalar cache via [`Hierarchy::despawn_vector_mode`] (free —
    /// the vector ways were invalidated at spawn and VMU stores write
    /// through, so there is nothing to flush, §V-E) and re-arms the
    /// lazy spawn, so the next vector instruction pays the full
    /// way-partition + flush cost again. A retired-then-respawned
    /// engine therefore accumulates `spawn_cycles` across its
    /// lifetimes, which is exactly the cost an elastic controller must
    /// weigh before bouncing an engine. No-op before the first spawn.
    pub fn retire(&mut self, mem: &mut Hierarchy, now: Cycle) -> Cycle {
        if !self.spawned {
            return now;
        }
        self.spawned = false;
        self.stats.incr("retires");
        mem.despawn_vector_mode(now)
    }

    /// Pays for any background scrub sweeps whose deadline has passed
    /// on the VSU timeline. Called on the compute path so scrub time
    /// serializes with μprogram execution, like a real port steal.
    fn charge_due_scrubs(&mut self) {
        let Some(res) = self.resilience else { return };
        if res.scrub_interval_cycles == 0 || !matches!(res.mode, EccMode::Secded) {
            return;
        }
        let interval = Cycle(res.scrub_interval_cycles);
        let cost = res.scrub_cycles(self.segments);
        while self.vsu_now >= self.next_scrub {
            self.trace_vsu("scrub_stall", "scrub_sweep", self.vsu_now, cost);
            self.breakdown.scrub_stall += cost;
            self.vsu_now += cost;
            self.stats.add("scrub_cycles", cost.0);
            self.stats.incr("scrub_sweeps");
            self.next_scrub += interval;
        }
    }

    /// The detection-layer configuration, if checking is enabled.
    #[must_use]
    pub fn resilience(&self) -> Option<ResilienceConfig> {
        self.resilience
    }

    /// Cycles the VMU could not issue to the LLC (Fig 8 numerator).
    #[must_use]
    pub fn llc_issue_stall(&self) -> Cycle {
        self.llc_issue_stall
    }

    /// Cycles per 64-byte line in a DTU: one pass per segment row;
    /// bit-parallel layout needs no transpose at all (§VII-B).
    fn dtu_line_cycles(&self) -> u64 {
        if self.cfg.is_bit_parallel() {
            0
        } else {
            self.segments
        }
    }

    /// Emits one attributed slice of the VSU timeline. Every cycle the
    /// breakdown accounts flows through here, so the `vsu` track tiles
    /// `[spawn, vsu_end)` exactly — the property the stall-attribution
    /// auditor replays (see `eve-sim`'s audit module).
    #[inline]
    fn trace_vsu(&self, cat: &'static str, name: &'static str, ts: Cycle, dur: Cycle) {
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            tr.span("vsu", cat, name, ts.0, dur.0);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (cat, name, ts, dur);
    }

    /// Advances the VSU timeline to `t`, attributing the gap to the
    /// breakdown bucket `category` selects; `cat` is the same bucket's
    /// name, as recorded by [`StallBreakdown::entries`].
    #[inline]
    fn advance_vsu(
        &mut self,
        t: Cycle,
        cat: &'static str,
        category: fn(&mut StallBreakdown) -> &mut Cycle,
    ) {
        if t > self.vsu_now {
            self.trace_vsu(cat, cat, self.vsu_now, t - self.vsu_now);
            *category(&mut self.breakdown) += t - self.vsu_now;
            self.vsu_now = t;
        }
    }

    #[inline]
    fn busy(&mut self, name: &'static str, cycles: Cycle) {
        self.trace_vsu("busy", name, self.vsu_now, cycles);
        self.breakdown.busy += cycles;
        self.vsu_now += cycles;
    }

    #[inline]
    fn vreg_dep_time(&self, r: &Retired) -> Cycle {
        let mut t = Cycle::ZERO;
        for dep in r.reads.iter().flatten() {
            if let RegId::V(v) = dep {
                t = t.max(self.vreg_ready[v.index() as usize]);
            }
        }
        t
    }

    #[inline]
    fn set_write_ready(&mut self, r: &Retired, t: Cycle) {
        if let Some(RegId::V(v)) = r.write {
            self.vreg_ready[v.index() as usize] = t;
        }
    }

    /// Collects a memory effect's deduplicated line requests into
    /// `lines` — a caller-owned scratch buffer (see `line_buf`), so
    /// the per-instruction hot path does not allocate.
    fn fill_line_requests(lines: &mut Vec<u64>, mem: &MemEffect) {
        lines.clear();
        match mem {
            MemEffect::VecUnit { base, bytes, .. } => {
                if *bytes == 0 {
                    return;
                }
                let first = base / LINE_BYTES;
                let last = (base + bytes - 1) / LINE_BYTES;
                lines.extend(first..=last);
            }
            MemEffect::VecStrided {
                base,
                stride,
                count,
                ..
            } => lines.extend(
                (0..u64::from(*count))
                    .map(|i| ((*base as i64 + stride * i as i64) as u64) / LINE_BYTES),
            ),
            MemEffect::VecIndexed { addrs, .. } => {
                lines.extend(addrs.iter().map(|a| a / LINE_BYTES));
            }
            _ => {}
        }
        lines.dedup();
    }

    /// One VMU line request: generation + translation (one cycle),
    /// retried while the LLC has no free MSHR.
    fn vmu_request(
        &mut self,
        line: u64,
        store: bool,
        t: Cycle,
        mem: &mut Hierarchy,
    ) -> (Cycle, Cycle) {
        let issued = self.tlb.translate(line * LINE_BYTES, t);
        let a = mem.access(Level::Llc, line * LINE_BYTES, store, issued);
        self.llc_issue_stall += a.mshr_wait;
        self.stats.incr("vmu.line_requests");
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            let cat = if store { "store" } else { "load" };
            tr.instant_arg(
                "vmu",
                cat,
                "line_req",
                issued.0,
                ("mshr_wait", a.mshr_wait.0),
            );
        }
        // The VMU's generation slot is occupied for the MSHR wait too.
        (issued + a.mshr_wait, a.complete)
    }

    fn handle_load(&mut self, r: &Retired, accept: Cycle, mem: &mut Hierarchy) -> Cycle {
        self.stats.incr("loads");
        self.advance_vsu(accept, "empty_stall", |b| &mut b.empty_stall);
        let deps = self.vreg_dep_time(r);
        self.advance_vsu(deps, "dep_stall", |b| &mut b.dep_stall);

        let indexed = matches!(
            r.inst,
            Inst::VLoad {
                stride: VStride::Indexed(_),
                ..
            }
        );
        if indexed {
            // The VSU reads the index register rows for the VMU (§V-C).
            self.busy("index_read", Cycle(self.segments + 1));
        }
        let masked = matches!(r.inst, Inst::VLoad { masked: true, .. });
        if masked {
            self.busy("mask_prologue", Cycle(MASK_PROLOGUE));
        }

        let mut lines = std::mem::take(&mut self.line_buf);
        Self::fill_line_requests(&mut lines, &r.mem);
        let mut t = self
            .vmu_now
            .max(accept)
            .max(if indexed { self.vsu_now } else { Cycle::ZERO });
        let dt = self.dtu_line_cycles();
        let mut mem_done = t;
        let mut data_done = t;
        for &line in &lines {
            let (next_t, complete) = self.vmu_request(line, false, t, mem);
            t = next_t;
            mem_done = mem_done.max(complete);
            let transposed = if dt == 0 {
                complete
            } else {
                let slot = self.dtu_rr;
                self.dtu_rr = (self.dtu_rr + 1) % self.dtu_free.len();
                let start = complete.max(self.dtu_free[slot]);
                self.dtu_free[slot] = start + Cycle(dt);
                #[cfg(feature = "obs")]
                if let Some(tr) = &self.tracer {
                    tr.span(dtu_track(slot), "transpose", "line", start.0, dt);
                }
                start + Cycle(dt)
            };
            data_done = data_done.max(transposed);
        }
        self.line_buf = lines;
        self.vmu_now = t;

        // Attribute the VSU's wait: the part beyond raw memory arrival
        // is transpose backlog, the rest is memory.
        if data_done > self.vsu_now {
            let wait = data_done - self.vsu_now;
            let dt_part = data_done.saturating_since(mem_done).min(wait);
            self.trace_vsu("ld_mem_stall", "ld_mem_stall", self.vsu_now, wait - dt_part);
            self.trace_vsu(
                "ld_dt_stall",
                "ld_dt_stall",
                self.vsu_now + (wait - dt_part),
                dt_part,
            );
            self.breakdown.ld_dt_stall += dt_part;
            self.breakdown.ld_mem_stall += wait - dt_part;
            self.vsu_now = data_done;
        }
        // Row writes into the arrays: one per segment row.
        self.busy("row_write", Cycle(self.segments));
        self.set_write_ready(r, self.vsu_now);
        self.vsu_now
    }

    fn handle_store(&mut self, r: &Retired, accept: Cycle, mem: &mut Hierarchy) -> Cycle {
        self.stats.incr("stores");
        self.advance_vsu(accept, "empty_stall", |b| &mut b.empty_stall);
        let deps = self.vreg_dep_time(r);
        self.advance_vsu(deps, "dep_stall", |b| &mut b.dep_stall);
        let indexed = matches!(
            r.inst,
            Inst::VStore {
                stride: VStride::Indexed(_),
                ..
            }
        );
        if indexed {
            self.busy("index_read", Cycle(self.segments + 1));
        }
        if matches!(r.inst, Inst::VStore { masked: true, .. }) {
            self.busy("mask_prologue", Cycle(MASK_PROLOGUE));
        }
        // VSU reads the data rows out.
        self.busy("row_read", Cycle(self.segments));

        // Detranspose on the DTUs; a deep backlog stalls the VSU.
        let dt = self.dtu_line_cycles();
        let mut lines = std::mem::take(&mut self.line_buf);
        Self::fill_line_requests(&mut lines, &r.mem);
        let mut detr_done = self.vsu_now;
        for _ in &lines {
            if dt == 0 {
                break;
            }
            let slot = self.dtu_rr;
            self.dtu_rr = (self.dtu_rr + 1) % self.dtu_free.len();
            let start = self.vsu_now.max(self.dtu_free[slot]);
            self.dtu_free[slot] = start + Cycle(dt);
            #[cfg(feature = "obs")]
            if let Some(tr) = &self.tracer {
                tr.span(dtu_track(slot), "detranspose", "line", start.0, dt);
            }
            detr_done = detr_done.max(start + Cycle(dt));
        }
        let backlog_limit = self.vsu_now + Cycle(4 * self.segments);
        if detr_done > backlog_limit {
            let stall = detr_done - backlog_limit;
            self.trace_vsu("st_dt_stall", "st_dt_stall", self.vsu_now, stall);
            self.breakdown.st_dt_stall += stall;
            self.vsu_now += stall;
        }

        // VMU sends the line stores once detransposed.
        let mut t = self.vmu_now.max(detr_done);
        for &line in &lines {
            let (next_t, complete) = self.vmu_request(line, true, t, mem);
            t = next_t;
            self.pending_store_done = self.pending_store_done.max(complete);
        }
        self.line_buf = lines;
        // If the VMU falls far behind, the VSU blocks on the store path.
        let vmu_slack = Cycle(64);
        if t > self.vsu_now + vmu_slack {
            let stall = t - (self.vsu_now + vmu_slack);
            self.trace_vsu("st_mem_stall", "st_mem_stall", self.vsu_now, stall);
            self.breakdown.st_mem_stall += stall;
            self.vsu_now += stall;
        }
        self.vmu_now = t;
        self.vsu_now
    }

    fn handle_vru(&mut self, r: &Retired, accept: Cycle) -> Cycle {
        self.stats.incr("vru_ops");
        self.advance_vsu(accept, "empty_stall", |b| &mut b.empty_stall);
        let deps = self.vreg_dep_time(r);
        self.advance_vsu(deps, "dep_stall", |b| &mut b.dep_stall);
        // VRU structural hazard.
        self.advance_vsu(self.vru_free, "vru_stall", |b| &mut b.vru_stall);
        // The VSU streams B/n elements per cycle, one segment at a
        // time (§V-D): lanes/8 element groups x S segment beats.
        let lanes = u64::from(self.hw_vl / EVE_ARRAYS);
        let stream = match r.inst {
            Inst::VMvSX { .. } | Inst::VMvXS { .. } => Cycle(self.segments + 2),
            _ => Cycle((lanes / 8).max(1) * self.segments),
        };
        self.busy("stream", stream);
        let pipeline = match r.inst {
            Inst::VMvSX { .. } | Inst::VMvXS { .. } => Cycle(4),
            _ => Cycle(self.tuning.vru_pipeline),
        };
        let done = self.vsu_now + pipeline;
        #[cfg(feature = "obs")]
        if let Some(tr) = &self.tracer {
            // The VRU drains off the VSU timeline; its own track shows
            // the pipeline occupancy (starts follow in-order issue).
            tr.span("vru", "vru", "reduce", self.vsu_now.0, pipeline.0);
        }
        self.vru_free = done;
        self.set_write_ready(r, done);
        done
    }

    fn handle_compute(&mut self, r: &Retired, accept: Cycle, ops: &[MacroOpKind]) -> Cycle {
        self.stats.incr("compute_ops");
        let masked = matches!(r.inst, Inst::VOp { masked: true, .. });
        let mut total = Cycle(if masked { MASK_PROLOGUE } else { 0 });
        for &op in ops {
            let cycles = self.lat.latency(op);
            total += cycles;
            // Tier ladder: first sight of a macro-op misses the program
            // cache (the specializer compiles while the interpreter
            // executes); every later issue retires compiled.
            match self.uprog_profiles.get(&op) {
                Some(p) => {
                    self.tier.hits += 1;
                    self.tier.record_tier2(p.cycles, p.uops, p.fused);
                    #[cfg(feature = "obs")]
                    if let Some(tr) = &self.tracer {
                        tr.count("uprog_tier2_ops", 1);
                        tr.count("uprog_tier2_fused", p.fused);
                    }
                }
                None => {
                    let p = fuse::profile(&self.lat.library().program(op));
                    debug_assert_eq!(p.cycles, cycles, "{op:?}: profiler drifted");
                    self.uprog_profiles.insert(op, p);
                    self.tier.misses += 1;
                    self.tier.record_tier1(cycles);
                    #[cfg(feature = "obs")]
                    if let Some(tr) = &self.tracer {
                        tr.count("uprog_tier1_ops", 1);
                    }
                }
            }
        }
        self.stats.add("uop_cycles", total.0);
        let deps = self.vreg_dep_time(r);
        // §IX exploration: with extra pipes, dispatch onto whichever
        // frees first instead of serializing on the single VSU.
        if let Some(best) = self
            .extra_pipes
            .iter_mut()
            .min_by_key(|p| **p)
            .filter(|p| **p < self.vsu_now)
        {
            let start = (*best).max(accept).max(deps);
            let done = start + total;
            *best = done;
            self.breakdown.busy += total;
            // Extra-pipe work runs off the attributed VSU timeline, so
            // it gets its own (untiled) track.
            #[cfg(feature = "obs")]
            if let Some(tr) = &self.tracer {
                tr.span("vsu_extra", "busy", "uprog", start.0, total.0);
            }
            self.set_write_ready(r, done);
            return done;
        }
        self.advance_vsu(accept, "empty_stall", |b| &mut b.empty_stall);
        self.advance_vsu(deps, "dep_stall", |b| &mut b.dep_stall);
        // Detection layer: verify operand-row check planes before
        // latching the first bit-line compute (serializes with the
        // VSU), and pay for any background scrub whose deadline
        // passed.
        self.charge_due_scrubs();
        if let Some(res) = self.resilience {
            let check = res.check_cycles(self.segments);
            if check > Cycle::ZERO {
                self.trace_vsu("parity_stall", "parity_check", self.vsu_now, check);
                self.breakdown.parity_stall += check;
                self.vsu_now += check;
                self.stats.add("parity_check_cycles", check.0);
            }
        }
        self.busy("uprog", total);
        self.set_write_ready(r, self.vsu_now);
        self.vsu_now
    }
}

impl VectorUnit for EveEngine {
    fn hw_vl(&self) -> u32 {
        self.hw_vl
    }

    fn issue(
        &mut self,
        r: &Retired,
        _ready: Cycle,
        commit: Cycle,
        mem: &mut Hierarchy,
    ) -> Result<VectorPlacement, EngineError> {
        // Spawn lazily on first vector work: way-partition the L2 and
        // invalidate the donated ways (§V-E).
        if !self.spawned {
            let done = mem.spawn_vector_mode(commit);
            self.stats.set("spawn_commit_cycle", commit.0);
            // `add`, not `set`: respawns after a retire accumulate.
            self.stats
                .add("spawn_cycles", done.saturating_since(commit).0);
            // The spawn span opens the attributed VSU timeline; the
            // auditor counts it alongside the breakdown buckets.
            self.trace_vsu("spawn", "spawn", commit, done.saturating_since(commit));
            self.vsu_now = done;
            self.vmu_now = done;
            self.spawned = true;
            // The scrub clock starts when the arrays come into
            // existence, not at construction time.
            if let Some(res) = self.resilience {
                self.next_scrub = done + Cycle(res.scrub_interval_cycles);
            }
        }
        self.stats.incr("issued");

        // VCU queue back-pressure.
        let mut accept = commit;
        while self.queue_done.len() >= self.tuning.queue_depth {
            let oldest = self.queue_done.pop_front().expect("nonempty");
            if oldest > accept {
                self.stats
                    .add("queue_stall_cycles", oldest.saturating_since(accept).0);
                accept = oldest;
            }
        }

        if matches!(r.inst, Inst::VMFence) {
            let done = self
                .pending_store_done
                .max(self.vmu_now)
                .max(self.vsu_now)
                .max(accept);
            return Ok(VectorPlacement::Decoupled {
                accept,
                writeback: Some(done),
            });
        }

        let completion = match &r.inst {
            Inst::VLoad { .. } => self.handle_load(r, accept, mem),
            Inst::VStore { .. } => self.handle_store(r, accept, mem),
            Inst::VRed { .. }
            | Inst::VSlide { .. }
            | Inst::VRGather { .. }
            | Inst::VId { .. }
            | Inst::VMvXS { .. }
            | Inst::VMvSX { .. } => self.handle_vru(r, accept),
            inst => {
                let Some(ops) = macro_ops(inst, r.scalar_operand) else {
                    return Err(EngineError::UnmappedInstruction {
                        inst: format!("{inst:?}"),
                        pc: u64::from(r.pc),
                    });
                };
                self.handle_compute(r, accept, &ops)
            }
        };

        self.queue_done.push_back(completion);
        let writeback = match r.inst {
            Inst::VMvXS { .. } => Some(completion),
            _ => None,
        };
        Ok(VectorPlacement::Decoupled { accept, writeback })
    }

    fn drain(&mut self, _mem: &mut Hierarchy) -> Cycle {
        let pipes = self
            .extra_pipes
            .iter()
            .copied()
            .max()
            .unwrap_or(Cycle::ZERO);
        self.vsu_now
            .max(self.vmu_now)
            .max(self.pending_store_done)
            .max(self.vru_free)
            .max(pipes)
    }

    fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.set("hw_vl", u64::from(self.hw_vl));
        s.set("vmu.llc_issue_stall_cycles", self.llc_issue_stall.0);
        // The attributed VSU timeline's endpoint: spawn + busy + every
        // stall bucket sums to exactly this (the auditor's identity).
        s.set("vsu.end_cycles", self.vsu_now.0);
        s.set("exec_pipes", self.tuning.exec_pipes as u64);
        // The μprogram tier ladder (see eve_uop::fuse): cache traffic
        // and per-tier retirement for every compute macro-op issued.
        s.set("vsu.uprog_cache_hits", self.tier.hits);
        s.set("vsu.uprog_cache_misses", self.tier.misses);
        s.set("vsu.uprog_tier1_cycles", self.tier.tier1_cycles);
        s.set("vsu.uprog_tier2_cycles", self.tier.tier2_cycles);
        s.set("vsu.uprog_tier2_uops", self.tier.tier2_uops);
        s.set("vsu.uprog_tier2_fused", self.tier.tier2_fused);
        s.merge(&self.breakdown.as_stats());
        for (k, v) in self.tlb.stats().iter() {
            s.add(&format!("tlb.{k}"), v);
        }
        s
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::{vreg, xreg, VArithOp, VOperand};
    use eve_mem::HierarchyConfig;

    fn retired(inst: Inst, vl: u32) -> Retired {
        Retired {
            seq: 0,
            pc: 0,
            inst,
            reads: [None; 4],
            write: Some(RegId::V(vreg::V3)),
            mem: MemEffect::None,
            vl,
            branch: None,
            scalar_operand: None,
        }
    }

    fn vadd() -> Inst {
        Inst::VOp {
            op: VArithOp::Add,
            vd: vreg::V3,
            vs1: vreg::V1,
            rhs: VOperand::Reg(vreg::V2),
            masked: false,
        }
    }

    fn vmul() -> Inst {
        Inst::VOp {
            op: VArithOp::Mul,
            vd: vreg::V3,
            vs1: vreg::V1,
            rhs: VOperand::Reg(vreg::V2),
            masked: false,
        }
    }

    #[test]
    fn hardware_vector_lengths_match_table_iii() {
        for (n, vl) in [
            (1u32, 2048u32),
            (2, 2048),
            (4, 2048),
            (8, 1024),
            (16, 512),
            (32, 256),
        ] {
            assert_eq!(EveEngine::new(n).unwrap().hw_vl(), vl, "EVE-{n}");
        }
    }

    #[test]
    fn invalid_factor_rejected() {
        assert!(EveEngine::new(3).is_err());
        assert!(EveEngine::new(0).is_err());
    }

    #[test]
    fn spawn_reconfigures_l2_once() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        // Warm the L2 so reconfiguration has lines to flush.
        for i in 0..32u64 {
            mem.access(Level::L1D, 0x8000 + i * 64, true, Cycle(i * 200));
        }
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(10_000), &mut mem)
            .unwrap();
        assert!(e.stats().get("spawn_cycles") > 0);
        assert_eq!(mem.cache(Level::L2).config().ways, 4);
        let spawn1 = e.stats().get("spawn_cycles");
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(20_000), &mut mem)
            .unwrap();
        assert_eq!(e.stats().get("spawn_cycles"), spawn1, "spawns once");
    }

    #[test]
    fn retire_returns_the_ways_and_a_respawn_pays_again() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let warm = |mem: &mut Hierarchy, base: u64, at: u64| {
            for i in 0..32u64 {
                mem.access(Level::L1D, base + i * 64, true, Cycle(at + i * 200));
            }
        };
        // Retiring before any spawn is a no-op.
        assert_eq!(e.retire(&mut mem, Cycle(5)), Cycle(5));
        assert_eq!(e.stats().get("retires"), 0);

        warm(&mut mem, 0x8000, 0);
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(10_000), &mut mem)
            .unwrap();
        let first = e.stats().get("spawn_cycles");
        let lines1 = mem.collect_stats().get("l2_reconfig_lines");
        assert!(first > 0 && lines1 > 0);

        // Retire: ways come back immediately, despawn itself is free.
        assert_eq!(e.retire(&mut mem, Cycle(50_000)), Cycle(50_000));
        assert_eq!(mem.cache(Level::L2).config().ways, 8);
        assert_eq!(e.stats().get("retires"), 1);

        // Respawn on the rewarmed cache: the flush bill lands again
        // and `spawn_cycles` accumulates across lifetimes.
        warm(&mut mem, 0x2_0000, 60_000);
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(100_000), &mut mem)
            .unwrap();
        assert_eq!(mem.cache(Level::L2).config().ways, 4);
        assert!(e.stats().get("spawn_cycles") > first, "respawn was free");
        assert!(
            mem.collect_stats().get("l2_reconfig_lines") > lines1,
            "second partition flushed nothing"
        );
    }

    #[test]
    fn compute_latency_tracks_uop_programs() {
        // add on EVE-8: 2*4+1 = 9 cycles of busy work.
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        assert_eq!(e.breakdown().busy, Cycle(9));
    }

    #[test]
    fn mul_latency_falls_with_parallelization_but_serial_has_more_lanes() {
        let mut lat = Vec::new();
        for n in [1u32, 8, 32] {
            let mut e = EveEngine::new(n).unwrap();
            let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
            e.issue(&retired(vmul(), e.hw_vl()), Cycle(0), Cycle(0), &mut mem)
                .unwrap();
            lat.push(e.breakdown().busy.0);
        }
        assert!(lat[0] > lat[1] && lat[1] > lat[2], "{lat:?}");
    }

    #[test]
    fn dependent_ops_serialize_independent_ops_do_not_stall() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        e.issue(&retired(vadd(), 1024), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        let busy1 = e.breakdown().busy;
        // Dependent on v3.
        let mut dep = retired(vadd(), 1024);
        dep.reads[0] = Some(RegId::V(vreg::V3));
        e.issue(&dep, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(e.breakdown().busy, busy1 * 2);
        // Single in-order pipe: no dep_stall beyond serialization.
        assert_eq!(e.breakdown().dep_stall, Cycle::ZERO);
    }

    #[test]
    fn loads_attribute_memory_stalls() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V3,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let mut r = retired(ld, 1024);
        r.mem = MemEffect::VecUnit {
            base: 0x10_0000,
            bytes: 4096,
            store: false,
        };
        e.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        let b = e.breakdown();
        assert!(b.ld_mem_stall > Cycle::ZERO, "{b:?}");
        assert!(b.busy >= Cycle(4), "row writes counted as busy: {b:?}");
        assert_eq!(e.stats().get("vmu.line_requests"), 64);
    }

    #[test]
    fn eve32_skips_transpose() {
        let ld = Inst::VLoad {
            vd: vreg::V3,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let mk = |vl: u32| {
            let mut r = retired(ld, vl);
            r.mem = MemEffect::VecUnit {
                base: 0x10_0000,
                bytes: u64::from(vl) * 4,
                store: false,
            };
            r
        };
        let mut e32 = EveEngine::new(32).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        e32.issue(&mk(256), Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(e32.breakdown().ld_dt_stall, Cycle::ZERO);
        // EVE-1 on the same footprint pays transpose time somewhere
        // (dt stall or overlapped) - its DTU line cost is 32 cycles.
        let mut e1 = EveEngine::new(1).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        e1.issue(&mk(256), Cycle(0), Cycle(0), &mut mem).unwrap();
        let total1 = e1.breakdown().total();
        assert!(total1 > Cycle::ZERO);
    }

    #[test]
    fn large_stride_saturates_llc_mshrs() {
        // backprop-style: stride larger than a line, one line per
        // element, hw_vl 1024 -> 1024 requests against 32 MSHRs.
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let ld = Inst::VLoad {
            vd: vreg::V3,
            base: xreg::A0,
            stride: VStride::Strided(xreg::A1),
            masked: false,
        };
        let mut r = retired(ld, 1024);
        r.mem = MemEffect::VecStrided {
            base: 0x40_0000,
            stride: 4096,
            count: 1024,
            store: false,
        };
        e.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert!(
            e.llc_issue_stall() > Cycle(1000),
            "expected heavy MSHR stalling, got {:?}",
            e.llc_issue_stall()
        );
    }

    #[test]
    fn fence_waits_for_stores() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let st = Inst::VStore {
            vs: vreg::V1,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let mut r = retired(st, 1024);
        r.mem = MemEffect::VecUnit {
            base: 0x20_0000,
            bytes: 4096,
            store: true,
        };
        r.write = None;
        e.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        let f = e
            .issue(&retired(Inst::VMFence, 1024), Cycle(1), Cycle(1), &mut mem)
            .unwrap();
        match f {
            VectorPlacement::Decoupled {
                writeback: Some(wb),
                ..
            } => assert!(wb > Cycle(60), "{wb:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reductions_occupy_the_vru() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let red = Inst::VRed {
            op: eve_isa::RedOp::Sum,
            vd: vreg::V3,
            vs2: vreg::V1,
            vs1: vreg::V2,
        };
        e.issue(&retired(red, 1024), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        e.issue(&retired(red, 1024), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        assert!(e.breakdown().vru_stall > Cycle::ZERO);
        assert_eq!(e.stats().get("vru_ops"), 2);
    }

    #[test]
    fn vmv_xs_reports_writeback() {
        let mut e = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mv = Inst::VMvXS {
            rd: xreg::T0,
            vs: vreg::V1,
        };
        let mut r = retired(mv, 1024);
        r.write = Some(RegId::X(xreg::T0));
        match e.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap() {
            VectorPlacement::Decoupled {
                writeback: Some(_), ..
            } => {}
            other => panic!("expected writeback, got {other:?}"),
        }
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let mut e = EveEngine::new(4).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        for i in 0..20u64 {
            e.issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem)
                .unwrap();
        }
        let b = *e.breakdown();
        // The VSU timeline (minus spawn) equals the attributed total.
        assert_eq!(
            b.total() + Cycle(e.stats().get("spawn_cycles")),
            e.drain(&mut mem),
        );
    }

    #[test]
    fn resilience_charges_parity_stall() {
        let mut plain = EveEngine::new(8).unwrap();
        let mut checked = EveEngine::new(8).unwrap();
        checked.enable_resilience(ResilienceConfig::default());
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mut mem2 = Hierarchy::new(HierarchyConfig::table_iii());
        for i in 0..10u64 {
            plain
                .issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem)
                .unwrap();
            checked
                .issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem2)
                .unwrap();
        }
        assert_eq!(plain.breakdown().parity_stall, Cycle::ZERO);
        let parity = checked.breakdown().parity_stall;
        // EVE-8 has 4 segments: 2 regs * 4 rows / 4 per cycle = 2
        // cycles per compute macro-op, 10 ops issued.
        assert_eq!(parity, Cycle(20));
        assert_eq!(checked.stats().get("parity_check_cycles"), 20);
        // Checking slows the engine down by exactly the charged time,
        // and the attribution identity still holds.
        let plain_done = plain.drain(&mut mem);
        let checked_done = checked.drain(&mut mem2);
        assert_eq!(checked_done, plain_done + parity);
        let b = *checked.breakdown();
        assert_eq!(
            b.total() + Cycle(checked.stats().get("spawn_cycles")),
            checked_done,
        );
    }

    #[test]
    fn ecc_off_charges_nothing() {
        let mut off = EveEngine::new(8).unwrap();
        off.enable_resilience(ResilienceConfig {
            mode: EccMode::Off,
            ..ResilienceConfig::default()
        });
        let mut plain = EveEngine::new(8).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mut mem2 = Hierarchy::new(HierarchyConfig::table_iii());
        for i in 0..10u64 {
            off.issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem)
                .unwrap();
            plain
                .issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem2)
                .unwrap();
        }
        assert_eq!(off.breakdown().parity_stall, Cycle::ZERO);
        assert_eq!(off.drain(&mut mem), plain.drain(&mut mem2));
    }

    #[test]
    fn correction_and_remap_charges_keep_the_identity() {
        let mut e = EveEngine::new(8).unwrap();
        e.enable_resilience(ResilienceConfig::secded());
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        for i in 0..4u64 {
            e.issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem)
                .unwrap();
            e.charge_ecc_corrections(2);
        }
        e.charge_remaps(1);
        let b = *e.breakdown();
        let res = ResilienceConfig::secded();
        assert_eq!(b.ecc_correct_stall, Cycle(8 * res.ecc_correct_cycles));
        assert_eq!(b.remap_stall, Cycle(res.remap_cycles));
        assert_eq!(e.stats().get("ecc_corrected_events"), 8);
        assert_eq!(e.stats().get("remapped_rows"), 1);
        assert_eq!(
            b.total() + Cycle(e.stats().get("spawn_cycles")),
            e.drain(&mut mem),
        );
    }

    #[test]
    fn scrub_interval_charges_periodic_sweeps() {
        let mut e = EveEngine::new(8).unwrap();
        e.enable_resilience(ResilienceConfig {
            scrub_interval_cycles: 200,
            ..ResilienceConfig::secded()
        });
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        for i in 0..40u64 {
            e.issue(&retired(vadd(), 2048), Cycle(0), Cycle(i * 3), &mut mem)
                .unwrap();
        }
        let b = *e.breakdown();
        assert!(b.scrub_stall > Cycle::ZERO, "scrub sweeps should charge");
        // EVE-8: 32 vregs * 4 segment rows / 4 rows per cycle = 32
        // cycles per sweep.
        let sweeps = e.stats().get("scrub_sweeps");
        assert!(sweeps >= 1);
        assert_eq!(b.scrub_stall, Cycle(32 * sweeps));
        assert_eq!(
            b.total() + Cycle(e.stats().get("spawn_cycles")),
            e.drain(&mut mem),
        );
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use eve_isa::{vreg, xreg, VStride};
    use eve_mem::HierarchyConfig;

    fn retired(inst: Inst, vl: u32) -> Retired {
        Retired {
            seq: 0,
            pc: 0,
            inst,
            reads: [None; 4],
            write: Some(RegId::V(vreg::V3)),
            mem: MemEffect::None,
            vl,
            branch: None,
            scalar_operand: None,
        }
    }

    #[test]
    fn stores_detranspose_and_track_pending() {
        let mut e = EveEngine::new(4).unwrap();
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let st = Inst::VStore {
            vs: vreg::V1,
            base: xreg::A0,
            stride: VStride::Unit,
            masked: false,
        };
        let mut r = retired(st, 2048);
        r.write = None;
        r.mem = MemEffect::VecUnit {
            base: 0x20_0000,
            bytes: 8192,
            store: true,
        };
        e.issue(&r, Cycle(0), Cycle(0), &mut mem).unwrap();
        assert_eq!(e.stats().get("stores"), 1);
        assert_eq!(e.stats().get("vmu.line_requests"), 128);
        assert!(e.pending_store_done > Cycle::ZERO);
        // Row reads count as busy work.
        assert!(e.breakdown().busy >= Cycle(8));
    }

    #[test]
    fn indexed_loads_pay_the_index_read_prologue() {
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mk = |stride: VStride| {
            let ld = Inst::VLoad {
                vd: vreg::V3,
                base: xreg::A0,
                stride,
                masked: false,
            };
            let mut r = retired(ld, 1024);
            r.mem = match stride {
                VStride::Indexed(_) => MemEffect::VecIndexed {
                    addrs: (0..1024u64).map(|i| 0x10_0000 + i * 4).collect(),
                    store: false,
                },
                _ => MemEffect::VecUnit {
                    base: 0x10_0000,
                    bytes: 4096,
                    store: false,
                },
            };
            r
        };
        let mut e_unit = EveEngine::new(8).unwrap();
        e_unit
            .issue(&mk(VStride::Unit), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        let unit_busy = e_unit.breakdown().busy;
        let mut mem2 = Hierarchy::new(HierarchyConfig::table_iii());
        let mut e_idx = EveEngine::new(8).unwrap();
        e_idx
            .issue(
                &mk(VStride::Indexed(vreg::V2)),
                Cycle(0),
                Cycle(0),
                &mut mem2,
            )
            .unwrap();
        // The VSU reads the index register rows before the VMU starts.
        assert!(e_idx.breakdown().busy > unit_busy);
    }

    #[test]
    fn masked_ops_pay_the_mask_prologue() {
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mk = |masked: bool| {
            retired(
                Inst::VOp {
                    op: eve_isa::VArithOp::Add,
                    vd: vreg::V3,
                    vs1: vreg::V1,
                    rhs: eve_isa::VOperand::Reg(vreg::V2),
                    masked,
                },
                1024,
            )
        };
        let mut plain = EveEngine::new(8).unwrap();
        plain
            .issue(&mk(false), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        let mut masked = EveEngine::new(8).unwrap();
        masked
            .issue(&mk(true), Cycle(0), Cycle(0), &mut mem)
            .unwrap();
        assert_eq!(
            masked.breakdown().busy,
            plain.breakdown().busy + Cycle(2),
            "mask prologue is two tuples"
        );
    }

    #[test]
    fn queue_backpressure_counts_stalls() {
        let mut e = EveEngine::new(1).unwrap(); // slow compute
        let mut mem = Hierarchy::new(HierarchyConfig::table_iii());
        let mul = Inst::VOp {
            op: eve_isa::VArithOp::Mul,
            vd: vreg::V3,
            vs1: vreg::V1,
            rhs: eve_isa::VOperand::Reg(vreg::V2),
            masked: false,
        };
        for _ in 0..12 {
            e.issue(&retired(mul, 2048), Cycle(0), Cycle(0), &mut mem)
                .unwrap();
        }
        assert!(e.stats().get("queue_stall_cycles") > 0);
    }

    #[test]
    fn tuned_engine_respects_dtu_and_queue_overrides() {
        assert!(EveEngine::with_tuning(
            8,
            EngineTuning {
                dtus: 0,
                ..EngineTuning::default()
            }
        )
        .is_err());
        // EVE-32 needs no DTUs at all.
        assert!(EveEngine::with_tuning(
            32,
            EngineTuning {
                dtus: 0,
                ..EngineTuning::default()
            }
        )
        .is_ok());
        assert!(EveEngine::with_tuning(
            8,
            EngineTuning {
                queue_depth: 0,
                ..EngineTuning::default()
            }
        )
        .is_err());
        assert!(EveEngine::with_tuning(
            8,
            EngineTuning {
                exec_pipes: 0,
                ..EngineTuning::default()
            }
        )
        .is_err());
    }
}
