//! Analytical models: the §II vector-S-CIM taxonomy spectrum (Fig 2),
//! the §VI.B circuit area and cycle-time results, and the §VII
//! area-efficiency analysis.
//!
//! The spectrum model is *vertically integrated* like the paper's
//! methodology: latencies are not closed-form guesses but the actual
//! cycle counts of the `eve-uop` μprograms, combined with the in-situ
//! ALU counts from the `eve-sram` layout model.
//!
//! # Examples
//!
//! ```
//! use eve_analytical::spectrum::spectrum_paper;
//!
//! let points = spectrum_paper();
//! // §II: "the throughput peaks when the parallelization factor
//! // reaches four."
//! let best = points
//!     .iter()
//!     .max_by(|a, b| a.add_throughput.total_cmp(&b.add_throughput))
//!     .unwrap();
//! assert_eq!(best.factor, 4);
//! ```

pub mod area;
pub mod energy;
pub mod spectrum;
pub mod timing;

pub use area::{SystemArea, SystemAreaTable};
pub use energy::{energy_per_element, program_energy, uop_energy};
pub use spectrum::{spectrum, spectrum_paper, SpectrumPoint};
pub use timing::{cycle_time, CYCLE_TIME_BASE_PS};
