//! Energy model (§VI.B power analysis, §VII energy discussion).
//!
//! The paper's extracted-netlist analysis established relative SRAM
//! operation energies: reads and writes match a vanilla SRAM; the
//! extra EVE operations cost far less (no sense amps or bit-line
//! precharge); `blc` costs ~20 % more than a read, the most expensive
//! vanilla operation. EVE's efficiency then comes from *counting*:
//! vector execution in place eliminates the H-tree round trips and the
//! multi-ported vector register file accesses a decoupled engine pays.
//!
//! Energies are expressed in *read-equivalents* (1.0 = one vanilla
//! SRAM array read), so the model stays technology-independent.

use eve_uop::{ArithUop, HybridConfig, MacroOpKind, MicroProgram, ProgramLibrary};

/// Relative energy of one SRAM-level operation, in read-equivalents.
#[must_use]
pub fn uop_energy(uop: &ArithUop) -> f64 {
    match uop {
        // Bit-line compute: both wordlines up, single-ended sensing —
        // ~20% over a read (§VI.B).
        ArithUop::Blc { .. } => 1.20,
        // Native read/write match the vanilla SRAM.
        ArithUop::Read { .. } | ArithUop::WriteDataIn { .. } => 1.00,
        ArithUop::WriteConst { .. } => 1.00,
        // Writebacks drive the bus logic and a row write.
        ArithUop::Writeback { .. } | ArithUop::StoreShifter { .. } => 1.00,
        ArithUop::LoadShifter { .. } | ArithUop::LoadXReg { .. } => 1.00,
        // Pure peripheral toggles: no sense amps, no precharge.
        ArithUop::ShiftLeft { .. }
        | ArithUop::ShiftRight { .. }
        | ArithUop::RotateLeft { .. }
        | ArithUop::RotateRight { .. }
        | ArithUop::MaskShift
        | ArithUop::SetMask { .. }
        | ArithUop::SetCarry { .. }
        | ArithUop::ClearSpare => 0.10,
        ArithUop::Nop => 0.0,
    }
}

/// Total energy of one μprogram execution, in read-equivalents per
/// active array (sums the arithmetic μops actually executed).
#[must_use]
pub fn program_energy(prog: &MicroProgram, cfg: HybridConfig) -> f64 {
    // Execute the counter/control flow to know which tuples run and
    // how often — same walk as `eve_uop::count_cycles`.
    use eve_uop::{ControlUop, CounterFile, CounterUop};
    let mut counters = CounterFile::new();
    let mut pc = 0usize;
    let mut energy = 0.0;
    let tuples = prog.tuples();
    let _ = cfg;
    let mut steps = 0u64;
    loop {
        let t = &tuples[pc];
        steps += 1;
        assert!(steps < 1_000_000, "runaway program {}", prog.name());
        energy += uop_energy(&t.arith);
        match t.counter {
            CounterUop::Nop => {}
            CounterUop::Init { ctr, value } => counters.init(ctr, value),
            CounterUop::Decr(ctr) => counters.decr(ctr),
            CounterUop::Incr(ctr) => counters.incr(ctr),
        }
        match t.control {
            ControlUop::Nop => pc += 1,
            ControlUop::Bnz { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    pc += 1;
                } else {
                    pc = target as usize;
                }
            }
            ControlUop::BnzRet { ctr, target } => {
                if counters.take_zero_flag(ctr) {
                    return energy;
                }
                pc = target as usize;
            }
            ControlUop::Bnd { ctr, target } => {
                if counters.take_decade_flag(ctr) {
                    pc = target as usize;
                } else {
                    pc += 1;
                }
            }
            ControlUop::Jump { target } => pc = target as usize,
            ControlUop::Ret => return energy,
        }
    }
}

/// Per-element energy of a macro-operation at a design point: program
/// energy divided by the lanes computing in parallel.
#[must_use]
pub fn energy_per_element(kind: MacroOpKind, cfg: HybridConfig, lanes: u32) -> f64 {
    let prog = ProgramLibrary::new(cfg).program(kind);
    program_energy(&prog, cfg) / f64::from(lanes.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_sram::{LayoutModel, SramGeometry};

    fn lanes(n: u32) -> u32 {
        LayoutModel::new(SramGeometry::PAPER, 32, 32, n)
            .unwrap()
            .lanes()
    }

    #[test]
    fn blc_is_twenty_percent_over_read() {
        let blc = ArithUop::Blc {
            a: eve_uop::Operand::at(eve_uop::VSlot::S1, 0),
            b: eve_uop::Operand::at(eve_uop::VSlot::S2, 0),
            carry_in: eve_uop::CarryIn::Zero,
        };
        assert!((uop_energy(&blc) - 1.2).abs() < 1e-12);
        assert_eq!(uop_energy(&ArithUop::Nop), 0.0);
    }

    #[test]
    fn add_energy_scales_with_segments() {
        // A segment-serial add touches each segment once: energy is
        // roughly proportional to the segment count.
        let e1 = program_energy(
            &ProgramLibrary::new(HybridConfig::new(1).unwrap()).program(MacroOpKind::Add),
            HybridConfig::new(1).unwrap(),
        );
        let e32 = program_energy(
            &ProgramLibrary::new(HybridConfig::new(32).unwrap()).program(MacroOpKind::Add),
            HybridConfig::new(32).unwrap(),
        );
        let ratio = e1 / e32;
        assert!(ratio > 16.0 && ratio < 40.0, "{ratio}");
    }

    #[test]
    fn per_element_add_energy_is_flat_across_hybrids_with_full_lanes() {
        // EVE-1..4 share 64 lanes; their per-element energies order by
        // segment count. EVE-8+ halve lanes but also halve segments,
        // roughly cancelling — the VRAM observation that paradigms
        // have comparable energy efficiency.
        let e4 = energy_per_element(MacroOpKind::Add, HybridConfig::new(4).unwrap(), lanes(4));
        let e8 = energy_per_element(MacroOpKind::Add, HybridConfig::new(8).unwrap(), lanes(8));
        let e32 = energy_per_element(MacroOpKind::Add, HybridConfig::new(32).unwrap(), lanes(32));
        assert!((e8 / e4 - 1.0).abs() < 0.5, "e4 {e4} e8 {e8}");
        assert!((e32 / e4 - 1.0).abs() < 1.0, "e4 {e4} e32 {e32}");
    }

    #[test]
    fn multiply_costs_more_than_add() {
        let cfg = HybridConfig::new(8).unwrap();
        let add = energy_per_element(MacroOpKind::Add, cfg, lanes(8));
        let mul = energy_per_element(MacroOpKind::Mul, cfg, lanes(8));
        assert!(mul > 10.0 * add, "add {add} mul {mul}");
    }
}
