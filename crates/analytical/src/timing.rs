//! Cycle-time model (§VI.B).
//!
//! The vanilla 28 nm SRAM cycles at 1.025 ns with the read path
//! critical. The n-bit Manchester carry chain stays off the critical
//! path through `n = 8`; 16-bit-hybrid pays ~15 % (1.175 ns) and
//! 32-bit ~51 % (1.55 ns). Because the engine shares the L2's arrays,
//! a spawned EVE-16/EVE-32 slows the whole clock — which is why EVE-16
//! underperforms EVE-8 overall despite similar cycle counts (§VII.B).

use eve_common::Picos;

/// Vanilla SRAM / system cycle time at 28 nm.
pub const CYCLE_TIME_BASE_PS: u64 = 1025;

/// Cycle time of a system whose L2 carries EVE-`factor` SRAMs.
/// `factor = 0` (or any `factor <= 8`) gives the unpenalized clock
/// used by the scalar and baseline-vector systems.
#[must_use]
pub fn cycle_time(factor: u32) -> Picos {
    match factor {
        16 => Picos(1175),
        32 => Picos(1550),
        _ => Picos(CYCLE_TIME_BASE_PS),
    }
}

/// Cycle-time penalty relative to the base clock.
#[must_use]
pub fn penalty_ratio(factor: u32) -> f64 {
    cycle_time(factor).0 as f64 / CYCLE_TIME_BASE_PS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factors_pay_nothing() {
        for n in [0u32, 1, 2, 4, 8] {
            assert_eq!(cycle_time(n), Picos(CYCLE_TIME_BASE_PS));
        }
    }

    #[test]
    fn paper_penalties() {
        assert!((penalty_ratio(16) - 1.146).abs() < 0.01);
        assert!((penalty_ratio(32) - 1.512).abs() < 0.01);
    }
}
