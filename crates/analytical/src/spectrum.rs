//! The §II taxonomy spectrum: latency and throughput of add and
//! multiply versus the parallelization factor (Fig 2).

use eve_sram::{LayoutModel, SramGeometry};
use eve_uop::{HybridConfig, LatencyTable, MacroOpKind};

/// One point of the Fig 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Parallelization factor `p`.
    pub factor: u32,
    /// In-situ ALUs (lanes) at this factor — the parenthesized numbers
    /// on Fig 2's x-axis.
    pub alus: u32,
    /// Cycles for a vector add/logic operation.
    pub add_latency: u64,
    /// Cycles for a vector multiply.
    pub mul_latency: u64,
    /// Add throughput, elements per cycle per array.
    pub add_throughput: f64,
    /// Multiply throughput, elements per cycle per array.
    pub mul_throughput: f64,
    /// SRAM bit utilization at this factor.
    pub utilization: f64,
}

impl SpectrumPoint {
    /// Latency and throughput normalized to a reference point (Fig 2
    /// normalizes to `p = 1`): returns
    /// `(add_lat, mul_lat, add_thr, mul_thr)` ratios.
    #[must_use]
    pub fn normalized_to(&self, reference: &SpectrumPoint) -> (f64, f64, f64, f64) {
        (
            self.add_latency as f64 / reference.add_latency as f64,
            self.mul_latency as f64 / reference.mul_latency as f64,
            self.add_throughput / reference.add_throughput,
            self.mul_throughput / reference.mul_throughput,
        )
    }
}

/// Sweeps the parallelization factor for an S-CIM vector engine built
/// from `geometry` holding `vregs` 32-bit vector registers.
///
/// # Panics
///
/// Panics if the geometry cannot hold the registers at some factor —
/// impossible for the paper-scale geometries used here.
#[must_use]
pub fn spectrum(geometry: SramGeometry, vregs: u32) -> Vec<SpectrumPoint> {
    HybridConfig::all()
        .iter()
        .map(|cfg| {
            let p = cfg.segment_bits();
            let layout = LayoutModel::new(geometry, 32, vregs, p).expect("valid spectrum layout");
            let mut lat = LatencyTable::new(*cfg);
            let add = lat.latency(MacroOpKind::Add).0;
            let mul = lat.latency(MacroOpKind::Mul).0;
            let alus = layout.lanes();
            SpectrumPoint {
                factor: p,
                alus,
                add_latency: add,
                mul_latency: mul,
                add_throughput: f64::from(alus) / add as f64,
                mul_throughput: f64::from(alus) / mul as f64,
                utilization: layout.utilization(),
            }
        })
        .collect()
}

/// The paper's Fig 2 configuration: a 256×256 S-CIM SRAM with 32
/// vector registers.
#[must_use]
pub fn spectrum_paper() -> Vec<SpectrumPoint> {
    spectrum(SramGeometry::PAPER, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_points_in_factor_order() {
        let pts = spectrum_paper();
        assert_eq!(pts.len(), 6);
        assert_eq!(
            pts.iter().map(|p| p.factor).collect::<Vec<_>>(),
            [1, 2, 4, 8, 16, 32]
        );
    }

    #[test]
    fn alu_counts_match_fig2_annotations() {
        let pts = spectrum_paper();
        assert_eq!(
            pts.iter().map(|p| p.alus).collect::<Vec<_>>(),
            [64, 64, 64, 32, 16, 8]
        );
    }

    #[test]
    fn latency_monotonically_decreases() {
        let pts = spectrum_paper();
        assert!(pts.windows(2).all(|w| w[0].add_latency > w[1].add_latency));
        assert!(pts.windows(2).all(|w| w[0].mul_latency > w[1].mul_latency));
    }

    #[test]
    fn latency_is_sublinear_in_factor() {
        // §II: control overhead keeps latency from scaling 32x.
        let pts = spectrum_paper();
        let ratio = pts[0].add_latency as f64 / pts[5].add_latency as f64;
        assert!(ratio < 32.0, "add latency ratio {ratio}");
    }

    #[test]
    fn throughput_peaks_at_four_then_falls() {
        let pts = spectrum_paper();
        for metric in [
            |p: &SpectrumPoint| p.add_throughput,
            |p: &SpectrumPoint| p.mul_throughput,
        ] {
            let peak = pts
                .iter()
                .enumerate()
                .max_by(|a, b| metric(a.1).total_cmp(&metric(b.1)))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(pts[peak].factor, 4, "peak at {}", pts[peak].factor);
            // Rising to the peak, falling after.
            assert!(metric(&pts[0]) < metric(&pts[2]));
            assert!(metric(&pts[5]) < metric(&pts[2]));
        }
    }

    #[test]
    fn normalization_reference_is_identity() {
        let pts = spectrum_paper();
        let (al, ml, at, mt) = pts[0].normalized_to(&pts[0]);
        assert_eq!((al, ml, at, mt), (1.0, 1.0, 1.0, 1.0));
        let (al32, ..) = pts[5].normalized_to(&pts[0]);
        assert!(al32 < 0.2, "EVE-32 add latency ratio {al32}");
    }

    #[test]
    fn utilization_peaks_at_balance() {
        let pts = spectrum_paper();
        assert!(pts[2].utilization >= pts[0].utilization);
        assert!(pts[2].utilization > pts[5].utilization);
    }
}
