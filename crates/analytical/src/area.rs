//! Area models: the §VI.B OpenRAM-derived circuit overheads and the
//! §VII system-level area-efficiency analysis.
//!
//! The constants here are the paper's measured 28 nm layout results —
//! our substitution for re-running OpenRAM/DRC/LVS (see DESIGN.md).

/// Per-array (256×128 sub-array) circuit area overhead, percent over a
/// vanilla SRAM (§VI.B).
#[must_use]
pub fn array_overhead_pct(factor: u32) -> f64 {
    match factor {
        1 => 9.0,
        32 => 12.6,
        _ => 15.6, // the bit-hybrid stack is the largest
    }
}

/// Banked overhead: an EVE SRAM is two banked 256×128 sub-arrays,
/// halving the periphery's share (§VI.B).
#[must_use]
pub fn banked_overhead_pct(factor: u32) -> f64 {
    array_overhead_pct(factor) / 2.0
}

/// Sub-arrays in the private L2 (512 KB / 8 KB).
pub const L2_SUBARRAYS: u32 = 64;
/// DTU cost in sub-array equivalents: eight DTUs, each half a
/// sub-array (§VII.B).
pub const DTU_SUBARRAY_EQUIV: f64 = 8.0 * 0.5;
/// Macro-op ROM cost: one sub-array equivalent (§VII.B).
pub const ROM_SUBARRAY_EQUIV: f64 = 1.0;

/// Total EVE area overhead over the baseline L2, percent: circuit
/// overhead on the EVE half of the ways plus the DTU/ROM sub-array
/// additions. For EVE-8 this reproduces the paper's 11.7 %.
///
/// # Examples
///
/// ```
/// use eve_analytical::area::eve_total_overhead_pct;
/// let pct = eve_total_overhead_pct(8);
/// assert!((pct - 11.7).abs() < 0.11, "{pct}");
/// ```
#[must_use]
pub fn eve_total_overhead_pct(factor: u32) -> f64 {
    // Only half the ways use EVE SRAMs, halving the circuit share.
    let circuits = banked_overhead_pct(factor) / 2.0;
    let subarrays = (DTU_SUBARRAY_EQUIV + ROM_SUBARRAY_EQUIV) / f64::from(L2_SUBARRAYS) * 100.0;
    circuits + subarrays
}

/// System-level area relative to a bare O3 core (§VII "Area Efficiency
/// Analysis").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemArea {
    /// System label as printed in reports.
    pub name: &'static str,
    /// Area normalized to the O3 core.
    pub relative_area: f64,
}

/// The paper's area table: O3 1.00×, O3+IV 1.10×, O3+DV 2.00×, EVE-1
/// 1.10×, EVE-2..16 1.12×, EVE-32 1.11×.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemAreaTable;

impl SystemAreaTable {
    /// Relative area for a named system. `eve_factor` selects the EVE
    /// design point when applicable.
    #[must_use]
    pub fn o3() -> SystemArea {
        SystemArea {
            name: "O3",
            relative_area: 1.0,
        }
    }

    /// O3 plus the integrated vector unit.
    #[must_use]
    pub fn o3_iv() -> SystemArea {
        SystemArea {
            name: "O3+IV",
            relative_area: 1.10,
        }
    }

    /// O3 plus the decoupled vector engine.
    #[must_use]
    pub fn o3_dv() -> SystemArea {
        SystemArea {
            name: "O3+DV",
            relative_area: 2.00,
        }
    }

    /// O3 plus an EVE-`factor` engine.
    #[must_use]
    pub fn o3_eve(factor: u32) -> SystemArea {
        let relative_area = match factor {
            1 => 1.10,
            32 => 1.11,
            _ => 1.12,
        };
        SystemArea {
            name: "O3+EVE",
            relative_area,
        }
    }
}

/// Area-normalized performance: speedup divided by relative area.
#[must_use]
pub fn area_normalized(speedup: f64, area: SystemArea) -> f64 {
    speedup / area.relative_area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_banked_overheads() {
        assert!((banked_overhead_pct(1) - 4.5).abs() < 1e-9);
        assert!((banked_overhead_pct(8) - 7.8).abs() < 1e-9);
        assert!((banked_overhead_pct(32) - 6.3).abs() < 1e-9);
    }

    #[test]
    fn eve8_total_matches_paper_11_7_pct() {
        // 7.8/2 = 3.9 circuits + 5/64 = 7.8 sub-arrays = 11.7.
        let pct = eve_total_overhead_pct(8);
        assert!((pct - 11.71).abs() < 0.1, "{pct}");
    }

    #[test]
    fn eve1_is_the_leanest_bitline_design() {
        assert!(eve_total_overhead_pct(1) < eve_total_overhead_pct(8));
        assert!(eve_total_overhead_pct(32) < eve_total_overhead_pct(8));
    }

    #[test]
    fn system_areas_match_section_vii() {
        assert_eq!(SystemAreaTable::o3().relative_area, 1.0);
        assert_eq!(SystemAreaTable::o3_iv().relative_area, 1.10);
        assert_eq!(SystemAreaTable::o3_dv().relative_area, 2.00);
        assert_eq!(SystemAreaTable::o3_eve(1).relative_area, 1.10);
        assert_eq!(SystemAreaTable::o3_eve(8).relative_area, 1.12);
        assert_eq!(SystemAreaTable::o3_eve(32).relative_area, 1.11);
    }

    #[test]
    fn area_normalized_performance_favors_eve_over_dv() {
        // §VII: comparable performance at much lower area means EVE-8
        // more than doubles DV's area-normalized performance.
        let dv = area_normalized(21.58, SystemAreaTable::o3_dv());
        let eve8 = area_normalized(25.60, SystemAreaTable::o3_eve(8));
        assert!(eve8 > 2.0 * dv, "eve8 {eve8} vs dv {dv}");
    }
}
