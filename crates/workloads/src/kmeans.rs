//! `k-means` (Rodinia): nearest-centroid assignment.
//!
//! Vectorized over points: feature columns arrive through strided
//! loads (points are row-major `[point][feature]`), the running
//! nearest-centroid selection is predicated compare + merge, and a
//! final quantization-error pass gathers each point's centroid with an
//! indexed load — reproducing the `st`/`prd`/`idx` mix of Table IV.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VCmpCond, VOperand};

/// Builds an assignment pass over `points x features` with `clusters`
/// centroids.
///
/// # Panics
///
/// Panics if any dimension is zero or `clusters > points`.
#[must_use]
pub fn build(points: usize, features: usize, clusters: usize) -> Built {
    build_at(points, features, clusters, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(points: usize, features: usize, clusters: usize, base: u64) -> Built {
    assert!(
        points > 0 && features > 0 && clusters > 0 && clusters <= points,
        "degenerate k-means configuration"
    );
    let mut layout = Layout::at(base);
    let data = layout.alloc_words(points * features);
    let centers = layout.alloc_words(clusters * features);
    let membership = layout.alloc_words(points);
    let error_addr = layout.alloc_words(1);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x36EA15);
    fill_random(&mut mem, data, points * features, 1 << 8, &mut r);
    fill_random(&mut mem, centers, clusters * features, 1 << 8, &mut r);

    // Golden assignment + error.
    let d = mem.load_u32_slice(data, points * features);
    let c = mem.load_u32_slice(centers, clusters * features);
    let mut expected = Vec::with_capacity(points + 1);
    let mut best_idx = vec![0u32; points];
    for p in 0..points {
        let mut best = i32::MAX as u32;
        for k in 0..clusters {
            let mut dist = 0u32;
            for f in 0..features {
                let diff = d[p * features + f].wrapping_sub(c[k * features + f]);
                dist = dist.wrapping_add(diff.wrapping_mul(diff));
            }
            // Signed compare, as the vector code uses vmslt.
            if (dist as i32) < (best as i32) {
                best = dist;
                best_idx[p] = k as u32;
            }
        }
        expected.push((membership + p as u64 * 4, best_idx[p]));
    }
    let mut error = 0u32;
    for p in 0..points {
        let k = best_idx[p] as usize;
        let diff = d[p * features].wrapping_sub(c[k * features]);
        error = error.wrapping_add(diff.wrapping_mul(diff));
    }
    expected.push((error_addr, error));

    Built {
        name: "kmeans",
        scalar: scalar(
            points, features, clusters, data, centers, membership, error_addr,
        ),
        vector: vector(
            points, features, clusters, data, centers, membership, error_addr,
        ),
        memory: mem,
        expected,
    }
}

#[allow(clippy::too_many_arguments)]
fn scalar(
    points: usize,
    features: usize,
    clusters: usize,
    data: u64,
    centers: u64,
    membership: u64,
    error_addr: u64,
) -> eve_isa::Program {
    let f64_ = features as i64;
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // p
    s.li(xreg::S6, 0); // error accumulator
    s.label("p_loop");
    s.li(xreg::S1, 0); // k
    s.li(xreg::S2, i64::from(i32::MAX)); // best (signed)
    s.li(xreg::S3, 0); // best idx
    s.label("k_loop");
    s.li(xreg::T0, 0); // dist
    s.li(xreg::S4, 0); // f
    s.muli(xreg::A0, xreg::S0, f64_ * 4);
    s.addi(xreg::A0, xreg::A0, data as i64);
    s.muli(xreg::A1, xreg::S1, f64_ * 4);
    s.addi(xreg::A1, xreg::A1, centers as i64);
    s.label("f_loop");
    s.lw(xreg::T1, xreg::A0, 0);
    s.lw(xreg::T2, xreg::A1, 0);
    s.sub(xreg::T1, xreg::T1, xreg::T2);
    s.andi(xreg::T1, xreg::T1, 0xFFFF_FFFF);
    s.mul(xreg::T1, xreg::T1, xreg::T1);
    s.add(xreg::T0, xreg::T0, xreg::T1);
    s.andi(xreg::T0, xreg::T0, 0xFFFF_FFFF);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::S4, xreg::S4, 1);
    s.li(xreg::T5, f64_);
    s.bne(xreg::S4, xreg::T5, "f_loop");
    // Sign-extend dist to compare signed like the vector code.
    s.slli(xreg::T0, xreg::T0, 32);
    s.srai(xreg::T0, xreg::T0, 32);
    s.bge(xreg::T0, xreg::S2, "not_better");
    s.mv(xreg::S2, xreg::T0);
    s.mv(xreg::S3, xreg::S1);
    s.label("not_better");
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, clusters as i64);
    s.bne(xreg::S1, xreg::T5, "k_loop");
    // membership[p] = best idx
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, membership as i64);
    s.sw(xreg::S3, xreg::T5, 0);
    // error += (x[p][0] - centers[best][0])^2
    s.muli(xreg::A0, xreg::S0, f64_ * 4);
    s.addi(xreg::A0, xreg::A0, data as i64);
    s.lw(xreg::T1, xreg::A0, 0);
    s.muli(xreg::A1, xreg::S3, f64_ * 4);
    s.addi(xreg::A1, xreg::A1, centers as i64);
    s.lw(xreg::T2, xreg::A1, 0);
    s.sub(xreg::T1, xreg::T1, xreg::T2);
    s.andi(xreg::T1, xreg::T1, 0xFFFF_FFFF);
    s.mul(xreg::T1, xreg::T1, xreg::T1);
    s.add(xreg::S6, xreg::S6, xreg::T1);
    s.andi(xreg::S6, xreg::S6, 0xFFFF_FFFF);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, points as i64);
    s.bne(xreg::S0, xreg::T5, "p_loop");
    s.li(xreg::T5, error_addr as i64);
    s.sw(xreg::S6, xreg::T5, 0);
    s.halt();
    s.assemble().expect("kmeans scalar assembles")
}

#[allow(clippy::too_many_arguments)]
fn vector(
    points: usize,
    features: usize,
    clusters: usize,
    data: u64,
    centers: u64,
    membership: u64,
    error_addr: u64,
) -> eve_isa::Program {
    let f64_ = features as i64;
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // p0: point-strip base
    s.li(xreg::S6, 0); // scalar error accumulator
    s.li(xreg::S7, f64_ * 4); // feature stride in bytes
    s.label("strip");
    s.li(xreg::T0, points as i64);
    s.sub(xreg::T0, xreg::T0, xreg::S0);
    s.setvl(xreg::T1, xreg::T0);
    s.vmv(vreg::V8, VOperand::Imm(i32::MAX)); // best dist
    s.vmv(vreg::V9, VOperand::Imm(0)); // best idx
    s.li(xreg::S1, 0); // k
    s.label("k_loop");
    s.vmv(vreg::V10, VOperand::Imm(0)); // dist
    s.li(xreg::S4, 0); // f
                       // &data[p0][0]
    s.muli(xreg::A0, xreg::S0, f64_ * 4);
    s.addi(xreg::A0, xreg::A0, data as i64);
    // &centers[k][0]
    s.muli(xreg::A1, xreg::S1, f64_ * 4);
    s.addi(xreg::A1, xreg::A1, centers as i64);
    s.label("f_loop");
    // Strided feature column across the point strip.
    s.vload_strided(vreg::V1, xreg::A0, xreg::S7);
    s.lw(xreg::T2, xreg::A1, 0);
    s.vsub(vreg::V2, vreg::V1, VOperand::Scalar(xreg::T2));
    s.vmul(vreg::V2, vreg::V2, VOperand::Reg(vreg::V2));
    s.vadd(vreg::V10, vreg::V10, VOperand::Reg(vreg::V2));
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::S4, xreg::S4, 1);
    s.li(xreg::T5, f64_);
    s.bne(xreg::S4, xreg::T5, "f_loop");
    // Predicated running minimum.
    s.vcmp(VCmpCond::Lt, vreg::V0, vreg::V10, VOperand::Reg(vreg::V8));
    s.vmerge(vreg::V8, vreg::V10, VOperand::Reg(vreg::V8));
    s.vmv(vreg::V11, VOperand::Scalar(xreg::S1));
    s.vmerge(vreg::V9, vreg::V11, VOperand::Reg(vreg::V9));
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, clusters as i64);
    s.bne(xreg::S1, xreg::T5, "k_loop");
    // membership[p0..] = best idx
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, membership as i64);
    s.vstore(vreg::V9, xreg::T5);
    // Error pass: gather centers[best][0] (indexed) and accumulate.
    s.vmul(vreg::V12, vreg::V9, VOperand::Imm((f64_ * 4) as i32));
    s.li(xreg::T5, centers as i64);
    s.vload_indexed(vreg::V13, xreg::T5, vreg::V12);
    s.muli(xreg::A0, xreg::S0, f64_ * 4);
    s.addi(xreg::A0, xreg::A0, data as i64);
    s.vload_strided(vreg::V1, xreg::A0, xreg::S7); // x[p][0]
    s.vsub(vreg::V2, vreg::V1, VOperand::Reg(vreg::V13));
    s.vmul(vreg::V2, vreg::V2, VOperand::Reg(vreg::V2));
    s.vmv(vreg::V14, VOperand::Imm(0));
    s.vred(eve_isa::RedOp::Sum, vreg::V15, vreg::V2, vreg::V14);
    s.vmv_xs(xreg::T2, vreg::V15);
    s.add(xreg::S6, xreg::S6, xreg::T2);
    s.andi(xreg::S6, xreg::S6, 0xFFFF_FFFF);
    // next strip
    s.add(xreg::S0, xreg::S0, xreg::T1);
    s.li(xreg::T5, points as i64);
    s.bne(xreg::S0, xreg::T5, "strip");
    s.li(xreg::T5, error_addr as i64);
    s.sw(xreg::S6, xreg::T5, 0);
    s.vmfence();
    s.halt();
    s.assemble().expect("kmeans vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn assignment_and_error_match() {
        for (p, f, k) in [(16usize, 4usize, 2usize), (65, 8, 3), (40, 3, 5)] {
            let built = build(p, f, k);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("{p}x{f}x{k} vl={hw_vl}: {e}"));
            }
        }
    }
}
