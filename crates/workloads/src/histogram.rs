//! `histogram` (RiVEC): binned counting with scatter-conflict
//! resolution — the second-wave conflict kernel.
//!
//! Vectorizing a histogram is the classic scatter-conflict problem:
//! two lanes holding the same bin must not lose an increment. This
//! kernel uses the scatter-tag idiom: every active lane scatters its
//! lane id to `tag[bin]`, gathers it back, and the lanes that read
//! their own id back won the race — exactly one winner per distinct
//! bin. Winners gather-increment-scatter their counts under the mask,
//! losers retry, and the loop drains in max-multiplicity iterations.
//! The whole dance is deterministic, so it runs byte-identically on
//! the scalar oracle, the bitsliced interpreter, and the fused tier.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, MaskOp, Memory, RedOp, VArithOp, VCmpCond, VOperand};

/// Builds a `bins`-bin count histogram over `n` seeded keys.
///
/// # Panics
///
/// Panics if `n` or `bins` is zero.
#[must_use]
pub fn build(n: usize, bins: usize) -> Built {
    build_at(n, bins, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, bins: usize, base: u64) -> Built {
    assert!(n > 0 && bins > 0, "degenerate histogram configuration");
    let mut layout = Layout::at(base);
    let keys = layout.alloc_words(n);
    let hist = layout.alloc_words(bins);
    let tags = layout.alloc_words(bins);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x415706);
    fill_random(&mut mem, keys, n, bins as u32, &mut r);

    let kv = mem.load_u32_slice(keys, n);
    let mut counts = vec![0u32; bins];
    for &k in &kv {
        counts[k as usize] += 1;
    }
    let expected = counts
        .iter()
        .enumerate()
        .map(|(b, &c)| (hist + b as u64 * 4, c))
        .collect();

    Built {
        name: "histogram",
        scalar: scalar(n, keys, hist),
        vector: vector(n, keys, hist, tags),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, keys: u64, hist: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // i
    s.label("loop");
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, keys as i64);
    s.lw(xreg::T0, xreg::T5, 0); // key
    s.slli(xreg::T0, xreg::T0, 2);
    s.addi(xreg::T0, xreg::T0, hist as i64);
    s.lw(xreg::T1, xreg::T0, 0);
    s.addi(xreg::T1, xreg::T1, 1);
    s.sw(xreg::T1, xreg::T0, 0);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, n as i64);
    s.bne(xreg::S0, xreg::T5, "loop");
    s.halt();
    s.assemble().expect("histogram scalar assembles")
}

fn vector(n: usize, keys: u64, hist: u64, tags: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // processed
    s.li(xreg::S1, keys as i64); // key cursor
    s.li(xreg::S2, tags as i64);
    s.li(xreg::S3, hist as i64);
    s.label("strip");
    s.li(xreg::T0, n as i64);
    s.sub(xreg::T0, xreg::T0, xreg::S0);
    s.setvl(xreg::T1, xreg::T0);
    s.vload(vreg::V1, xreg::S1); // keys
    s.vsll(vreg::V2, vreg::V1, VOperand::Imm(2)); // byte offsets
    s.vmv(vreg::V3, VOperand::Imm(1)); // active mask: all lanes
    s.label("conflict");
    // Scatter lane ids under the active mask; the last writer per bin
    // (the highest active lane) wins the race deterministically.
    s.vmv(vreg::V0, VOperand::Reg(vreg::V3));
    s.vid(vreg::V4);
    s.vstore_indexed_masked(vreg::V4, xreg::S2, vreg::V2);
    s.vload_indexed_masked(vreg::V5, xreg::S2, vreg::V2);
    s.vcmp(VCmpCond::Eq, vreg::V6, vreg::V5, VOperand::Reg(vreg::V4));
    s.vmask(MaskOp::And, vreg::V6, vreg::V6, vreg::V3); // winners
                                                        // Winners gather their count, bump it, and scatter it back.
    s.vmv(vreg::V0, VOperand::Reg(vreg::V6));
    s.vload_indexed_masked(vreg::V7, xreg::S3, vreg::V2);
    s.vop_masked(VArithOp::Add, vreg::V7, vreg::V7, VOperand::Imm(1));
    s.vstore_indexed_masked(vreg::V7, xreg::S3, vreg::V2);
    // Losers go around again; stop when no lane is active.
    s.vmask(MaskOp::AndNot, vreg::V3, vreg::V3, vreg::V6);
    s.vmv(vreg::V8, VOperand::Imm(0));
    s.vred(RedOp::Sum, vreg::V8, vreg::V3, vreg::V8);
    s.vmv_xs(xreg::T2, vreg::V8);
    s.bnez(xreg::T2, "conflict");
    s.slli(xreg::T5, xreg::T1, 2);
    s.add(xreg::S1, xreg::S1, xreg::T5);
    s.add(xreg::S0, xreg::S0, xreg::T1);
    s.li(xreg::T5, n as i64);
    s.bne(xreg::S0, xreg::T5, "strip");
    s.vmfence();
    s.halt();
    s.assemble().expect("histogram vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn conflict_loop_never_drops_an_increment() {
        for (n, bins) in [(1usize, 1usize), (65, 4), (130, 16), (96, 96)] {
            let built = build(n, bins);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} bins={bins} vl={hw_vl}: {e}"));
            }
        }
    }

    #[test]
    fn single_bin_is_the_worst_case_conflict() {
        // Every lane fights over one bin: the conflict loop must run
        // vl iterations per strip and still count exactly n.
        let built = build(70, 1);
        assert_eq!(built.expected, vec![(built.expected[0].0, 70)]);
        let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
        i.run_to_halt().unwrap();
        built.verify(i.memory()).unwrap();
    }
}
