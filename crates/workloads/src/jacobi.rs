//! `jacobi-2d` (RiVEC): 5-point stencil sweeps.
//!
//! The vector form keeps the left-neighbor in registers via
//! `vslideup` + `vmv.s.x` (the cross-element operations that give the
//! kernel its 17 % `xe` share in Table IV) and divides by 5 with the
//! exact magic-multiply sequence `mulhu(x, 0xCCCC_CCCD) >> 2`.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VArithOp, VOperand};

/// Magic constant for exact unsigned division by five.
const DIV5_MAGIC: i64 = 0xCCCC_CCCD;

fn div5(x: u32) -> u32 {
    ((u64::from(x) * 0xCCCC_CCCD) >> 34) as u32
}

/// Builds an `n x n` grid swept `steps` times (interior cells only).
///
/// # Panics
///
/// Panics if `n < 3` or `steps == 0`.
#[must_use]
pub fn build(n: usize, steps: usize) -> Built {
    build_at(n, steps, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, steps: usize, base: u64) -> Built {
    assert!(n >= 3 && steps > 0, "jacobi needs an interior and work");
    let mut layout = Layout::at(base);
    let a = layout.alloc_words(n * n);
    let b = layout.alloc_words(n * n);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x1AC0B1);
    fill_random(&mut mem, a, n * n, 1 << 10, &mut r);

    // Golden sweeps.
    let mut cur = mem.load_u32_slice(a, n * n);
    let mut nxt = vec![0u32; n * n];
    for _ in 0..steps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let sum = cur[i * n + j]
                    .wrapping_add(cur[i * n + j - 1])
                    .wrapping_add(cur[i * n + j + 1])
                    .wrapping_add(cur[(i - 1) * n + j])
                    .wrapping_add(cur[(i + 1) * n + j]);
                nxt[i * n + j] = div5(sum);
            }
        }
        std::mem::swap(&mut cur, &mut nxt);
    }
    let final_base = if steps % 2 == 1 { b } else { a };
    // Interior cells only: borders of the destination buffer are
    // whatever that buffer held before (never written).
    let expected = (1..n - 1)
        .flat_map(|i| {
            let cur = &cur;
            (1..n - 1).map(move |j| (final_base + ((i * n + j) as u64) * 4, cur[i * n + j]))
        })
        .collect();

    Built {
        name: "jacobi-2d",
        scalar: scalar(n, steps, a, b),
        vector: vector(n, steps, a, b),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, steps: usize, a: u64, b: u64) -> eve_isa::Program {
    let n64 = n as i64;
    let mut s = Asm::new();
    s.li(xreg::S5, steps as i64);
    s.li(xreg::A0, a as i64); // src
    s.li(xreg::A1, b as i64); // dst
    s.label("step_loop");
    s.li(xreg::S0, 1); // i
    s.label("i_loop");
    // cursors at (i, 1)
    s.muli(xreg::A2, xreg::S0, n64 * 4);
    s.add(xreg::A2, xreg::A2, xreg::A0);
    s.addi(xreg::A2, xreg::A2, 4);
    s.muli(xreg::A3, xreg::S0, n64 * 4);
    s.add(xreg::A3, xreg::A3, xreg::A1);
    s.addi(xreg::A3, xreg::A3, 4);
    s.li(xreg::S1, 1); // j
    s.label("j_loop");
    s.lw(xreg::T1, xreg::A2, 0);
    s.lw(xreg::T2, xreg::A2, -4);
    s.add(xreg::T1, xreg::T1, xreg::T2);
    s.lw(xreg::T2, xreg::A2, 4);
    s.add(xreg::T1, xreg::T1, xreg::T2);
    s.lw(xreg::T2, xreg::A2, -(n64 * 4));
    s.add(xreg::T1, xreg::T1, xreg::T2);
    s.lw(xreg::T2, xreg::A2, n64 * 4);
    s.add(xreg::T1, xreg::T1, xreg::T2);
    // Exact /5: (x * magic) >> 34 on the 64-bit scalar datapath, then
    // keep 32 bits.
    s.andi(xreg::T1, xreg::T1, 0xFFFF_FFFF);
    s.li(xreg::T3, DIV5_MAGIC);
    s.mul(xreg::T1, xreg::T1, xreg::T3);
    s.srli(xreg::T1, xreg::T1, 34);
    s.sw(xreg::T1, xreg::A3, 0);
    s.addi(xreg::A2, xreg::A2, 4);
    s.addi(xreg::A3, xreg::A3, 4);
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, n64 - 1);
    s.bne(xreg::S1, xreg::T5, "j_loop");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, n64 - 1);
    s.bne(xreg::S0, xreg::T5, "i_loop");
    // swap buffers
    s.mv(xreg::T5, xreg::A0);
    s.mv(xreg::A0, xreg::A1);
    s.mv(xreg::A1, xreg::T5);
    s.addi(xreg::S5, xreg::S5, -1);
    s.bnez(xreg::S5, "step_loop");
    s.halt();
    s.assemble().expect("jacobi scalar assembles")
}

fn vector(n: usize, steps: usize, a: u64, b: u64) -> eve_isa::Program {
    let n64 = n as i64;
    let mut s = Asm::new();
    s.li(xreg::S5, steps as i64);
    s.li(xreg::A0, a as i64);
    s.li(xreg::A1, b as i64);
    s.label("step_loop");
    s.li(xreg::S0, 1); // i
    s.label("i_loop");
    s.li(xreg::S1, 1); // j0
    s.label("strip");
    s.li(xreg::T0, n64 - 1);
    s.sub(xreg::T0, xreg::T0, xreg::S1);
    s.setvl(xreg::T1, xreg::T0);
    // &src[i][j0]
    s.muli(xreg::A2, xreg::S0, n64 * 4);
    s.add(xreg::A2, xreg::A2, xreg::A0);
    s.slli(xreg::T2, xreg::S1, 2);
    s.add(xreg::A2, xreg::A2, xreg::T2);
    s.vload(vreg::V1, xreg::A2); // center
                                 // Left neighbor: slide the center up one and inject src[i][j0-1]
                                 // into element 0 (cross-element work, §Table IV "xe").
    s.vslide(vreg::V2, vreg::V1, xreg::ZERO, true); // placeholder copy
    s.li(xreg::T3, 1);
    s.vslide(vreg::V2, vreg::V1, xreg::T3, true);
    s.lw(xreg::T4, xreg::A2, -4);
    s.vmv_sx(vreg::V2, xreg::T4);
    // Right neighbor: unaligned unit load.
    s.addi(xreg::T3, xreg::A2, 4);
    s.vload(vreg::V3, xreg::T3);
    // Up/down rows.
    s.addi(xreg::T3, xreg::A2, -(n64 * 4));
    s.vload(vreg::V4, xreg::T3);
    s.addi(xreg::T3, xreg::A2, n64 * 4);
    s.vload(vreg::V5, xreg::T3);
    // Sum and exact /5.
    s.vadd(vreg::V6, vreg::V1, VOperand::Reg(vreg::V2));
    s.vadd(vreg::V6, vreg::V6, VOperand::Reg(vreg::V3));
    s.vadd(vreg::V6, vreg::V6, VOperand::Reg(vreg::V4));
    s.vadd(vreg::V6, vreg::V6, VOperand::Reg(vreg::V5));
    s.li(xreg::T3, DIV5_MAGIC);
    s.vop(
        VArithOp::Mulhu,
        vreg::V7,
        vreg::V6,
        VOperand::Scalar(xreg::T3),
    );
    s.vsrl(vreg::V7, vreg::V7, VOperand::Imm(2));
    // &dst[i][j0]
    s.muli(xreg::A3, xreg::S0, n64 * 4);
    s.add(xreg::A3, xreg::A3, xreg::A1);
    s.slli(xreg::T2, xreg::S1, 2);
    s.add(xreg::A3, xreg::A3, xreg::T2);
    s.vstore(vreg::V7, xreg::A3);
    s.add(xreg::S1, xreg::S1, xreg::T1);
    s.li(xreg::T5, n64 - 1);
    s.bne(xreg::S1, xreg::T5, "strip");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, n64 - 1);
    s.bne(xreg::S0, xreg::T5, "i_loop");
    s.vmfence();
    s.mv(xreg::T5, xreg::A0);
    s.mv(xreg::A0, xreg::A1);
    s.mv(xreg::A1, xreg::T5);
    s.addi(xreg::S5, xreg::S5, -1);
    s.bnez(xreg::S5, "step_loop");
    s.halt();
    s.assemble().expect("jacobi vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn div5_magic_is_exact() {
        for x in [0u32, 1, 4, 5, 6, 1000, u32::MAX, u32::MAX - 3] {
            assert_eq!(div5(x), x / 5, "{x}");
        }
    }

    #[test]
    fn stencil_matches_at_strip_boundaries() {
        for (n, steps) in [(3usize, 1usize), (10, 3), (70, 2)] {
            let built = build(n, steps);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} steps={steps} vl={hw_vl}: {e}"));
            }
        }
    }
}
