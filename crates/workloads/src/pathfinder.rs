//! `pathfinder` (Rodinia): row-by-row grid dynamic programming.
//!
//! `dst[j] = wall[r][j] + min(src[j-1], src[j], src[j+1])`. The
//! vectorized form uses three overlapping unit-stride loads; one of
//! the two minima is computed as a compare + mask + merge (as the
//! Rodinia RVV port does), which is where the kernel's 25 %
//! predication in Table IV comes from.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VCmpCond, VOperand};

/// Sentinel padding so `j-1`/`j+1` never need branches.
const PAD_VALUE: u32 = i32::MAX as u32 / 2;

/// Builds a `rows x cols` pathfinder instance.
///
/// # Panics
///
/// Panics if `rows < 2` or `cols < 3`.
#[must_use]
pub fn build(rows: usize, cols: usize) -> Built {
    build_at(rows, cols, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(rows: usize, cols: usize, base: u64) -> Built {
    assert!(rows >= 2 && cols >= 3, "pathfinder needs a real grid");
    let mut layout = Layout::at(base);
    let wall = layout.alloc_words(rows * cols);
    // src/dst rows padded by one sentinel on each side.
    let src = layout.alloc_words(cols + 2) + 4;
    let dst = layout.alloc_words(cols + 2) + 4;
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x9A7);
    fill_random(&mut mem, wall, rows * cols, 1 << 10, &mut r);
    mem.store_u32(src - 4, PAD_VALUE);
    mem.store_u32(src + cols as u64 * 4, PAD_VALUE);
    mem.store_u32(dst - 4, PAD_VALUE);
    mem.store_u32(dst + cols as u64 * 4, PAD_VALUE);
    // First DP row = wall row 0.
    for j in 0..cols {
        mem.store_u32(src + j as u64 * 4, mem.load_u32(wall + j as u64 * 4));
    }

    // Golden: run the DP in Rust. Result lands in src or dst depending
    // on row parity (rows-1 sweeps).
    let w = mem.load_u32_slice(wall, rows * cols);
    let mut cur: Vec<u32> = (0..cols).map(|j| w[j]).collect();
    for row in 1..rows {
        let mut next = vec![0u32; cols];
        for j in 0..cols {
            let left = if j > 0 { cur[j - 1] } else { PAD_VALUE };
            let right = if j + 1 < cols { cur[j + 1] } else { PAD_VALUE };
            next[j] = w[row * cols + j].wrapping_add(left.min(cur[j]).min(right));
        }
        cur = next;
    }
    let final_base = if rows % 2 == 1 { src } else { dst };
    let expected = cur
        .iter()
        .enumerate()
        .map(|(j, &v)| (final_base + j as u64 * 4, v))
        .collect();

    Built {
        name: "pathfinder",
        scalar: scalar(rows, cols, wall, src, dst),
        vector: vector(rows, cols, wall, src, dst),
        memory: mem,
        expected,
    }
}

fn scalar(rows: usize, cols: usize, wall: u64, src: u64, dst: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 1); // row
    s.li(xreg::A0, src as i64);
    s.li(xreg::A1, dst as i64);
    s.label("row_loop");
    s.li(xreg::S1, 0); // j
    s.muli(xreg::A2, xreg::S0, cols as i64 * 4);
    s.addi(xreg::A2, xreg::A2, wall as i64); // &wall[row][0]
    s.mv(xreg::A3, xreg::A0); // src cursor (points at j)
    s.mv(xreg::A4, xreg::A1); // dst cursor
    s.label("col_loop");
    s.lw(xreg::T1, xreg::A3, -4);
    s.lw(xreg::T2, xreg::A3, 0);
    s.lw(xreg::T3, xreg::A3, 4);
    // min3 via slt+branchless select is verbose scalar; use branches.
    s.blt(xreg::T1, xreg::T2, "skip1");
    s.mv(xreg::T1, xreg::T2);
    s.label("skip1");
    s.blt(xreg::T1, xreg::T3, "skip2");
    s.mv(xreg::T1, xreg::T3);
    s.label("skip2");
    s.lw(xreg::T4, xreg::A2, 0);
    s.add(xreg::T4, xreg::T4, xreg::T1);
    s.sw(xreg::T4, xreg::A4, 0);
    s.addi(xreg::A2, xreg::A2, 4);
    s.addi(xreg::A3, xreg::A3, 4);
    s.addi(xreg::A4, xreg::A4, 4);
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, cols as i64);
    s.bne(xreg::S1, xreg::T5, "col_loop");
    // swap src/dst
    s.mv(xreg::T5, xreg::A0);
    s.mv(xreg::A0, xreg::A1);
    s.mv(xreg::A1, xreg::T5);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, rows as i64);
    s.bne(xreg::S0, xreg::T5, "row_loop");
    s.halt();
    s.assemble().expect("pathfinder scalar assembles")
}

fn vector(rows: usize, cols: usize, wall: u64, src: u64, dst: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 1); // row
    s.li(xreg::A0, src as i64);
    s.li(xreg::A1, dst as i64);
    s.label("row_loop");
    s.li(xreg::S1, 0); // j0
    s.muli(xreg::A2, xreg::S0, cols as i64 * 4);
    s.addi(xreg::A2, xreg::A2, wall as i64);
    s.mv(xreg::A3, xreg::A0);
    s.mv(xreg::A4, xreg::A1);
    s.label("strip");
    s.li(xreg::T0, cols as i64);
    s.sub(xreg::T0, xreg::T0, xreg::S1);
    s.setvl(xreg::T1, xreg::T0);
    // Three overlapping unit loads of the previous DP row.
    s.addi(xreg::T2, xreg::A3, -4);
    s.vload(vreg::V1, xreg::T2); // src[j-1]
    s.vload(vreg::V2, xreg::A3); // src[j]
    s.addi(xreg::T2, xreg::A3, 4);
    s.vload(vreg::V3, xreg::T2); // src[j+1]
                                 // min(left, center) hardware-min; min(.., right) via predication
                                 // (compare + merge), as the Rodinia port does.
    s.vmin(vreg::V4, vreg::V1, VOperand::Reg(vreg::V2));
    s.vcmp(VCmpCond::Lt, vreg::V0, vreg::V3, VOperand::Reg(vreg::V4));
    s.vmerge(vreg::V4, vreg::V3, VOperand::Reg(vreg::V4));
    // += wall row
    s.vload(vreg::V5, xreg::A2);
    s.vadd(vreg::V6, vreg::V5, VOperand::Reg(vreg::V4));
    s.vstore(vreg::V6, xreg::A4);
    // advance cursors by vl
    s.slli(xreg::T2, xreg::T1, 2);
    s.add(xreg::A2, xreg::A2, xreg::T2);
    s.add(xreg::A3, xreg::A3, xreg::T2);
    s.add(xreg::A4, xreg::A4, xreg::T2);
    s.add(xreg::S1, xreg::S1, xreg::T1);
    s.li(xreg::T5, cols as i64);
    s.bne(xreg::S1, xreg::T5, "strip");
    // Fence before the swapped buffer is consumed next sweep.
    s.vmfence();
    s.mv(xreg::T5, xreg::A0);
    s.mv(xreg::A0, xreg::A1);
    s.mv(xreg::A1, xreg::T5);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, rows as i64);
    s.bne(xreg::S0, xreg::T5, "row_loop");
    s.halt();
    s.assemble().expect("pathfinder vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn dp_matches_at_odd_strip_boundaries() {
        for (rows, cols) in [(2usize, 3usize), (3, 65), (5, 130), (4, 64)] {
            let built = build(rows, cols);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("{rows}x{cols} vl={hw_vl}: {e}"));
            }
        }
    }
}
