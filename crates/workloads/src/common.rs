//! Shared helpers: memory layout and deterministic input generation.

use eve_common::SplitMix64;
use eve_isa::Memory;

/// Base address of workload data (above the null page and stack).
pub const DATA_BASE: u64 = 0x1_0000;

/// Bump allocator laying arrays out line-aligned in simulated memory.
#[derive(Debug)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Starts allocating at [`DATA_BASE`].
    #[must_use]
    pub fn new() -> Self {
        Self::at(DATA_BASE)
    }

    /// Starts allocating at `base` (rounded up to a line boundary) —
    /// how CMP runs give each core a disjoint address space.
    #[must_use]
    pub fn at(base: u64) -> Self {
        Self {
            next: base.div_ceil(64) * 64,
        }
    }

    /// Reserves `words` 32-bit words, 64-byte aligned.
    pub fn alloc_words(&mut self, words: usize) -> u64 {
        let addr = self.next;
        let bytes = (words as u64 * 4).div_ceil(64) * 64;
        self.next = addr + bytes;
        addr
    }

    /// Bytes needed for everything allocated so far (plus slack).
    #[must_use]
    pub fn memory_size(&self) -> usize {
        (self.next + 0x1_0000) as usize
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic RNG for input generation (fixed seed per kernel so
/// golden outputs are reproducible).
#[must_use]
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Fills `words` consecutive 32-bit words with values in `0..bound`.
pub fn fill_random(mem: &mut Memory, addr: u64, words: usize, bound: u32, rng: &mut SplitMix64) {
    for i in 0..words {
        mem.store_u32(addr + i as u64 * 4, rng.below(u64::from(bound)) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned() {
        let mut l = Layout::new();
        let a = l.alloc_words(3);
        let b = l.alloc_words(100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 64);
        assert!(l.memory_size() > b as usize);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut m1 = Memory::new(1024);
        let mut m2 = Memory::new(1024);
        fill_random(&mut m1, 0, 64, 100, &mut rng(7));
        fill_random(&mut m2, 0, 64, 100, &mut rng(7));
        assert_eq!(m1, m2);
    }
}
