//! `blackscholes` (PARSEC-style): streaming fixed-point option
//! pricing — the second-wave compute-bound elementwise kernel.
//!
//! The real Black-Scholes kernel is transcendental-heavy floating
//! point; EVE's integer ISA gets the same *shape* — a long streaming
//! chain of multiplies, shifts, clamps, and a moneyness select per
//! element — in Q-format fixed point. Per element: intrinsic value
//! `(s-k)^2 >> 6`, time value `t*s >> 8`, a signed min/max clamp, and
//! a predicated in/out-of-the-money merge. Roughly nine math ops per
//! four memory ops, so it lands compute-bound, the opposite corner
//! from `vvadd`.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VArithOp, VCmpCond, VOperand};

/// Signed clamp ceiling for the priced value.
const CAP: i32 = 1 << 20;

/// Price `n` seeded options: `out[i] = price(s[i], k[i], t[i])`.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn build(n: usize) -> Built {
    build_at(n, crate::common::DATA_BASE)
}

/// The golden per-element price, in wrapping 32-bit arithmetic.
fn price(s: u32, k: u32, t: u32) -> u32 {
    let m = s.wrapping_sub(k);
    let q = ((m.wrapping_mul(m) as i32) >> 6) as u32;
    let tv = t.wrapping_mul(s) >> 8;
    let mut p = q.wrapping_add(tv) as i32;
    p = p.clamp(0, CAP);
    if (k as i32) < (s as i32) {
        p as u32
    } else {
        t >> 4
    }
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, base: u64) -> Built {
    assert!(n > 0, "blackscholes needs at least one option");
    let mut layout = Layout::at(base);
    let spot = layout.alloc_words(n);
    let strike = layout.alloc_words(n);
    let time = layout.alloc_words(n);
    let out = layout.alloc_words(n);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0xB5_C401E5);
    fill_random(&mut mem, spot, n, 1 << 16, &mut r);
    fill_random(&mut mem, strike, n, 1 << 16, &mut r);
    fill_random(&mut mem, time, n, 1 << 16, &mut r);

    let expected = (0..n)
        .map(|i| {
            let o = i as u64 * 4;
            (
                out + o,
                price(
                    mem.load_u32(spot + o),
                    mem.load_u32(strike + o),
                    mem.load_u32(time + o),
                ),
            )
        })
        .collect();

    Built {
        name: "blackscholes",
        scalar: scalar(n, spot, strike, time, out),
        vector: vector(n, spot, strike, time, out),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, spot: u64, strike: u64, time: u64, out: u64) -> eve_isa::Program {
    let mask = 0xFFFF_FFFF;
    let mut s = Asm::new();
    s.li(xreg::S0, n as i64);
    s.li(xreg::A0, spot as i64);
    s.li(xreg::A1, strike as i64);
    s.li(xreg::A2, time as i64);
    s.li(xreg::A3, out as i64);
    s.label("loop");
    s.lw(xreg::T0, xreg::A0, 0); // s
    s.lw(xreg::T1, xreg::A1, 0); // k
    s.lw(xreg::T2, xreg::A2, 0); // t
    s.sub(xreg::T3, xreg::T0, xreg::T1); // m
    s.andi(xreg::T3, xreg::T3, mask);
    s.mul(xreg::T3, xreg::T3, xreg::T3); // m^2
    s.andi(xreg::T3, xreg::T3, mask);
    s.slli(xreg::T3, xreg::T3, 32); // q = m^2 >>s 6
    s.srai(xreg::T3, xreg::T3, 38);
    s.andi(xreg::T3, xreg::T3, mask);
    s.mul(xreg::T4, xreg::T2, xreg::T0); // t*s
    s.andi(xreg::T4, xreg::T4, mask);
    s.srli(xreg::T4, xreg::T4, 8); // tv
    s.add(xreg::T3, xreg::T3, xreg::T4); // p
    s.andi(xreg::T3, xreg::T3, mask);
    s.slli(xreg::T3, xreg::T3, 32); // signed clamp to [0, CAP]
    s.srai(xreg::T3, xreg::T3, 32);
    s.li(xreg::T5, i64::from(CAP));
    s.blt(xreg::T3, xreg::T5, "capped");
    s.mv(xreg::T3, xreg::T5);
    s.label("capped");
    s.li(xreg::T5, 0);
    s.bge(xreg::T3, xreg::T5, "floored");
    s.mv(xreg::T3, xreg::T5);
    s.label("floored");
    s.andi(xreg::T3, xreg::T3, mask);
    s.srli(xreg::T4, xreg::T2, 4); // out-of-the-money value
    s.blt(xreg::T1, xreg::T0, "itm"); // k < s (both fit in 16 bits)
    s.mv(xreg::T3, xreg::T4);
    s.label("itm");
    s.sw(xreg::T3, xreg::A3, 0);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::A2, xreg::A2, 4);
    s.addi(xreg::A3, xreg::A3, 4);
    s.addi(xreg::S0, xreg::S0, -1);
    s.bnez(xreg::S0, "loop");
    s.halt();
    s.assemble().expect("blackscholes scalar assembles")
}

fn vector(n: usize, spot: u64, strike: u64, time: u64, out: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, n as i64);
    s.li(xreg::A0, spot as i64);
    s.li(xreg::A1, strike as i64);
    s.li(xreg::A2, time as i64);
    s.li(xreg::A3, out as i64);
    s.label("strip");
    s.setvl(xreg::T1, xreg::S0);
    s.vload(vreg::V1, xreg::A0); // s
    s.vload(vreg::V2, xreg::A1); // k
    s.vload(vreg::V3, xreg::A2); // t
    s.vsub(vreg::V4, vreg::V1, VOperand::Reg(vreg::V2)); // m
    s.vmul(vreg::V5, vreg::V4, VOperand::Reg(vreg::V4)); // m^2
    s.vop(VArithOp::Sra, vreg::V5, vreg::V5, VOperand::Imm(6)); // q
    s.vmul(vreg::V6, vreg::V3, VOperand::Reg(vreg::V1)); // t*s
    s.vsrl(vreg::V6, vreg::V6, VOperand::Imm(8)); // tv
    s.vadd(vreg::V7, vreg::V5, VOperand::Reg(vreg::V6)); // p
    s.vmin(vreg::V7, vreg::V7, VOperand::Imm(CAP));
    s.vmax(vreg::V7, vreg::V7, VOperand::Imm(0));
    s.vcmp(VCmpCond::Lt, vreg::V0, vreg::V2, VOperand::Reg(vreg::V1)); // k < s
    s.vsrl(vreg::V8, vreg::V3, VOperand::Imm(4)); // otm value
    s.vmerge(vreg::V7, vreg::V7, VOperand::Reg(vreg::V8));
    s.vstore(vreg::V7, xreg::A3);
    s.slli(xreg::T2, xreg::T1, 2);
    s.add(xreg::A0, xreg::A0, xreg::T2);
    s.add(xreg::A1, xreg::A1, xreg::T2);
    s.add(xreg::A2, xreg::A2, xreg::T2);
    s.add(xreg::A3, xreg::A3, xreg::T2);
    s.sub(xreg::S0, xreg::S0, xreg::T1);
    s.bnez(xreg::S0, "strip");
    s.vmfence();
    s.halt();
    s.assemble().expect("blackscholes vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn odd_sizes_strip_mine_correctly() {
        for n in [1usize, 7, 63, 64, 65, 130] {
            let built = build(n);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} vl={hw_vl}: {e}"));
            }
        }
    }

    #[test]
    fn both_moneyness_branches_are_exercised() {
        // Out-of-the-money prices are `t >> 4` < 4096; in-the-money
        // prices with any real moneyness blow well past that. Both
        // populations must appear or the merge is untested.
        let built = build(256);
        let big: usize = built.expected.iter().filter(|&&(_, v)| v > 4095).count();
        assert!(big > 0 && big < 256, "select must go both ways: {big}");
    }
}
