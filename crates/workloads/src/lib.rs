//! The benchmark kernels (Table IV).
//!
//! The paper evaluates EVE on seven integer kernels from Rodinia,
//! RiVEC, a genomics code, and two micro-kernels, hand-vectorized with
//! RVV intrinsics. This crate provides the same kernels written in the
//! `eve-isa` kernel IR, in *both* scalar and vectorized forms, plus
//! deterministic input generation and golden outputs computed by plain
//! Rust — every simulated run doubles as an end-to-end correctness
//! check.
//!
//! | kernel | suite | pattern it stresses |
//! |--------|-------|----------------------|
//! | `vvadd` | micro | streaming unit-stride, memory-bound |
//! | `mmult` | micro | compute-bound multiply-accumulate |
//! | `k-means` | Rodinia | strided features, predicated min-select, indexed gather |
//! | `pathfinder` | Rodinia | overlapping unit-stride, heavy predication |
//! | `jacobi-2d` | RiVEC | stencil with cross-element slides |
//! | `backprop` | Rodinia | huge-stride weight columns (MSHR killer, Fig 8) |
//! | `sw` | genomics | anti-diagonal strided walks, compare/merge, reductions |
//! | `spmv` | RiVEC | CSR gather over irregular rows, per-row reductions |
//! | `histogram` | RiVEC | scatter-conflict resolution, masked gathers |
//! | `blackscholes` | PARSEC-style | compute-bound fixed-point streaming |
//! | `scan` | RiVEC | cross-element Hillis-Steele prefix ladder |
//!
//! # Examples
//!
//! ```
//! use eve_isa::{Interpreter, Memory};
//! use eve_workloads::Workload;
//!
//! let built = Workload::vvadd(256).build();
//! let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
//! i.run_to_halt()?;
//! built.verify(i.memory()).expect("vector results match golden");
//! # Ok::<(), eve_isa::IsaError>(())
//! ```

pub mod backprop;
pub mod blackscholes;
pub mod common;
pub mod histogram;
pub mod jacobi;
pub mod kmeans;
pub mod mmult;
pub mod pathfinder;
pub mod scan;
pub mod spmv;
pub mod sw;
pub mod vvadd;

use eve_isa::{Memory, Program};

/// A built workload: programs, initialized memory, and golden outputs.
#[derive(Debug, Clone)]
pub struct Built {
    /// Kernel name as reported in tables.
    pub name: &'static str,
    /// The scalar implementation.
    pub scalar: Program,
    /// The vectorized implementation.
    pub vector: Program,
    /// Initialized input memory (shared by both versions).
    pub memory: Memory,
    /// `(address, value)` pairs the outputs must contain.
    pub expected: Vec<(u64, u32)>,
}

impl Built {
    /// Checks the golden outputs against a post-run memory image.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify(&self, mem: &Memory) -> Result<(), String> {
        for &(addr, want) in &self.expected {
            let got = mem.load_u32(addr);
            if got != want {
                return Err(format!(
                    "{}: mem[{addr:#x}] = {got:#x}, expected {want:#x}",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// A parameterized workload from the Table IV suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `c[i] = a[i] + b[i]` over `n` elements.
    Vvadd { n: usize },
    /// `n x n` integer matrix multiply.
    Mmult { n: usize },
    /// K-means assignment over `points x features`, `clusters`
    /// centroids.
    Kmeans {
        points: usize,
        features: usize,
        clusters: usize,
    },
    /// Grid DP over `rows x cols`.
    Pathfinder { rows: usize, cols: usize },
    /// 5-point stencil, `steps` sweeps over an `n x n` grid.
    Jacobi2d { n: usize, steps: usize },
    /// One dense layer forward pass: `inputs -> hidden` units.
    Backprop { inputs: usize, hidden: usize },
    /// Smith-Waterman local alignment of two length-`n` sequences.
    Sw { n: usize },
    /// CSR sparse matrix-vector multiply: `rows x cols`, per-row
    /// nonzeros drawn from `0..=max_nnz`.
    Spmv {
        rows: usize,
        cols: usize,
        max_nnz: usize,
    },
    /// `bins`-bin count histogram over `n` keys with scatter-conflict
    /// resolution.
    Histogram { n: usize, bins: usize },
    /// Fixed-point streaming option pricing over `n` elements.
    Blackscholes { n: usize },
    /// Inclusive prefix sum over `n` elements.
    Scan { n: usize },
}

/// A kernel name that [`Workload::tiny_by_name`] does not know,
/// carrying the full valid vocabulary for the error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel {:?}; valid kernels: {}",
            self.name,
            Workload::names().join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

impl Workload {
    /// Streaming vector add.
    #[must_use]
    pub fn vvadd(n: usize) -> Self {
        Workload::Vvadd { n }
    }

    /// Matrix multiply.
    #[must_use]
    pub fn mmult(n: usize) -> Self {
        Workload::Mmult { n }
    }

    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Vvadd { .. } => "vvadd",
            Workload::Mmult { .. } => "mmult",
            Workload::Kmeans { .. } => "kmeans",
            Workload::Pathfinder { .. } => "pathfinder",
            Workload::Jacobi2d { .. } => "jacobi-2d",
            Workload::Backprop { .. } => "backprop",
            Workload::Sw { .. } => "sw",
            Workload::Spmv { .. } => "spmv",
            Workload::Histogram { .. } => "histogram",
            Workload::Blackscholes { .. } => "blackscholes",
            Workload::Scan { .. } => "scan",
        }
    }

    /// Builds programs, memory, and golden outputs.
    #[must_use]
    pub fn build(&self) -> Built {
        self.build_at(common::DATA_BASE)
    }

    /// Like [`Workload::build`], laying data out from `base` — CMP
    /// runs give each core a disjoint address region so cores do not
    /// spuriously share lines in the shared LLC.
    #[must_use]
    pub fn build_at(&self, base: u64) -> Built {
        match *self {
            Workload::Vvadd { n } => vvadd::build_at(n, base),
            Workload::Mmult { n } => mmult::build_at(n, base),
            Workload::Kmeans {
                points,
                features,
                clusters,
            } => kmeans::build_at(points, features, clusters, base),
            Workload::Pathfinder { rows, cols } => pathfinder::build_at(rows, cols, base),
            Workload::Jacobi2d { n, steps } => jacobi::build_at(n, steps, base),
            Workload::Backprop { inputs, hidden } => backprop::build_at(inputs, hidden, base),
            Workload::Sw { n } => sw::build_at(n, base),
            Workload::Spmv {
                rows,
                cols,
                max_nnz,
            } => spmv::build_at(rows, cols, max_nnz, base),
            Workload::Histogram { n, bins } => histogram::build_at(n, bins, base),
            Workload::Blackscholes { n } => blackscholes::build_at(n, base),
            Workload::Scan { n } => scan::build_at(n, base),
        }
    }

    /// Every valid kernel name, in Table IV order — the vocabulary
    /// CLI tools accept and print in their usage errors.
    #[must_use]
    pub fn names() -> Vec<&'static str> {
        Self::tiny_suite().iter().map(Workload::name).collect()
    }

    /// Looks up a tiny-sized workload by its Table IV name. Accepts
    /// `"jacobi"` as an alias for `"jacobi-2d"`.
    ///
    /// # Errors
    ///
    /// Unknown names come back as [`UnknownWorkload`], whose `Display`
    /// lists the whole valid vocabulary — new kernels show up in CLI
    /// usage errors automatically.
    pub fn tiny_by_name(name: &str) -> Result<Workload, UnknownWorkload> {
        let canonical = if name == "jacobi" { "jacobi-2d" } else { name };
        Self::tiny_suite()
            .into_iter()
            .find(|w| w.name() == canonical)
            .ok_or_else(|| UnknownWorkload {
                name: name.to_owned(),
            })
    }

    /// The default evaluation suite: the paper's seven kernels at
    /// inputs scaled to simulate in seconds (see DESIGN.md).
    #[must_use]
    pub fn suite() -> Vec<Workload> {
        vec![
            Workload::Vvadd { n: 65536 },
            Workload::Mmult { n: 192 },
            // 34 features as in the paper's 10Kx34 input: the feature
            // stride (136 B) exceeds a cache line, so every strided
            // element is its own line request — the k-means MSHR
            // pressure of Fig 8.
            // points x features x 4B = 2.2 MB: larger than the LLC,
            // like the paper's input, so each cluster sweep re-misses.
            Workload::Kmeans {
                points: 16384,
                features: 34,
                clusters: 4,
            },
            Workload::Pathfinder {
                rows: 8,
                cols: 8192,
            },
            Workload::Jacobi2d { n: 384, steps: 2 },
            Workload::Backprop {
                inputs: 49152,
                hidden: 16,
            },
            Workload::Sw { n: 512 },
            Workload::Spmv {
                rows: 384,
                cols: 1024,
                max_nnz: 256,
            },
            Workload::Histogram {
                n: 32768,
                bins: 256,
            },
            Workload::Blackscholes { n: 49152 },
            Workload::Scan { n: 49152 },
        ]
    }

    /// [`Workload::suite`] with the two scatter/gather-bound kernels
    /// promoted to evaluation-scale inputs:
    ///
    /// * `spmv` grows to 768×4096 with up to 512 nonzeros per row, so
    ///   the column gather sweeps a vector larger than the LLC and the
    ///   per-row nonzero imbalance is measured at real depth;
    /// * `histogram` grows to 98 304 keys over the same 256 bins, so
    ///   the scatter-conflict loop sees ~3× the default conflict
    ///   opportunities per bin and its measured VPar is the
    ///   steady-state figure, not a warm-up artifact.
    ///
    /// Everything else keeps the default inputs — the point is to
    /// re-measure the two conflict-bound kernels, not to triple the
    /// whole campaign's runtime. `tab4_benchmarks --eval-scale`
    /// selects this suite.
    #[must_use]
    pub fn eval_scale_suite() -> Vec<Workload> {
        Self::suite()
            .into_iter()
            .map(|w| match w {
                Workload::Spmv { .. } => Workload::Spmv {
                    rows: 768,
                    cols: 4096,
                    max_nnz: 512,
                },
                Workload::Histogram { .. } => Workload::Histogram {
                    n: 98_304,
                    bins: 256,
                },
                other => other,
            })
            .collect()
    }

    /// A miniature suite for fast smoke tests.
    #[must_use]
    pub fn tiny_suite() -> Vec<Workload> {
        vec![
            Workload::Vvadd { n: 300 },
            Workload::Mmult { n: 12 },
            Workload::Kmeans {
                points: 64,
                features: 8,
                clusters: 3,
            },
            Workload::Pathfinder { rows: 4, cols: 200 },
            Workload::Jacobi2d { n: 24, steps: 2 },
            Workload::Backprop {
                inputs: 256,
                hidden: 8,
            },
            Workload::Sw { n: 48 },
            Workload::Spmv {
                rows: 24,
                cols: 64,
                max_nnz: 24,
            },
            Workload::Histogram { n: 256, bins: 32 },
            Workload::Blackscholes { n: 300 },
            Workload::Scan { n: 260 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn every_name_round_trips_through_lookup() {
        for w in Workload::tiny_suite() {
            assert_eq!(Workload::tiny_by_name(w.name()), Ok(w));
        }
        assert_eq!(
            Workload::tiny_by_name("jacobi"),
            Workload::tiny_by_name("jacobi-2d")
        );
        assert_eq!(Workload::names().len(), Workload::tiny_suite().len());
    }

    #[test]
    fn unknown_names_error_with_the_full_vocabulary() {
        let err = Workload::tiny_by_name("nonesuch").unwrap_err();
        assert_eq!(err.name, "nonesuch");
        let msg = err.to_string();
        for name in Workload::names() {
            assert!(msg.contains(name), "error must list {name}: {msg}");
        }
    }

    /// Both implementations of every kernel must reproduce the golden
    /// outputs, at several hardware vector lengths (strip-mining must
    /// be VL-agnostic, like real RVV binaries — §II's portability
    /// argument).
    #[test]
    fn all_kernels_match_golden_scalar_and_vector() {
        for w in Workload::tiny_suite() {
            let built = w.build();
            // Scalar.
            let mut i = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
            i.run_to_halt().unwrap();
            built
                .verify(i.memory())
                .unwrap_or_else(|e| panic!("scalar {e}"));
            // Vector at several hardware lengths.
            for hw_vl in [4u32, 64, 256, 2048] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("vector vl={hw_vl}: {e}"));
            }
        }
    }

    #[test]
    fn vector_versions_use_vector_instructions() {
        for w in Workload::tiny_suite() {
            let built = w.build();
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
            let mut c = eve_isa::Characterization::new();
            while let Some(r) = i.step().unwrap() {
                c.record(&r);
            }
            assert!(
                c.vector_inst_pct() > 10.0,
                "{}: VI% = {}",
                built.name,
                c.vector_inst_pct()
            );
            assert!(
                c.vector_op_pct() > 50.0,
                "{}: VO% = {}",
                built.name,
                c.vector_op_pct()
            );
        }
    }

    #[test]
    fn scalar_versions_are_purely_scalar() {
        for w in Workload::tiny_suite() {
            let built = w.build();
            let mut i = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
            let mut c = eve_isa::Characterization::new();
            while let Some(r) = i.step().unwrap() {
                c.record(&r);
            }
            assert_eq!(c.vector_insts, 0, "{}", built.name);
        }
    }

    #[test]
    fn eval_scale_only_promotes_the_conflict_bound_kernels() {
        let base = Workload::suite();
        let eval = Workload::eval_scale_suite();
        assert_eq!(base.len(), eval.len());
        for (b, e) in base.iter().zip(&eval) {
            assert_eq!(b.name(), e.name(), "eval scale must not reorder the suite");
            match e {
                Workload::Spmv { rows, cols, .. } => {
                    assert!(rows * cols > 768 * 1024, "spmv must grow");
                    assert_ne!(b, e);
                }
                Workload::Histogram { n, bins } => {
                    assert!(*n >= 3 * 32768, "histogram must grow");
                    assert_eq!(*bins, 256, "conflict density is per-bin: keep bins");
                    assert_ne!(b, e);
                }
                other => assert_eq!(b, other, "only spmv/histogram change"),
            }
        }
    }

    /// The promoted inputs still verify against their goldens — the
    /// larger builds are real kernels, not just bigger numbers.
    #[test]
    fn eval_scale_spmv_and_histogram_match_golden() {
        for w in Workload::eval_scale_suite()
            .into_iter()
            .filter(|w| matches!(w, Workload::Spmv { .. } | Workload::Histogram { .. }))
        {
            let built = w.build();
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
            i.run_to_halt().unwrap();
            built
                .verify(i.memory())
                .unwrap_or_else(|e| panic!("{} eval scale: {e}", built.name));
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Workload::suite().iter().map(Workload::name).collect();
        assert_eq!(
            names,
            [
                "vvadd",
                "mmult",
                "kmeans",
                "pathfinder",
                "jacobi-2d",
                "backprop",
                "sw",
                "spmv",
                "histogram",
                "blackscholes",
                "scan"
            ]
        );
    }
}
