//! `spmv` (RiVEC): sparse matrix-vector multiply over a seeded CSR
//! matrix — the second-wave gather kernel.
//!
//! Vectorized over the nonzeros of each row: column indices arrive
//! through unit-stride loads, the source vector through an indexed
//! gather (`vluxei32`), and each row's dot product folds through a
//! `vredsum` seeded with the running accumulator, so strip-mining is
//! VL-agnostic. Row lengths are drawn per-row from the seed (including
//! empty rows), so the gather footprint is genuinely irregular.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, RedOp, VOperand};

/// Builds `y = A * x` for a seeded `rows x cols` CSR matrix with
/// per-row nonzero counts drawn from `0..=max_nnz`.
///
/// # Panics
///
/// Panics if any dimension is zero.
#[must_use]
pub fn build(rows: usize, cols: usize, max_nnz: usize) -> Built {
    build_at(rows, cols, max_nnz, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(rows: usize, cols: usize, max_nnz: usize, base: u64) -> Built {
    assert!(
        rows > 0 && cols > 0 && max_nnz > 0,
        "degenerate spmv configuration"
    );
    let mut r = rng(0x59A75E);
    // Per-row lengths first: the CSR shape is part of the seed.
    let row_len: Vec<usize> = (0..rows)
        .map(|_| r.below(max_nnz as u64 + 1) as usize)
        .collect();
    let nnz: usize = row_len.iter().sum();

    let mut layout = Layout::at(base);
    let row_ptr = layout.alloc_words(rows + 1);
    let col_idx = layout.alloc_words(nnz.max(1));
    let vals = layout.alloc_words(nnz.max(1));
    let x = layout.alloc_words(cols);
    let y = layout.alloc_words(rows);
    let mut mem = Memory::new(layout.memory_size());

    let mut ptr = 0u32;
    for (i, &len) in row_len.iter().enumerate() {
        mem.store_u32(row_ptr + i as u64 * 4, ptr);
        ptr += len as u32;
    }
    mem.store_u32(row_ptr + rows as u64 * 4, ptr);
    for j in 0..nnz {
        mem.store_u32(col_idx + j as u64 * 4, r.below(cols as u64) as u32);
    }
    fill_random(&mut mem, vals, nnz.max(1), 1 << 12, &mut r);
    fill_random(&mut mem, x, cols, 1 << 12, &mut r);

    // Golden y, wrapping 32-bit like the kernels.
    let ci = mem.load_u32_slice(col_idx, nnz.max(1));
    let va = mem.load_u32_slice(vals, nnz.max(1));
    let xv = mem.load_u32_slice(x, cols);
    let mut expected = Vec::with_capacity(rows);
    let mut j = 0usize;
    for (i, &len) in row_len.iter().enumerate() {
        let mut acc = 0u32;
        for _ in 0..len {
            acc = acc.wrapping_add(va[j].wrapping_mul(xv[ci[j] as usize]));
            j += 1;
        }
        expected.push((y + i as u64 * 4, acc));
    }

    Built {
        name: "spmv",
        scalar: scalar(rows, row_ptr, col_idx, vals, x, y),
        vector: vector(rows, row_ptr, col_idx, vals, x, y),
        memory: mem,
        expected,
    }
}

fn scalar(rows: usize, row_ptr: u64, col_idx: u64, vals: u64, x: u64, y: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // r
    s.label("row");
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, row_ptr as i64);
    s.lw(xreg::T0, xreg::T5, 0); // start
    s.lw(xreg::T1, xreg::T5, 4); // end
    s.li(xreg::S2, 0); // acc
    s.beq(xreg::T0, xreg::T1, "row_done");
    s.slli(xreg::T2, xreg::T0, 2);
    s.addi(xreg::A0, xreg::T2, col_idx as i64);
    s.addi(xreg::A1, xreg::T2, vals as i64);
    s.label("nz");
    s.lw(xreg::T3, xreg::A0, 0); // col
    s.slli(xreg::T3, xreg::T3, 2);
    s.addi(xreg::T3, xreg::T3, x as i64);
    s.lw(xreg::T4, xreg::T3, 0); // x[col]
    s.lw(xreg::T6, xreg::A1, 0); // val
    s.mul(xreg::T4, xreg::T4, xreg::T6);
    s.add(xreg::S2, xreg::S2, xreg::T4);
    s.andi(xreg::S2, xreg::S2, 0xFFFF_FFFF);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::T0, xreg::T0, 1);
    s.bne(xreg::T0, xreg::T1, "nz");
    s.label("row_done");
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, y as i64);
    s.sw(xreg::S2, xreg::T5, 0);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, rows as i64);
    s.bne(xreg::S0, xreg::T5, "row");
    s.halt();
    s.assemble().expect("spmv scalar assembles")
}

fn vector(rows: usize, row_ptr: u64, col_idx: u64, vals: u64, x: u64, y: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // r
    s.li(xreg::S3, x as i64); // gather base
    s.label("row");
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, row_ptr as i64);
    s.lw(xreg::T0, xreg::T5, 0); // start
    s.lw(xreg::T1, xreg::T5, 4); // end
    s.sub(xreg::T2, xreg::T1, xreg::T0); // nnz remaining
    s.li(xreg::S2, 0); // acc
    s.beqz(xreg::T2, "row_done");
    s.slli(xreg::T3, xreg::T0, 2);
    s.addi(xreg::A0, xreg::T3, col_idx as i64);
    s.addi(xreg::A1, xreg::T3, vals as i64);
    s.label("strip");
    s.setvl(xreg::T4, xreg::T2);
    s.vload(vreg::V1, xreg::A0); // column indices
    s.vmul(vreg::V2, vreg::V1, VOperand::Imm(4)); // byte offsets
    s.vload_indexed(vreg::V3, xreg::S3, vreg::V2); // gather x[col]
    s.vload(vreg::V4, xreg::A1); // values
    s.vmul(vreg::V5, vreg::V3, VOperand::Reg(vreg::V4));
    s.vmv_sx(vreg::V6, xreg::S2); // seed lane 0 with the running acc
    s.vred(RedOp::Sum, vreg::V7, vreg::V5, vreg::V6);
    s.vmv_xs(xreg::S2, vreg::V7);
    s.andi(xreg::S2, xreg::S2, 0xFFFF_FFFF);
    s.slli(xreg::T5, xreg::T4, 2);
    s.add(xreg::A0, xreg::A0, xreg::T5);
    s.add(xreg::A1, xreg::A1, xreg::T5);
    s.sub(xreg::T2, xreg::T2, xreg::T4);
    s.bnez(xreg::T2, "strip");
    s.label("row_done");
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, y as i64);
    s.sw(xreg::S2, xreg::T5, 0);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, rows as i64);
    s.bne(xreg::S0, xreg::T5, "row");
    s.vmfence();
    s.halt();
    s.assemble().expect("spmv vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn irregular_rows_strip_mine_correctly() {
        for (rows, cols, max_nnz) in [(1usize, 8usize, 4usize), (17, 32, 9), (40, 64, 70)] {
            let built = build(rows, cols, max_nnz);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("{rows}x{cols} nnz<={max_nnz} vl={hw_vl}: {e}"));
            }
        }
    }

    #[test]
    fn empty_rows_store_zero() {
        // max_nnz of 1 gives roughly half the rows zero nonzeros.
        let built = build(32, 16, 1);
        assert!(built.expected.iter().any(|&(_, v)| v == 0));
        let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
        i.run_to_halt().unwrap();
        built.verify(i.memory()).unwrap();
    }
}
