//! `sw` (genomics): Smith-Waterman local alignment with linear gaps.
//!
//! The vectorized form walks anti-diagonals: cells along a diagonal
//! are independent, and in a row-major score matrix they sit a
//! constant `n*4`-byte stride apart — so the kernel is dominated by
//! constant-stride loads/stores, compare+merge substitution scoring
//! (predication), and a per-diagonal `vredmax` (cross-element), the
//! Table IV signature of `sw`.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, RedOp, VCmpCond, VOperand};

/// Match reward.
const MATCH: i32 = 2;
/// Mismatch penalty.
const MISMATCH: i32 = -1;
/// Gap penalty.
const GAP: i32 = 1;

/// Builds an alignment of two random length-`n` sequences over a
/// 4-letter alphabet.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn build(n: usize) -> Built {
    build_at(n, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, base: u64) -> Built {
    assert!(n >= 2, "sw needs sequences of length >= 2");
    let w = n + 1; // score-matrix row width
    let mut layout = Layout::at(base);
    let h = layout.alloc_words(w * w);
    let a = layout.alloc_words(n);
    let b = layout.alloc_words(n);
    let result = layout.alloc_words(1);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x5317);
    fill_random(&mut mem, a, n, 4, &mut r);
    fill_random(&mut mem, b, n, 4, &mut r);

    // Golden DP.
    let av = mem.load_u32_slice(a, n);
    let bv = mem.load_u32_slice(b, n);
    let mut hm = vec![0i32; w * w];
    let mut best = 0i32;
    for i in 1..=n {
        for j in 1..=n {
            let s = if av[i - 1] == bv[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let v = (hm[(i - 1) * w + j - 1] + s)
                .max(hm[(i - 1) * w + j] - GAP)
                .max(hm[i * w + j - 1] - GAP)
                .max(0);
            hm[i * w + j] = v;
            best = best.max(v);
        }
    }
    let mut expected: Vec<(u64, u32)> = (1..=n)
        .flat_map(|i| {
            let hm = &hm;
            (1..=n).map(move |j| (h + ((i * w + j) as u64) * 4, hm[i * w + j] as u32))
        })
        .collect();
    expected.push((result, best as u32));

    Built {
        name: "sw",
        scalar: scalar(n, h, a, b, result),
        vector: vector(n, h, a, b, result),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, h: u64, a: u64, b: u64, result: u64) -> eve_isa::Program {
    let w = (n + 1) as i64;
    let mut s = Asm::new();
    s.li(xreg::S6, 0); // best
    s.li(xreg::S0, 1); // i
    s.label("i_loop");
    s.li(xreg::S1, 1); // j
                       // &H[i][1], &H[i-1][1]
    s.muli(xreg::A2, xreg::S0, w * 4);
    s.addi(xreg::A2, xreg::A2, h as i64 + 4);
    s.label("j_loop");
    // substitution score
    s.slli(xreg::T0, xreg::S0, 2);
    s.addi(xreg::T0, xreg::T0, a as i64 - 4);
    s.lw(xreg::T1, xreg::T0, 0); // a[i-1]
    s.slli(xreg::T0, xreg::S1, 2);
    s.addi(xreg::T0, xreg::T0, b as i64 - 4);
    s.lw(xreg::T2, xreg::T0, 0); // b[j-1]
    s.li(xreg::T3, i64::from(MATCH));
    s.beq(xreg::T1, xreg::T2, "matched");
    s.li(xreg::T3, i64::from(MISMATCH));
    s.label("matched");
    // candidates
    s.lw(xreg::T1, xreg::A2, -(w * 4) - 4); // H[i-1][j-1]
    s.add(xreg::T1, xreg::T1, xreg::T3);
    s.lw(xreg::T2, xreg::A2, -(w * 4)); // H[i-1][j]
    s.addi(xreg::T2, xreg::T2, -i64::from(GAP));
    s.bge(xreg::T1, xreg::T2, "m1");
    s.mv(xreg::T1, xreg::T2);
    s.label("m1");
    s.lw(xreg::T2, xreg::A2, -4); // H[i][j-1]
    s.addi(xreg::T2, xreg::T2, -i64::from(GAP));
    s.bge(xreg::T1, xreg::T2, "m2");
    s.mv(xreg::T1, xreg::T2);
    s.label("m2");
    s.bge(xreg::T1, xreg::ZERO, "m3");
    s.li(xreg::T1, 0);
    s.label("m3");
    s.sw(xreg::T1, xreg::A2, 0);
    s.bge(xreg::S6, xreg::T1, "nobest");
    s.mv(xreg::S6, xreg::T1);
    s.label("nobest");
    s.addi(xreg::A2, xreg::A2, 4);
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, w);
    s.bne(xreg::S1, xreg::T5, "j_loop");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, w);
    s.bne(xreg::S0, xreg::T5, "i_loop");
    s.li(xreg::T5, result as i64);
    s.sw(xreg::S6, xreg::T5, 0);
    s.halt();
    s.assemble().expect("sw scalar assembles")
}

fn vector(n: usize, h: u64, a: u64, b: u64, result: u64) -> eve_isa::Program {
    let n64 = n as i64;
    let w = n64 + 1;
    let k4 = (w - 1) * 4; // diagonal stride in bytes = n*4
    let mut s = Asm::new();
    s.li(xreg::S6, 0); // best score
    s.li(xreg::S0, 2); // d = i + j
    s.label("d_loop");
    // ilo = max(1, d - n)
    s.addi(xreg::T0, xreg::S0, -n64);
    s.li(xreg::S1, 1);
    s.blt(xreg::T0, xreg::S1, "ilo_done");
    s.mv(xreg::S1, xreg::T0);
    s.label("ilo_done");
    // ihi = min(n, d - 1)
    s.addi(xreg::T1, xreg::S0, -1);
    s.li(xreg::T3, n64);
    s.bge(xreg::T1, xreg::T3, "ihi_done");
    s.mv(xreg::T3, xreg::T1);
    s.label("ihi_done");
    // remaining = ihi - ilo + 1; i0 = ilo
    s.sub(xreg::S4, xreg::T3, xreg::S1);
    s.addi(xreg::S4, xreg::S4, 1);
    s.mv(xreg::S3, xreg::S1);
    s.label("strip");
    s.setvl(xreg::T1, xreg::S4);
    // Cell (i, d-i) lives at H + (i*(w-1) + d)*4: stride k4 over i.
    s.muli(xreg::T2, xreg::S3, k4);
    s.slli(xreg::T4, xreg::S0, 2);
    s.add(xreg::T2, xreg::T2, xreg::T4);
    s.addi(xreg::A2, xreg::T2, h as i64); // current diagonal cells
    s.addi(xreg::A3, xreg::T2, h as i64 - k4 - 8); // H[i-1][j-1]
    s.addi(xreg::A4, xreg::T2, h as i64 - k4 - 4); // H[i-1][j]
    s.addi(xreg::A5, xreg::T2, h as i64 - 4); // H[i][j-1]
    s.li(xreg::S7, k4);
    s.vload_strided(vreg::V1, xreg::A3, xreg::S7);
    s.vload_strided(vreg::V2, xreg::A4, xreg::S7);
    s.vload_strided(vreg::V3, xreg::A5, xreg::S7);
    // a[i-1] ascending (unit), b[d-i-1] descending (negative stride).
    s.slli(xreg::T4, xreg::S3, 2);
    s.addi(xreg::A6, xreg::T4, a as i64 - 4);
    s.vload(vreg::V4, xreg::A6);
    s.sub(xreg::T4, xreg::S0, xreg::S3);
    s.slli(xreg::T4, xreg::T4, 2);
    s.addi(xreg::A7, xreg::T4, b as i64 - 4);
    s.li(xreg::T4, -4);
    s.vload_strided(vreg::V5, xreg::A7, xreg::T4);
    // Substitution score: predicated select of match/mismatch.
    s.vmv(vreg::V6, VOperand::Imm(MATCH));
    s.vcmp(VCmpCond::Eq, vreg::V0, vreg::V4, VOperand::Reg(vreg::V5));
    s.vmerge(vreg::V7, vreg::V6, VOperand::Imm(MISMATCH));
    // H = max(diag + s, up - gap, left - gap, 0).
    s.vadd(vreg::V8, vreg::V1, VOperand::Reg(vreg::V7));
    s.vadd(vreg::V9, vreg::V2, VOperand::Imm(-GAP));
    s.vadd(vreg::V10, vreg::V3, VOperand::Imm(-GAP));
    s.vmax(vreg::V8, vreg::V8, VOperand::Reg(vreg::V9));
    s.vmax(vreg::V8, vreg::V8, VOperand::Reg(vreg::V10));
    s.vmax(vreg::V8, vreg::V8, VOperand::Imm(0));
    s.vstore_strided(vreg::V8, xreg::A2, xreg::S7);
    // Track the running best (cross-element reduction).
    s.vmv(vreg::V11, VOperand::Imm(0));
    s.vred(RedOp::Max, vreg::V12, vreg::V8, vreg::V11);
    s.vmv_xs(xreg::T4, vreg::V12);
    s.bge(xreg::S6, xreg::T4, "nobest");
    s.mv(xreg::S6, xreg::T4);
    s.label("nobest");
    // Next strip / next diagonal.
    s.add(xreg::S3, xreg::S3, xreg::T1);
    s.sub(xreg::S4, xreg::S4, xreg::T1);
    s.bnez(xreg::S4, "strip");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T4, 2 * n64 + 1);
    s.bne(xreg::S0, xreg::T4, "d_loop");
    s.li(xreg::T4, result as i64);
    s.sw(xreg::S6, xreg::T4, 0);
    s.vmfence();
    s.halt();
    s.assemble().expect("sw vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn alignment_scores_match_dp() {
        for n in [2usize, 5, 33, 70] {
            let built = build(n);
            for hw_vl in [4u32, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} vl={hw_vl}: {e}"));
            }
        }
    }

    #[test]
    fn identical_sequences_score_perfectly() {
        // Manual golden sanity check: align a sequence with itself.
        let built = build(16);
        let mut i = Interpreter::new(built.scalar.clone(), built.memory.clone(), 1);
        i.run_to_halt().unwrap();
        built.verify(i.memory()).unwrap();
    }
}
