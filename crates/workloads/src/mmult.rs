//! `mmult`: dense integer matrix multiply — the compute-bound
//! micro-kernel of Table IV (97 % vector operations, arithmetic
//! intensity 2.0).

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VArithOp, VOperand};

/// Builds `C = A x B` for `n x n` row-major `i32` matrices.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn build(n: usize) -> Built {
    build_at(n, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, base: u64) -> Built {
    assert!(n > 0, "mmult needs a nonzero dimension");
    let mut layout = Layout::at(base);
    let a = layout.alloc_words(n * n);
    let b = layout.alloc_words(n * n);
    let c = layout.alloc_words(n * n);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x3A7);
    fill_random(&mut mem, a, n * n, 1 << 10, &mut r);
    fill_random(&mut mem, b, n * n, 1 << 10, &mut r);

    let av = mem.load_u32_slice(a, n * n);
    let bv = mem.load_u32_slice(b, n * n);
    let mut expected = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for k in 0..n {
                acc = acc.wrapping_add(av[i * n + k].wrapping_mul(bv[k * n + j]));
            }
            expected.push((c + ((i * n + j) as u64) * 4, acc));
        }
    }

    Built {
        name: "mmult",
        scalar: scalar(n, a, b, c),
        vector: vector(n, a, b, c),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, a: u64, b: u64, c: u64) -> eve_isa::Program {
    let n64 = n as i64;
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // i
    s.label("i_loop");
    s.li(xreg::S1, 0); // j
    s.label("j_loop");
    s.li(xreg::T3, 0); // acc
    s.li(xreg::S2, 0); // k
                       // &A[i][0]
    s.muli(xreg::A0, xreg::S0, n64 * 4);
    s.addi(xreg::A0, xreg::A0, a as i64);
    // &B[0][j]
    s.slli(xreg::A1, xreg::S1, 2);
    s.addi(xreg::A1, xreg::A1, b as i64);
    s.label("k_loop");
    s.lw(xreg::T1, xreg::A0, 0);
    s.lw(xreg::T2, xreg::A1, 0);
    s.mul(xreg::T1, xreg::T1, xreg::T2);
    s.add(xreg::T3, xreg::T3, xreg::T1);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, n64 * 4);
    s.addi(xreg::S2, xreg::S2, 1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S2, xreg::T4, "k_loop");
    // C[i][j] = acc
    s.muli(xreg::A2, xreg::S0, n64 * 4);
    s.slli(xreg::T5, xreg::S1, 2);
    s.add(xreg::A2, xreg::A2, xreg::T5);
    s.addi(xreg::A2, xreg::A2, c as i64);
    s.sw(xreg::T3, xreg::A2, 0);
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S1, xreg::T4, "j_loop");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S0, xreg::T4, "i_loop");
    s.halt();
    s.assemble().expect("mmult scalar assembles")
}

/// Row-block vectorization: for each row `i` and column strip, the
/// accumulator vector sweeps `k`, adding `A[i][k] * B[k][j..]`.
fn vector(n: usize, a: u64, b: u64, c: u64) -> eve_isa::Program {
    let n64 = n as i64;
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // i
    s.label("i_loop");
    s.li(xreg::S1, 0); // j0: column-strip base
    s.label("j_loop");
    // vl = min(n - j0, hw)
    s.li(xreg::T0, n64);
    s.sub(xreg::T0, xreg::T0, xreg::S1);
    s.setvl(xreg::T1, xreg::T0);
    s.vmv(vreg::V4, VOperand::Imm(0)); // acc
    s.li(xreg::S2, 0); // k
                       // &A[i][0]
    s.muli(xreg::A0, xreg::S0, n64 * 4);
    s.addi(xreg::A0, xreg::A0, a as i64);
    // &B[0][j0]
    s.slli(xreg::A1, xreg::S1, 2);
    s.addi(xreg::A1, xreg::A1, b as i64);
    s.label("k_loop");
    s.lw(xreg::T2, xreg::A0, 0); // a_ik
    s.vload(vreg::V1, xreg::A1); // B[k][j0..]
                                 // Multiply-accumulate, as real RVV mmult kernels are written.
    s.vop(
        VArithOp::Macc,
        vreg::V4,
        vreg::V1,
        VOperand::Scalar(xreg::T2),
    );
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, n64 * 4);
    s.addi(xreg::S2, xreg::S2, 1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S2, xreg::T4, "k_loop");
    // C[i][j0..] = acc
    s.muli(xreg::A2, xreg::S0, n64 * 4);
    s.slli(xreg::T5, xreg::S1, 2);
    s.add(xreg::A2, xreg::A2, xreg::T5);
    s.addi(xreg::A2, xreg::A2, c as i64);
    s.vstore(vreg::V4, xreg::A2);
    // j0 += vl
    s.add(xreg::S1, xreg::S1, xreg::T1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S1, xreg::T4, "j_loop");
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T4, n64);
    s.bne(xreg::S0, xreg::T4, "i_loop");
    s.vmfence();
    s.halt();
    s.assemble().expect("mmult vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn small_matrices_at_various_vl() {
        for n in [1usize, 3, 8, 17] {
            let built = build(n);
            for hw_vl in [4u32, 16, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} vl={hw_vl}: {e}"));
            }
        }
    }
}
