//! `vvadd`: streaming element-wise addition — the memory-bound
//! micro-kernel of Table IV.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VOperand};

/// Builds `c[i] = a[i] + b[i]` over `n` elements.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn build(n: usize) -> Built {
    build_at(n, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, base: u64) -> Built {
    assert!(n > 0, "vvadd needs at least one element");
    let mut layout = Layout::at(base);
    let a = layout.alloc_words(n);
    let b = layout.alloc_words(n);
    let c = layout.alloc_words(n);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0xADD);
    fill_random(&mut mem, a, n, 1 << 20, &mut r);
    fill_random(&mut mem, b, n, 1 << 20, &mut r);

    let expected = (0..n)
        .map(|i| {
            let av = mem.load_u32(a + i as u64 * 4);
            let bv = mem.load_u32(b + i as u64 * 4);
            (c + i as u64 * 4, av.wrapping_add(bv))
        })
        .collect();

    Built {
        name: "vvadd",
        scalar: scalar(n, a, b, c),
        vector: vector(n, a, b, c),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, a: u64, b: u64, c: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::T0, n as i64);
    s.li(xreg::A0, a as i64);
    s.li(xreg::A1, b as i64);
    s.li(xreg::A2, c as i64);
    s.label("loop");
    s.lw(xreg::T1, xreg::A0, 0);
    s.lw(xreg::T2, xreg::A1, 0);
    s.add(xreg::T3, xreg::T1, xreg::T2);
    s.sw(xreg::T3, xreg::A2, 0);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::A2, xreg::A2, 4);
    s.addi(xreg::T0, xreg::T0, -1);
    s.bnez(xreg::T0, "loop");
    s.halt();
    s.assemble().expect("vvadd scalar assembles")
}

fn vector(n: usize, a: u64, b: u64, c: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::T0, n as i64);
    s.li(xreg::A0, a as i64);
    s.li(xreg::A1, b as i64);
    s.li(xreg::A2, c as i64);
    s.label("strip");
    s.setvl(xreg::T1, xreg::T0);
    s.vload(vreg::V1, xreg::A0);
    s.vload(vreg::V2, xreg::A1);
    s.vadd(vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
    s.vstore(vreg::V3, xreg::A2);
    s.slli(xreg::T2, xreg::T1, 2);
    s.add(xreg::A0, xreg::A0, xreg::T2);
    s.add(xreg::A1, xreg::A1, xreg::T2);
    s.add(xreg::A2, xreg::A2, xreg::T2);
    s.sub(xreg::T0, xreg::T0, xreg::T1);
    s.bnez(xreg::T0, "strip");
    s.vmfence();
    s.halt();
    s.assemble().expect("vvadd vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn odd_sizes_strip_mine_correctly() {
        for n in [1usize, 7, 63, 64, 65, 130] {
            let built = build(n);
            let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), 64);
            i.run_to_halt().unwrap();
            built
                .verify(i.memory())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }
}
