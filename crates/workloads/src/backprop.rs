//! `backprop` (Rodinia): one dense-layer forward pass.
//!
//! `hidden[j] = (sum_i input[i] * w[i][j]) >> 8`. The weight matrix is
//! row-major `[input][hidden]`, so sweeping `i` for a fixed `j` is a
//! constant-stride walk of `hidden * 4` bytes — with 16 hidden units
//! that is 64 bytes, exactly one cache line per element. This is the
//! access pattern §VII-B singles out: "no two elements in these
//! operations would reside in the same cacheline, and thus this
//! application requires significantly more MSHRs than available"
//! (Fig 8's worst case).

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VOperand};

/// Builds a forward pass `inputs -> hidden`.
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn build(inputs: usize, hidden: usize) -> Built {
    build_at(inputs, hidden, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(inputs: usize, hidden: usize, base: u64) -> Built {
    assert!(inputs > 0 && hidden > 0, "backprop needs real dimensions");
    let mut layout = Layout::at(base);
    let input = layout.alloc_words(inputs);
    let weights = layout.alloc_words(inputs * hidden);
    let out = layout.alloc_words(hidden);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0xBAC4);
    fill_random(&mut mem, input, inputs, 1 << 8, &mut r);
    fill_random(&mut mem, weights, inputs * hidden, 1 << 8, &mut r);

    let iv = mem.load_u32_slice(input, inputs);
    let wv = mem.load_u32_slice(weights, inputs * hidden);
    let expected = (0..hidden)
        .map(|j| {
            let mut acc = 0u32;
            for i in 0..inputs {
                acc = acc.wrapping_add(iv[i].wrapping_mul(wv[i * hidden + j]));
            }
            (out + j as u64 * 4, acc >> 8)
        })
        .collect();

    Built {
        name: "backprop",
        scalar: scalar(inputs, hidden, input, weights, out),
        vector: vector(inputs, hidden, input, weights, out),
        memory: mem,
        expected,
    }
}

fn scalar(inputs: usize, hidden: usize, input: u64, weights: u64, out: u64) -> eve_isa::Program {
    let h64 = hidden as i64;
    let mut s = Asm::new();
    s.li(xreg::S0, 0); // j
    s.label("j_loop");
    s.li(xreg::T0, 0); // acc
    s.li(xreg::S1, 0); // i
    s.li(xreg::A0, input as i64);
    s.slli(xreg::A1, xreg::S0, 2);
    s.addi(xreg::A1, xreg::A1, weights as i64); // &w[0][j]
    s.label("i_loop");
    s.lw(xreg::T1, xreg::A0, 0);
    s.lw(xreg::T2, xreg::A1, 0);
    s.mul(xreg::T1, xreg::T1, xreg::T2);
    s.add(xreg::T0, xreg::T0, xreg::T1);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, h64 * 4);
    s.addi(xreg::S1, xreg::S1, 1);
    s.li(xreg::T5, inputs as i64);
    s.bne(xreg::S1, xreg::T5, "i_loop");
    s.andi(xreg::T0, xreg::T0, 0xFFFF_FFFF);
    s.srli(xreg::T0, xreg::T0, 8);
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, out as i64);
    s.sw(xreg::T0, xreg::T5, 0);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, h64);
    s.bne(xreg::S0, xreg::T5, "j_loop");
    s.halt();
    s.assemble().expect("backprop scalar assembles")
}

fn vector(inputs: usize, hidden: usize, input: u64, weights: u64, out: u64) -> eve_isa::Program {
    let h64 = hidden as i64;
    let mut s = Asm::new();
    s.li(xreg::S7, h64 * 4); // weight-column stride (one line!)
    s.li(xreg::S0, 0); // j
    s.label("j_loop");
    s.li(xreg::S1, 0); // i0: input-strip base
    s.li(xreg::T6, 0); // scalar accumulator
    s.label("strip");
    s.li(xreg::T0, inputs as i64);
    s.sub(xreg::T0, xreg::T0, xreg::S1);
    s.setvl(xreg::T1, xreg::T0);
    // inputs[i0..] unit stride; w[i0..][j] giant stride.
    s.slli(xreg::T2, xreg::S1, 2);
    s.addi(xreg::T2, xreg::T2, input as i64);
    s.vload(vreg::V1, xreg::T2);
    s.muli(xreg::T3, xreg::S1, h64 * 4);
    s.slli(xreg::T4, xreg::S0, 2);
    s.add(xreg::T3, xreg::T3, xreg::T4);
    s.addi(xreg::T3, xreg::T3, weights as i64);
    s.vload_strided(vreg::V2, xreg::T3, xreg::S7);
    s.vmul(vreg::V3, vreg::V1, VOperand::Reg(vreg::V2));
    // Reduce this strip into the scalar accumulator.
    s.vmv(vreg::V4, VOperand::Imm(0));
    s.vred(eve_isa::RedOp::Sum, vreg::V5, vreg::V3, vreg::V4);
    s.vmv_xs(xreg::T2, vreg::V5);
    s.add(xreg::T6, xreg::T6, xreg::T2);
    s.andi(xreg::T6, xreg::T6, 0xFFFF_FFFF);
    s.add(xreg::S1, xreg::S1, xreg::T1);
    s.li(xreg::T5, inputs as i64);
    s.bne(xreg::S1, xreg::T5, "strip");
    s.srli(xreg::T6, xreg::T6, 8);
    s.slli(xreg::T5, xreg::S0, 2);
    s.addi(xreg::T5, xreg::T5, out as i64);
    s.sw(xreg::T6, xreg::T5, 0);
    s.addi(xreg::S0, xreg::S0, 1);
    s.li(xreg::T5, h64);
    s.bne(xreg::S0, xreg::T5, "j_loop");
    s.vmfence();
    s.halt();
    s.assemble().expect("backprop vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn forward_pass_matches() {
        for (i, h) in [(16usize, 4usize), (100, 8), (130, 16)] {
            let built = build(i, h);
            for hw_vl in [4u32, 64] {
                let mut it = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                it.run_to_halt().unwrap();
                built
                    .verify(it.memory())
                    .unwrap_or_else(|e| panic!("{i}x{h} vl={hw_vl}: {e}"));
            }
        }
    }
}
