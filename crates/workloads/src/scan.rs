//! `scan` (RiVEC): inclusive prefix sum — the second-wave
//! cross-element kernel.
//!
//! Each strip runs a Hillis-Steele doubling ladder: `log2(vl)` rounds
//! of slide-up + add turn the loaded strip into its inclusive prefix
//! in place, then a scalar carry (the last lane, extracted with a
//! slide-down) chains strips together so the result is VL-agnostic.
//! The ladder is almost pure cross-element traffic — the VRU corner
//! of Table IV that none of the first seven kernels stress this hard.

use crate::common::{fill_random, rng, Layout};
use crate::Built;
use eve_isa::{vreg, xreg, Asm, Memory, VOperand};

/// Builds `out[i] = in[0] + ... + in[i]` over `n` elements.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn build(n: usize) -> Built {
    build_at(n, crate::common::DATA_BASE)
}

/// Like [`build`], laying data out from `base` (disjoint address
/// spaces for CMP cores).
#[must_use]
pub fn build_at(n: usize, base: u64) -> Built {
    assert!(n > 0, "scan needs at least one element");
    let mut layout = Layout::at(base);
    let input = layout.alloc_words(n);
    let output = layout.alloc_words(n);
    let mut mem = Memory::new(layout.memory_size());
    let mut r = rng(0x5CA4);
    fill_random(&mut mem, input, n, 1 << 20, &mut r);

    let mut acc = 0u32;
    let expected = (0..n)
        .map(|i| {
            acc = acc.wrapping_add(mem.load_u32(input + i as u64 * 4));
            (output + i as u64 * 4, acc)
        })
        .collect();

    Built {
        name: "scan",
        scalar: scalar(n, input, output),
        vector: vector(n, input, output),
        memory: mem,
        expected,
    }
}

fn scalar(n: usize, input: u64, output: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::T0, n as i64);
    s.li(xreg::A0, input as i64);
    s.li(xreg::A1, output as i64);
    s.li(xreg::S2, 0); // running sum
    s.label("loop");
    s.lw(xreg::T1, xreg::A0, 0);
    s.add(xreg::S2, xreg::S2, xreg::T1);
    s.andi(xreg::S2, xreg::S2, 0xFFFF_FFFF);
    s.sw(xreg::S2, xreg::A1, 0);
    s.addi(xreg::A0, xreg::A0, 4);
    s.addi(xreg::A1, xreg::A1, 4);
    s.addi(xreg::T0, xreg::T0, -1);
    s.bnez(xreg::T0, "loop");
    s.halt();
    s.assemble().expect("scan scalar assembles")
}

fn vector(n: usize, input: u64, output: u64) -> eve_isa::Program {
    let mut s = Asm::new();
    s.li(xreg::S0, n as i64);
    s.li(xreg::A0, input as i64);
    s.li(xreg::A1, output as i64);
    s.li(xreg::S2, 0); // carry across strips
    s.label("strip");
    s.setvl(xreg::T1, xreg::S0);
    s.vload(vreg::V1, xreg::A0);
    // Hillis-Steele doubling ladder: v1[i] += v1[i - off] for
    // off = 1, 2, 4, ... while off < vl. The slide target is
    // pre-zeroed so lanes below the offset add nothing.
    s.li(xreg::T2, 1);
    s.label("ladder");
    s.bge(xreg::T2, xreg::T1, "ladder_done");
    s.vmv(vreg::V2, VOperand::Imm(0));
    s.vslide(vreg::V2, vreg::V1, xreg::T2, true);
    s.vadd(vreg::V1, vreg::V1, VOperand::Reg(vreg::V2));
    s.slli(xreg::T2, xreg::T2, 1);
    s.j("ladder");
    s.label("ladder_done");
    // Fold in the carry from earlier strips, store, then pull the new
    // carry out of the last lane with a slide-down.
    s.vadd(vreg::V1, vreg::V1, VOperand::Scalar(xreg::S2));
    s.vstore(vreg::V1, xreg::A1);
    s.addi(xreg::T3, xreg::T1, -1);
    s.vslide(vreg::V3, vreg::V1, xreg::T3, false);
    s.vmv_xs(xreg::S2, vreg::V3);
    s.andi(xreg::S2, xreg::S2, 0xFFFF_FFFF);
    s.slli(xreg::T5, xreg::T1, 2);
    s.add(xreg::A0, xreg::A0, xreg::T5);
    s.add(xreg::A1, xreg::A1, xreg::T5);
    s.sub(xreg::S0, xreg::S0, xreg::T1);
    s.bnez(xreg::S0, "strip");
    s.vmfence();
    s.halt();
    s.assemble().expect("scan vector assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_isa::Interpreter;

    #[test]
    fn odd_sizes_carry_across_strips() {
        for n in [1usize, 2, 7, 63, 64, 65, 130, 261] {
            let built = build(n);
            for hw_vl in [1u32, 4, 64] {
                let mut i = Interpreter::new(built.vector.clone(), built.memory.clone(), hw_vl);
                i.run_to_halt().unwrap();
                built
                    .verify(i.memory())
                    .unwrap_or_else(|e| panic!("n={n} vl={hw_vl}: {e}"));
            }
        }
    }
}
