//! Bit-manipulation helpers used by the bit-accurate SRAM model and the
//! data transpose units.
//!
//! S-CIM stores vector elements *transposed*: bit `i` of element `e` lives
//! in row `i`, column `e` of an SRAM array. The helpers here slice elements
//! into segments and transpose 32×32 bit tiles the way EVE's DTUs do.

/// Extracts bit `index` of `value` as a `bool`.
///
/// # Panics
///
/// Panics if `index >= 32`.
///
/// # Examples
///
/// ```
/// use eve_common::bits::bit;
/// assert!(bit(0b100, 2));
/// assert!(!bit(0b100, 1));
/// ```
#[must_use]
#[inline]
pub fn bit(value: u32, index: u32) -> bool {
    assert!(index < 32, "bit index {index} out of range");
    (value >> index) & 1 == 1
}

/// Returns `value` with bit `index` set to `on`.
///
/// # Panics
///
/// Panics if `index >= 32`.
///
/// # Examples
///
/// ```
/// use eve_common::bits::set_bit;
/// assert_eq!(set_bit(0, 3, true), 0b1000);
/// assert_eq!(set_bit(0b1010, 1, false), 0b1000);
/// ```
#[must_use]
#[inline]
pub fn set_bit(value: u32, index: u32, on: bool) -> u32 {
    assert!(index < 32, "bit index {index} out of range");
    if on {
        value | (1 << index)
    } else {
        value & !(1 << index)
    }
}

/// Extracts `width` bits of `value` starting at bit `lo`.
///
/// This is how an element is sliced into `n`-bit segments for bit-hybrid
/// execution: segment `s` of an element is `extract_bits(elem, s * n, n)`.
///
/// # Panics
///
/// Panics if `lo + width > 32` or `width == 0`.
///
/// # Examples
///
/// ```
/// use eve_common::bits::extract_bits;
/// assert_eq!(extract_bits(0xABCD_1234, 8, 8), 0x12);
/// assert_eq!(extract_bits(0xABCD_1234, 0, 4), 0x4);
/// ```
#[must_use]
#[inline]
pub fn extract_bits(value: u32, lo: u32, width: u32) -> u32 {
    assert!(width > 0 && lo + width <= 32, "bad field {lo}+{width}");
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    };
    (value >> lo) & mask
}

/// Returns `value` with `width` bits starting at `lo` replaced by `field`.
///
/// Inverse of [`extract_bits`]; used when reassembling elements from
/// segments after a writeback.
///
/// # Panics
///
/// Panics if `lo + width > 32`, `width == 0`, or `field` does not fit in
/// `width` bits.
///
/// # Examples
///
/// ```
/// use eve_common::bits::deposit_bits;
/// assert_eq!(deposit_bits(0xFFFF_FFFF, 8, 8, 0x12), 0xFFFF_12FF);
/// ```
#[must_use]
#[inline]
pub fn deposit_bits(value: u32, lo: u32, width: u32, field: u32) -> u32 {
    assert!(width > 0 && lo + width <= 32, "bad field {lo}+{width}");
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    };
    assert!(field <= mask, "field 0x{field:x} wider than {width} bits");
    (value & !(mask << lo)) | (field << lo)
}

/// Transposes a 32×32 bit tile in place.
///
/// `tile[r]` holds row `r`; after transposition bit `c` of row `r` equals
/// the original bit `r` of row `c`. EVE's data transpose units (DTUs)
/// perform exactly this operation on cache lines streaming into the
/// compute-enabled SRAM ways.
///
/// # Examples
///
/// ```
/// use eve_common::bits::transpose32;
/// let mut tile = [0u32; 32];
/// tile[3] = 1 << 7; // bit (row 3, col 7)
/// transpose32(&mut tile);
/// assert_eq!(tile[7], 1 << 3); // now at (row 7, col 3)
/// ```
pub fn transpose32(tile: &mut [u32; 32]) {
    let mut out = [0u32; 32];
    for (r, &row) in tile.iter().enumerate() {
        let mut rest = row;
        while rest != 0 {
            let c = rest.trailing_zeros();
            out[c as usize] |= 1 << r;
            rest &= rest - 1;
        }
    }
    *tile = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let v = 0b1011_0010u32;
        for i in 0..8 {
            assert_eq!(bit(v, i), (v >> i) & 1 == 1);
        }
    }

    #[test]
    fn set_bit_toggles() {
        let mut v = 0u32;
        v = set_bit(v, 31, true);
        assert_eq!(v, 0x8000_0000);
        v = set_bit(v, 31, false);
        assert_eq!(v, 0);
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let v = 0xDEAD_BEEFu32;
        for width in [1u32, 2, 4, 8, 16, 32] {
            for seg in 0..(32 / width) {
                let f = extract_bits(v, seg * width, width);
                assert_eq!(deposit_bits(v, seg * width, width, f), v);
            }
        }
    }

    #[test]
    fn deposit_overwrites_only_field() {
        let v = deposit_bits(0, 4, 4, 0xF);
        assert_eq!(v, 0xF0);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn deposit_rejects_oversized_field() {
        let _ = deposit_bits(0, 0, 4, 0x10);
    }

    #[test]
    fn transpose_identity_twice() {
        let mut tile = [0u32; 32];
        for (i, row) in tile.iter_mut().enumerate() {
            *row = (i as u32).wrapping_mul(0x9E37_79B9);
        }
        let orig = tile;
        transpose32(&mut tile);
        transpose32(&mut tile);
        assert_eq!(tile, orig);
    }

    #[test]
    fn transpose_moves_bits() {
        let mut tile = [0u32; 32];
        tile[0] = u32::MAX; // row 0 all ones
        transpose32(&mut tile);
        for row in tile {
            assert_eq!(row, 1); // column 0 all ones
        }
    }

    #[test]
    fn transpose_matches_naive() {
        let mut tile = [0u32; 32];
        for (i, row) in tile.iter_mut().enumerate() {
            *row = 0x1234_5678u32.rotate_left(i as u32) ^ (i as u32);
        }
        let mut naive = [0u32; 32];
        for (r, &row) in tile.iter().enumerate() {
            for (c, out) in naive.iter_mut().enumerate() {
                if bit(row, c as u32) {
                    *out = set_bit(*out, r as u32, true);
                }
            }
        }
        transpose32(&mut tile);
        assert_eq!(tile, naive);
    }
}
