//! Named statistic counters.
//!
//! Every timing model in the workspace exposes its measurements through a
//! [`Stats`] table so the experiment runner can collect them uniformly —
//! the same role gem5's stats framework plays for the paper's evaluation.

use std::collections::BTreeMap;
use std::fmt;

/// A single named counter.
///
/// # Examples
///
/// ```
/// use eve_common::Stat;
/// let mut s = Stat::default();
/// s.add(3);
/// s.incr();
/// assert_eq!(s.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stat(u64);

impl Stat {
    /// Creates a counter starting at `value`.
    #[must_use]
    pub fn new(value: u64) -> Self {
        Stat(value)
    }

    /// Adds `amount` to the counter.
    pub fn add(&mut self, amount: u64) {
        self.0 += amount;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Stat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A table of named counters, keyed by a dotted path such as
/// `"l2.misses"` or `"vmu.llc_stall_cycles"`.
///
/// Keys are created on first use; reading a key that was never written
/// returns zero, which keeps report code free of `Option` plumbing.
///
/// # Examples
///
/// ```
/// use eve_common::Stats;
/// let mut stats = Stats::new();
/// stats.add("l2.misses", 10);
/// stats.incr("l2.misses");
/// assert_eq!(stats.get("l2.misses"), 11);
/// assert_eq!(stats.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, Stat>,
}

impl Stats {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to the counter named `key`, creating it if absent.
    pub fn add(&mut self, key: &str, amount: u64) {
        self.counters.entry_or_insert(key).add(amount);
    }

    /// Adds one to the counter named `key`, creating it if absent.
    pub fn incr(&mut self, key: &str) {
        self.counters.entry_or_insert(key).incr();
    }

    /// Sets the counter named `key` to `value`.
    pub fn set(&mut self, key: &str, value: u64) {
        *self.counters.entry_or_insert(key) = Stat::new(value);
    }

    /// Value of the counter named `key`, or zero if never written.
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, Stat::value)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Merges another table into this one, summing matching keys.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

trait EntryOrInsert {
    fn entry_or_insert(&mut self, key: &str) -> &mut Stat;
}

impl EntryOrInsert for BTreeMap<String, Stat> {
    fn entry_or_insert(&mut self, key: &str) -> &mut Stat {
        if !self.contains_key(key) {
            self.insert(key.to_owned(), Stat::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<48} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_key_reads_zero() {
        let stats = Stats::new();
        assert_eq!(stats.get("nope"), 0);
        assert!(stats.is_empty());
    }

    #[test]
    fn add_incr_set() {
        let mut stats = Stats::new();
        stats.add("a", 5);
        stats.incr("a");
        stats.set("b", 100);
        assert_eq!(stats.get("a"), 6);
        assert_eq!(stats.get("b"), 100);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn merge_sums_keys() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut stats = Stats::new();
        stats.incr("b");
        stats.incr("a");
        stats.incr("c");
        let names: Vec<&str> = stats.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn display_lists_counters() {
        let mut stats = Stats::new();
        stats.set("one", 1);
        let out = stats.to_string();
        assert!(out.contains("one"));
        assert!(out.trim().ends_with('1'));
    }
}
