//! Time units: simulated clock cycles and wall-clock picoseconds.
//!
//! Cycle-approximate models count [`Cycle`]s; because EVE-16 and EVE-32 run
//! at a slower clock (§VI.B of the paper), comparing machines requires
//! converting cycles to [`Picos`] through each machine's cycle time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A count of simulated clock cycles.
///
/// `Cycle` is an absolute point on a machine's clock or a duration,
/// depending on context; arithmetic is saturating-free (overflow panics in
/// debug builds like any integer).
///
/// # Examples
///
/// ```
/// use eve_common::Cycle;
/// assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
/// assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
/// assert_eq!(Cycle(3) * 4, Cycle(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle, the start of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two cycle counts.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two cycle counts.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self`, clamping at zero if `earlier`
    /// is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Converts this cycle count to picoseconds at the given cycle time.
    #[must_use]
    pub fn to_picos(self, cycle_time: Picos) -> Picos {
        Picos(self.0.saturating_mul(cycle_time.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

/// A duration in picoseconds.
///
/// The paper's vanilla SRAM cycle time is 1.025 ns = `Picos(1025)`; EVE-16
/// stretches that to 1.175 ns and EVE-32 to 1.55 ns.
///
/// # Examples
///
/// ```
/// use eve_common::Picos;
/// let base = Picos(1025);
/// assert_eq!(base.scale_percent(115), Picos(1179)); // ~15% penalty
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picos(pub u64);

impl Picos {
    /// Scales this duration by `percent`/100 with integer rounding.
    #[must_use]
    pub fn scale_percent(self, percent: u64) -> Picos {
        Picos((self.0 * percent + 50) / 100)
    }

    /// This duration expressed in nanoseconds (lossy).
    #[must_use]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        Picos(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_nanos_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle(5);
        c += Cycle(3);
        assert_eq!(c, Cycle(8));
        c -= Cycle(2);
        assert_eq!(c, Cycle(6));
        assert_eq!(c * 2, Cycle(12));
        assert_eq!(Cycle(4).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(4).min(Cycle(9)), Cycle(4));
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle(10).saturating_since(Cycle(4)), Cycle(6));
        assert_eq!(Cycle(4).saturating_since(Cycle(10)), Cycle(0));
    }

    #[test]
    fn cycle_sum() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn picos_conversion_matches_paper_clock() {
        // 1000 cycles at the vanilla 1.025ns clock is 1.025 us.
        assert_eq!(Cycle(1000).to_picos(Picos(1025)), Picos(1_025_000));
    }

    #[test]
    fn picos_scaling() {
        // EVE-32's 51% penalty over 1.025ns lands near the paper's 1.55ns.
        let scaled = Picos(1025).scale_percent(151);
        assert!(scaled.0 >= 1540 && scaled.0 <= 1560, "{scaled:?}");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle(7).to_string(), "7 cycles");
        assert_eq!(Picos(1025).to_string(), "1.025 ns");
    }
}
