//! A minimal, dependency-free JSON document builder.
//!
//! The experiment binaries emit machine-readable reports, and the fault
//! campaign's acceptance test requires *byte-identical* output for a
//! fixed seed. This module therefore renders JSON deterministically:
//! objects keep insertion order, floats use Rust's shortest-roundtrip
//! `Display`, and strings are escaped per RFC 8259.
//!
//! # Examples
//!
//! ```
//! use eve_common::json::JsonValue;
//!
//! let doc = JsonValue::object([
//!     ("name", JsonValue::from("vvadd")),
//!     ("cycles", JsonValue::from(1234u64)),
//! ]);
//! assert_eq!(doc.to_compact(), r#"{"name":"vvadd","cycles":1234}"#);
//! ```

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without an exponent).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object preserving insertion order, so renders are stable.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Renders without whitespace.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, None, 0);
        s
    }

    /// Renders with two-space indentation (one node per line).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, Some(2), 0);
        s
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // Shortest-roundtrip Display is deterministic and
                    // always includes enough digits to reparse exactly.
                    let mut num = format!("{f}");
                    if !num.contains(['.', 'e', 'E']) {
                        // Mark integral floats as floats (`1` → `1.0`)
                        // so the column's type is stable across rows.
                        num.push_str(".0");
                    }
                    out.push_str(&num);
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(out, s),
            JsonValue::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].render(out, indent, d);
                });
            }
            JsonValue::Object(pairs) => {
                render_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    render_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.render(out, indent, d);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::UInt(u)
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::UInt(u64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::UInt(u as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_compact(), "null");
        assert_eq!(JsonValue::from(true).to_compact(), "true");
        assert_eq!(JsonValue::from(42u64).to_compact(), "42");
        assert_eq!(JsonValue::from(-7i64).to_compact(), "-7");
        assert_eq!(JsonValue::from(1.5).to_compact(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::from(1.0).to_compact(), "1.0");
        assert_eq!(JsonValue::from(-3.0).to_compact(), "-3.0");
        assert_eq!(JsonValue::from(0.0).to_compact(), "0.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::from("a\"b\\c\nd").to_compact(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(JsonValue::from("\u{1}").to_compact(), "\"\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = JsonValue::object([("z", JsonValue::from(1u64)), ("a", JsonValue::from(2u64))]);
        assert_eq!(doc.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let doc = JsonValue::object([
            (
                "k",
                JsonValue::array([JsonValue::from(1u64), JsonValue::Null]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"k\": [\n    1,\n    null\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn same_doc_same_bytes() {
        let build = || {
            JsonValue::object([
                ("rate", JsonValue::from(0.001)),
                (
                    "runs",
                    JsonValue::array((0..4).map(|i| JsonValue::from(i as u64))),
                ),
            ])
        };
        assert_eq!(build().to_pretty(), build().to_pretty());
    }
}
