//! A minimal, dependency-free JSON document builder.
//!
//! The experiment binaries emit machine-readable reports, and the fault
//! campaign's acceptance test requires *byte-identical* output for a
//! fixed seed. This module therefore renders JSON deterministically:
//! objects keep insertion order, floats use Rust's shortest-roundtrip
//! `Display`, and strings are escaped per RFC 8259.
//!
//! # Examples
//!
//! ```
//! use eve_common::json::JsonValue;
//!
//! let doc = JsonValue::object([
//!     ("name", JsonValue::from("vvadd")),
//!     ("cycles", JsonValue::from(1234u64)),
//! ]);
//! assert_eq!(doc.to_compact(), r#"{"name":"vvadd","cycles":1234}"#);
//! ```

use std::fmt;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without an exponent).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object preserving insertion order, so renders are stable.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Renders without whitespace.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, None, 0);
        s
    }

    /// Renders with two-space indentation (one node per line).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, Some(2), 0);
        s
    }

    /// Parses a JSON document (RFC 8259 subset: no duplicate-key
    /// detection; numbers become [`JsonValue::UInt`]/[`JsonValue::Int`]
    /// when integral, [`JsonValue::Float`] otherwise). The trace tools
    /// use this to validate their own emitted documents end to end.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] describing the first syntax error
    /// and its byte offset.
    pub fn parse(text: &str) -> Result<Self, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // Shortest-roundtrip Display is deterministic and
                    // always includes enough digits to reparse exactly.
                    let mut num = format!("{f}");
                    if !num.contains(['.', 'e', 'E']) {
                        // Mark integral floats as floats (`1` → `1.0`)
                        // so the column's type is stable across rows.
                        num.push_str(".0");
                    }
                    out.push_str(&num);
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(out, s),
            JsonValue::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].render(out, indent, d);
                });
            }
            JsonValue::Object(pairs) => {
                render_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    render_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.render(out, indent, d);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array_value(),
            Some(b'{') => self.object_value(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array_value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not emitted by our
                            // renderer; reject rather than mis-decode.
                            let Some(c) = char::from_u32(u32::from(cp)) else {
                                return Err(self.err("unsupported surrogate escape"));
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected four hex digits"))?;
            v = v << 4 | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::UInt(u)
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::UInt(u64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::UInt(u as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_compact(), "null");
        assert_eq!(JsonValue::from(true).to_compact(), "true");
        assert_eq!(JsonValue::from(42u64).to_compact(), "42");
        assert_eq!(JsonValue::from(-7i64).to_compact(), "-7");
        assert_eq!(JsonValue::from(1.5).to_compact(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::from(1.0).to_compact(), "1.0");
        assert_eq!(JsonValue::from(-3.0).to_compact(), "-3.0");
        assert_eq!(JsonValue::from(0.0).to_compact(), "0.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::from("a\"b\\c\nd").to_compact(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(JsonValue::from("\u{1}").to_compact(), "\"\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = JsonValue::object([("z", JsonValue::from(1u64)), ("a", JsonValue::from(2u64))]);
        assert_eq!(doc.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let doc = JsonValue::object([
            (
                "k",
                JsonValue::array([JsonValue::from(1u64), JsonValue::Null]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"k\": [\n    1,\n    null\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("vvadd")),
            ("cycles", JsonValue::from(1234u64)),
            ("neg", JsonValue::from(-5i64)),
            ("rate", JsonValue::from(0.25)),
            ("flag", JsonValue::from(true)),
            ("nothing", JsonValue::Null),
            (
                "nest",
                JsonValue::array([
                    JsonValue::from(1u64),
                    JsonValue::object([("k", 2u64.into())]),
                ]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parse_handles_escapes() {
        let doc = JsonValue::from("a\"b\\c\nd\t\u{1}é");
        assert_eq!(JsonValue::parse(&doc.to_compact()).unwrap(), doc);
        assert_eq!(
            JsonValue::parse("\"\\u0041\"").unwrap(),
            JsonValue::from("A")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = JsonValue::parse("[1,").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
    }

    #[test]
    fn same_doc_same_bytes() {
        let build = || {
            JsonValue::object([
                ("rate", JsonValue::from(0.001)),
                (
                    "runs",
                    JsonValue::array((0..4).map(|i| JsonValue::from(i as u64))),
                ),
            ])
        };
        assert_eq!(build().to_pretty(), build().to_pretty());
    }
}
