//! A tiny deterministic RNG for fault injection and sampling.
//!
//! [`SplitMix64`] is the classic Steele/Lea/Flood generator: a 64-bit
//! counter stepped by the golden-gamma constant and finalized with two
//! xor-shift-multiply rounds. It is not cryptographic; it is chosen
//! because it is *reproducible* — one `u64` of state, no platform
//! dependence — which is exactly what a seeded fault campaign needs:
//! the same seed must flip the same bits on every run, on every
//! machine.
//!
//! # Examples
//!
//! ```
//! use eve_common::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! ```

/// The golden-gamma increment (2^64 / φ, odd).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A splitmix64 pseudo-random number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit output (high half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift range reduction (Lemire); bias is < 2^-32
            // for the small bounds (lanes, bits) used here.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One Bernoulli trial: `true` with probability `p` (clamped to
    /// `[0, 1]`). Always draws exactly one value, so interleaved
    /// streams stay aligned regardless of outcome.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let draw = self.next_f64();
        draw < p
    }

    /// Forks an independent generator: the child is seeded from this
    /// stream, so `(seed, split order)` fully determines it.
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // First three outputs of splitmix64 seeded with 0 (Vigna's
        // public-domain reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(!r.chance(0.0));
        }
        for _ in 0..1000 {
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_rate_is_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.01)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent1 = SplitMix64::new(5);
        let mut parent2 = SplitMix64::new(5);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // The child stream differs from the parent's continuation.
        assert_ne!(parent1.next_u64(), c1.next_u64());
    }
}
