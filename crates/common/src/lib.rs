//! Shared primitives for the EVE simulator workspace.
//!
//! This crate holds the small vocabulary types every other crate speaks:
//! [`Cycle`] and [`Picos`] for time, [`Stats`] for named counters, and the
//! bit-manipulation helpers used by the bit-accurate SRAM model.
//!
//! # Examples
//!
//! ```
//! use eve_common::{Cycle, Picos};
//!
//! let c = Cycle(10) + Cycle(5);
//! assert_eq!(c, Cycle(15));
//! // 15 cycles at a 1.025 ns clock:
//! assert_eq!(c.to_picos(Picos(1025)), Picos(15_375));
//! ```

pub mod bits;
pub mod json;
pub mod rng;
pub mod stats;
pub mod time;

pub use bits::{bit, deposit_bits, extract_bits, set_bit, transpose32};
pub use rng::SplitMix64;
pub use stats::{Stat, Stats};
pub use time::{Cycle, Picos};

/// Error type shared across the workspace for configuration problems.
///
/// Configuration errors are reported when a machine or array is constructed
/// with parameters that cannot describe real hardware (for example a
/// parallelization factor that does not divide the element width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a new configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description of what was invalid.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Convenience alias for results carrying a [`ConfigError`].
pub type ConfigResult<T> = Result<T, ConfigError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_message() {
        let e = ConfigError::new("segment width 5 does not divide 32");
        assert_eq!(
            e.to_string(),
            "invalid configuration: segment width 5 does not divide 32"
        );
        assert_eq!(e.message(), "segment width 5 does not divide 32");
    }

    #[test]
    fn config_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
