//! The deterministic lossy interconnect between the router and shards.
//!
//! Until this layer existed, router→shard and shard→router messaging
//! was an instantaneous, perfectly-reliable in-process call — the one
//! failure class the cluster could not see. [`Link`] makes delivery
//! explicit: every request, response, cancel, and heartbeat becomes a
//! message with a seeded per-link delay distribution, loss
//! probability, duplication, and extra-delay reordering, scheduled
//! through the existing discrete-event calendar so runs stay
//! byte-identical at any campaign thread count.
//!
//! On top of the raw link the cluster builds exactly-once *effects*
//! from at-least-once *delivery*:
//!
//! * [`DedupTable`] is the per-shard idempotency table: the first
//!   execution of a request is recorded with its result, and every
//!   redelivered copy resends the cached response instead of
//!   re-executing — no double-spent warmup flushes, no duplicate SDC
//!   exposure.
//! * [`RttWindow`] is the windowed RTT estimator behind hedged
//!   requests: once enough samples exist, a hedge fires after the
//!   windowed p99 delay and the first response wins.
//! * [`Detector`] is the windowed heartbeat failure detector: the
//!   router pings every shard over the same lossy link; a shard whose
//!   acks go quiet for more than the miss window is *suspected* and
//!   routed around, and recovers the moment an ack lands. A partition
//!   is now just 100% loss on a link — the blunt
//!   [`ShardPartition`](crate::storm::StormEventKind::ShardPartition)
//!   oracle is only kept for the historical (net-disabled) mode.
//!
//! Everything here is a pure function of the seed: the link RNG is a
//! forked [`SplitMix64`] stream, [`SplitMix64::chance`] always draws
//! exactly one value, and the p99 sort is exact integer work.

use eve_common::SplitMix64;
use std::collections::HashMap;

/// Transport knobs for one cluster run. Disabled (the default) keeps
/// the historical instantaneous-reliable dispatch path byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPolicy {
    /// Whether the transport layer is modeled at all.
    pub enabled: bool,
    /// Minimum one-way delay per message copy, cycles.
    pub base_delay: u64,
    /// Uniform extra delay on `[0, jitter]`, cycles.
    pub jitter: u64,
    /// Per-copy drop probability.
    pub loss: f64,
    /// Probability a transmit emits two copies instead of one.
    pub duplicate: f64,
    /// Probability a copy picks up `reorder_extra` additional delay,
    /// letting later messages overtake it.
    pub reorder: f64,
    /// The overtaking delay, cycles.
    pub reorder_extra: u64,
    /// Sender-side retransmit timeout. Zero derives it from the
    /// service profile ([`crate::ServiceProfile::rto_hint`]).
    pub rto: u64,
    /// Retransmits per request before the sender fails over.
    pub max_retransmits: u32,
    /// Whether hedged requests fire at all.
    pub hedge: bool,
    /// RTT samples required before the hedge estimator arms.
    pub hedge_min_samples: usize,
    /// Floor on the hedge delay, cycles (a tiny p99 must not hedge
    /// every request).
    pub hedge_floor: u64,
    /// Heartbeat period per link, cycles.
    pub heartbeat_every: u64,
    /// Consecutive silent heartbeat periods before suspicion.
    pub suspect_misses: u32,
}

impl Default for NetPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            base_delay: 40,
            jitter: 24,
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_extra: 96,
            rto: 0,
            max_retransmits: 3,
            hedge: true,
            hedge_min_samples: 16,
            hedge_floor: 1_000,
            heartbeat_every: 2_000,
            suspect_misses: 3,
        }
    }
}

impl NetPolicy {
    /// An enabled policy with `loss` drop probability, half that much
    /// duplication, and mild reordering — the standard chaos preset
    /// campaigns sweep.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        Self {
            enabled: true,
            loss,
            duplicate: loss / 2.0,
            reorder: 0.05,
            ..Self::default()
        }
    }

    /// Validates the probability fields.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a probability
    /// leaves `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("net.{name} must be a probability, got {p}"));
            }
        }
        Ok(())
    }
}

/// Message classes a link carries, each conserved independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Router→shard request dispatch.
    Req = 0,
    /// Shard→router response (success or nack).
    Resp = 1,
    /// Router→shard hedge/first-response-wins cancellation.
    Cancel = 2,
    /// Router→shard heartbeat ping.
    Heartbeat = 3,
    /// Shard→router heartbeat ack.
    Ack = 4,
}

impl MsgClass {
    /// Every class, in wire order.
    pub const ALL: [MsgClass; 5] = [
        MsgClass::Req,
        MsgClass::Resp,
        MsgClass::Cancel,
        MsgClass::Heartbeat,
        MsgClass::Ack,
    ];

    /// Stable lowercase name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MsgClass::Req => "req",
            MsgClass::Resp => "resp",
            MsgClass::Cancel => "cancel",
            MsgClass::Heartbeat => "heartbeat",
            MsgClass::Ack => "ack",
        }
    }
}

/// One message class's conservation ledger on one link. Counts are in
/// *copies* (a duplicated transmit is two sends), so
/// `sent == delivered + dropped + in-flight` holds exactly — the
/// auditor's message-conservation identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Copies handed to the link.
    pub sent: u64,
    /// Copies that reached the far end (late copies included).
    pub delivered: u64,
    /// Copies the link dropped at transmit time.
    pub dropped: u64,
    /// Extra copies the duplication draw emitted.
    pub dup_copies: u64,
}

impl ClassStats {
    /// Copies scheduled but not yet delivered — zero once a run's
    /// event heap has drained.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.sent - self.delivered - self.dropped
    }
}

/// One router↔shard link: a seeded RNG stream plus per-class
/// conservation counters and an optional loss-override window (how
/// partitions and [`LinkDegrade`](crate::storm::StormEventKind::LinkDegrade)
/// storms are modeled).
#[derive(Debug, Clone)]
pub struct Link {
    rng: SplitMix64,
    lossy_until: u64,
    loss_override: f64,
    classes: [ClassStats; MsgClass::ALL.len()],
}

impl Link {
    /// A link for `shard`, its RNG forked from the cluster seed so
    /// adding a shard never perturbs another link's stream.
    #[must_use]
    pub fn new(seed: u64, shard: usize) -> Self {
        Self {
            rng: SplitMix64::new(
                seed ^ 0x6C62_272E_07BB_0142 ^ (shard as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            ),
            lossy_until: 0,
            loss_override: 0.0,
            classes: [ClassStats::default(); MsgClass::ALL.len()],
        }
    }

    /// Opens (or extends) a loss-override window: until `until`, the
    /// link drops each copy with probability `loss` (if worse than the
    /// baseline). Overlapping windows keep the later end and the worse
    /// loss.
    pub fn degrade(&mut self, until: u64, loss: f64) {
        self.lossy_until = self.lossy_until.max(until);
        self.loss_override = self.loss_override.max(loss.clamp(0.0, 1.0));
    }

    /// Whether a loss-override window is open at `now`.
    #[must_use]
    pub fn degraded_at(&self, now: u64) -> bool {
        now < self.lossy_until
    }

    fn loss_at(&self, now: u64, base: f64) -> f64 {
        if now < self.lossy_until {
            self.loss_override.max(base)
        } else {
            base
        }
    }

    /// Transmits one message at `now`: draws duplication once, then
    /// per copy draws loss, jitter, and reordering. Returns the
    /// delivery time of each surviving copy (empty when everything
    /// dropped). Every copy updates the class ledger.
    pub fn transmit(&mut self, now: u64, class: MsgClass, p: &NetPolicy) -> Vec<u64> {
        let copies = if self.rng.chance(p.duplicate) { 2 } else { 1 };
        let loss = self.loss_at(now, p.loss);
        let mut out = Vec::with_capacity(copies);
        for c in 0..copies {
            self.classes[class as usize].sent += 1;
            if c > 0 {
                self.classes[class as usize].dup_copies += 1;
            }
            if self.rng.chance(loss) {
                self.classes[class as usize].dropped += 1;
                continue;
            }
            let mut delay = p.base_delay.max(1) + self.rng.below(p.jitter + 1);
            if self.rng.chance(p.reorder) {
                delay += p.reorder_extra;
            }
            out.push(now + delay);
        }
        out
    }

    /// Records one copy reaching the far end.
    pub fn on_delivered(&mut self, class: MsgClass) {
        self.classes[class as usize].delivered += 1;
    }

    /// One class's ledger.
    #[must_use]
    pub fn stats(&self, class: MsgClass) -> ClassStats {
        self.classes[class as usize]
    }
}

/// A shard's idempotency table: request id → cached result (whether
/// the cached answer is silently corrupt). Redelivered copies of an
/// executed request hit the cache and resend the recorded response
/// instead of re-executing — the exactly-once half of the transport.
#[derive(Debug, Clone, Default)]
pub struct DedupTable {
    done: HashMap<u64, bool>,
}

impl DedupTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `id`'s execution with its result. Returns `true` when
    /// this is the first (effective) application; `false` means the
    /// caller was about to double-apply — the auditor requires that
    /// count to be zero.
    pub fn record(&mut self, id: u64, corrupt: bool) -> bool {
        self.done.insert(id, corrupt).is_none()
    }

    /// The cached result of `id`, if it already executed here.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<bool> {
        self.done.get(&id).copied()
    }

    /// Distinct requests executed here.
    #[must_use]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether nothing executed here yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

/// A fixed-capacity sliding window of RTT samples with an exact p99 —
/// the hedge-delay estimator. The sort runs on at most `cap` integers
/// per query, and the ring overwrite order is purely arrival order, so
/// the estimate is deterministic.
#[derive(Debug, Clone)]
pub struct RttWindow {
    samples: Vec<u64>,
    next: usize,
    cap: usize,
}

impl RttWindow {
    /// An empty window holding up to `cap` samples.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            samples: Vec::with_capacity(cap),
            next: 0,
            cap,
        }
    }

    /// Records one round-trip sample, evicting the oldest at capacity.
    pub fn record(&mut self, rtt: u64) {
        if self.samples.len() < self.cap {
            self.samples.push(rtt);
        } else {
            self.samples[self.next] = rtt;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The windowed 99th-percentile RTT, `None` while empty.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v = self.samples.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * 0.99).round() as usize;
        Some(v[idx])
    }

    /// The hedge delay: windowed p99 clamped up to `floor`, and `None`
    /// until `min_samples` RTTs have been observed (hedging on a cold
    /// estimator would fire on noise).
    #[must_use]
    pub fn hedge_delay(&self, min_samples: usize, floor: u64) -> Option<u64> {
        if self.samples.len() < min_samples.max(1) {
            return None;
        }
        self.p99().map(|p| p.max(floor))
    }
}

/// One failure-detector transition, kept as replayable history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorEvent {
    /// When the transition was observed.
    pub at: u64,
    /// Which shard's link.
    pub shard: usize,
    /// `true` = became suspected, `false` = recovered.
    pub suspected: bool,
}

/// The windowed heartbeat failure detector: one ack clock per link.
/// A shard is suspected once its last ack is older than
/// `heartbeat_every × (suspect_misses + 1)` — i.e. the whole miss
/// window went silent — and recovers the instant an ack lands.
/// Suspicion is evaluated lazily at routing decisions, which is both
/// deterministic (the event loop drives it) and honest (a sender only
/// learns about silence when it looks).
#[derive(Debug, Clone)]
pub struct Detector {
    threshold: u64,
    last_ack: Vec<u64>,
    suspected: Vec<bool>,
    events: Vec<DetectorEvent>,
    suspicions: u64,
    recoveries: u64,
}

impl Detector {
    /// A detector over `shards` links.
    #[must_use]
    pub fn new(shards: usize, heartbeat_every: u64, suspect_misses: u32) -> Self {
        Self {
            threshold: heartbeat_every.max(1) * (u64::from(suspect_misses.max(1)) + 1),
            last_ack: vec![0; shards],
            suspected: vec![false; shards],
            events: Vec::new(),
            suspicions: 0,
            recoveries: 0,
        }
    }

    /// An ack from `shard` landed at `now`: refreshes its clock and
    /// returns the recovery event if this cleared a suspicion.
    pub fn on_ack(&mut self, now: u64, shard: usize) -> Option<DetectorEvent> {
        self.last_ack[shard] = now;
        if !self.suspected[shard] {
            return None;
        }
        self.suspected[shard] = false;
        self.recoveries += 1;
        let ev = DetectorEvent {
            at: now,
            shard,
            suspected: false,
        };
        self.events.push(ev);
        Some(ev)
    }

    /// Re-evaluates `shard` at `now`: returns the suspicion event if
    /// the miss window just elapsed.
    pub fn probe(&mut self, now: u64, shard: usize) -> Option<DetectorEvent> {
        if self.suspected[shard] || now.saturating_sub(self.last_ack[shard]) <= self.threshold {
            return None;
        }
        self.suspected[shard] = true;
        self.suspicions += 1;
        let ev = DetectorEvent {
            at: now,
            shard,
            suspected: true,
        };
        self.events.push(ev);
        Some(ev)
    }

    /// Whether `shard` is currently suspected.
    #[must_use]
    pub fn suspected(&self, shard: usize) -> bool {
        self.suspected[shard]
    }

    /// Transition history, in observation order.
    #[must_use]
    pub fn events(&self) -> &[DetectorEvent] {
        &self.events
    }

    /// Suspicion transitions observed.
    #[must_use]
    pub fn suspicions(&self) -> u64 {
        self.suspicions
    }

    /// Recovery transitions observed.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

/// The transport tallies a cluster run reports and the auditor
/// replays. All zeros while the layer is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Sender-side retransmits after timeouts.
    pub retransmits: u64,
    /// Timeouts that fired while their transmission was still live.
    pub timeouts: u64,
    /// Hedged requests fired.
    pub hedges: u64,
    /// Requests whose hedge copy won the race.
    pub hedge_wins: u64,
    /// Cancels that pulled a superseded copy out of a queue in time.
    pub hedge_cancelled: u64,
    /// Cancels that arrived too late (copy already dispatched or done).
    pub cancel_missed: u64,
    /// Redelivered requests answered from the idempotency cache.
    pub dedup_hits: u64,
    /// Request copies suppressed because the shard already held one.
    pub dup_suppressed: u64,
    /// Response copies that arrived after their request resolved.
    pub late_responses: u64,
    /// Stale queue entries dropped after their request resolved
    /// elsewhere.
    pub stale_drops: u64,
    /// Executions the dedup table would have double-applied — the
    /// exactly-once identity requires this to be zero.
    pub double_applied: u64,
    /// Failure-detector suspicion transitions.
    pub suspicions: u64,
    /// Failure-detector recovery transitions.
    pub recoveries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_seed_deterministic_and_conserve_copies() {
        let p = NetPolicy {
            loss: 0.2,
            duplicate: 0.3,
            reorder: 0.2,
            ..NetPolicy::lossy(0.2)
        };
        let run = || {
            let mut l = Link::new(42, 1);
            let mut deliveries = Vec::new();
            for i in 0..500u64 {
                let at = i * 100;
                for t in l.transmit(at, MsgClass::Req, &p) {
                    assert!(t > at, "delivery must take time");
                    deliveries.push(t);
                    l.on_delivered(MsgClass::Req);
                }
            }
            (deliveries, l.stats(MsgClass::Req))
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(sa.sent, sa.delivered + sa.dropped);
        assert_eq!(sa.in_flight(), 0);
        assert!(sa.dropped > 0, "20% loss dropped nothing in 500 sends");
        assert!(sa.dup_copies > 0, "30% duplication duplicated nothing");
        assert!(sa.sent > 500, "duplicates add copies");
    }

    #[test]
    fn different_links_draw_different_streams() {
        let p = NetPolicy::lossy(0.3);
        let mut a = Link::new(42, 0);
        let mut b = Link::new(42, 1);
        let da: Vec<Vec<u64>> = (0..50)
            .map(|i| a.transmit(i * 10, MsgClass::Req, &p))
            .collect();
        let db: Vec<Vec<u64>> = (0..50)
            .map(|i| b.transmit(i * 10, MsgClass::Req, &p))
            .collect();
        assert_ne!(da, db, "links must fork independent streams");
    }

    #[test]
    fn degrade_windows_drop_everything_then_heal() {
        let p = NetPolicy {
            loss: 0.0,
            duplicate: 0.0,
            ..NetPolicy::lossy(0.0)
        };
        let mut l = Link::new(7, 0);
        l.degrade(1_000, 1.0);
        assert!(l.degraded_at(500));
        assert!(!l.degraded_at(1_000));
        for i in 0..20u64 {
            assert!(l.transmit(i, MsgClass::Resp, &p).is_empty());
        }
        assert_eq!(l.stats(MsgClass::Resp).dropped, 20);
        // Past the window the baseline (0% loss) applies again.
        assert_eq!(l.transmit(2_000, MsgClass::Resp, &p).len(), 1);
    }

    #[test]
    fn dedup_never_double_applies() {
        let mut d = DedupTable::new();
        assert!(d.record(3, false), "first application is effective");
        assert!(!d.record(3, false), "second application is refused");
        assert_eq!(d.lookup(3), Some(false));
        assert!(d.record(4, true));
        assert_eq!(d.lookup(4), Some(true), "cache keeps the corrupt bit");
        assert_eq!(d.lookup(5), None);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn rtt_window_slides_and_p99_is_exact() {
        let mut w = RttWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.p99(), None);
        for s in [10, 20, 30, 40] {
            w.record(s);
        }
        assert_eq!(w.p99(), Some(40));
        // Capacity 4: recording 100 evicts 10; the window max is 100.
        w.record(100);
        assert_eq!(w.len(), 4);
        assert_eq!(w.p99(), Some(100));
    }

    #[test]
    fn hedge_delay_needs_samples_and_respects_the_floor() {
        let mut w = RttWindow::new(64);
        assert_eq!(w.hedge_delay(4, 500), None, "cold estimator must not arm");
        for _ in 0..4 {
            w.record(120);
        }
        assert_eq!(w.hedge_delay(4, 500), Some(500), "floor clamps a tiny p99");
        for _ in 0..16 {
            w.record(9_000);
        }
        assert_eq!(w.hedge_delay(4, 500), Some(9_000));
    }

    #[test]
    fn detector_suspects_after_the_miss_window_and_recovers_on_ack() {
        let mut d = Detector::new(2, 1_000, 3);
        // Acks flowing: no suspicion.
        d.on_ack(900, 0);
        assert_eq!(d.probe(4_000, 0), None);
        assert!(!d.suspected(0));
        // Silence past every × (misses + 1) = 4000 cycles: suspected.
        let ev = d.probe(5_000, 0).expect("miss window elapsed");
        assert!(ev.suspected);
        assert!(d.suspected(0));
        assert_eq!(d.probe(5_100, 0), None, "suspicion fires once");
        // An ack recovers it.
        let ev = d.on_ack(6_000, 0).expect("ack clears suspicion");
        assert!(!ev.suspected);
        assert!(!d.suspected(0));
        assert_eq!(d.suspicions(), 1);
        assert_eq!(d.recoveries(), 1);
        assert_eq!(d.events().len(), 2);
        // Shard 1 was never touched.
        assert!(d.suspected(1) || !d.suspected(1));
        assert!(!d.suspected(1));
    }

    #[test]
    fn policy_validation_rejects_non_probabilities() {
        assert!(NetPolicy::default().validate().is_ok());
        assert!(NetPolicy::lossy(0.05).validate().is_ok());
        for tweak in [
            |p: &mut NetPolicy| p.loss = 1.5,
            |p: &mut NetPolicy| p.duplicate = -0.1,
            |p: &mut NetPolicy| p.reorder = 2.0,
        ] {
            let mut p = NetPolicy::lossy(0.05);
            tweak(&mut p);
            assert!(p.validate().is_err());
        }
    }
}
