//! Request batching: coalescing same-kernel requests into one
//! dispatch.
//!
//! EVE's spawn-execute-free economics make batching attractive: the
//! engine build (configuration load, array claim) amortizes over every
//! request in the batch, so a k-request batch costs far less than k
//! solo dispatches. The model here is deliberately simple — the first
//! request pays full price, each rider adds a configurable marginal
//! fraction — because the serving layer only needs relative economics
//! (is coalescing worth delaying the riders?), not a cycle-accurate
//! pipeline model; the per-workload solo cost already comes from
//! measurement via `ServiceProfile`.

/// How aggressively a shard coalesces compatible requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch one dispatch may carry.
    pub max_batch: usize,
    /// Marginal cost of each rider as a fraction of the solo cost:
    /// a k-batch costs `solo × (1 + marginal × (k − 1))` cycles.
    pub marginal: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            marginal: 0.35,
        }
    }
}

impl BatchPolicy {
    /// No coalescing: every dispatch carries one request.
    #[must_use]
    pub fn solo() -> Self {
        Self {
            max_batch: 1,
            marginal: 1.0,
        }
    }

    /// Service cycles for a `k`-request batch whose solo cost is
    /// `solo`. Always at least `solo`, and monotone in `k`.
    #[must_use]
    pub fn batch_cycles(&self, solo: u64, k: usize) -> u64 {
        if k <= 1 {
            return solo.max(1);
        }
        let riders = (k - 1) as f64;
        let cycles = (solo as f64 * (1.0 + self.marginal.max(0.0) * riders)).round() as u64;
        cycles.max(solo).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_batch_costs_solo() {
        let p = BatchPolicy::default();
        assert_eq!(p.batch_cycles(1000, 1), 1000);
        assert_eq!(p.batch_cycles(1000, 0), 1000);
        assert_eq!(p.batch_cycles(0, 1), 1);
    }

    #[test]
    fn riders_cost_the_marginal_fraction() {
        let p = BatchPolicy {
            max_batch: 8,
            marginal: 0.25,
        };
        assert_eq!(p.batch_cycles(1000, 2), 1250);
        assert_eq!(p.batch_cycles(1000, 5), 2000);
    }

    #[test]
    fn batching_beats_solo_dispatches() {
        let p = BatchPolicy::default();
        for k in 2..=8 {
            let batched = p.batch_cycles(4000, k);
            let solo = 4000 * k as u64;
            assert!(batched < solo, "batch of {k} should amortize");
            assert!(batched >= 4000, "batch never undercuts one request");
        }
    }

    #[test]
    fn cost_is_monotone_in_batch_size() {
        let p = BatchPolicy::default();
        let mut prev = 0;
        for k in 1..=16 {
            let c = p.batch_cycles(2500, k);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn solo_policy_disables_amortization() {
        let p = BatchPolicy::solo();
        assert_eq!(p.max_batch, 1);
        assert_eq!(p.batch_cycles(1000, 3), 3000);
    }
}
