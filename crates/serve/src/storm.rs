//! Deterministic fault storms: scripted engine-health timelines.
//!
//! A storm is a sorted list of `(cycle, engine, kind)` events the
//! serving simulation replays against its pool. [`FaultStorm::synth`]
//! generates a statistical storm from a seed and an intensity knob —
//! the same `(seed, pool, horizon, intensity)` always yields the same
//! storm, byte for byte — and presets like [`FaultStorm::kill_one`]
//! script the acceptance scenarios (an engine dying mid-campaign)
//! exactly.

use eve_common::SplitMix64;

/// What happens to an engine at a storm event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormEventKind {
    /// The engine fails every request dispatched while the brownout
    /// lasts; failures are *detected* (the PR 1/PR 4 parity/SECDED
    /// check fires), so the serving layer sees them.
    Brownout {
        /// Brownout length in cycles.
        duration: u64,
    },
    /// The engine silently corrupts results for `duration` cycles:
    /// only a checked pool (the default) converts these into detected
    /// failures; an unchecked pool completes them as SDCs.
    Silent {
        /// Corruption-window length in cycles.
        duration: u64,
    },
    /// The engine dies permanently (remap and way budgets exhausted —
    /// the bottom of the PR 4 escalation ladder).
    Kill,
    /// The engine returns to health (ends a brownout early or revives
    /// a killed engine after repair).
    Recover,
    /// Cluster-scoped: the *shard* named by the event's `engine` field
    /// is network-isolated for `duration` cycles — no dispatches land,
    /// in-flight work fails detected, and the router treats the shard
    /// as unavailable. Rejected by single-pool [`crate::ServeSim`]
    /// runs (a pool has no shards).
    ShardPartition {
        /// Partition length in cycles.
        duration: u64,
    },
    /// Cluster-scoped traffic shaping rather than a silicon fault:
    /// while the window lasts, most arrivals draw `key` instead of a
    /// uniform routing key, hammering whichever shard owns it. The
    /// event's `engine` field is ignored. Rejected by single-pool
    /// runs.
    HotKeySkew {
        /// The hammered routing key.
        key: u64,
        /// Skew-window length in cycles.
        duration: u64,
    },
    /// Cluster-scoped, transport-layer: the router↔shard link named by
    /// the event's `engine` field drops `loss_pct`% of message copies
    /// for `duration` cycles — a flaky cable rather than a dead shard.
    /// Requires the `eve-serve::net` transport to be enabled (rejected
    /// otherwise); with it on, a [`StormEventKind::ShardPartition`] is
    /// just the 100% special case of this.
    LinkDegrade {
        /// Drop probability in percent, clamped to 100 at replay.
        loss_pct: u8,
        /// Degrade-window length in cycles.
        duration: u64,
    },
}

/// One scripted health event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormEvent {
    /// When the event fires.
    pub at: u64,
    /// Which pool engine it hits.
    pub engine: usize,
    /// What it does.
    pub kind: StormEventKind,
}

/// A deterministic schedule of engine-health events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStorm {
    /// Events sorted by `(at, engine)`.
    pub events: Vec<StormEvent>,
}

impl FaultStorm {
    /// A calm run: no events.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A storm that kills `engine` at `at` and never repairs it.
    #[must_use]
    pub fn kill_one(engine: usize, at: u64) -> Self {
        Self {
            events: vec![StormEvent {
                at,
                engine,
                kind: StormEventKind::Kill,
            }],
        }
    }

    /// A storm that kills every engine of `shard` at `at` — the whole
    /// shard dies at once, as if its power rail browned out for good.
    /// Engine indices are global (`shard * engines_per_shard + e`),
    /// matching the cluster simulation's storm addressing.
    #[must_use]
    pub fn kill_shard(shard: usize, engines_per_shard: usize, at: u64) -> Self {
        let events = (0..engines_per_shard)
            .map(|e| StormEvent {
                at,
                engine: shard * engines_per_shard + e,
                kind: StormEventKind::Kill,
            })
            .collect();
        let mut storm = Self { events };
        storm.normalize();
        storm
    }

    /// A storm that network-partitions `shard` at `at` for `duration`
    /// cycles, then heals.
    #[must_use]
    pub fn partition(shard: usize, at: u64, duration: u64) -> Self {
        Self {
            events: vec![StormEvent {
                at,
                engine: shard,
                kind: StormEventKind::ShardPartition { duration },
            }],
        }
    }

    /// A storm that degrades `shard`'s router link to `loss_pct`% loss
    /// at `at` for `duration` cycles, then heals.
    #[must_use]
    pub fn link_degrade(shard: usize, loss_pct: u8, at: u64, duration: u64) -> Self {
        Self {
            events: vec![StormEvent {
                at,
                engine: shard,
                kind: StormEventKind::LinkDegrade { loss_pct, duration },
            }],
        }
    }

    /// A hot-key-skew window: from `at` for `duration` cycles, most
    /// arrivals carry `key`, hammering the shard that owns it.
    #[must_use]
    pub fn hot_key(key: u64, at: u64, duration: u64) -> Self {
        Self {
            events: vec![StormEvent {
                at,
                engine: 0,
                kind: StormEventKind::HotKeySkew { key, duration },
            }],
        }
    }

    /// A statistical storm over `pool` engines and `horizon` cycles.
    ///
    /// `intensity` scales the expected brownout count per engine (an
    /// intensity of 1.0 averages about four brownouts per engine over
    /// the horizon, each lasting 2–6 % of it). Intensities above 2.0
    /// also start drawing silent-corruption windows — the storm class
    /// only a checked pool survives without SDCs. Generation is pure:
    /// the same arguments always produce the same storm.
    #[must_use]
    pub fn synth(seed: u64, pool: usize, horizon: u64, intensity: f64) -> Self {
        let mut events = Vec::new();
        if intensity <= 0.0 || horizon == 0 {
            return Self { events };
        }
        let mut master = SplitMix64::new(seed);
        for engine in 0..pool {
            // Per-engine stream forked deterministically, so adding an
            // engine never perturbs the others' timelines.
            let mut rng = master.split();
            let expected = 4.0 * intensity;
            let n = expected.floor() as u64 + u64::from(rng.chance(expected.fract()));
            for _ in 0..n {
                let at = rng.below(horizon);
                let duration = horizon / 50 + rng.below(horizon / 25 + 1);
                events.push(StormEvent {
                    at,
                    engine,
                    kind: StormEventKind::Brownout { duration },
                });
            }
            if intensity > 2.0 && rng.chance((intensity - 2.0).min(1.0)) {
                let at = rng.below(horizon);
                let duration = horizon / 100 + rng.below(horizon / 50 + 1);
                events.push(StormEvent {
                    at,
                    engine,
                    kind: StormEventKind::Silent { duration },
                });
            }
        }
        let mut storm = Self { events };
        storm.normalize();
        storm
    }

    /// Merges another storm into this one, keeping events sorted.
    #[must_use]
    pub fn merged(mut self, other: Self) -> Self {
        self.events.extend(other.events);
        self.normalize();
        self
    }

    fn normalize(&mut self) {
        // Sort by (cycle, engine, kind discriminant) so merged storms
        // replay in one canonical order.
        self.events
            .sort_by_key(|e| (e.at, e.engine, kind_rank(e.kind)));
    }
}

fn kind_rank(k: StormEventKind) -> u8 {
    match k {
        StormEventKind::Recover => 0,
        StormEventKind::Brownout { .. } => 1,
        StormEventKind::Silent { .. } => 2,
        StormEventKind::Kill => 3,
        StormEventKind::ShardPartition { .. } => 4,
        StormEventKind::HotKeySkew { .. } => 5,
        StormEventKind::LinkDegrade { .. } => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic() {
        let a = FaultStorm::synth(7, 4, 1_000_000, 1.0);
        let b = FaultStorm::synth(7, 4, 1_000_000, 1.0);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultStorm::synth(1, 4, 1_000_000, 1.0);
        let b = FaultStorm::synth(2, 4, 1_000_000, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_intensity_is_calm() {
        assert!(FaultStorm::synth(7, 4, 1_000_000, 0.0).events.is_empty());
        assert!(FaultStorm::none().events.is_empty());
    }

    #[test]
    fn events_are_sorted_and_in_bounds() {
        let s = FaultStorm::synth(99, 8, 500_000, 2.5);
        for w in s.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &s.events {
            assert!(e.at < 500_000);
            assert!(e.engine < 8);
        }
    }

    #[test]
    fn high_intensity_draws_silent_windows() {
        let s = FaultStorm::synth(3, 8, 1_000_000, 3.0);
        assert!(
            s.events
                .iter()
                .any(|e| matches!(e.kind, StormEventKind::Silent { .. })),
            "intensity 3.0 should include silent-corruption windows"
        );
    }

    #[test]
    fn merged_storms_stay_sorted() {
        let s = FaultStorm::synth(5, 4, 100_000, 1.0).merged(FaultStorm::kill_one(2, 50_000));
        for w in s.events.windows(2) {
            assert!((w[0].at, w[0].engine) <= (w[1].at, w[1].engine));
        }
        assert!(s
            .events
            .iter()
            .any(|e| e.kind == StormEventKind::Kill && e.engine == 2));
    }

    #[test]
    fn kill_shard_takes_every_engine_at_once() {
        let s = FaultStorm::kill_shard(2, 4, 7_000);
        assert_eq!(s.events.len(), 4);
        for (i, e) in s.events.iter().enumerate() {
            assert_eq!(e.at, 7_000);
            assert_eq!(e.engine, 8 + i);
            assert_eq!(e.kind, StormEventKind::Kill);
        }
    }

    #[test]
    fn cluster_kinds_sort_after_engine_kinds() {
        let s = FaultStorm::kill_one(0, 100)
            .merged(FaultStorm::partition(0, 100, 50))
            .merged(FaultStorm::hot_key(9, 100, 50));
        assert_eq!(s.events[0].kind, StormEventKind::Kill);
        assert!(matches!(
            s.events[1].kind,
            StormEventKind::ShardPartition { .. }
        ));
        assert!(matches!(
            s.events[2].kind,
            StormEventKind::HotKeySkew { .. }
        ));
    }

    #[test]
    fn link_degrade_scripts_a_flaky_cable() {
        let s =
            FaultStorm::link_degrade(0, 40, 1_000, 500).merged(FaultStorm::hot_key(9, 1_000, 50));
        // Same cycle, same engine slot: LinkDegrade ranks last.
        assert!(matches!(
            s.events[0].kind,
            StormEventKind::HotKeySkew { .. }
        ));
        assert_eq!(
            s.events[1],
            StormEvent {
                at: 1_000,
                engine: 0,
                kind: StormEventKind::LinkDegrade {
                    loss_pct: 40,
                    duration: 500
                },
            }
        );
    }

    #[test]
    fn adding_an_engine_preserves_existing_timelines() {
        let small = FaultStorm::synth(11, 2, 100_000, 1.0);
        let large = FaultStorm::synth(11, 3, 100_000, 1.0);
        let small_e0: Vec<_> = small.events.iter().filter(|e| e.engine == 0).collect();
        let large_e0: Vec<_> = large.events.iter().filter(|e| e.engine == 0).collect();
        assert_eq!(small_e0, large_e0);
    }
}
