//! Service-time profiles: what a request costs on an engine.
//!
//! The serving layer is a discrete-event model, but its service times
//! are not invented — [`ServiceProfile::measured`] runs every workload
//! through the real `eve-sim` timing model once (EVE at the pool's
//! factor, and the O3+DV fallback), and measures how engines slow each
//! other down through the shared LLC/DRAM with
//! [`eve_sim::contention_profile`]. The event loop then prices each
//! dispatch as `base_cycles × contention[busy_engines]`, so pool-level
//! queueing effects rest on cycle-accurate measurements instead of
//! made-up constants.

use eve_common::Cycle;
use eve_mem::{Hierarchy, HierarchyConfig, Level};
use eve_sim::{contention_profile, Runner, SimError, SystemKind};
use eve_workloads::Workload;

/// Measured per-workload service times plus the pool contention curve.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    /// EVE factor the engine times were measured at.
    pub factor: u32,
    /// Workload names, index-aligned with the cycle vectors.
    pub names: Vec<String>,
    /// Cycles each workload takes on a solo EVE engine.
    pub eve_cycles: Vec<u64>,
    /// Each workload's O3+DV fallback time, converted to EVE-clock
    /// cycles so the whole serving timeline runs on one clock domain.
    pub fallback_cycles: Vec<u64>,
    /// Entry `k-1`: completion-time multiplier when `k` engines are
    /// concurrently busy (entry 0 is 1.0).
    pub contention: Vec<f64>,
    /// Cycles an engine spawn spends flushing the donated L2 ways on a
    /// warmed hierarchy (§V-E) — the warmup cost the elastic
    /// controller pays before a spawned engine comes online.
    pub spawn_flush_cycles: u64,
    /// Scalar-side cache-pressure multiplier: how much slower a scalar
    /// working set runs through the half-ways L2 than the full one.
    /// The fallback path is priced with (a fraction of) this when
    /// engines hold donated ways — the controller's genuine trade-off.
    pub scalar_slowdown: f64,
}

/// A scalar working set swept twice through `h`: six lines per L2 set,
/// so the full 8-way L2 retains everything while the half-ways
/// partition LRU-thrashes. Returns the second (steady-state) pass's
/// summed load-to-use latency.
fn scalar_sweep(h: &mut Hierarchy) -> u64 {
    const LINES: u64 = 6 * 1024;
    let mut now = Cycle(0);
    let mut total = 0u64;
    for pass in 0..2 {
        for i in 0..LINES {
            let a = h.access(Level::L1D, 0x100_0000 + i * 64, false, now);
            if pass == 1 {
                total += a.complete.saturating_since(now).0;
            }
            now += Cycle(200);
        }
    }
    total
}

/// Measures the elastic reconfiguration costs through `eve_mem`: the
/// spawn flush on a warmed full-width hierarchy, and the scalar
/// slowdown as the ratio of steady-state sweep latencies between the
/// half-ways and full-width L2. Deterministic — pure cache geometry.
fn measure_reconfig_costs() -> (u64, f64) {
    let mut full = Hierarchy::new(HierarchyConfig::table_iii());
    let full_lat = scalar_sweep(&mut full).max(1);
    let mut narrow = Hierarchy::new(HierarchyConfig::table_iii_vector_mode());
    let narrow_lat = scalar_sweep(&mut narrow);
    // The sweep left `full` warm: spawning now pays the real flush.
    let t = Cycle(100_000_000);
    let done = full.spawn_vector_mode(t);
    let spawn_flush = done.saturating_since(t).0.max(1);
    let slowdown = (narrow_lat as f64 / full_lat as f64).max(1.0);
    (spawn_flush, slowdown)
}

impl ServiceProfile {
    /// Measures a profile with the real timing model: one EVE run and
    /// one O3+DV run per workload, plus a contention sweep up to
    /// `max_pool` cores on the first workload (memory behavior is
    /// dominated by the shared DRAM channel, so one representative
    /// curve is applied pool-wide).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; rejects an empty workload list
    /// or a zero pool as [`SimError::Config`].
    pub fn measured(
        factor: u32,
        workloads: &[Workload],
        max_pool: usize,
    ) -> Result<Self, SimError> {
        if workloads.is_empty() {
            return Err(SimError::Config("a profile needs workloads".into()));
        }
        let runner = Runner::new();
        let eve_tick = SystemKind::EveN(factor).cycle_time().0.max(1);
        let mut names = Vec::with_capacity(workloads.len());
        let mut eve_cycles = Vec::with_capacity(workloads.len());
        let mut fallback_cycles = Vec::with_capacity(workloads.len());
        for w in workloads {
            let eve = runner.run(SystemKind::EveN(factor), w)?;
            let fb = runner.run(SystemKind::O3Dv, w)?;
            names.push(w.name().to_string());
            eve_cycles.push(eve.cycles.0.max(1));
            // The fallback runs on its own clock; express its wall time
            // in EVE ticks so both paths share the serving timeline.
            fallback_cycles.push((fb.wall_ps.0 / eve_tick).max(1));
        }
        let contention = contention_profile(SystemKind::EveN(factor), &workloads[0], max_pool)?;
        let (spawn_flush_cycles, scalar_slowdown) = measure_reconfig_costs();
        Ok(Self {
            factor,
            names,
            eve_cycles,
            fallback_cycles,
            contention,
            spawn_flush_cycles,
            scalar_slowdown,
        })
    }

    /// A hand-built profile for unit tests: `n` synthetic workloads of
    /// `eve` cycles each, `fallback` fallback cycles, and a linear
    /// contention curve (`k` busy engines → `1 + 0.1 (k-1)`).
    #[must_use]
    pub fn synthetic(n: usize, eve: u64, fallback: u64, max_pool: usize) -> Self {
        Self {
            factor: 8,
            names: (0..n).map(|i| format!("synthetic{i}")).collect(),
            eve_cycles: vec![eve.max(1); n],
            fallback_cycles: vec![fallback.max(1); n],
            contention: (0..max_pool.max(1)).map(|k| 1.0 + 0.1 * k as f64).collect(),
            spawn_flush_cycles: 600,
            scalar_slowdown: 1.3,
        }
    }

    /// Workload count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the profile is empty (it never is, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The contention multiplier with `busy` engines concurrently
    /// busy; saturates at the last measured point.
    #[must_use]
    pub fn contention_at(&self, busy: usize) -> f64 {
        match busy {
            0 | 1 => 1.0,
            k => {
                let idx = (k - 1).min(self.contention.len().saturating_sub(1));
                self.contention.get(idx).copied().unwrap_or(1.0)
            }
        }
    }

    /// Engine service time of workload `idx` with `busy` engines busy
    /// (including the one serving this request).
    #[must_use]
    pub fn eve_service(&self, idx: usize, busy: usize) -> u64 {
        let base = self.eve_cycles[idx % self.eve_cycles.len()];
        let scaled = base as f64 * self.contention_at(busy);
        scaled.round().max(1.0) as u64
    }

    /// Fallback service time of workload `idx` (the O3+DV path is a
    /// single shared server; it queues instead of contending).
    #[must_use]
    pub fn fallback_service(&self, idx: usize) -> u64 {
        self.fallback_cycles[idx % self.fallback_cycles.len()]
    }

    /// Mean solo engine service time — the admission bound's estimate
    /// of a queued request's cost.
    #[must_use]
    pub fn mean_eve_cycles(&self) -> u64 {
        let sum: u64 = self.eve_cycles.iter().sum();
        (sum / self.eve_cycles.len() as u64).max(1)
    }

    /// Mean fallback service time — what admission estimates with when
    /// every breaker is open and the O3+DV path is the only channel.
    #[must_use]
    pub fn mean_fallback_cycles(&self) -> u64 {
        let sum: u64 = self.fallback_cycles.iter().sum();
        (sum / self.fallback_cycles.len() as u64).max(1)
    }

    /// A sender-side retransmit timeout grounded in the measured
    /// profile: two worst-jitter one-way trips on a link plus eight
    /// mean engine services of queueing headroom. The transport layer
    /// uses this when [`crate::NetPolicy::rto`] is left at zero — an
    /// RTO below a normal queued round trip would retransmit into a
    /// healthy shard and waste duplicate-suppression work.
    #[must_use]
    pub fn rto_hint(&self, base_delay: u64, jitter: u64) -> u64 {
        2 * (base_delay + jitter) + 8 * self.mean_eve_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profiles_scale_with_contention() {
        let p = ServiceProfile::synthetic(2, 1000, 4000, 4);
        assert_eq!(p.len(), 2);
        assert_eq!(p.eve_service(0, 1), 1000);
        assert_eq!(p.eve_service(0, 2), 1100);
        assert_eq!(p.eve_service(1, 4), 1300);
        // Past the measured curve it saturates instead of extrapolating.
        assert_eq!(p.eve_service(0, 9), 1300);
        assert_eq!(p.fallback_service(1), 4000);
        assert_eq!(p.mean_eve_cycles(), 1000);
    }

    #[test]
    fn zero_busy_engines_price_like_solo() {
        let p = ServiceProfile::synthetic(1, 500, 900, 2);
        assert_eq!(p.eve_service(0, 0), 500);
    }

    #[test]
    fn rto_hint_covers_a_queued_round_trip() {
        let p = ServiceProfile::synthetic(2, 1000, 4000, 4);
        assert_eq!(p.rto_hint(40, 24), 2 * 64 + 8 * 1000);
        // The hint must dominate one worst-case round trip plus one
        // solo service — otherwise healthy shards get retransmitted at.
        assert!(p.rto_hint(40, 24) > 2 * 64 + p.eve_service(0, 1));
    }

    #[test]
    fn measured_profiles_come_from_the_timing_model() {
        let p = ServiceProfile::measured(8, &[Workload::vvadd(300)], 2).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.eve_cycles[0] > 0);
        assert!(p.fallback_cycles[0] > 0);
        assert!((p.contention_at(1) - 1.0).abs() < 1e-12);
        assert!(p.contention_at(2) >= 1.0);
        // Reconfiguration costs come from the cache model, not fiat:
        // the half-ways L2 must hurt the scalar sweep, and the spawn
        // flush must cost real cycles.
        assert!(p.spawn_flush_cycles > 0);
        assert!(p.scalar_slowdown > 1.0, "{}", p.scalar_slowdown);
        assert!(matches!(
            ServiceProfile::measured(8, &[], 2),
            Err(SimError::Config(_))
        ));
    }
}
