//! The serving-layer auditor: replays a traced run against its report.
//!
//! Extends the repo's audit story (PR 2's stall auditor, PR 4's
//! campaign checks) to the `serve` track: the trace buffer must be
//! lossless, every event must land inside the run, the `serve` and
//! per-engine tracks must be time-monotone, each engine's busy/fault
//! spans must be pairwise disjoint (an engine serves one request at a
//! time), and the counter registry the run exported must agree with
//! the report's tallies — plus the report-internal conservation
//! identities (every arrival is admitted or shed; every admitted
//! request completes exactly once; every dispatch succeeds or fails).
//!
//! [`audit_cluster`] extends the same replay identity to the sharded
//! cluster: routing roll-ups (every admitted request was routed to
//! exactly one home shard or served directly on the fallback), steal
//! conservation (everything stolen out landed somewhere or failed
//! over), shed accounting per tenant, and the degradation ladder's
//! step discipline (adjacent levels only, downs minus ups equals the
//! final level, level times cover the whole run).
//!
//! With the lossy transport on, two more families apply. *Message
//! conservation*: on every link and for every message class,
//! `sent == delivered + dropped + in_flight`, and nothing may still be
//! in flight once the calendar drains. *Exactly-once execution*: the
//! shard-side execution ledger and the router-side acceptance ledger
//! reconcile through wasted executions
//! (`executed_ok == completed_eve + wasted`), no shard ever applies
//! the same request twice (`double_applied == 0`), retransmits respect
//! the per-request budget, and every delivered cancellation either
//! pulled a queued copy or missed one that had already dispatched.

use crate::cluster_report::ClusterReport;
use crate::elastic::ElasticEventKind;
use crate::net::MsgClass;
use crate::report::ServeReport;
use crate::sim::traced_engines;
use eve_obs::audit::{check_bounds, check_monotonic, AuditError};
use eve_obs::{EventKind, TraceEvent, Tracer};
use std::fmt;

/// Why the serve audit rejected a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAuditFailure {
    /// A generic trace invariant failed.
    Trace(AuditError),
    /// Two spans on one engine track overlap.
    OverlappingService {
        /// The engine track.
        track: &'static str,
        /// Cycle where the overlap starts.
        at: u64,
    },
    /// An engine's traced span stream diverged from its reported
    /// dispatch count — pinpointed to the first divergent span so the
    /// failure is diagnosable, not a bare count mismatch.
    SpanDivergence {
        /// The engine track.
        track: &'static str,
        /// The engine index.
        engine: usize,
        /// Span index where the streams diverge (0-based).
        index: usize,
        /// Timestamp of the first unexpected span, or the run's end
        /// cycle when the trace ran short.
        cycle: u64,
        /// Spans the report implies.
        expected: u64,
        /// Spans the trace carries.
        got: u64,
    },
    /// A report-internal or report-vs-trace identity failed.
    Identity {
        /// What disagreed, with the numbers.
        message: String,
    },
}

impl fmt::Display for ServeAuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace invariant: {e}"),
            Self::OverlappingService { track, at } => {
                write!(f, "track {track}: overlapping service spans at cycle {at}")
            }
            Self::SpanDivergence {
                track,
                engine,
                index,
                cycle,
                expected,
                got,
            } => write!(
                f,
                "track {track} (engine {engine}): span stream diverges at \
                 index {index}, cycle {cycle}: expected {expected} spans, got {got}"
            ),
            Self::Identity { message } => write!(f, "serve identity: {message}"),
        }
    }
}

impl std::error::Error for ServeAuditFailure {}

impl From<AuditError> for ServeAuditFailure {
    fn from(e: AuditError) -> Self {
        Self::Trace(e)
    }
}

/// What a passing serve audit established.
#[derive(Debug, Clone, Default)]
pub struct ServeAuditSummary {
    /// Events replayed.
    pub events: usize,
    /// Busy/fault spans replayed across all engine tracks.
    pub service_spans: usize,
    /// Engine tracks checked.
    pub engine_tracks: usize,
}

/// What a passing cluster audit established.
#[derive(Debug, Clone, Default)]
pub struct ClusterAuditSummary {
    /// Events replayed.
    pub events: usize,
    /// Conservation identities checked.
    pub identities: usize,
}

fn identity(message: String) -> ServeAuditFailure {
    ServeAuditFailure::Identity { message }
}

fn check_identity(label: &str, got: u64, want: u64) -> Result<(), ServeAuditFailure> {
    if got == want {
        Ok(())
    } else {
        Err(identity(format!("{label}: {got} != {want}")))
    }
}

fn engine_track(i: usize) -> &'static str {
    [
        "eng0", "eng1", "eng2", "eng3", "eng4", "eng5", "eng6", "eng7",
    ][i]
}

/// Collects one engine track's spans in order, verifying disjointness
/// along the way.
fn track_spans(
    events: &[TraceEvent],
    track: &'static str,
) -> Result<Vec<(u64, u64)>, ServeAuditFailure> {
    let mut free_at = 0u64;
    let mut spans = Vec::new();
    for e in events {
        if e.track != track || e.kind != EventKind::Span {
            continue;
        }
        if e.ts < free_at {
            return Err(ServeAuditFailure::OverlappingService { track, at: e.ts });
        }
        free_at = e.ts + e.dur;
        spans.push((e.ts, e.dur));
    }
    Ok(spans)
}

/// Replays `tracer`'s event stream against `report`.
///
/// # Errors
///
/// Returns the first violated invariant as a [`ServeAuditFailure`];
/// span-count mismatches pinpoint the first divergent span.
pub fn audit_serve(
    tracer: &Tracer,
    report: &ServeReport,
) -> Result<ServeAuditSummary, ServeAuditFailure> {
    let dropped = tracer.dropped();
    if dropped > 0 {
        return Err(AuditError::DroppedEvents { dropped }.into());
    }
    let events = tracer.events();
    check_bounds(&events, report.end_cycle)?;
    check_monotonic(&events, "serve")?;

    let tracks = traced_engines(report.pool);
    let mut service_spans = 0;
    for i in 0..tracks {
        let track = engine_track(i);
        check_monotonic(&events, track)?;
        let spans = track_spans(&events, track)?;
        service_spans += spans.len();
        // A fully-traced pool must show exactly one span per reported
        // dispatch, engine by engine. On divergence, name the first
        // span that should not exist (or the cycle the trace ran out).
        if tracks == report.pool {
            let want = report.engines[i].dispatches;
            let got = spans.len() as u64;
            if got != want {
                let index = want.min(got) as usize;
                let cycle = spans.get(index).map_or(report.end_cycle, |&(ts, _)| ts);
                return Err(ServeAuditFailure::SpanDivergence {
                    track,
                    engine: i,
                    index,
                    cycle,
                    expected: want,
                    got,
                });
            }
        }
    }

    // Conservation identities inside the report.
    check_identity(
        "arrivals == admitted + shed",
        report.arrivals,
        report.admitted + report.shed(),
    )?;
    check_identity(
        "admitted == completed_eve + completed_fallback",
        report.admitted,
        report.completed_eve + report.completed_fallback,
    )?;
    check_identity(
        "dispatches == completed_eve + engine_failures",
        report.dispatches,
        report.completed_eve + report.engine_failures,
    )?;
    let eng_dispatches: u64 = report.engines.iter().map(|e| e.dispatches).sum();
    check_identity("engine dispatch roll-up", eng_dispatches, report.dispatches)?;
    let eng_completions: u64 = report.engines.iter().map(|e| e.completions).sum();
    check_identity(
        "engine completion roll-up",
        eng_completions,
        report.completed_eve,
    )?;
    let eng_failures: u64 = report.engines.iter().map(|e| e.failures).sum();
    check_identity(
        "engine failure roll-up",
        eng_failures,
        report.engine_failures,
    )?;

    // Counter registry vs report.
    let reg = tracer.registry();
    if !reg.is_empty() {
        for (name, want) in [
            ("serve.arrivals", report.arrivals),
            ("serve.admitted", report.admitted),
            ("serve.shed", report.shed()),
            ("serve.dispatches", report.dispatches),
            ("serve.failures", report.engine_failures),
            ("serve.retries", report.retries),
            ("serve.failovers", report.failovers),
            ("serve.completed_eve", report.completed_eve),
            ("serve.completed_fallback", report.completed_fallback),
            ("serve.sdc", report.sdc),
        ] {
            check_identity(name, reg.counter(name), want)?;
        }
    }

    Ok(ServeAuditSummary {
        events: events.len(),
        service_spans,
        engine_tracks: tracks,
    })
}

/// Replays a cluster run's trace and report against each other: trace
/// hygiene, conservation identities (arrival, routing, stealing,
/// batching, tenant accounting), ladder step discipline, and the
/// counter-registry cross-check.
///
/// # Errors
///
/// Returns the first violated invariant as a [`ServeAuditFailure`].
pub fn audit_cluster(
    tracer: &Tracer,
    report: &ClusterReport,
) -> Result<ClusterAuditSummary, ServeAuditFailure> {
    let dropped = tracer.dropped();
    if dropped > 0 {
        return Err(AuditError::DroppedEvents { dropped }.into());
    }
    let events = tracer.events();
    check_bounds(&events, report.end_cycle)?;
    check_monotonic(&events, "cluster")?;

    let mut identities = 0usize;
    let mut check = |label: &str, got: u64, want: u64| -> Result<(), ServeAuditFailure> {
        identities += 1;
        check_identity(label, got, want)
    };

    // Arrival conservation.
    check(
        "arrivals == admitted + shed",
        report.arrivals,
        report.admitted + report.shed(),
    )?;
    check(
        "admitted == completed_eve + completed_fallback",
        report.admitted,
        report.completed_eve + report.completed_fallback,
    )?;
    // Every batch member either executed to success on its shard or
    // came back as a failure — and the shard-side execution ledger
    // reconciles with the router-side acceptance ledger through the
    // wasted executions (hedge losers, responses lost past the
    // retransmit budget). With the transport off both identities
    // degenerate to the historical `batched == completed + failures`.
    check(
        "batched == executed_ok + request_failures",
        report.batched_requests,
        report.executed_ok + report.request_failures,
    )?;
    check(
        "executed_ok == completed_eve + wasted_executions",
        report.executed_ok,
        report.completed_eve + report.wasted_executions,
    )?;
    check(
        "failovers == completed_fallback",
        report.failovers,
        report.completed_fallback,
    )?;

    // Routing replay: every admitted request has exactly one home
    // shard, unless no shard was routable and it went straight to the
    // fallback path.
    let routed: u64 = report.shards_detail.iter().map(|s| s.routed).sum();
    check(
        "routed + direct_fallback == admitted",
        routed + report.direct_fallback,
        report.admitted,
    )?;
    let rerouted_in: u64 = report.shards_detail.iter().map(|s| s.rerouted_in).sum();
    check("reroute roll-up", rerouted_in, report.rerouted)?;

    // Steal replay: everything stolen out landed in a thief's queue or
    // failed over, nothing vanished.
    let steals_out: u64 = report.shards_detail.iter().map(|s| s.steals_out).sum();
    check("steal roll-up", steals_out, report.steals)?;
    let steals_in: u64 = report.shards_detail.iter().map(|s| s.steals_in).sum();
    check(
        "steals_in == steals - steal_failovers",
        steals_in,
        report.steals - report.steal_failovers,
    )?;

    // Batch replay, shard by shard.
    let batches: u64 = report.shards_detail.iter().map(|s| s.batches).sum();
    check("dispatch roll-up", batches, report.dispatches)?;
    let batched: u64 = report
        .shards_detail
        .iter()
        .map(|s| s.batched_requests)
        .sum();
    check("batched-request roll-up", batched, report.batched_requests)?;
    let completions: u64 = report.shards_detail.iter().map(|s| s.completions).sum();
    check("execution roll-up", completions, report.executed_ok)?;
    let failures: u64 = report.shards_detail.iter().map(|s| s.failures).sum();
    check("failure roll-up", failures, report.batch_failures)?;
    for (i, s) in report.shards_detail.iter().enumerate() {
        let eng_batches: u64 = s.engines.iter().map(|e| e.dispatches).sum();
        check(
            &format!("shard {i} engine batch roll-up"),
            eng_batches,
            s.batches,
        )?;
        let eng_resolved: u64 = s.engines.iter().map(|e| e.completions + e.failures).sum();
        check(
            &format!("shard {i} batches all resolve"),
            eng_resolved,
            s.batches,
        )?;
    }

    // Tenant accounting: arrivals and admissions partition exactly, and
    // no admitted tenant loses a request.
    check(
        "tenant arrival roll-up",
        report.tenants.iter().map(|t| t.arrivals).sum(),
        report.arrivals,
    )?;
    check(
        "tenant admit roll-up",
        report.tenants.iter().map(|t| t.admitted).sum(),
        report.admitted,
    )?;
    check(
        "tenant shed roll-up",
        report.tenants.iter().map(|t| t.shed).sum(),
        report.shed(),
    )?;
    for t in &report.tenants {
        check(
            &format!("tenant {} completes what it admits", t.name),
            t.completed,
            t.admitted,
        )?;
    }

    // Ladder discipline: one rung at a time, downs and ups reconcile
    // with the final level, and level times tile the run.
    for (i, e) in report.ladder.iter().enumerate() {
        let moved = (e.from as i64 - e.to as i64).unsigned_abs();
        check(
            &format!(
                "ladder step {i} moves one rung ({} -> {})",
                e.from.as_str(),
                e.to.as_str()
            ),
            moved,
            1,
        )?;
    }
    check(
        "ladder steps reconcile with final level",
        report.step_downs(),
        report.step_ups() + report.final_level as u64,
    )?;
    check(
        "level times tile the run",
        report.time_at_level.iter().sum(),
        report.end_cycle,
    )?;

    // Elastic reconfiguration replay: the event stream, the shard
    // tallies, and the cluster roll-ups must tell one story — every
    // start resolves exactly once (commit or rollback), the final
    // partition reconciles with the ledger, and request conservation
    // (checked above) therefore holds *across* reconfigurations:
    // nothing a drain or rollback touched was dropped or double-run.
    let spawns: u64 = report.shards_detail.iter().map(|s| s.spawns).sum();
    check("elastic spawn roll-up", spawns, report.elastic_spawns)?;
    let retires: u64 = report.shards_detail.iter().map(|s| s.retires).sum();
    check("elastic retire roll-up", retires, report.elastic_retires)?;
    let spawn_rb: u64 = report.shards_detail.iter().map(|s| s.spawn_rollbacks).sum();
    check(
        "elastic spawn-rollback roll-up",
        spawn_rb,
        report.elastic_spawn_rollbacks,
    )?;
    let retire_rb: u64 = report
        .shards_detail
        .iter()
        .map(|s| s.retire_rollbacks)
        .sum();
    check(
        "elastic retire-rollback roll-up",
        retire_rb,
        report.elastic_retire_rollbacks,
    )?;
    for (i, s) in report.shards_detail.iter().enumerate() {
        check(
            &format!("shard {i} final_active + retires == base + spawns"),
            s.final_active + s.retires,
            report.engines_per_shard as u64 + s.spawns,
        )?;
    }
    let kind_count = |k: ElasticEventKind| -> u64 {
        report.elastic_events.iter().filter(|e| e.kind == k).count() as u64
    };
    check(
        "every spawn start resolves",
        kind_count(ElasticEventKind::SpawnStart),
        report.elastic_spawns + report.elastic_spawn_rollbacks,
    )?;
    check(
        "every retire start resolves",
        kind_count(ElasticEventKind::RetireStart),
        report.elastic_retires + report.elastic_retire_rollbacks,
    )?;
    check(
        "spawn commits match the tally",
        kind_count(ElasticEventKind::SpawnCommit),
        report.elastic_spawns,
    )?;
    check(
        "retire commits match the tally",
        kind_count(ElasticEventKind::RetireCommit),
        report.elastic_retires,
    )?;
    let mut prev_at = 0u64;
    for (i, e) in report.elastic_events.iter().enumerate() {
        check(
            &format!("elastic event {i} is time-ordered"),
            u64::from(e.at >= prev_at),
            1,
        )?;
        prev_at = e.at;
        check(
            &format!("elastic event {i} lands inside the run"),
            u64::from(e.at <= report.end_cycle),
            1,
        )?;
        check(
            &format!("elastic event {i} names a real shard"),
            u64::from(e.shard < report.shards),
            1,
        )?;
    }
    // Thrash guard: reconfiguration *starts* inside any half-window
    // must stay within the bound (the controller's bucketed window is
    // conservative at full width, exact at half).
    let starts: Vec<u64> = report
        .elastic_events
        .iter()
        .filter(|e| e.kind.is_start())
        .map(|e| e.at)
        .collect();
    let half = (report.elastic_window / 2).max(1);
    for (i, &t) in starts.iter().enumerate() {
        let in_window = starts[..=i]
            .iter()
            .filter(|&&u| t.saturating_sub(u) < half)
            .count() as u64;
        check(
            &format!("thrash guard holds at start {i}"),
            u64::from(in_window <= report.elastic_max_per_window),
            1,
        )?;
    }

    // Transport replay. With the net disabled everything here is
    // trivially zero — which is itself checked, so a report cannot
    // smuggle in link traffic it claims not to have modeled.
    if !report.net_enabled {
        check(
            "disabled transport carries no links",
            report.links.len() as u64,
            0,
        )?;
        check(
            "disabled transport saw no wasted executions",
            report.wasted_executions,
            0,
        )?;
    } else {
        check(
            "one link per shard",
            report.links.len() as u64,
            report.shards as u64,
        )?;
    }
    let mut cancels_delivered = 0u64;
    for l in &report.links {
        for class in MsgClass::ALL {
            let c = l.class(class);
            check(
                &format!(
                    "link {} {}: sent == delivered + dropped + in_flight",
                    l.shard,
                    class.as_str()
                ),
                c.sent,
                c.delivered + c.dropped + c.in_flight,
            )?;
            check(
                &format!(
                    "link {} {}: nothing in flight at end",
                    l.shard,
                    class.as_str()
                ),
                c.in_flight,
                0,
            )?;
        }
        cancels_delivered += l.cancel.delivered;
    }
    check(
        "no request executed twice on one shard",
        report.net.double_applied,
        0,
    )?;
    check(
        "delivered cancels either pulled a copy or missed",
        cancels_delivered,
        report.net.hedge_cancelled + report.net.cancel_missed,
    )?;
    check(
        "retransmits respect the per-request budget",
        u64::from(report.net.retransmits <= report.admitted * report.net_max_retransmits),
        1,
    )?;
    check(
        "hedge wins never exceed hedges fired",
        u64::from(report.net.hedge_wins <= report.net.hedges),
        1,
    )?;
    // Failure-detector history: time-ordered, in-run, real shards, and
    // its transition counts match the counter block.
    let mut prev_at = 0u64;
    for (i, e) in report.detector_events.iter().enumerate() {
        check(
            &format!("detector event {i} is time-ordered"),
            u64::from(e.at >= prev_at),
            1,
        )?;
        prev_at = e.at;
        check(
            &format!("detector event {i} lands inside the run"),
            u64::from(e.at <= report.end_cycle),
            1,
        )?;
        check(
            &format!("detector event {i} names a real shard"),
            u64::from(e.shard < report.shards),
            1,
        )?;
    }
    let suspected = report
        .detector_events
        .iter()
        .filter(|e| e.suspected)
        .count() as u64;
    check(
        "suspicion events match the tally",
        suspected,
        report.net.suspicions,
    )?;
    check(
        "recovery events match the tally",
        report.detector_events.len() as u64 - suspected,
        report.net.recoveries,
    )?;

    // Counter registry vs report.
    let reg = tracer.registry();
    if !reg.is_empty() {
        for (name, want) in [
            ("cluster.arrivals", report.arrivals),
            ("cluster.admitted", report.admitted),
            ("cluster.shed", report.shed()),
            ("cluster.shed_tenant", report.shed_tenant),
            ("cluster.dispatches", report.dispatches),
            ("cluster.batched_requests", report.batched_requests),
            ("cluster.failures", report.batch_failures),
            ("cluster.retries", report.retries),
            ("cluster.failovers", report.failovers),
            ("cluster.steals", report.steals),
            ("cluster.rerouted", report.rerouted),
            ("cluster.completed_eve", report.completed_eve),
            ("cluster.completed_fallback", report.completed_fallback),
            ("cluster.sdc", report.sdc),
            ("cluster.executed_ok", report.executed_ok),
            ("cluster.ladder_steps", report.ladder.len() as u64),
            ("elastic.spawns", report.elastic_spawns),
            ("elastic.retires", report.elastic_retires),
            (
                "elastic.rollbacks",
                report.elastic_spawn_rollbacks + report.elastic_retire_rollbacks,
            ),
            ("elastic.drain_cycles", report.elastic_drain_cycles),
        ] {
            check(name, reg.counter(name), want)?;
        }
        let class_total = |f: fn(&crate::cluster_report::LinkClassReport) -> u64| -> u64 {
            report
                .links
                .iter()
                .flat_map(|l| MsgClass::ALL.iter().map(move |&c| f(&l.class(c))))
                .sum()
        };
        for (name, want) in [
            ("net.sent", class_total(|c| c.sent)),
            ("net.delivered", class_total(|c| c.delivered)),
            ("net.dropped", class_total(|c| c.dropped)),
            ("net.retransmits", report.net.retransmits),
            ("net.timeouts", report.net.timeouts),
            ("net.hedges", report.net.hedges),
            ("net.hedge_wins", report.net.hedge_wins),
            ("net.dedup_hits", report.net.dedup_hits),
            ("net.dup_suppressed", report.net.dup_suppressed),
            ("net.late_responses", report.net.late_responses),
            ("net.stale_drops", report.net.stale_drops),
            ("net.double_applied", report.net.double_applied),
            ("net.wasted_executions", report.wasted_executions),
            ("net.suspicions", report.net.suspicions),
            ("net.recoveries", report.net.recoveries),
        ] {
            check(name, reg.counter(name), want)?;
        }
        for (i, s) in report.shards_detail.iter().enumerate() {
            check(
                &format!("cluster.routed.s{i}"),
                reg.counter(&format!("cluster.routed.s{i}")),
                s.routed,
            )?;
            check(
                &format!("cluster.steals_in.s{i}"),
                reg.counter(&format!("cluster.steals_in.s{i}")),
                s.steals_in,
            )?;
        }
    }

    Ok(ClusterAuditSummary {
        events: events.len(),
        identities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterSim, ClusterTraffic};
    use crate::profile::ServiceProfile;
    use crate::sim::{ServeConfig, ServeSim, TrafficConfig};
    use crate::storm::FaultStorm;

    fn traced_run(storm: FaultStorm) -> (Tracer, ServeReport) {
        let tracer = Tracer::new();
        let cfg = ServeConfig {
            pool: 4,
            seed: 11,
            ..ServeConfig::default()
        };
        let traffic = TrafficConfig {
            requests: 150,
            mean_gap: 600,
            deadline_slack: 6.0,
            seed: 5,
        };
        let report = ServeSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 4),
            traffic,
            storm,
        )
        .unwrap()
        .with_tracer(&tracer)
        .run();
        (tracer, report)
    }

    fn traced_cluster(storm: FaultStorm) -> (Tracer, ClusterReport) {
        let tracer = Tracer::new();
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 250,
            mean_gap: 600,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let report = ClusterSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 2),
            traffic,
            storm,
        )
        .unwrap()
        .with_tracer(&tracer)
        .run();
        (tracer, report)
    }

    #[test]
    fn calm_and_stormy_runs_pass() {
        for storm in [FaultStorm::none(), FaultStorm::synth(9, 4, 400_000, 1.5)] {
            let (tracer, report) = traced_run(storm);
            let s = audit_serve(&tracer, &report).unwrap();
            assert!(s.events > 0);
            assert_eq!(s.service_spans as u64, report.dispatches);
            assert_eq!(s.engine_tracks, 4);
        }
    }

    #[test]
    fn a_cooked_report_fails_the_identity() {
        let (tracer, mut report) = traced_run(FaultStorm::none());
        report.admitted += 1;
        let err = audit_serve(&tracer, &report).unwrap_err();
        assert!(matches!(err, ServeAuditFailure::Identity { .. }), "{err}");
    }

    #[test]
    fn a_cooked_counter_fails_the_registry_check() {
        let (tracer, mut report) = traced_run(FaultStorm::none());
        // Consistently shift both sides of the internal identities so
        // only the registry cross-check can catch the lie.
        report.retries += 1;
        let err = audit_serve(&tracer, &report).unwrap_err();
        assert!(err.to_string().contains("serve.retries"), "{err}");
    }

    #[test]
    fn span_divergence_names_the_first_divergent_span() {
        let (tracer, mut report) = traced_run(FaultStorm::none());
        // Claim engine 2 dispatched one fewer request than it did: the
        // trace now carries one span too many, and the auditor must say
        // which one.
        report.engines[2].dispatches -= 1;
        let err = audit_serve(&tracer, &report).unwrap_err();
        match err {
            ServeAuditFailure::SpanDivergence {
                track,
                engine,
                index,
                cycle,
                expected,
                got,
            } => {
                assert_eq!(track, "eng2");
                assert_eq!(engine, 2);
                assert_eq!(got, expected + 1);
                assert_eq!(index as u64, expected);
                assert!(cycle <= report.end_cycle);
                let msg = ServeAuditFailure::SpanDivergence {
                    track,
                    engine,
                    index,
                    cycle,
                    expected,
                    got,
                }
                .to_string();
                assert!(msg.contains("eng2") && msg.contains("diverges"), "{msg}");
            }
            other => panic!("expected SpanDivergence, got {other}"),
        }
    }

    #[test]
    fn untraced_runs_fail_the_span_divergence_check() {
        let tracer = Tracer::new();
        let (_, report) = traced_run(FaultStorm::none());
        // A fresh tracer has no spans at all: the per-engine divergence
        // check reports the trace ran short, at the run's end cycle.
        let err = audit_serve(&tracer, &report).unwrap_err();
        match err {
            ServeAuditFailure::SpanDivergence {
                index, cycle, got, ..
            } => {
                assert_eq!(index, 0);
                assert_eq!(got, 0);
                assert_eq!(cycle, report.end_cycle);
            }
            other => panic!("expected SpanDivergence, got {other}"),
        }
    }

    #[test]
    fn cluster_runs_pass_calm_and_under_shard_kill() {
        for storm in [
            FaultStorm::none(),
            FaultStorm::kill_shard(1, 2, 60_000).merged(FaultStorm::hot_key(3, 40_000, 120_000)),
        ] {
            let (tracer, report) = traced_cluster(storm);
            let s = audit_cluster(&tracer, &report).unwrap();
            assert!(s.events > 0);
            assert!(s.identities > 20);
        }
    }

    #[test]
    fn a_cooked_cluster_report_fails() {
        let (tracer, mut report) = traced_cluster(FaultStorm::none());
        report.steals += 1;
        let err = audit_cluster(&tracer, &report).unwrap_err();
        assert!(matches!(err, ServeAuditFailure::Identity { .. }), "{err}");
    }

    #[test]
    fn an_elastic_run_passes_and_a_cooked_ledger_fails() {
        use crate::elastic::ElasticPolicy;
        let tracer = Tracer::new();
        let cfg = ClusterConfig {
            shards: 2,
            engines_per_shard: 1,
            elastic: ElasticPolicy {
                enabled: true,
                min_engines: 1,
                max_engines: 3,
                scale_up_backlog: 0.2,
                scale_down_backlog: 0.02,
                dwell: 4_000,
                ..ElasticPolicy::default()
            },
            seed: 11,
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 250,
            mean_gap: 300,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let report = ClusterSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 3),
            traffic,
            FaultStorm::none(),
        )
        .unwrap()
        .with_tracer(&tracer)
        .run();
        assert!(report.elastic_spawns > 0, "pressure never spawned");
        audit_cluster(&tracer, &report).unwrap();
        // Cook the ledger: claim one more spawn than the shards saw.
        let mut cooked = report.clone();
        cooked.elastic_spawns += 1;
        let err = audit_cluster(&tracer, &cooked).unwrap_err();
        assert!(err.to_string().contains("elastic"), "{err}");
        // Cook an event time past the run's end.
        let mut cooked = report;
        if let Some(e) = cooked.elastic_events.last_mut() {
            e.at = cooked.end_cycle + 1;
            let err = audit_cluster(&tracer, &cooked).unwrap_err();
            assert!(err.to_string().contains("inside the run"), "{err}");
        }
    }

    fn traced_lossy_cluster(storm: FaultStorm) -> (Tracer, ClusterReport) {
        use crate::net::NetPolicy;
        let tracer = Tracer::new();
        let cfg = ClusterConfig {
            shards: 4,
            engines_per_shard: 2,
            seed: 11,
            net: NetPolicy {
                duplicate: 0.1,
                ..NetPolicy::lossy(0.05)
            },
            ..ClusterConfig::default()
        };
        let traffic = ClusterTraffic {
            requests: 250,
            mean_gap: 600,
            seed: 5,
            ..ClusterTraffic::default()
        };
        let report = ClusterSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 2),
            traffic,
            storm,
        )
        .unwrap()
        .with_tracer(&tracer)
        .run();
        (tracer, report)
    }

    #[test]
    fn a_lossy_cluster_passes_and_cooked_net_ledgers_fail() {
        let (tracer, report) = traced_lossy_cluster(FaultStorm::partition(2, 40_000, 60_000));
        let s = audit_cluster(&tracer, &report).unwrap();
        assert!(s.identities > 60, "net identities ran: {}", s.identities);
        assert!(report.net.retransmits > 0, "loss must cause retransmits");

        // Cook a link ledger: claim one more delivery than the wire
        // carried — message conservation catches it.
        let mut cooked = report.clone();
        cooked.links[0].req.delivered += 1;
        let err = audit_cluster(&tracer, &cooked).unwrap_err();
        assert!(err.to_string().contains("sent == delivered"), "{err}");

        // Cook the execution ledger: hide a wasted execution. The
        // exactly-once reconciliation catches it.
        let mut cooked = report.clone();
        cooked.wasted_executions += 1;
        let err = audit_cluster(&tracer, &cooked).unwrap_err();
        assert!(
            err.to_string().contains("executed_ok == completed_eve"),
            "{err}"
        );

        // Claim a double-applied request: rejected outright.
        let mut cooked = report.clone();
        cooked.net.double_applied = 1;
        let err = audit_cluster(&tracer, &cooked).unwrap_err();
        assert!(err.to_string().contains("executed twice"), "{err}");

        // Cook the detector history: drop the recovery event while the
        // tally still claims it.
        let mut cooked = report;
        if let Some(i) = cooked.detector_events.iter().position(|e| !e.suspected) {
            cooked.detector_events.remove(i);
            let err = audit_cluster(&tracer, &cooked).unwrap_err();
            assert!(err.to_string().contains("recovery events"), "{err}");
        }
    }

    #[test]
    fn a_report_claiming_phantom_links_fails() {
        // A net-disabled run cannot carry link traffic.
        let (tracer, mut report) = traced_cluster(FaultStorm::none());
        report
            .links
            .push(crate::cluster_report::LinkReport::default());
        let err = audit_cluster(&tracer, &report).unwrap_err();
        assert!(err.to_string().contains("no links"), "{err}");
    }

    #[test]
    fn a_cooked_shard_counter_fails_the_registry_check() {
        let (tracer, mut report) = traced_cluster(FaultStorm::none());
        // Move a routed request between shards: the cluster total still
        // reconciles, so only the per-shard registry counter can catch
        // it.
        assert!(report.shards_detail[1].routed > 0);
        report.shards_detail[0].routed += 1;
        report.shards_detail[1].routed -= 1;
        let err = audit_cluster(&tracer, &report).unwrap_err();
        assert!(err.to_string().contains("routed.s0"), "{err}");
    }

    #[test]
    fn failures_render() {
        let e = ServeAuditFailure::OverlappingService {
            track: "eng0",
            at: 42,
        };
        assert!(e.to_string().contains("eng0"));
        let e = ServeAuditFailure::from(AuditError::DroppedEvents { dropped: 2 });
        assert!(e.to_string().contains("dropped"));
    }
}
