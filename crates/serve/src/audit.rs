//! The serving-layer auditor: replays a traced run against its report.
//!
//! Extends the repo's audit story (PR 2's stall auditor, PR 4's
//! campaign checks) to the `serve` track: the trace buffer must be
//! lossless, every event must land inside the run, the `serve` and
//! per-engine tracks must be time-monotone, each engine's busy/fault
//! spans must be pairwise disjoint (an engine serves one request at a
//! time), and the counter registry the run exported must agree with
//! the report's tallies — plus the report-internal conservation
//! identities (every arrival is admitted or shed; every admitted
//! request completes exactly once; every dispatch succeeds or fails).

use crate::report::ServeReport;
use crate::sim::traced_engines;
use eve_obs::audit::{check_bounds, check_monotonic, AuditError};
use eve_obs::{EventKind, TraceEvent, Tracer};
use std::fmt;

/// Why the serve audit rejected a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAuditFailure {
    /// A generic trace invariant failed.
    Trace(AuditError),
    /// Two spans on one engine track overlap.
    OverlappingService {
        /// The engine track.
        track: &'static str,
        /// Cycle where the overlap starts.
        at: u64,
    },
    /// A report-internal or report-vs-trace identity failed.
    Identity {
        /// What disagreed, with the numbers.
        message: String,
    },
}

impl fmt::Display for ServeAuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace invariant: {e}"),
            Self::OverlappingService { track, at } => {
                write!(f, "track {track}: overlapping service spans at cycle {at}")
            }
            Self::Identity { message } => write!(f, "serve identity: {message}"),
        }
    }
}

impl std::error::Error for ServeAuditFailure {}

impl From<AuditError> for ServeAuditFailure {
    fn from(e: AuditError) -> Self {
        Self::Trace(e)
    }
}

/// What a passing serve audit established.
#[derive(Debug, Clone, Default)]
pub struct ServeAuditSummary {
    /// Events replayed.
    pub events: usize,
    /// Busy/fault spans replayed across all engine tracks.
    pub service_spans: usize,
    /// Engine tracks checked.
    pub engine_tracks: usize,
}

fn identity(message: String) -> ServeAuditFailure {
    ServeAuditFailure::Identity { message }
}

fn check_identity(label: &str, got: u64, want: u64) -> Result<(), ServeAuditFailure> {
    if got == want {
        Ok(())
    } else {
        Err(identity(format!("{label}: {got} != {want}")))
    }
}

fn engine_track(i: usize) -> &'static str {
    [
        "eng0", "eng1", "eng2", "eng3", "eng4", "eng5", "eng6", "eng7",
    ][i]
}

fn check_disjoint(events: &[TraceEvent], track: &'static str) -> Result<usize, ServeAuditFailure> {
    let mut free_at = 0u64;
    let mut spans = 0usize;
    for e in events {
        if e.track != track || e.kind != EventKind::Span {
            continue;
        }
        if e.ts < free_at {
            return Err(ServeAuditFailure::OverlappingService { track, at: e.ts });
        }
        free_at = e.ts + e.dur;
        spans += 1;
    }
    Ok(spans)
}

/// Replays `tracer`'s event stream against `report`.
///
/// # Errors
///
/// Returns the first violated invariant as a [`ServeAuditFailure`].
pub fn audit_serve(
    tracer: &Tracer,
    report: &ServeReport,
) -> Result<ServeAuditSummary, ServeAuditFailure> {
    let dropped = tracer.dropped();
    if dropped > 0 {
        return Err(AuditError::DroppedEvents { dropped }.into());
    }
    let events = tracer.events();
    check_bounds(&events, report.end_cycle)?;
    check_monotonic(&events, "serve")?;

    let tracks = traced_engines(report.pool);
    let mut service_spans = 0;
    for i in 0..tracks {
        let track = engine_track(i);
        check_monotonic(&events, track)?;
        service_spans += check_disjoint(&events, track)?;
    }

    // Conservation identities inside the report.
    check_identity(
        "arrivals == admitted + shed",
        report.arrivals,
        report.admitted + report.shed(),
    )?;
    check_identity(
        "admitted == completed_eve + completed_fallback",
        report.admitted,
        report.completed_eve + report.completed_fallback,
    )?;
    check_identity(
        "dispatches == completed_eve + engine_failures",
        report.dispatches,
        report.completed_eve + report.engine_failures,
    )?;
    let eng_dispatches: u64 = report.engines.iter().map(|e| e.dispatches).sum();
    check_identity("engine dispatch roll-up", eng_dispatches, report.dispatches)?;
    let eng_completions: u64 = report.engines.iter().map(|e| e.completions).sum();
    check_identity(
        "engine completion roll-up",
        eng_completions,
        report.completed_eve,
    )?;
    let eng_failures: u64 = report.engines.iter().map(|e| e.failures).sum();
    check_identity(
        "engine failure roll-up",
        eng_failures,
        report.engine_failures,
    )?;

    // Trace-vs-report: every dispatch resolved on a traced engine left
    // exactly one span.
    if tracks == report.pool {
        check_identity(
            "service spans == dispatches",
            service_spans as u64,
            report.dispatches,
        )?;
    }

    // Counter registry vs report.
    let reg = tracer.registry();
    if !reg.is_empty() {
        for (name, want) in [
            ("serve.arrivals", report.arrivals),
            ("serve.admitted", report.admitted),
            ("serve.shed", report.shed()),
            ("serve.dispatches", report.dispatches),
            ("serve.failures", report.engine_failures),
            ("serve.retries", report.retries),
            ("serve.failovers", report.failovers),
            ("serve.completed_eve", report.completed_eve),
            ("serve.completed_fallback", report.completed_fallback),
            ("serve.sdc", report.sdc),
        ] {
            check_identity(name, reg.counter(name), want)?;
        }
    }

    Ok(ServeAuditSummary {
        events: events.len(),
        service_spans,
        engine_tracks: tracks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ServiceProfile;
    use crate::sim::{ServeConfig, ServeSim, TrafficConfig};
    use crate::storm::FaultStorm;

    fn traced_run(storm: FaultStorm) -> (Tracer, ServeReport) {
        let tracer = Tracer::new();
        let cfg = ServeConfig {
            pool: 4,
            seed: 11,
            ..ServeConfig::default()
        };
        let traffic = TrafficConfig {
            requests: 150,
            mean_gap: 600,
            deadline_slack: 6.0,
            seed: 5,
        };
        let report = ServeSim::new(
            cfg,
            ServiceProfile::synthetic(3, 1000, 4000, 4),
            traffic,
            storm,
        )
        .unwrap()
        .with_tracer(&tracer)
        .run();
        (tracer, report)
    }

    #[test]
    fn calm_and_stormy_runs_pass() {
        for storm in [FaultStorm::none(), FaultStorm::synth(9, 4, 400_000, 1.5)] {
            let (tracer, report) = traced_run(storm);
            let s = audit_serve(&tracer, &report).unwrap();
            assert!(s.events > 0);
            assert_eq!(s.service_spans as u64, report.dispatches);
            assert_eq!(s.engine_tracks, 4);
        }
    }

    #[test]
    fn a_cooked_report_fails_the_identity() {
        let (tracer, mut report) = traced_run(FaultStorm::none());
        report.admitted += 1;
        let err = audit_serve(&tracer, &report).unwrap_err();
        assert!(matches!(err, ServeAuditFailure::Identity { .. }), "{err}");
    }

    #[test]
    fn a_cooked_counter_fails_the_registry_check() {
        let (tracer, mut report) = traced_run(FaultStorm::none());
        // Consistently shift both sides of the internal identities so
        // only the registry cross-check can catch the lie.
        report.retries += 1;
        let err = audit_serve(&tracer, &report).unwrap_err();
        assert!(err.to_string().contains("serve.retries"), "{err}");
    }

    #[test]
    fn untraced_runs_audit_on_report_identities_alone() {
        let tracer = Tracer::new();
        let (_, report) = traced_run(FaultStorm::none());
        // A fresh tracer has no events and an empty registry: bounds,
        // monotonicity, and span checks pass trivially; the identities
        // still run.
        let err = audit_serve(&tracer, &report).unwrap_err();
        // Spans == dispatches fails because this tracer saw nothing.
        assert!(matches!(
            err,
            ServeAuditFailure::Identity { .. } | ServeAuditFailure::Trace(_)
        ));
    }

    #[test]
    fn failures_render() {
        let e = ServeAuditFailure::OverlappingService {
            track: "eng0",
            at: 42,
        };
        assert!(e.to_string().contains("eng0"));
        let e = ServeAuditFailure::from(AuditError::DroppedEvents { dropped: 2 });
        assert!(e.to_string().contains("dropped"));
    }
}
