//! The cluster run's result document.
//!
//! [`ClusterReport`] extends the single-pool [`crate::ServeReport`]
//! shape with per-shard routing/stealing tallies, per-tenant service
//! accounting, and the degradation-ladder history. Rendering uses the
//! repo's deterministic JSON builder, so two identical runs — at any
//! campaign thread count — produce byte-identical documents.

use crate::degrade::{LadderEvent, ServiceLevel};
use crate::elastic::ElasticEvent;
use crate::net::{ClassStats, DetectorEvent, MsgClass, NetCounters};
use crate::report::EngineReport;
use eve_common::json::JsonValue;

/// One shard's tallies after a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Admitted requests whose home shard this was.
    pub routed: u64,
    /// Admitted requests this shard accepted for an unavailable home.
    pub rerouted_in: u64,
    /// Requests this shard stole from an unavailable peer's queue.
    pub steals_in: u64,
    /// Requests stolen out of this shard's queue by peers.
    pub steals_out: u64,
    /// Engine dispatches (each carries a whole batch).
    pub batches: u64,
    /// Requests carried by those batches.
    pub batched_requests: u64,
    /// Requests completed on this shard's engines.
    pub completions: u64,
    /// Batches that failed detected.
    pub failures: u64,
    /// Engines the elastic controller brought online here.
    pub spawns: u64,
    /// Engines it drained and returned to cache duty.
    pub retires: u64,
    /// Spawns rolled back mid-warmup (target went unhealthy).
    pub spawn_rollbacks: u64,
    /// Retires aborted mid-drain (pressure returned).
    pub retire_rollbacks: u64,
    /// Active engines when the run ended.
    pub final_active: u64,
    /// Per-engine tallies (`dispatches` counts batches here).
    pub engines: Vec<EngineReport>,
}

impl ShardReport {
    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("routed", JsonValue::from(self.routed)),
            ("rerouted_in", JsonValue::from(self.rerouted_in)),
            ("steals_in", JsonValue::from(self.steals_in)),
            ("steals_out", JsonValue::from(self.steals_out)),
            ("batches", JsonValue::from(self.batches)),
            ("batched_requests", JsonValue::from(self.batched_requests)),
            ("completions", JsonValue::from(self.completions)),
            ("failures", JsonValue::from(self.failures)),
            ("spawns", JsonValue::from(self.spawns)),
            ("retires", JsonValue::from(self.retires)),
            ("spawn_rollbacks", JsonValue::from(self.spawn_rollbacks)),
            ("retire_rollbacks", JsonValue::from(self.retire_rollbacks)),
            ("final_active", JsonValue::from(self.final_active)),
            (
                "engines",
                JsonValue::Array(self.engines.iter().map(EngineReport::to_json).collect()),
            ),
        ])
    }
}

/// One message class's conservation ledger on one link, with the
/// in-flight remainder written out explicitly so a reader (or the
/// auditor) can check `sent == delivered + dropped + in_flight`
/// against the document alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkClassReport {
    /// Copies handed to the link.
    pub sent: u64,
    /// Copies that reached the far end.
    pub delivered: u64,
    /// Copies the link lost.
    pub dropped: u64,
    /// Extra copies duplication minted (counted inside `sent`).
    pub dup_copies: u64,
    /// Copies still on the wire when the run ended.
    pub in_flight: u64,
}

impl LinkClassReport {
    /// Builds the report form from the link's live stats.
    #[must_use]
    pub fn from_stats(s: ClassStats) -> Self {
        Self {
            sent: s.sent,
            delivered: s.delivered,
            dropped: s.dropped,
            dup_copies: s.dup_copies,
            in_flight: s.in_flight(),
        }
    }

    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("sent", JsonValue::from(self.sent)),
            ("delivered", JsonValue::from(self.delivered)),
            ("dropped", JsonValue::from(self.dropped)),
            ("dup_copies", JsonValue::from(self.dup_copies)),
            ("in_flight", JsonValue::from(self.in_flight)),
        ])
    }
}

/// One router↔shard link's per-class conservation ledgers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// The shard this link serves.
    pub shard: u64,
    /// Request dispatches.
    pub req: LinkClassReport,
    /// Responses (acks and nacks).
    pub resp: LinkClassReport,
    /// First-response-wins cancellations.
    pub cancel: LinkClassReport,
    /// Heartbeat pings.
    pub heartbeat: LinkClassReport,
    /// Heartbeat acks.
    pub ack: LinkClassReport,
}

impl LinkReport {
    /// The ledger for `class`.
    #[must_use]
    pub fn class(&self, class: MsgClass) -> LinkClassReport {
        match class {
            MsgClass::Req => self.req,
            MsgClass::Resp => self.resp,
            MsgClass::Cancel => self.cancel,
            MsgClass::Heartbeat => self.heartbeat,
            MsgClass::Ack => self.ack,
        }
    }

    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("shard", JsonValue::from(self.shard)),
            ("req", self.req.to_json()),
            ("resp", self.resp.to_json()),
            ("cancel", self.cancel.to_json()),
            ("heartbeat", self.heartbeat.to_json()),
            ("ack", self.ack.to_json()),
        ])
    }
}

/// JSON form of the transport counter block.
#[must_use]
fn net_counters_json(c: &NetCounters) -> JsonValue {
    JsonValue::object([
        ("retransmits", JsonValue::from(c.retransmits)),
        ("timeouts", JsonValue::from(c.timeouts)),
        ("hedges", JsonValue::from(c.hedges)),
        ("hedge_wins", JsonValue::from(c.hedge_wins)),
        ("hedge_cancelled", JsonValue::from(c.hedge_cancelled)),
        ("cancel_missed", JsonValue::from(c.cancel_missed)),
        ("dedup_hits", JsonValue::from(c.dedup_hits)),
        ("dup_suppressed", JsonValue::from(c.dup_suppressed)),
        ("late_responses", JsonValue::from(c.late_responses)),
        ("stale_drops", JsonValue::from(c.stale_drops)),
        ("double_applied", JsonValue::from(c.double_applied)),
        ("suspicions", JsonValue::from(c.suspicions)),
        ("recoveries", JsonValue::from(c.recoveries)),
    ])
}

/// One tenant's service accounting after a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: u32,
    /// Requests this tenant offered.
    pub arrivals: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Requests refused (capacity, infeasibility, or tenant shedding).
    pub shed: u64,
    /// Admitted requests that completed (any path).
    pub completed: u64,
    /// Admitted requests answered correctly in deadline.
    pub served_ok: u64,
    /// `served_ok / admitted` (1.0 when nothing was admitted).
    pub availability: f64,
}

impl TenantReport {
    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.as_str())),
            ("weight", JsonValue::from(u64::from(self.weight))),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("admitted", JsonValue::from(self.admitted)),
            ("shed", JsonValue::from(self.shed)),
            ("completed", JsonValue::from(self.completed)),
            ("served_ok", JsonValue::from(self.served_ok)),
            ("availability", JsonValue::from(self.availability)),
        ])
    }
}

/// Everything one cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Shard count.
    pub shards: usize,
    /// Engines per shard.
    pub engines_per_shard: usize,
    /// Requests the traffic model generated.
    pub requests: u64,
    /// When the last event fired.
    pub end_cycle: u64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Refused: queue at capacity.
    pub shed_capacity: u64,
    /// Refused: deadline infeasible.
    pub shed_infeasible: u64,
    /// Refused: lowest-weight tenant class shed by the ladder.
    pub shed_tenant: u64,
    /// Admitted while no shard was routable (or during a
    /// fallback-only brownout) — served directly on the O3+DV path.
    pub direct_fallback: u64,
    /// Engine dispatches; each carries one batch.
    pub dispatches: u64,
    /// Requests those batches carried.
    pub batched_requests: u64,
    /// Batches that failed detected.
    pub batch_failures: u64,
    /// Member requests inside failed batches.
    pub request_failures: u64,
    /// Retry events scheduled.
    pub retries: u64,
    /// Requests served on the O3+DV path.
    pub failovers: u64,
    /// Requests moved by work stealing.
    pub steals: u64,
    /// Stolen requests the thief had to failover (infeasible re-price).
    pub steal_failovers: u64,
    /// Admitted requests routed away from an unavailable home shard.
    pub rerouted: u64,
    /// Requests completed on engines.
    pub completed_eve: u64,
    /// Requests completed on the fallback.
    pub completed_fallback: u64,
    /// Silent corruptions that reached callers.
    pub sdc: u64,
    /// Whether the lossy transport was modeled.
    pub net_enabled: bool,
    /// Effective executions on shard engines (the shard-side ledger:
    /// every batch member that ran to success, accepted or not).
    pub executed_ok: u64,
    /// Effective executions the router never accepted (hedge losers,
    /// responses lost past the retransmit budget). Always
    /// `executed_ok - completed_eve` when the exactly-once machinery
    /// holds, which is what the auditor checks.
    pub wasted_executions: u64,
    /// Retransmit budget per request (policy echo for the auditor's
    /// `retransmits <= admitted * budget` bound).
    pub net_max_retransmits: u64,
    /// Transport counter block (all zero when `net_enabled` is false).
    pub net: NetCounters,
    /// Per-link, per-class message-conservation ledgers.
    pub links: Vec<LinkReport>,
    /// Failure-detector suspicion/recovery history, in order.
    pub detector_events: Vec<DetectorEvent>,
    /// Correct in-deadline answers over admitted requests.
    pub availability: f64,
    /// In-deadline completions over all arrivals.
    pub goodput: f64,
    /// Late completions over completions.
    pub deadline_miss_rate: f64,
    /// Median sojourn, cycles.
    pub p50_sojourn: u64,
    /// 99th-percentile sojourn, cycles.
    pub p99_sojourn: u64,
    /// Ladder transitions, in order.
    pub ladder: Vec<LadderEvent>,
    /// Service level when the run ended.
    pub final_level: ServiceLevel,
    /// Cycles spent at each service level.
    pub time_at_level: [u64; 4],
    /// Elastic spawns the controller committed.
    pub elastic_spawns: u64,
    /// Elastic retires the controller committed.
    pub elastic_retires: u64,
    /// Spawns rolled back mid-warmup.
    pub elastic_spawn_rollbacks: u64,
    /// Retires aborted mid-drain.
    pub elastic_retire_rollbacks: u64,
    /// Total cycles engines spent draining.
    pub elastic_drain_cycles: u64,
    /// The controller's thrash-guard window width (policy echo, so the
    /// auditor can replay the bound without the config).
    pub elastic_window: u64,
    /// Most reconfiguration starts allowed per window (policy echo).
    pub elastic_max_per_window: u64,
    /// Every reconfiguration event, in order.
    pub elastic_events: Vec<ElasticEvent>,
    /// Per-shard tallies.
    pub shards_detail: Vec<ShardReport>,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantReport>,
}

impl ClusterReport {
    /// Total shed requests, all reasons.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_capacity + self.shed_infeasible + self.shed_tenant
    }

    /// Ladder transitions toward stricter levels.
    #[must_use]
    pub fn step_downs(&self) -> u64 {
        self.ladder.iter().filter(|e| e.to > e.from).count() as u64
    }

    /// Ladder transitions back toward full service.
    #[must_use]
    pub fn step_ups(&self) -> u64 {
        self.ladder.iter().filter(|e| e.to < e.from).count() as u64
    }

    /// Deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let ladder = self
            .ladder
            .iter()
            .map(|e| {
                JsonValue::object([
                    ("at", JsonValue::from(e.at)),
                    ("from", JsonValue::from(e.from.as_str())),
                    ("to", JsonValue::from(e.to.as_str())),
                ])
            })
            .collect();
        let time_at = ServiceLevel::ALL
            .iter()
            .map(|&l| {
                JsonValue::object([
                    ("level", JsonValue::from(l.as_str())),
                    ("cycles", JsonValue::from(self.time_at_level[l as usize])),
                ])
            })
            .collect();
        JsonValue::object([
            ("shards", JsonValue::from(self.shards as u64)),
            (
                "engines_per_shard",
                JsonValue::from(self.engines_per_shard as u64),
            ),
            ("requests", JsonValue::from(self.requests)),
            ("end_cycle", JsonValue::from(self.end_cycle)),
            ("arrivals", JsonValue::from(self.arrivals)),
            ("admitted", JsonValue::from(self.admitted)),
            ("shed_capacity", JsonValue::from(self.shed_capacity)),
            ("shed_infeasible", JsonValue::from(self.shed_infeasible)),
            ("shed_tenant", JsonValue::from(self.shed_tenant)),
            ("direct_fallback", JsonValue::from(self.direct_fallback)),
            ("dispatches", JsonValue::from(self.dispatches)),
            ("batched_requests", JsonValue::from(self.batched_requests)),
            ("batch_failures", JsonValue::from(self.batch_failures)),
            ("request_failures", JsonValue::from(self.request_failures)),
            ("retries", JsonValue::from(self.retries)),
            ("failovers", JsonValue::from(self.failovers)),
            ("steals", JsonValue::from(self.steals)),
            ("steal_failovers", JsonValue::from(self.steal_failovers)),
            ("rerouted", JsonValue::from(self.rerouted)),
            ("completed_eve", JsonValue::from(self.completed_eve)),
            (
                "completed_fallback",
                JsonValue::from(self.completed_fallback),
            ),
            ("sdc", JsonValue::from(self.sdc)),
            ("net_enabled", JsonValue::from(self.net_enabled)),
            ("executed_ok", JsonValue::from(self.executed_ok)),
            ("wasted_executions", JsonValue::from(self.wasted_executions)),
            (
                "net_max_retransmits",
                JsonValue::from(self.net_max_retransmits),
            ),
            ("net", net_counters_json(&self.net)),
            (
                "links",
                JsonValue::Array(self.links.iter().map(LinkReport::to_json).collect()),
            ),
            (
                "detector_events",
                JsonValue::Array(
                    self.detector_events
                        .iter()
                        .map(|e| {
                            JsonValue::object([
                                ("at", JsonValue::from(e.at)),
                                ("shard", JsonValue::from(e.shard as u64)),
                                ("suspected", JsonValue::from(e.suspected)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("availability", JsonValue::from(self.availability)),
            ("goodput", JsonValue::from(self.goodput)),
            (
                "deadline_miss_rate",
                JsonValue::from(self.deadline_miss_rate),
            ),
            ("p50_sojourn", JsonValue::from(self.p50_sojourn)),
            ("p99_sojourn", JsonValue::from(self.p99_sojourn)),
            ("ladder", JsonValue::Array(ladder)),
            ("final_level", JsonValue::from(self.final_level.as_str())),
            ("time_at_level", JsonValue::Array(time_at)),
            ("elastic_spawns", JsonValue::from(self.elastic_spawns)),
            ("elastic_retires", JsonValue::from(self.elastic_retires)),
            (
                "elastic_spawn_rollbacks",
                JsonValue::from(self.elastic_spawn_rollbacks),
            ),
            (
                "elastic_retire_rollbacks",
                JsonValue::from(self.elastic_retire_rollbacks),
            ),
            (
                "elastic_drain_cycles",
                JsonValue::from(self.elastic_drain_cycles),
            ),
            ("elastic_window", JsonValue::from(self.elastic_window)),
            (
                "elastic_max_per_window",
                JsonValue::from(self.elastic_max_per_window),
            ),
            (
                "elastic_events",
                JsonValue::Array(
                    self.elastic_events
                        .iter()
                        .map(|e| {
                            JsonValue::object([
                                ("at", JsonValue::from(e.at)),
                                ("shard", JsonValue::from(e.shard as u64)),
                                ("kind", JsonValue::from(e.kind.as_str())),
                                ("active_after", JsonValue::from(e.active_after as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards_detail",
                JsonValue::Array(
                    self.shards_detail
                        .iter()
                        .map(ShardReport::to_json)
                        .collect(),
                ),
            ),
            (
                "tenants",
                JsonValue::Array(self.tenants.iter().map(TenantReport::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerState, BreakerStats};

    fn sample() -> ClusterReport {
        ClusterReport {
            shards: 2,
            engines_per_shard: 2,
            requests: 10,
            end_cycle: 9_000,
            arrivals: 10,
            admitted: 9,
            shed_capacity: 0,
            shed_infeasible: 1,
            shed_tenant: 0,
            direct_fallback: 0,
            dispatches: 6,
            batched_requests: 9,
            batch_failures: 1,
            request_failures: 1,
            retries: 1,
            failovers: 0,
            steals: 2,
            steal_failovers: 0,
            rerouted: 1,
            completed_eve: 9,
            completed_fallback: 0,
            sdc: 0,
            net_enabled: true,
            executed_ok: 10,
            wasted_executions: 1,
            net_max_retransmits: 3,
            net: NetCounters {
                retransmits: 2,
                timeouts: 2,
                hedges: 1,
                hedge_wins: 1,
                ..NetCounters::default()
            },
            links: vec![
                LinkReport {
                    shard: 0,
                    req: LinkClassReport {
                        sent: 6,
                        delivered: 5,
                        dropped: 1,
                        dup_copies: 0,
                        in_flight: 0,
                    },
                    ..LinkReport::default()
                },
                LinkReport {
                    shard: 1,
                    ..LinkReport::default()
                },
            ],
            detector_events: vec![DetectorEvent {
                at: 5_000,
                shard: 1,
                suspected: true,
            }],
            availability: 1.0,
            goodput: 0.9,
            deadline_miss_rate: 0.0,
            p50_sojourn: 1_500,
            p99_sojourn: 4_000,
            ladder: vec![LadderEvent {
                at: 4_000,
                from: ServiceLevel::Full,
                to: ServiceLevel::BatchOnly,
            }],
            final_level: ServiceLevel::BatchOnly,
            time_at_level: [4_000, 5_000, 0, 0],
            elastic_spawns: 1,
            elastic_retires: 1,
            elastic_spawn_rollbacks: 0,
            elastic_retire_rollbacks: 0,
            elastic_drain_cycles: 700,
            elastic_window: 64_000,
            elastic_max_per_window: 4,
            elastic_events: vec![
                ElasticEvent {
                    at: 2_000,
                    shard: 0,
                    kind: crate::elastic::ElasticEventKind::SpawnStart,
                    active_after: 2,
                },
                ElasticEvent {
                    at: 2_600,
                    shard: 0,
                    kind: crate::elastic::ElasticEventKind::SpawnCommit,
                    active_after: 3,
                },
            ],
            shards_detail: vec![
                ShardReport {
                    routed: 5,
                    rerouted_in: 1,
                    steals_in: 2,
                    steals_out: 0,
                    batches: 3,
                    batched_requests: 5,
                    completions: 5,
                    failures: 0,
                    spawns: 0,
                    retires: 0,
                    spawn_rollbacks: 0,
                    retire_rollbacks: 0,
                    final_active: 2,
                    engines: vec![
                        EngineReport {
                            dispatches: 3,
                            completions: 3,
                            failures: 0,
                            dead: false,
                            final_state: BreakerState::Closed,
                            breaker: BreakerStats::default(),
                        };
                        2
                    ],
                };
                2
            ],
            tenants: vec![TenantReport {
                name: "t0".into(),
                weight: 4,
                arrivals: 10,
                admitted: 9,
                shed: 1,
                completed: 9,
                served_ok: 9,
                availability: 1.0,
            }],
        }
    }

    #[test]
    fn json_is_stable_and_self_parsing() {
        let r = sample();
        let a = r.to_json().to_pretty();
        let b = r.to_json().to_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"batch_only\""));
        assert!(a.contains("\"time_at_level\""));
        assert!(a.contains("\"spawn_commit\""));
        assert!(a.contains("\"elastic_drain_cycles\""));
        assert!(a.contains("\"net_enabled\""));
        assert!(a.contains("\"wasted_executions\""));
        assert!(a.contains("\"in_flight\""));
        assert!(a.contains("\"detector_events\""));
        JsonValue::parse(&a).expect("own output parses");
        assert_eq!(
            sample().links[0].class(MsgClass::Req).dropped,
            1,
            "class accessor reads the right ledger"
        );
        assert_eq!(r.shed(), 1);
        assert_eq!(r.step_downs(), 1);
        assert_eq!(r.step_ups(), 0);
    }
}
