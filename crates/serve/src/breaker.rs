//! A per-engine circuit breaker (closed → open → half-open).
//!
//! The scheduler never sees raw engine health; it sees the breaker.
//! Consecutive detected failures trip the breaker **open**, which
//! removes the engine from placement. After a cooldown the breaker
//! admits a single **half-open** probe request: success (possibly
//! several, per policy) re-closes the circuit, failure re-opens it
//! with an escalated cooldown. Health signals exported from the
//! `eve-sim` escalation ladder (see [`crate::health`]) feed the same
//! machine: a ladder degradation trips the breaker immediately, a way
//! disable or remap exhaustion counts as a failure.
//!
//! The machine is driven entirely by the simulated clock passed into
//! each method — no wall time — so serve runs replay exactly.

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Engine is isolated until the cooldown elapses.
    Open,
    /// One probe request at a time is admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable string form for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Cycles the breaker stays open before admitting a probe.
    pub cooldown: u64,
    /// Cooldown multiplier applied on every re-open (a failed probe).
    pub cooldown_backoff: u64,
    /// Upper bound on the escalated cooldown.
    pub max_cooldown: u64,
    /// Probe successes required to re-close from half-open.
    pub successes_to_close: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: 20_000,
            cooldown_backoff: 2,
            max_cooldown: 320_000,
            successes_to_close: 1,
        }
    }
}

impl BreakerPolicy {
    /// Trips after a single failure and probes aggressively — isolates
    /// a dead engine fastest at the cost of more probe traffic.
    #[must_use]
    pub fn aggressive() -> Self {
        Self {
            failure_threshold: 1,
            cooldown: 8_000,
            cooldown_backoff: 2,
            max_cooldown: 128_000,
            successes_to_close: 2,
        }
    }

    /// Tolerates long failure bursts before tripping — keeps traffic on
    /// a flaky engine longer.
    #[must_use]
    pub fn lenient() -> Self {
        Self {
            failure_threshold: 8,
            cooldown: 60_000,
            cooldown_backoff: 2,
            max_cooldown: 960_000,
            successes_to_close: 1,
        }
    }

    /// Looks a preset up by its campaign name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "default" => Some(Self::default()),
            "aggressive" => Some(Self::aggressive()),
            "lenient" => Some(Self::lenient()),
            _ => None,
        }
    }
}

/// Lifetime transition counters, reported per engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/half-open → open transitions.
    pub opened: u64,
    /// Half-open → closed transitions (successful probe rounds).
    pub reclosed: u64,
    /// Open → half-open transitions (probe windows granted).
    pub probes: u64,
    /// Failures observed in any state.
    pub failures: u64,
    /// Successes observed in any state.
    pub successes: u64,
}

/// The per-engine breaker state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    /// Whether the half-open probe slot is taken by an in-flight
    /// request.
    probe_in_flight: bool,
    opened_at: u64,
    current_cooldown: u64,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            probe_in_flight: false,
            opened_at: 0,
            current_cooldown: policy.cooldown,
            stats: BreakerStats::default(),
        }
    }

    /// The current state, advancing open → half-open if the cooldown
    /// has elapsed by `now`.
    pub fn state_at(&mut self, now: u64) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.opened_at + self.current_cooldown {
            self.state = BreakerState::HalfOpen;
            self.half_open_successes = 0;
            self.probe_in_flight = false;
            self.stats.probes += 1;
        }
        self.state
    }

    /// Whether a request may be placed on this engine at `now`. A
    /// half-open breaker admits one probe at a time; claiming the slot
    /// happens in [`CircuitBreaker::on_dispatch`].
    pub fn allows(&mut self, now: u64) -> bool {
        match self.state_at(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => !self.probe_in_flight,
        }
    }

    /// Records that a request was placed on the engine (claims the
    /// probe slot when half-open).
    pub fn on_dispatch(&mut self, now: u64) {
        if self.state_at(now) == BreakerState::HalfOpen {
            self.probe_in_flight = true;
        }
    }

    /// Records a successful completion at `now`.
    pub fn on_success(&mut self, now: u64) {
        self.stats.successes += 1;
        match self.state_at(now) {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.half_open_successes += 1;
                if self.half_open_successes >= self.policy.successes_to_close {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.current_cooldown = self.policy.cooldown;
                    self.stats.reclosed += 1;
                }
            }
            // A success landing while open (completion of a request
            // dispatched before the trip) does not re-close anything.
            BreakerState::Open => {}
        }
    }

    /// Records a detected failure at `now`.
    pub fn on_failure(&mut self, now: u64) {
        self.stats.failures += 1;
        match self.state_at(now) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.trip(now, self.policy.cooldown);
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: re-open with an escalated cooldown.
                let escalated = self
                    .current_cooldown
                    .saturating_mul(self.policy.cooldown_backoff.max(1))
                    .min(self.policy.max_cooldown);
                self.trip(now, escalated);
            }
            // Already open: a straggler completion; stay open.
            BreakerState::Open => {}
        }
    }

    /// Forces the breaker open at `now` (a ladder degradation signal:
    /// the engine itself reported it fell back to O3+DV).
    pub fn force_open(&mut self, now: u64) {
        if self.state_at(now) != BreakerState::Open {
            self.trip(now, self.current_cooldown.max(self.policy.cooldown));
        }
    }

    fn trip(&mut self, now: u64, cooldown: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.current_cooldown = cooldown;
        self.consecutive_failures = 0;
        self.half_open_successes = 0;
        self.probe_in_flight = false;
        self.stats.opened += 1;
    }

    /// Lifetime transition counters.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// The active cooldown (escalates on failed probes).
    #[must_use]
    pub fn cooldown(&self) -> u64 {
        self.current_cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: threshold,
            cooldown: 100,
            cooldown_backoff: 2,
            max_cooldown: 400,
            successes_to_close: 1,
        })
    }

    /// The exhaustive transition table the satellite task asks for:
    /// every (state, event) pair and its successor state.
    #[test]
    fn exhaustive_transition_table() {
        // (state label, event label, expected successor) driven through
        // a fresh breaker forced into the source state each row.
        #[derive(Clone, Copy, Debug)]
        enum Event {
            Success,
            Failure,
            FailureBelowThreshold,
            CooldownElapses,
            HealthTrip,
        }
        use BreakerState as S;
        use Event as E;
        let table: &[(S, E, S)] = &[
            // Closed
            (S::Closed, E::Success, S::Closed),
            (S::Closed, E::FailureBelowThreshold, S::Closed),
            (S::Closed, E::Failure, S::Open), // threshold reached
            (S::Closed, E::CooldownElapses, S::Closed),
            (S::Closed, E::HealthTrip, S::Open),
            // Open
            (S::Open, E::Success, S::Open), // straggler completion
            (S::Open, E::Failure, S::Open),
            (S::Open, E::CooldownElapses, S::HalfOpen),
            (S::Open, E::HealthTrip, S::Open),
            // HalfOpen
            (S::HalfOpen, E::Success, S::Closed),
            (S::HalfOpen, E::Failure, S::Open), // probe failed
            (S::HalfOpen, E::CooldownElapses, S::HalfOpen),
            (S::HalfOpen, E::HealthTrip, S::Open),
        ];
        for &(from, event, to) in table {
            // Force `from`: trip with 2-failure threshold, then elapse.
            let mut b = breaker(2);
            let mut now = 0;
            match from {
                S::Closed => {}
                S::Open => {
                    b.on_failure(now);
                    b.on_failure(now);
                    assert_eq!(b.state_at(now), S::Open);
                }
                S::HalfOpen => {
                    b.on_failure(now);
                    b.on_failure(now);
                    now = 100; // cooldown elapsed
                    assert_eq!(b.state_at(now), S::HalfOpen);
                }
            }
            match event {
                E::Success => b.on_success(now),
                E::Failure => {
                    if from == S::Closed {
                        b.on_failure(now);
                        b.on_failure(now); // reach the threshold
                    } else {
                        b.on_failure(now);
                    }
                }
                E::FailureBelowThreshold => b.on_failure(now),
                E::CooldownElapses => {
                    now += 1_000_000;
                }
                E::HealthTrip => b.force_open(now),
            }
            assert_eq!(
                b.state_at(now),
                to,
                "{from:?} --{event:?}--> expected {to:?}"
            );
        }
    }

    #[test]
    fn failed_probe_escalates_cooldown_up_to_cap() {
        let mut b = breaker(1);
        b.on_failure(0);
        assert_eq!(b.cooldown(), 100);
        // Probe at 100 fails: cooldown doubles.
        assert!(b.allows(100));
        b.on_dispatch(100);
        b.on_failure(100);
        assert_eq!(b.cooldown(), 200);
        assert!(!b.allows(250), "still open: escalated cooldown");
        assert!(b.allows(300));
        b.on_dispatch(300);
        b.on_failure(300);
        assert_eq!(b.cooldown(), 400);
        b.state_at(700);
        b.on_dispatch(700);
        b.on_failure(700);
        assert_eq!(b.cooldown(), 400, "capped at max_cooldown");
    }

    #[test]
    fn successful_probe_recloses_and_resets_cooldown() {
        let mut b = breaker(1);
        b.on_failure(0);
        assert!(b.allows(100));
        b.on_dispatch(100);
        b.on_success(150);
        assert_eq!(b.state_at(150), BreakerState::Closed);
        assert_eq!(b.cooldown(), 100, "cooldown resets on re-close");
        let s = b.stats();
        assert_eq!((s.opened, s.probes, s.reclosed), (1, 1, 1));
    }

    #[test]
    fn half_open_admits_one_probe_at_a_time() {
        let mut b = breaker(1);
        b.on_failure(0);
        assert!(b.allows(100));
        b.on_dispatch(100);
        assert!(!b.allows(100), "probe slot taken");
        b.on_failure(120);
        assert!(!b.allows(120), "back open");
    }

    #[test]
    fn successes_interleaved_reset_the_failure_count() {
        let mut b = breaker(3);
        b.on_failure(0);
        b.on_failure(1);
        b.on_success(2);
        b.on_failure(3);
        b.on_failure(4);
        assert_eq!(b.state_at(4), BreakerState::Closed, "count was reset");
        b.on_failure(5);
        assert_eq!(b.state_at(5), BreakerState::Open);
    }

    #[test]
    fn multi_success_close_policy() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: 10,
            cooldown_backoff: 2,
            max_cooldown: 100,
            successes_to_close: 2,
        });
        b.on_failure(0);
        assert!(b.allows(10));
        b.on_dispatch(10);
        b.on_success(11);
        assert_eq!(b.state_at(11), BreakerState::HalfOpen, "needs 2");
        assert!(b.allows(11), "slot free again");
        b.on_dispatch(11);
        b.on_success(12);
        assert_eq!(b.state_at(12), BreakerState::Closed);
    }

    #[test]
    fn presets_resolve_by_name() {
        assert!(BreakerPolicy::by_name("default").is_some());
        assert!(BreakerPolicy::by_name("aggressive").is_some());
        assert!(BreakerPolicy::by_name("lenient").is_some());
        assert!(BreakerPolicy::by_name("nope").is_none());
        assert_eq!(BreakerState::HalfOpen.as_str(), "half_open");
    }
}
